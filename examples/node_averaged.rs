//! Worst-case vs node-averaged awake complexity, priced in energy.
//!
//! The sleeping model's motivation is battery: an awake radio draws
//! ~60 mW, a sleeping one ~5 µW (paper §1.2). But *which* statistic of
//! the awake distribution you pay depends on the deployment:
//!
//! * A fleet on one battery budget cares about the **mean** — the
//!   node-averaged awake complexity (Chatterjee–Gmyr–Pandurangan).
//!   `na` drives it to O(1).
//! * A network that dies with its first dead sensor cares about the
//!   **max** — the worst-case awake complexity the source paper
//!   optimizes. `awake` drives it to O(log log n).
//! * `gp-avg` dials between the two with `balance=K`.
//!
//! This example wires `analysis::EnergyModel` to the per-node
//! distribution (`sleeping_congest::AwakeDistribution`) for the whole
//! comparison table on a sensor-style random geometric graph.
//!
//! Run with: `cargo run --release --example node_averaged`

use awake_mis::analysis::{EnergyModel, Table};
use awake_mis::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 4096;
    // Sensor-style workload: random geometric graph, expected degree ~10.
    let g = GraphFamily::Rgg.generate(n, 42);
    let model = EnergyModel::default();
    let per_round_mj = model.awake_energy_mj(1);

    println!("{n} sensors, RGG, {} links — radio: {} mW awake, {} mW asleep\n", g.m(), model.awake_mw, model.sleep_mw);

    let mut t = Table::new(vec![
        "algorithm",
        "awake mean",
        "awake p95",
        "awake max",
        "gini",
        "mean node energy (mJ)",
        "worst node energy (mJ)",
    ]);
    for spec in ["awake", "luby", "na", "gp-avg", "gp-avg?balance=0"] {
        let runner = default_registry().resolve(spec)?;
        let r = runner.run(&g, 7)?;
        assert!(r.correct, "{spec}: invalid MIS");
        let d = r.metrics.awake_distribution();
        // The paper's energy metric is linear in awake rounds, so the
        // distribution maps straight onto millijoules.
        t.row(vec![
            format!("{} ({spec})", r.algorithm),
            format!("{:.2}", d.mean),
            format!("{:.1}", d.p95),
            d.max.to_string(),
            format!("{:.2}", d.gini),
            format!("{:.3}", d.mean * per_round_mj),
            format!("{:.3}", d.max as f64 * per_round_mj),
        ]);
    }
    print!("{}", t.render());

    println!();
    println!("Reading the table:");
    println!("  - NA-MIS minimizes the fleet-average bill (mean column): O(1) awake rounds");
    println!("    per average sensor, paid for with a long tail (high gini, large max).");
    println!("  - Awake-MIS minimizes the worst sensor's bill at a higher average.");
    println!("  - gp-avg?balance=K walks the frontier: balance=0 is the pure ranked");
    println!("    schedule (tight max, high mean); the default balance=3 drops the mean");
    println!("    to near-NA-MIS levels while keeping a deterministic cap on the max.");
    Ok(())
}
