//! Sensor-network scenario — the motivating application of the sleeping
//! model (paper §1.2): battery-powered nodes scattered in the plane must
//! elect a *clusterhead backbone* (an MIS) while spending as little
//! energy awake as possible.
//!
//! Compares `Awake-MIS` against Luby's algorithm under a radio energy
//! model (60 mW awake, 3 mW asleep, 1 ms rounds) on a random geometric
//! graph.
//!
//! ```bash
//! cargo run --release --example sensor_network
//! ```

use awake_mis::analysis::spec::default_registry;
use awake_mis::analysis::{EnergyModel, Table};
use awake_mis::graphs::{generators, props};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 4096;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(2024);
    // Deployment: n sensors uniform in the unit square, radio range set
    // for an expected degree of ~12 (a dense, well-connected field).
    let radius = (12.0 / (std::f64::consts::PI * n as f64)).sqrt();
    let g = generators::random_geometric(n, radius, &mut rng);
    println!(
        "sensor field: {} nodes, {} links, max degree {}, {} connected clusters",
        g.n(),
        g.m(),
        g.max_degree(),
        props::connected_components(&g).1
    );

    let model = EnergyModel::default();
    println!(
        "energy model: awake {} mW, asleep {} mW, {} ms rounds\n",
        model.awake_mw, model.sleep_mw, model.round_ms
    );

    let mut table = Table::new(vec![
        "algorithm",
        "clusterheads",
        "awake max",
        "radio energy, worst node (mJ)",
        "with 5 µW sleep draw (mJ)",
        "latency (rounds)",
        "valid",
    ]);
    for alg in default_registry().resolve_list("awake,awake-round,luby")? {
        let r = alg.run(&g, 7)?;
        let awake_only = model.awake_energy_mj(r.awake_max);
        let with_sleep =
            model.max_node_energy_mj(&r.metrics.awake_rounds, &r.metrics.terminated_at);
        table.row(vec![
            alg.name().to_string(),
            r.mis_size.to_string(),
            r.awake_max.to_string(),
            format!("{awake_only:.2}"),
            format!("{with_sleep:.2}"),
            r.rounds.to_string(),
            r.correct.to_string(),
        ]);
    }
    print!("{}", table.render());

    println!("\nreading the table: the paper's energy metric is the awake-round count (the");
    println!("radio-on column). Awake-MIS keeps it at O(log log n) — but note the honest");
    println!("caveat visible in the sleep-draw column: a schedule stretched over many");
    println!("rounds pays residual sleep current for its whole duration, which is exactly");
    println!("why the paper *also* chases round complexity (Corollary 14) and why the");
    println!("open problem of O(log log n) awake with O(log n) rounds matters.");
    Ok(())
}
