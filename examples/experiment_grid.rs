//! Run a small experiment grid through the batch harness and print the
//! aggregated cells — the library-level version of
//! `cargo run --release -p bench --bin grid`.
//!
//! ```bash
//! cargo run --release --example experiment_grid
//! ```

use awake_mis::analysis::grid::{run_grid, GridSpec};
use awake_mis::analysis::spec::default_registry;
use awake_mis::graphs::GraphFamily;
use awake_mis::sim::batch::available_threads;

fn main() {
    // {algorithm × family × n × seed}: 2 × 2 × 2 × 4 = 32 runs, fanned
    // over every hardware thread with per-worker scratch reuse. The
    // points and cells come back in grid order regardless of threads.
    // The algorithm axis is registry specs — swap in a parameterized
    // variant (e.g. "awake?round_efficient=true") without code changes.
    let spec = GridSpec {
        algorithms: default_registry().resolve_list("awake,luby").expect("builtin specs"),
        families: vec![GraphFamily::Er, GraphFamily::Tree],
        sizes: vec![512, 2048],
        seeds: vec![1, 2, 3, 4],
        tiers: Vec::new(),
        threads: 0, // 0 = all hardware threads
    };
    let result = run_grid(&spec);

    println!("grid of {} runs over {} threads:\n", result.points.len(), available_threads());
    println!("{:<10} {:>8} {:>6} {:>18} {:>12} {:>8}", "algorithm", "family", "n", "awake max (mean)", "rounds", "ok");
    for c in &result.cells {
        println!(
            "{:<10} {:>8} {:>6} {:>18.1} {:>12.0} {:>8}",
            c.algorithm.key(),
            c.family.key(),
            c.n,
            c.awake_max.mean,
            c.rounds.mean,
            c.all_correct,
        );
    }
    println!("\nthe same data serializes to the BENCH_grid.json payload:");
    let json = result.payload_json();
    println!("{}…", &json[..json.len().min(400)]);
}
