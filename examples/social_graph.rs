//! Independent sets on heavy-tailed graphs: a Barabási–Albert "social
//! network" where a few hubs have enormous degree. MIS here is the
//! classic building block for scheduling non-interfering activations
//! (e.g., choosing a set of mutually non-adjacent accounts to survey).
//!
//! Exercises `Awake-MIS` where the degree distribution is *very* skewed
//! — the regime in which Luby-type algorithms pay their `O(log n)`
//! rounds and the batch-shattering machinery of the paper has to cope
//! with hubs.
//!
//! ```bash
//! cargo run --release --example social_graph
//! ```

use awake_mis::analysis::spec::default_registry;
use awake_mis::analysis::Table;
use awake_mis::graphs::{generators, props};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 8192;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
    let g = generators::barabasi_albert(n, 4, &mut rng);
    let hist = props::degree_histogram(&g);
    let top = hist.len() - 1;
    println!(
        "social graph: {} nodes, {} edges, max degree {} (hub), degeneracy {}",
        g.n(),
        g.m(),
        top,
        props::degeneracy(&g).0
    );

    let mut table = Table::new(vec![
        "algorithm",
        "MIS size",
        "awake max",
        "awake avg",
        "rounds",
        "messages",
        "valid",
    ]);
    for alg in default_registry().resolve_list("awake,luby,vt")? {
        let r = alg.run(&g, 123)?;
        table.row(vec![
            alg.name().to_string(),
            r.mis_size.to_string(),
            r.awake_max.to_string(),
            format!("{:.1}", r.awake_avg),
            r.rounds.to_string(),
            r.messages.to_string(),
            r.correct.to_string(),
        ]);
    }
    print!("{}", table.render());

    println!("\nhubs lose the MIS lottery almost immediately (any neighbor beats them),");
    println!("so the residual graphs sparsify exactly as Lemma 2 predicts — the");
    println!("geometric batching keeps every shattered component tiny despite the skew.");
    Ok(())
}
