//! Anatomy of one `Awake-MIS` execution: dissects a run into the
//! paper's moving parts — derived parameters, batch occupancy, wake
//! schedules, component sizes after shattering, and the per-node awake
//! distribution.
//!
//! ```bash
//! cargo run --release --example anatomy
//! ```

use awake_mis::analysis::render_timeline;
use awake_mis::core::{check_mis, derive_params, AwakeMis, AwakeMisConfig};
use awake_mis::graphs::generators;
use awake_mis::sim::{SimConfig, Simulator};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 4096usize;
    let cfg = AwakeMisConfig::default();
    let p = derive_params(n, &cfg);
    println!("derived parameters for N = {n} (Theorem 13 defaults):");
    println!("  collections ℓ      = {}", p.ell);
    println!("  batches/collection = {} (2Δ')", p.two_delta);
    println!("  phases P           = {} (= O(log² n))", p.phases);
    println!("  component bound K  = {} (= O(log n))", p.k);
    println!("  ID space I         = {} (= N³)", p.id_upper);
    println!("  rounds per phase   = {}", p.r_phase);
    println!("  total rounds       = {}", p.phases * p.r_phase);
    println!(
        "  comm-round wakes   ≤ {} per node (⌈log2 P⌉+1 — the O(log log n) term)\n",
        vtree::depth(p.phases) + 1
    );

    let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
    let g = generators::gnp_avg_degree(n, 8.0, &mut rng);
    let nodes = (0..n).map(|_| AwakeMis::new(cfg)).collect();
    let sim_cfg = SimConfig { record_wake_history: true, ..SimConfig::seeded(11) };
    let report = Simulator::new(g.clone(), nodes, sim_cfg).run()?;
    let states: Vec<_> = report.outputs.iter().map(|o| o.state).collect();
    check_mis(&g, &states)?;

    // Batch occupancy per collection: |V_i| should roughly double.
    let mut per_collection = vec![0usize; p.ell as usize + 1];
    for o in &report.outputs {
        per_collection[o.batch.0 as usize] += 1;
    }
    println!("collection occupancy (expect ~doubling — drives Lemma 2):");
    for (i, c) in per_collection.iter().enumerate().skip(1) {
        println!("  V_{i}: {c} nodes");
    }

    // Shattered component sizes: Lemma 3 in action.
    let comp_sizes: Vec<u64> =
        report.outputs.iter().map(|o| o.comp_size).filter(|&c| c > 0).collect();
    let solved = comp_sizes.len();
    let biggest = comp_sizes.iter().max().copied().unwrap_or(0);
    let avg = comp_sizes.iter().sum::<u64>() as f64 / solved.max(1) as f64;
    println!("\nshattering: {solved} nodes ran LDT-MIS; component sizes: mean {avg:.2}, max {biggest} (bound K = {})", p.k);
    let decided_early = n - solved;
    println!("{decided_early} nodes were dominated before their phase and never ran LDT-MIS");

    // Awake distribution.
    let mut awake = report.metrics.awake_rounds.clone();
    awake.sort_unstable();
    println!("\nawake rounds per node: min {}, median {}, p99 {}, max {}", awake[0], awake[n / 2], awake[n * 99 / 100], awake[n - 1]);
    println!("round complexity: {}", report.metrics.round_complexity());

    // The sleeping model's defining picture: when are nodes 0..8 awake?
    println!("\nwake timelines (█ = awake in that time slice, · = asleep, blank = terminated):");
    print!("{}", render_timeline(&report.metrics, &[0, 1, 2, 3, 4, 5, 6, 7], 72)?);
    Ok(())
}
