//! Beyond MIS: the paper's concluding open direction asks for other
//! symmetry-breaking primitives with small awake complexity. This
//! example derives two of them from `Awake-MIS` via classical
//! reductions:
//!
//! * **maximal matching** — `Awake-MIS` on the line graph `L(G)`;
//! * **(Δ+1)-coloring** — `Awake-MIS` on Linial's product `G □ K_{Δ+1}`.
//!
//! Both inherit the `O(log log ·)` awake complexity (in the size of the
//! derived network).
//!
//! ```bash
//! cargo run --release --example symmetry_breaking
//! ```

use awake_mis::analysis::Table;
use awake_mis::core::{
    coloring, colors_used, is_maximal_matching, is_proper_coloring, maximal_matching,
    AwakeMisConfig,
};
use awake_mis::graphs::generators;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(12);
    let g = generators::gnp_avg_degree(256, 6.0, &mut rng);
    println!(
        "base graph: n = {}, m = {}, Δ = {}\n",
        g.n(),
        g.m(),
        g.max_degree()
    );

    let mut table = Table::new(vec![
        "primitive",
        "derived network",
        "processes",
        "awake max",
        "result",
        "valid",
    ]);

    let m = maximal_matching(&g, AwakeMisConfig::default(), 7)?;
    table.row(vec![
        "maximal matching".to_string(),
        "line graph L(G)".to_string(),
        g.m().to_string(),
        m.metrics.awake_complexity().to_string(),
        format!("{} matched edges", m.matching.len()),
        is_maximal_matching(&g, &m.matching).to_string(),
    ]);

    let palette = g.max_degree() + 1;
    let c = coloring(&g, palette, AwakeMisConfig::default(), 7)?;
    table.row(vec![
        format!("(Δ+1)-coloring (palette {palette})"),
        "product G □ K_{Δ+1}".to_string(),
        (g.n() * palette).to_string(),
        c.metrics.awake_complexity().to_string(),
        format!("{} colors used", colors_used(&c.colors)),
        is_proper_coloring(&g, &c.colors, palette).to_string(),
    ]);

    print!("{}", table.render());
    println!("\nboth primitives run entirely in the sleeping model: every derived process");
    println!("is awake O(log log N) rounds (N = derived network size). In a deployment the");
    println!("two endpoints of an edge simulate its line-graph process, and each node");
    println!("simulates its own Δ+1 palette processes, with constant-factor overhead.");
    Ok(())
}
