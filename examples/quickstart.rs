//! Quickstart: run `Awake-MIS` on a random graph and inspect the
//! sleeping-model metrics.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use awake_mis::core::{check_mis, AwakeMis};
use awake_mis::graphs::generators;
use awake_mis::sim::{SimConfig, Simulator};
use rand::SeedableRng;

/// The crate-level Quickstart, line for line. Keep this in sync with
/// the doctest in `src/lib.rs` and the README — same code, exercised
/// here as a real binary (`cargo run --example quickstart`).
fn quickstart() -> Result<(), awake_mis::sim::SimError> {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
    let g = generators::gnp(200, 0.04, &mut rng);
    let nodes = (0..g.n()).map(|_| AwakeMis::theorem13()).collect();
    let report = Simulator::new(g.clone(), nodes, SimConfig::seeded(2)).run()?;
    let states: Vec<_> = report.outputs.iter().map(|o| o.state).collect();
    check_mis(&g, &states).expect("valid MIS");
    println!(
        "awake complexity {} over {} rounds",
        report.metrics.awake_complexity(),
        report.metrics.round_complexity()
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The documented Quickstart first.
    quickstart()?;

    // 1. A workload: an Erdős–Rényi graph with average degree 8.
    let n = 1 << 12;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
    let g = generators::gnp_avg_degree(n, 8.0, &mut rng);
    println!("graph: n = {}, m = {}, max degree = {}", g.n(), g.m(), g.max_degree());

    // 2. One protocol instance per node — Theorem 13 configuration.
    let nodes = (0..n).map(|_| AwakeMis::theorem13()).collect();

    // 3. Run in the SLEEPING-CONGEST simulator.
    let report = Simulator::new(g.clone(), nodes, SimConfig::seeded(42)).run()?;

    // 4. Verify and report.
    let states: Vec<_> = report.outputs.iter().map(|o| o.state).collect();
    check_mis(&g, &states)?;
    let m = &report.metrics;
    println!("MIS size:           {}", states.iter().filter(|s| s.is_decided() && matches!(s, awake_mis::core::MisState::InMis)).count());
    println!("awake complexity:   {} rounds (worst node)", m.awake_complexity());
    println!("node-avg awake:     {:.1} rounds", m.awake_average());
    println!("round complexity:   {} rounds", m.round_complexity());
    println!("log2 log2 n:        {:.2}", (n as f64).log2().log2());
    println!(
        "messages: {} sent, {} delivered, {} lost to sleepers",
        m.messages_sent, m.messages_delivered, m.messages_lost
    );
    println!("largest message:    {} bits (CONGEST: O(log n))", m.max_message_bits);
    println!(
        "the point: each node was awake ~{:.1} of {} rounds — a {:.1e} fraction",
        m.awake_average(),
        m.round_complexity(),
        m.awake_average() / m.round_complexity() as f64
    );
    Ok(())
}
