//! The awake/round trade-off surface (paper §1.4 and open problems):
//! sweeps the algorithm spectrum from "all awake, few rounds" (Luby,
//! naive greedy) through `VT-MIS` to `Awake-MIS`, printing each point's
//! (awake, rounds) coordinates so the trade-off frontier is visible in
//! one table.
//!
//! ```bash
//! cargo run --release --example tradeoff
//! ```

use awake_mis::analysis::runners::{run_algorithm, Algorithm};
use awake_mis::analysis::Table;
use awake_mis::graphs::generators;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 2048;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
    let g = generators::gnp_avg_degree(n, 8.0, &mut rng);
    println!("trade-off on ER(n = {n}, d̄ = 8): awake complexity vs round complexity\n");

    let mut table = Table::new(vec![
        "algorithm",
        "awake max",
        "rounds",
        "awake·rounds intuition",
    ]);
    for alg in Algorithm::all() {
        let r = run_algorithm(alg, &g, 31)?;
        let note = match alg {
            Algorithm::Luby => "few rounds, all of them awake",
            Algorithm::NaiveGreedy => "Θ(I) both — the strawman",
            Algorithm::VtMis => "Θ(I) rounds, O(log I) awake",
            Algorithm::LdtMis => "one global component: broadcast-bound",
            Algorithm::AwakeMis => "Theorem 13: O(log log n) awake",
            Algorithm::AwakeMisRound => "Corollary 14: +log* awake",
        };
        table.row(vec![
            alg.name().to_string(),
            r.awake_max.to_string(),
            r.rounds.to_string(),
            note.to_string(),
        ]);
    }
    print!("{}", table.render());

    println!("\nno point dominates Awake-MIS on awake complexity; nothing with small");
    println!("awake complexity comes close to Luby's round count — the open problem the");
    println!("paper closes with (an O(log log n)-awake, O(log n)-round algorithm) would");
    println!("occupy the empty corner of this table.");
    Ok(())
}
