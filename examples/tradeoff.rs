//! The awake/round trade-off surface (paper §1.4 and open problems):
//! sweeps the algorithm spectrum from "all awake, few rounds" (Luby,
//! naive greedy) through `VT-MIS` to `Awake-MIS`, printing each point's
//! (awake, rounds) coordinates so the trade-off frontier is visible in
//! one table.
//!
//! ```bash
//! cargo run --release --example tradeoff
//! ```

use awake_mis::prelude::{default_registry, Table};
use awake_mis::graphs::generators;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 2048;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
    let g = generators::gnp_avg_degree(n, 8.0, &mut rng);
    println!("trade-off on ER(n = {n}, d̄ = 8): awake complexity vs round complexity\n");

    let mut table = Table::new(vec![
        "algorithm",
        "awake max",
        "rounds",
        "awake·rounds intuition",
    ]);
    // Registry specs in comparison-table order, each with its headline.
    let spectrum = [
        ("awake", "Theorem 13: O(log log n) awake"),
        ("awake?round_efficient=true", "Corollary 14: +log* awake"),
        ("ldt", "one global component: broadcast-bound"),
        ("vt", "Θ(I) rounds, O(log I) awake"),
        ("naive", "Θ(I) both — the strawman"),
        ("luby", "few rounds, all of them awake"),
        ("le?bits=4", "GP-LE time end: tiny epochs, collision retries"),
        ("le?bits=12", "GP-LE energy end: long epochs, near one-shot"),
    ];
    for (spec, note) in spectrum {
        let alg = default_registry().resolve(spec)?;
        let r = alg.run(&g, 31)?;
        table.row(vec![
            alg.name().to_string(),
            r.awake_max.to_string(),
            r.rounds.to_string(),
            note.to_string(),
        ]);
    }
    print!("{}", table.render());

    println!("\nthe open problem the paper closes with — an O(log log n)-awake,");
    println!("O(log n)-round algorithm — would occupy the empty corner of this table.");
    println!("at laptop scale the LE-MIS dial (GP 2023, arXiv:2305.11639) sits nearest");
    println!("that corner, but its guarantee is Monte Carlo retries, not a deterministic");
    println!("awake bound; sweep the dial with `cargo run --release -p bench --bin sweep`");
    println!("to see the whole frontier with energy pricing.");
    Ok(())
}
