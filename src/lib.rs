//! **awake-mis** — a full reproduction of
//! *"Distributed MIS in O(log log n) Awake Complexity"*
//! (Dufoulon–Moses–Pandurangan, PODC 2023) as a Rust workspace.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`sim`] (`sleeping-congest`) — event-driven SLEEPING-CONGEST
//!   simulator: synchronous rounds, awake/asleep scheduling via a
//!   calendar/bucket wake queue that skips all-asleep round ranges,
//!   message loss to sleeping nodes, CONGEST bit accounting, awake/round
//!   metrics, and batched multi-thread execution with scratch reuse
//!   (`sim::batch`, `sim::SimScratch`).
//! * [`graphs`] (`graphgen`) — port-numbered CSR graphs, workload
//!   generators, and named generator families for grid iteration
//!   (`graphs::GraphFamily`).
//! * [`vtree`] — virtual binary tree communication sets (paper §5.1).
//! * [`ldt`] — labeled distance trees: transmission schedules,
//!   construction (two strategies), broadcast and ranking (§5.2, App. A).
//! * [`core`] (`awake-mis-core`) — the MIS algorithms: `VT-MIS`,
//!   `LDT-MIS`, **`Awake-MIS`** (Theorem 13 / Corollary 14) and the
//!   Luby / naive-greedy baselines plus verifiers.
//! * [`analysis`] — statistics, growth-law fitting, tables, the energy
//!   model, the extensible algorithm registry (`analysis::spec`), and
//!   the batched seed-grid experiment harness (`analysis::grid`) behind
//!   `BENCH_grid.json`.
//!
//! For the common experiment workflow there is also a [`prelude`].
//!
//! # Quickstart
//!
//! ```
//! use awake_mis::core::{AwakeMis, check_mis};
//! use awake_mis::graphs::generators;
//! use awake_mis::sim::{SimConfig, Simulator};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
//! let g = generators::gnp(200, 0.04, &mut rng);
//! let nodes = (0..g.n()).map(|_| AwakeMis::theorem13()).collect();
//! let report = Simulator::new(g.clone(), nodes, SimConfig::seeded(2)).run()?;
//! let states: Vec<_> = report.outputs.iter().map(|o| o.state).collect();
//! check_mis(&g, &states).expect("valid MIS");
//! println!(
//!     "awake complexity {} over {} rounds",
//!     report.metrics.awake_complexity(),
//!     report.metrics.round_complexity()
//! );
//! # Ok::<(), awake_mis::sim::SimError>(())
//! ```

pub use analysis;
pub use awake_mis_core as core;
pub use graphgen as graphs;
pub use ldt;
pub use sleeping_congest as sim;
pub use vtree;

/// One-import surface for the common experiment workflow: resolve
/// algorithm specs from the registry, run them (standalone or as a
/// grid), verify and tabulate.
///
/// ```
/// use awake_mis::prelude::*;
///
/// let runner = default_registry().resolve("vt?id_upper=4096")?;
/// let g = generators::cycle(24);
/// let result = runner.run(&g, 7)?;
/// assert!(result.correct);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub mod prelude {
    pub use crate::analysis::grid::{run_grid, GridMeta, GridResult, GridSpec};
    pub use crate::analysis::runners::AlgoResult;
    pub use crate::analysis::spec::{
        default_registry, AlgorithmSpec, DynRunner, Registry, RunnerHandle, SpecError,
    };
    pub use crate::analysis::{Summary, Table};
    pub use crate::core::{check_maximal, check_mis, MisState};
    pub use crate::graphs::{generators, Graph, GraphFamily};
    pub use crate::sim::{
        Action, NodeCtx, Outbox, Protocol, ScratchArena, SimConfig, SimError, Simulator,
    };
}
