//! Offline, API-compatible subset of `criterion`.
//!
//! The build environment has no crates-registry access, so this vendored
//! stub lets the workspace's `[[bench]]` targets compile and run without
//! the real dependency. It implements the API surface the benches use —
//! `criterion_group!` / `criterion_main!`, [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId::new`] and [`black_box`] — and reports a simple
//! mean-time-per-iteration measurement on stdout. There are no
//! statistics, plots, or baselines; swap in real criterion when a
//! registry is reachable.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// An opaque identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Times a closure over a fixed number of iterations.
pub struct Bencher {
    samples: u64,
    /// Mean wall time per iteration of the last `iter` call.
    last_mean: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up iteration, then the timed samples.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.last_mean = start.elapsed() / self.samples.max(1) as u32;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size.min(self.criterion.max_samples),
            last_mean: Duration::ZERO,
        };
        f(&mut bencher, input);
        println!(
            "bench {}/{}: {:?}/iter ({} samples)",
            self.name, id, bencher.last_mean, bencher.samples
        );
        self
    }

    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.sample_size.min(self.criterion.max_samples),
            last_mean: Duration::ZERO,
        };
        f(&mut bencher);
        println!(
            "bench {}/{}: {:?}/iter ({} samples)",
            self.name, id, bencher.last_mean, bencher.samples
        );
        self
    }

    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    max_samples: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // `--quick` in CI-ish environments: keep stub runs short.
        let max_samples = std::env::var("CRITERION_STUB_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(10);
        Criterion { max_samples }
    }
}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, group_name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: group_name.into(),
            sample_size: 10,
            criterion: self,
        }
    }
}

/// An identity function that hides a value from the optimizer.
#[inline]
pub fn black_box<T>(dummy: T) -> T {
    std::hint::black_box(dummy)
}

/// Declares a group function that runs each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
