//! Offline, API-compatible subset of `proptest`.
//!
//! The build environment has no crates-registry access, so this vendored
//! stub implements the slice of proptest the workspace's property tests
//! use: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]`), range / `any::<T>()` / tuple / `Just` /
//! `prop_map` strategies, and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Semantics: each test body runs `cases` times against values drawn
//! from a per-test deterministic RNG (seeded from the test's module
//! path, so runs are reproducible). `prop_assume!` rejections re-draw
//! without counting toward `cases`. There is **no shrinking** — a
//! failing case panics with the formatted assertion message.

pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Attributes (normally `#[test]`) pass
/// through to the generated zero-argument function:
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     // In real tests this carries `#[test]`.
///     fn my_prop(x in 0u64..100, (a, b) in (0i32..5, 0i32..5)) {
///         prop_assert!(x < 100 && a < b + 5);
///     }
/// }
/// my_prop();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut __cases: u32 = 0;
            let mut __rejects: u32 = 0;
            while __cases < __cfg.cases {
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match __outcome {
                    ::core::result::Result::Ok(()) => __cases += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                        __why,
                    )) => {
                        __rejects += 1;
                        if __rejects > 1000 + 100 * __cfg.cases {
                            panic!(
                                "proptest `{}`: too many prop_assume rejections ({}): {}",
                                stringify!($name),
                                __rejects,
                                __why
                            );
                        }
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        __msg,
                    )) => {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            __cases + 1,
                            __cfg.cases,
                            __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        // The stringified condition may contain braces; pass it as an
        // argument, never as the format string.
        $crate::prop_assert!($cond, "{}", concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        $crate::prop_assert!(
            __left == __right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = $left;
        let __right = $right;
        $crate::prop_assert!(
            __left == __right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            __left,
            __right,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current test case if `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        $crate::prop_assert!(
            __left != __right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            __left
        );
    }};
}

/// Rejects the current case (re-drawn without counting) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
