//! Value-generation strategies (subset of `proptest::strategy`).
//!
//! A [`Strategy`] here is simply a sampler: there is no shrinking tree.
//! Implemented strategies: numeric ranges, `any::<T>()`, tuples of
//! strategies (arity 2–6), [`Just`], and [`Strategy::prop_map`].

use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A source of random values for one test-case input.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps drawn values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident => $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(S0 => 0, S1 => 1);
impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2);
impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3);
impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4);
impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5);
