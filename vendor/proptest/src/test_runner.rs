//! Test-runner plumbing: per-test deterministic RNG, case config, and
//! the error type threaded through `prop_assert*` / `prop_assume!`.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed: redraw inputs, don't count the case.
    Reject(&'static str),
    /// `prop_assert*!` failed: the property is violated.
    Fail(String),
}

impl TestCaseError {
    /// Constructor-style alias matching upstream proptest.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }
}

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// The RNG handed to strategies. Deterministic per test (seeded from the
/// test's fully-qualified name) so failures reproduce across runs.
#[derive(Debug, Clone)]
pub struct TestRng(pub SmallRng);

impl TestRng {
    /// RNG for the named test (FNV-1a of the name as the seed).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
