//! Self-tests for the vendored proptest stub: the macro forms the
//! workspace relies on must parse, run the configured number of cases,
//! respect `prop_assume!`, and surface failures as panics.

use proptest::prelude::*;

fn cases_counter() -> &'static std::sync::atomic::AtomicU32 {
    static COUNTER: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);
    &COUNTER
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(17))]

    /// Ranges stay in bounds; the case count matches the config.
    #[test]
    fn ranges_and_case_count(x in 3u64..9, y in 0.0f64..1.0, z in 1usize..=4) {
        cases_counter().fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        prop_assert!((3..9).contains(&x));
        prop_assert!((0.0..1.0).contains(&y));
        prop_assert!((1..=4).contains(&z));
    }
}

#[test]
fn configured_case_count_is_respected() {
    ranges_and_case_count();
    assert_eq!(
        cases_counter().load(std::sync::atomic::Ordering::SeqCst),
        17
    );
}

proptest! {
    /// Tuple strategies, prop_map, any, Just, patterns, and assume.
    #[test]
    fn combinators(
        (a, b) in (0u32..5, 10u32..15),
        v in (1usize..6, any::<u64>()).prop_map(|(n, seed)| vec![seed; n]),
        c in Just(41i32),
    ) {
        prop_assume!(a != 3);
        prop_assert!(a < 5 && (10..15).contains(&b));
        // Braces in the bare condition must not break the macro's
        // format! expansion.
        prop_assert!([a, b].iter().all(|&x| { x < 20 }));
        prop_assert_ne!(a, 3);
        prop_assert!(!v.is_empty() && v.len() < 6);
        prop_assert_eq!(c + 1, 42);
    }
}

proptest! {
    // No `#[test]` attribute: only invoked via catch_unwind below.
    fn always_fails(x in 0u8..10) {
        prop_assert!(x > 200, "x was {}", x);
    }
}

#[test]
fn failures_panic_with_message() {
    let err = std::panic::catch_unwind(always_fails).unwrap_err();
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("always_fails"), "got: {msg}");
    assert!(msg.contains("x was"), "got: {msg}");
}

#[test]
fn deterministic_across_runs() {
    fn draw() -> Vec<u64> {
        let mut rng = TestRng::for_test("fixed-name");
        (0..5).map(|_| (0u64..1_000_000).sample(&mut rng)).collect()
    }
    assert_eq!(draw(), draw());
}
