//! Offline, API-compatible subset of `rand` 0.8.
//!
//! The build environment has no access to a crates registry, so this
//! vendored stub provides exactly the surface the workspace uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, `gen_bool`, `fill`;
//! * [`SeedableRng`] with `seed_from_u64` (SplitMix64 seed expansion,
//!   as in upstream `rand`);
//! * [`rngs::SmallRng`] backed by xoshiro256++ (the same generator
//!   upstream uses on 64-bit targets);
//! * [`seq::SliceRandom`] with `shuffle` / `choose` (Fisher–Yates).
//!
//! Numeric streams are deterministic and of good statistical quality but
//! are **not** guaranteed to be bit-identical to upstream `rand`; all
//! workspace tests treat the RNG as an opaque seeded source, never as a
//! reference vector.

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from the "standard" distribution
/// (`Rng::gen`): full range for integers, `[0, 1)` for floats.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-high reduction of a `u64` onto `[0, span)` (unbiased enough
/// for simulation workloads; bias is < 2⁻⁶⁴·span).
#[inline]
fn reduce(x: u64, span: u64) -> u64 {
    ((x as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64-width range.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(reduce(rng.next_u64(), span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `u128` ranges use masked rejection sampling (no 256-bit widening).
fn sample_u128_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    let mask = u128::MAX >> span.leading_zeros().min(127);
    loop {
        let x = u128::sample_standard(rng) & mask;
        if x < span {
            return x;
        }
    }
}

impl SampleRange<u128> for core::ops::Range<u128> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + sample_u128_below(rng, self.end - self.start)
    }
}

impl SampleRange<u128> for core::ops::RangeInclusive<u128> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        match (end - start).checked_add(1) {
            Some(span) => start + sample_u128_below(rng, span),
            None => u128::sample_standard(rng),
        }
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + (end - start) * u
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f32::sample_standard(rng)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples the standard distribution for `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} out of [0, 1]");
        self.gen::<f64>() < p
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64, as upstream does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }

    /// Seeds from another generator.
    fn from_rng<R: RngCore>(mut rng: R) -> Result<Self, Error> {
        let mut seed = Self::Seed::default();
        rng.fill_bytes(seed.as_mut());
        Ok(Self::from_seed(seed))
    }
}

/// Error type (never produced by this stub's generators).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

pub mod rngs {
    use super::SeedableRng;

    /// A small, fast generator: xoshiro256++ (what upstream `SmallRng`
    /// uses on 64-bit platforms).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl super::RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            SmallRng { s }
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_rate() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
