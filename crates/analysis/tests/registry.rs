//! Registry redesign safety nets.
//!
//! 1. Differential: for every built-in algorithm, the registry-resolved
//!    runner and the legacy `Algorithm` enum path must produce identical
//!    results across graph families and seeds.
//! 2. Golden payload: a small all-algorithms grid must reproduce, byte
//!    for byte, the payload captured from the pre-registry harness
//!    (`tests/golden/grid_small.json`) — the registry is a pure
//!    refactoring of the dispatch layer, not a behavior change.
//! 3. Registration hygiene: duplicate CLI keys are rejected; custom
//!    entries resolve and run end-to-end.

use analysis::grid::{run_grid, GridSpec};
use analysis::runners::{run_algorithm, AlgoResult, Algorithm};
use analysis::spec::{default_registry, Registry, RunnerHandle, SpecError};
use graphgen::GraphFamily;

fn assert_same(alg: Algorithm, enum_path: &AlgoResult, registry_path: &AlgoResult) {
    let label = alg.name();
    assert_eq!(enum_path.states, registry_path.states, "{label}: states diverged");
    assert_eq!(enum_path.awake_max, registry_path.awake_max, "{label}: awake_max");
    assert_eq!(enum_path.awake_avg, registry_path.awake_avg, "{label}: awake_avg");
    assert_eq!(enum_path.rounds, registry_path.rounds, "{label}: rounds");
    assert_eq!(enum_path.messages, registry_path.messages, "{label}: messages");
    assert_eq!(
        enum_path.max_message_bits, registry_path.max_message_bits,
        "{label}: max_message_bits"
    );
    assert_eq!(enum_path.mis_size, registry_path.mis_size, "{label}: mis_size");
    assert_eq!(enum_path.correct, registry_path.correct, "{label}: correct");
    assert_eq!(enum_path.failures, registry_path.failures, "{label}: failures");
    assert_eq!(
        enum_path.metrics.active_rounds, registry_path.metrics.active_rounds,
        "{label}: active_rounds"
    );
    assert_eq!(enum_path.algorithm, registry_path.algorithm, "{label}: display name");
}

#[test]
fn registry_matches_legacy_enum_for_all_builtins() {
    let reg = default_registry();
    for family in [GraphFamily::Er, GraphFamily::Cycle, GraphFamily::Tree] {
        for n in [33usize, 72] {
            for seed in [2u64, 19] {
                let g = family.generate(n, seed);
                for alg in Algorithm::all() {
                    let legacy = run_algorithm(alg, &g, seed).expect("legacy path");
                    let runner = reg.resolve(alg.key()).expect("builtin resolves");
                    let modern = runner.run(&g, seed).expect("registry path");
                    assert_same(alg, &legacy, &modern);
                }
            }
        }
    }
}

#[test]
fn small_grid_payload_matches_pre_registry_golden() {
    let golden = include_str!("golden/grid_small.json");
    let spec = GridSpec {
        algorithms: default_registry()
            .resolve_list("awake,awake-round,ldt,vt,naive,luby")
            .unwrap(),
        families: vec![GraphFamily::Er, GraphFamily::Cycle],
        sizes: vec![32, 64],
        seeds: vec![1, 2, 3],
        threads: 0,
    };
    let payload = run_grid(&spec).payload_json();
    assert_eq!(
        payload, golden,
        "registry-dispatched grid diverged from the pre-registry harness"
    );
}

#[test]
fn duplicate_cli_key_registration_errors() {
    let mut reg = Registry::builtin();
    // Primary key clash.
    let err = reg.register("vt", "clone", |_| unreachable!("builder must not run")).unwrap_err();
    assert_eq!(err, SpecError::DuplicateKey { key: "vt".to_string() });
    // Alias clash, case-insensitively.
    let err = reg.register("VT-MIS", "clone", |_| unreachable!()).unwrap_err();
    assert_eq!(err, SpecError::DuplicateKey { key: "vt-mis".to_string() });
    // Clash among the new entry's own keys counts too once registered.
    reg.register("fresh", "ok", |s| default_registry().resolve_spec(s)).unwrap();
    let err = reg.register("fresh", "again", |_| unreachable!()).unwrap_err();
    assert_eq!(err, SpecError::DuplicateKey { key: "fresh".to_string() });
}

#[test]
fn custom_registration_runs_end_to_end() {
    // A user algorithm: VT-MIS over a widened ID space, registered under
    // its own key and swept through the grid harness without touching
    // any dispatch code.
    let mut reg = Registry::builtin();
    reg.register("vt-wide", "VT-MIS with a 2^16 ID space", |spec| {
        spec.reader().finish()?;
        default_registry().resolve("vt?id_upper=65536")
    })
    .unwrap();
    let handle: RunnerHandle = reg.resolve("vt-wide").unwrap();
    let result = run_grid(&GridSpec {
        algorithms: vec![handle],
        families: vec![GraphFamily::Cycle],
        sizes: vec![24],
        seeds: vec![5],
        threads: 1,
    });
    assert!(result.cells[0].all_correct);
    // The handle's key (what it was resolved to) names the grid row.
    assert!(result.payload_json().contains("\"vt?id_upper=65536\""));
}
