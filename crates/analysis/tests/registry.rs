//! Registry safety nets.
//!
//! 1. Golden payload: an all-algorithms grid must reproduce, byte for
//!    byte, the committed payload (`tests/golden/grid_small.json`).
//!    This pin replaced the `Algorithm`-enum differential test when the
//!    deprecated enum was removed: the golden file is the behavioral
//!    contract now, so a dispatch-layer change that alters any
//!    measurement — or a serialization change that alters any byte —
//!    must regenerate it *deliberately* (see the `regenerate_golden`
//!    test below).
//! 2. Registration hygiene: duplicate CLI keys are rejected; custom
//!    entries resolve and run end-to-end.

use analysis::grid::{run_grid, GridSpec};
use analysis::spec::{default_registry, Registry, RunnerHandle, SpecError};
use graphgen::GraphFamily;

/// The golden grid: every built-in (worst-case *and* node-averaged
/// families) over two graph families, two sizes, three seeds.
fn golden_spec() -> GridSpec {
    GridSpec {
        algorithms: default_registry()
            .resolve_list("awake,awake-round,ldt,vt,naive,luby,na,gp-avg")
            .unwrap(),
        families: vec![GraphFamily::Er, GraphFamily::Cycle],
        sizes: vec![32, 64],
        seeds: vec![1, 2, 3],
        tiers: Vec::new(),
        threads: 0,
    }
}

#[test]
fn small_grid_payload_matches_golden() {
    let golden = include_str!("golden/grid_small.json");
    let payload = run_grid(&golden_spec()).payload_json();
    assert_eq!(
        payload, golden,
        "grid payload diverged from tests/golden/grid_small.json; if the change is \
         intentional, regenerate with:\n  cargo test -p analysis --test registry \
         regenerate_golden -- --ignored"
    );
}

/// Regenerates the golden payload in place. Run explicitly (`--ignored`)
/// after an intentional measurement or serialization change.
#[test]
#[ignore = "writes tests/golden/grid_small.json; run on intentional payload changes"]
fn regenerate_golden() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/grid_small.json");
    std::fs::write(path, run_grid(&golden_spec()).payload_json()).expect("write golden");
}

#[test]
fn duplicate_cli_key_registration_errors() {
    let mut reg = Registry::builtin();
    // Primary key clash.
    let err = reg.register("vt", "clone", |_| unreachable!("builder must not run")).unwrap_err();
    assert_eq!(err, SpecError::DuplicateKey { key: "vt".to_string() });
    // Alias clash, case-insensitively.
    let err = reg.register("VT-MIS", "clone", |_| unreachable!()).unwrap_err();
    assert_eq!(err, SpecError::DuplicateKey { key: "vt-mis".to_string() });
    // The node-averaged entrants hold their keys the same way.
    let err = reg.register("NA-MIS", "clone", |_| unreachable!()).unwrap_err();
    assert_eq!(err, SpecError::DuplicateKey { key: "na-mis".to_string() });
    // Clash among the new entry's own keys counts too once registered.
    reg.register("fresh", "ok", |s| default_registry().resolve_spec(s)).unwrap();
    let err = reg.register("fresh", "again", |_| unreachable!()).unwrap_err();
    assert_eq!(err, SpecError::DuplicateKey { key: "fresh".to_string() });
}

#[test]
fn custom_registration_runs_end_to_end() {
    // A user algorithm: VT-MIS over a widened ID space, registered under
    // its own key and swept through the grid harness without touching
    // any dispatch code.
    let mut reg = Registry::builtin();
    reg.register("vt-wide", "VT-MIS with a 2^16 ID space", |spec| {
        spec.reader().finish()?;
        default_registry().resolve("vt?id_upper=65536")
    })
    .unwrap();
    let handle: RunnerHandle = reg.resolve("vt-wide").unwrap();
    let result = run_grid(&GridSpec {
        algorithms: vec![handle],
        families: vec![GraphFamily::Cycle],
        sizes: vec![24],
        seeds: vec![5],
        tiers: Vec::new(),
        threads: 1,
    });
    assert!(result.cells[0].all_correct);
    // The handle's key (what it was resolved to) names the grid row.
    assert!(result.payload_json().contains("\"vt?id_upper=65536\""));
}
