//! Tracing is observational only: attaching any `TraceSink` must not
//! perturb a single byte of the deterministic grid payload — under any
//! shard count and with fault models active. The engine-level version
//! of this invariant lives in `sim/tests/trace_events.rs`; this test
//! pins it end-to-end through the registry (`trace=` spec param), the
//! batch harness, and the JSON writer.

use analysis::grid::{run_grid, GridSpec};
use analysis::spec::default_registry;
use graphgen::GraphFamily;

/// Serial, sharded, and faulted runners in one grid: `awake` plain,
/// `luby` with intra-run sharding, `vt` under a lossy/crashy fault
/// model (fault params are payload-affecting and appear identically on
/// both sides of each comparison).
const BASE: [&str; 3] = ["awake", "luby?shards=8", "vt?loss=0.05&crash=0.002"];

fn spec_with_trace(sink: Option<&str>) -> GridSpec {
    let specs = BASE
        .iter()
        .map(|s| match sink {
            None => s.to_string(),
            Some(kind) if s.contains('?') => format!("{s}&trace={kind}"),
            Some(kind) => format!("{s}?trace={kind}"),
        })
        .collect::<Vec<_>>()
        .join(",");
    GridSpec {
        algorithms: default_registry().resolve_list(&specs).unwrap(),
        families: vec![GraphFamily::Er, GraphFamily::Tree],
        sizes: vec![48, 96],
        seeds: vec![1, 2, 3],
        tiers: Vec::new(),
        threads: 2,
    }
}

#[test]
fn profile_sink_does_not_perturb_grid_payloads() {
    let plain = run_grid(&spec_with_trace(None));
    let profiled_spec = spec_with_trace(Some("profile"));
    let profiled = run_grid(&profiled_spec);
    assert_eq!(
        plain.payload_json(),
        profiled.payload_json(),
        "attaching the phase profiler perturbed the deterministic payload"
    );
    // The sink really was attached and observed every run of every
    // runner — neutrality by absence would prove nothing.
    for runner in &profiled_spec.algorithms {
        let report = runner
            .trace()
            .and_then(|h| h.report())
            .expect("profiled runner must produce a report");
        assert!(
            report.contains("12 runs"),
            "expected 2 families × 2 sizes × 3 seeds = 12 runs in {report:?}"
        );
    }
}

#[test]
fn jsonl_sink_does_not_perturb_grid_payloads() {
    // The JSONL sink exercises the other sink code path (buffered
    // stderr writes from inside the engine loop).
    let plain = run_grid(&spec_with_trace(None));
    let traced = run_grid(&spec_with_trace(Some("jsonl")));
    assert_eq!(
        plain.payload_json(),
        traced.payload_json(),
        "attaching the JSONL sink perturbed the deterministic payload"
    );
}
