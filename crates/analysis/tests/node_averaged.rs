//! The node-averaged awake claim, measured.
//!
//! Chatterjee–Gmyr–Pandurangan's `NA-MIS` promises `O(1)` *node-
//! averaged* awake complexity: the seed-averaged mean awake rounds must
//! stay bounded by a constant while `n` grows. This mirrors the
//! worst-case growth test in `crates/core/tests/awake_mis.rs`
//! (`awake_complexity_growth_is_flat`) — same families, same
//! seed-averaging discipline — but pins the *other* awake measure, and
//! contrasts it against `Awake-MIS`, whose worst case provably grows
//! (`Θ(log log n)` is small but not flat).

use analysis::spec::default_registry;
use analysis::RunnerHandle;
use graphgen::generators;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const SIZES: [usize; 3] = [64, 256, 1024];
const GRAPH_SEEDS: [u64; 3] = [500, 501, 502];
const RUN_SEEDS: std::ops::Range<u64> = 4..12;

/// Seed-averaged measurement of `metric` at each size in [`SIZES`].
fn seed_averaged(runner: &RunnerHandle, metric: impl Fn(&analysis::AlgoResult) -> f64) -> Vec<f64> {
    SIZES
        .iter()
        .map(|&n| {
            let mut total = 0.0;
            let mut runs = 0u32;
            for gseed in GRAPH_SEEDS {
                let mut rng = SmallRng::seed_from_u64(gseed);
                let g = generators::gnp_avg_degree(n, 8.0, &mut rng);
                for seed in RUN_SEEDS {
                    let r = runner.run(&g, seed).expect("run");
                    assert!(r.correct, "{} n={n} seed={seed}: invalid MIS", runner.key());
                    total += metric(&r);
                    runs += 1;
                }
            }
            total / f64::from(runs)
        })
        .collect()
}

#[test]
fn na_mean_awake_stays_constant_while_awake_mis_worst_case_grows() {
    let reg = default_registry();
    let na = seed_averaged(&reg.resolve("na").unwrap(), |r| r.awake_avg);
    let awake = seed_averaged(&reg.resolve("awake").unwrap(), |r| r.awake_max as f64);
    println!("na awake_avg by n:      {na:?}");
    println!("awake awake_max by n:   {awake:?}");

    // The node average is bounded by a constant at every tested size…
    for (n, avg) in SIZES.iter().zip(&na) {
        assert!(*avg < 8.0, "n={n}: NA-MIS node average {avg} not O(1)-sized");
    }
    // …and flat across a 16x growth in n (generous 15% drift allowance;
    // the point is the *shape*, Θ(1) vs any growing function).
    assert!(
        na[2] <= na[0] * 1.15,
        "NA-MIS node average grew with n: {na:?} (not O(1)-shaped)"
    );

    // Awake-MIS's worst case is NOT flat over the same grid — log log n
    // growth is slow but visible at 16x.
    assert!(
        awake[2] > awake[0] * 1.1,
        "expected Awake-MIS worst case to grow measurably: {awake:?}"
    );
}

#[test]
fn na_matching_has_dropout_shape_on_the_line_graph() {
    // The matching analogue of the node-averaged claim (GP 2023 §4
    // direction): `NA-MIS` on the line graph gives a maximal matching
    // whose per-edge-process awake distribution has the dropout shape —
    // O(1)-sized mean, flat as the graph grows, with the worst edge
    // carrying a long positive tail.
    use awake_mis_core::{is_maximal_matching, na_maximal_matching, NaMisConfig};

    let mean_at = |n: usize| -> f64 {
        let mut total = 0.0;
        let mut runs = 0u32;
        for gseed in GRAPH_SEEDS {
            let mut rng = SmallRng::seed_from_u64(gseed);
            let g = generators::gnp_avg_degree(n, 8.0, &mut rng);
            for seed in 4..8u64 {
                let r = na_maximal_matching(&g, NaMisConfig::default(), seed).expect("run");
                assert!(is_maximal_matching(&g, &r.matching), "n={n} seed={seed}");
                let d = r.metrics.awake_distribution();
                assert_eq!(d.n, g.m(), "one process per edge");
                assert!(
                    d.mean * 2.0 < d.max as f64,
                    "n={n} seed={seed}: mean {} should sit well under max {}",
                    d.mean,
                    d.max
                );
                assert!(d.skew > 0.0, "n={n} seed={seed}: dropout must leave a positive tail");
                total += d.mean;
                runs += 1;
            }
        }
        total / f64::from(runs)
    };
    let small = mean_at(128);
    let large = mean_at(512);
    assert!(small < 8.0, "line-graph node average {small} not O(1)-sized");
    assert!(large < 8.0, "line-graph node average {large} not O(1)-sized");
    // Flat across a 4x growth in n (and ~4x in line-graph processes).
    assert!(
        large <= small * 1.15,
        "per-edge average grew with the graph: {small} -> {large} (not O(1)-shaped)"
    );
}

#[test]
fn gp_avg_sits_between_the_two_measures() {
    // The balance knob's contract at a fixed size: the default gp-avg
    // average is below the pure ranked schedule's (balance=0), and its
    // worst case respects the deterministic cap documented in
    // `awake_mis_core::avg_mis`.
    let reg = default_registry();
    let mut rng = SmallRng::seed_from_u64(77);
    let g = generators::gnp_avg_degree(512, 8.0, &mut rng);
    let mut avg_default = 0.0;
    let mut avg_ranked = 0.0;
    for seed in 0..6u64 {
        let d = reg.resolve("gp-avg").unwrap().run(&g, seed).unwrap();
        let p = reg.resolve("gp-avg?balance=0").unwrap().run(&g, seed).unwrap();
        assert!(d.correct && p.correct, "seed {seed}");
        avg_default += d.awake_avg / 6.0;
        avg_ranked += p.awake_avg / 6.0;
    }
    assert!(
        avg_default < avg_ranked,
        "dropout phases must lower the node average: {avg_default} vs {avg_ranked}"
    );
}
