//! Churn-harness determinism: the `BENCH_churn.json` payload — spec
//! echo, locality cells, per-point epoch totals, embedded bootstrap
//! points — must be byte-identical across worker-thread counts *and*
//! engine shard counts, and a zero-delta churn run must embed a
//! bit-identical copy of the corresponding one-shot grid point (the
//! churn harness is a strict extension of the grid, not a fork of it).

use analysis::churn::{run_churn, run_churn_point, ChurnMeta, ChurnSpec};
use analysis::grid::run_point;
use analysis::{default_registry, GridJob};
use graphgen::GraphFamily;
use sleeping_congest::ScratchArena;

fn spec(threads: usize, algos: &str) -> ChurnSpec {
    ChurnSpec {
        algorithms: default_registry().resolve_list(algos).unwrap(),
        families: vec![GraphFamily::Er, GraphFamily::Tree],
        sizes: vec![48],
        rates: vec![0.0, 0.05],
        epochs: 3,
        insert_frac: 0.5,
        node_churn: 0.1,
        seeds: vec![1, 2],
        threads,
        recompute: false,
    }
}

#[test]
fn two_and_eight_thread_payloads_are_byte_identical() {
    let two = run_churn(&spec(2, "luby,vt"));
    let eight = run_churn(&spec(8, "luby,vt"));
    assert_eq!(
        two.payload_json(),
        eight.payload_json(),
        "thread count leaked into the deterministic churn payload"
    );
    let one = run_churn(&spec(1, "luby,vt"));
    assert_eq!(one.payload_json(), two.payload_json());
}

#[test]
fn shard_count_never_reaches_the_payload() {
    // `shards` is an engine-parallelism knob, not an algorithm
    // parameter: the registry canonicalizes it out of the key, and the
    // sharded engine's merge is deterministic, so `luby?shards=8` runs
    // must produce the exact bytes `luby?shards=1` runs do.
    let one = run_churn(&spec(0, "luby?shards=1"));
    let eight = run_churn(&spec(0, "luby?shards=8"));
    assert_eq!(
        one.payload_json(),
        eight.payload_json(),
        "shard count leaked into the deterministic churn payload"
    );
}

#[test]
fn zero_delta_churn_embeds_the_one_shot_grid_point() {
    // rate = 0 means the service boots and then idles: its embedded
    // bootstrap point must be bit-identical to the same coordinates
    // run through the one-shot grid harness.
    let churn_spec = ChurnSpec { rates: vec![0.0], ..spec(1, "luby,vt") };
    let mut scratch = ScratchArena::new();
    for job in churn_spec.jobs() {
        let cp = run_churn_point(&job, &churn_spec, &mut scratch);
        assert_eq!(cp.deltas, 0);
        assert_eq!(cp.woken, 0, "a delta-free epoch must wake nobody");
        let grid_job = GridJob {
            algorithm: job.algorithm.clone(),
            family: job.family,
            n: job.n,
            seed: job.seed,
        };
        let gp = run_point(&grid_job, &mut scratch);
        assert_eq!(
            cp.bootstrap.json(),
            gp.json(),
            "zero-delta churn bootstrap drifted from the grid point at {:?}",
            grid_job
        );
        // The service's final MIS is exactly the bootstrap's.
        assert_eq!(cp.mis_size, gp.mis_size);
    }
}

#[test]
fn meta_and_timing_live_only_in_the_full_document() {
    let result = run_churn(&spec(2, "luby"));
    let payload = result.payload_json();
    assert!(!payload.contains("wall_ms"));
    assert!(!payload.contains("elapsed_ns"));
    assert!(!payload.contains("recompute_ns"));
    let full = result.to_json(&ChurnMeta { threads: 2, wall_ms: 77, serve: None });
    assert!(full.contains("\"meta\": {\"threads\": 2, \"wall_ms\": 77}"));
    assert!(full.contains("\"timing\": {\"elapsed_ns\": ["));
    let stripped: String = full
        .lines()
        .filter(|l| !l.contains("\"meta\"") && !l.contains("\"timing\""))
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";
    assert_eq!(stripped, payload, "stripping meta/timing must recover the payload");
}
