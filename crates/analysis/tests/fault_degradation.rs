//! The robustness claims, measured.
//!
//! Two statistical pins on the fault model's *effect*, in the style of
//! `node_averaged.rs`: (1) message loss degrades `Awake-MIS` the way a
//! robustness surface expects — a failure fraction of exactly 0 at
//! `loss=0`, monotone non-decreasing as the loss level rises; and
//! (2) adversarial ID assignment is a real adversary — `adv_ids=worst`
//! hands `VT-MIS` the longest virtual-tree schedules in the ID space
//! and measurably inflates its seed-averaged worst-case awake
//! complexity over the random assignment the harness defaults to.

use analysis::spec::default_registry;
use graphgen::generators;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const GRAPH_SEEDS: [u64; 3] = [500, 501, 502];
const RUN_SEEDS: std::ops::Range<u64> = 4..12;

#[test]
fn awake_failure_fraction_is_monotone_in_loss() {
    let reg = default_registry();
    let levels = ["awake", "awake?loss=0.01", "awake?loss=0.05", "awake?loss=0.2"];
    let n = 96;
    let fractions: Vec<f64> = levels
        .iter()
        .map(|spec| {
            let runner = reg.resolve(spec).unwrap();
            let mut bad = 0u32;
            let mut runs = 0u32;
            for gseed in GRAPH_SEEDS {
                let mut rng = SmallRng::seed_from_u64(gseed);
                let g = generators::gnp_avg_degree(n, 8.0, &mut rng);
                for seed in RUN_SEEDS {
                    let r = runner.run(&g, seed).expect("run");
                    if !r.correct {
                        bad += 1;
                    }
                    if spec.contains("loss") {
                        assert!(r.faulted > 0, "{spec} seed {seed}: loss level dropped nothing");
                    } else {
                        assert_eq!(r.faulted, 0, "clean runs must drop nothing");
                    }
                    runs += 1;
                }
            }
            f64::from(bad) / f64::from(runs)
        })
        .collect();
    println!("awake failure fraction by loss level: {fractions:?}");

    assert_eq!(fractions[0], 0.0, "the clean anchor must never fail");
    for w in fractions.windows(2) {
        assert!(
            w[1] >= w[0],
            "failure fraction must be monotone non-decreasing in loss: {fractions:?}"
        );
    }
    assert!(
        fractions[3] > 0.0,
        "20% loss must break some Awake-MIS run: {fractions:?}"
    );
}

#[test]
fn adversarial_ids_inflate_vt_mis_worst_case_awake() {
    // VT-MIS attends its entire virtual-tree schedule, so its awake
    // complexity is the schedule length of its assigned ID — Θ(log I)
    // for an ID space [1, I]. The model allows IDs up to poly(n), and
    // that room IS the adversary's power: `adv_ids=worst` hands the n
    // nodes the longest schedules of a sparse space (I = 6144 ≫ n =
    // 64), while the harness's random default assigns a compact
    // shuffle of 1..n. The inflation is structural (log 6144 vs
    // log 64), not noise.
    let reg = default_registry();
    let random = reg.resolve("vt").unwrap();
    let worst = reg.resolve("vt?id_upper=6144&adv_ids=worst").unwrap();
    let n = 64;
    let (mut awake_random, mut awake_worst) = (0.0f64, 0.0f64);
    let mut runs = 0u32;
    for gseed in GRAPH_SEEDS {
        let mut rng = SmallRng::seed_from_u64(gseed);
        let g = generators::gnp_avg_degree(n, 8.0, &mut rng);
        for seed in RUN_SEEDS {
            let r = random.run(&g, seed).expect("random");
            let w = worst.run(&g, seed).expect("worst");
            assert!(r.correct, "random IDs must still verify (seed {seed})");
            assert!(w.correct, "adversarial IDs break schedules, not correctness (seed {seed})");
            assert!(
                w.awake_max > r.awake_max,
                "seed {seed}: adversarial {} ≤ random {}",
                w.awake_max,
                r.awake_max
            );
            awake_random += r.awake_max as f64;
            awake_worst += w.awake_max as f64;
            runs += 1;
        }
    }
    awake_random /= f64::from(runs);
    awake_worst /= f64::from(runs);
    println!("vt awake_max seed-averaged: random={awake_random:.2} worst={awake_worst:.2}");
    assert!(
        awake_worst >= awake_random * 1.5,
        "adversarial IDs must inflate worst-case awake: random={awake_random:.2} \
         worst={awake_worst:.2}"
    );

    // Within the same sparse space, `adv_ids=worst` still orders above
    // a random draw on the node-averaged measure: it selects exactly
    // the IDs with the longest schedules, so no draw can beat it.
    let sparse_random = reg.resolve("vt?id_upper=6144").unwrap();
    let mut rng = SmallRng::seed_from_u64(GRAPH_SEEDS[0]);
    let g = generators::gnp_avg_degree(n, 8.0, &mut rng);
    for seed in RUN_SEEDS {
        let r = sparse_random.run(&g, seed).expect("sparse random");
        let w = worst.run(&g, seed).expect("worst");
        assert!(
            w.awake_avg >= r.awake_avg,
            "seed {seed}: worst-schedule selection averaged {} below a random draw's {}",
            w.awake_avg,
            r.awake_avg
        );
    }
}
