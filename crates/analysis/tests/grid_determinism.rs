//! Batch-harness determinism: the `BENCH_grid.json` payload must be
//! byte-identical no matter how many worker threads ran the grid
//! (wall-clock fields live in the separate `meta` object and are
//! excluded by construction).

use analysis::grid::{run_grid, GridMeta, GridSpec};
use analysis::spec::default_registry;
use graphgen::GraphFamily;

fn spec(threads: usize) -> GridSpec {
    GridSpec {
        algorithms: default_registry().resolve_list("awake,luby,vt").unwrap(),
        families: vec![GraphFamily::Er, GraphFamily::Tree],
        sizes: vec![48, 96],
        seeds: vec![1, 2, 3, 4],
        tiers: Vec::new(),
        threads,
    }
}

#[test]
fn two_and_eight_thread_payloads_are_byte_identical() {
    let two = run_grid(&spec(2));
    let eight = run_grid(&spec(8));
    assert_eq!(
        two.payload_json(),
        eight.payload_json(),
        "thread count leaked into the deterministic payload"
    );
    // And both match a fully serial run.
    let one = run_grid(&spec(1));
    assert_eq!(one.payload_json(), two.payload_json());
}

#[test]
fn shard_counts_do_not_leak_into_the_payload() {
    // `shards=K` is intra-run parallelism inside the engine's round
    // loop. It is dropped from the runner key and must not perturb a
    // single byte of the grid payload — same contract as `threads`.
    let serial = run_grid(&spec(1));
    let sharded = run_grid(&GridSpec {
        algorithms: default_registry()
            .resolve_list("awake?shards=2,luby?shards=8,vt?shards=0")
            .unwrap(),
        ..spec(1)
    });
    assert_eq!(
        serial.payload_json(),
        sharded.payload_json(),
        "shard count leaked into the deterministic payload"
    );
}

#[test]
fn meta_carries_the_wall_clock_fields_only() {
    let result = run_grid(&spec(2));
    let payload = result.payload_json();
    let full = result.to_json(&GridMeta { threads: 2, wall_ms: 12345 });
    assert!(!payload.contains("wall_ms"));
    assert!(!payload.contains("threads"));
    assert!(full.contains("\"wall_ms\": 12345"));
    // Dropping the meta and timing lines recovers the payload byte for
    // byte — i.e. "identical modulo wall-clock fields" is checkable
    // mechanically.
    let stripped = full
        .lines()
        .filter(|l| !l.contains("\"meta\"") && !l.contains("\"timing\""))
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";
    assert_eq!(stripped, payload);
}
