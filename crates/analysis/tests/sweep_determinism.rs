//! Sweep-harness determinism: the `BENCH_sweep.json` payload — spec
//! echo, expansions, energy-priced points, Pareto-annotated cells — must
//! be byte-identical no matter how many worker threads ran the sweep,
//! exactly like the grid payload (wall-clock fields live only in the
//! separate `meta`/`timing` sections).

use analysis::sweep::{run_sweep, SweepSpec};
use analysis::{EnergyModel, GridMeta};
use graphgen::GraphFamily;

fn spec(threads: usize) -> SweepSpec {
    SweepSpec {
        specs: vec![
            "luby".to_string(),
            "na".to_string(),
            "gp-avg?balance=0..4&step=4".to_string(),
            "le?bits=4..6&step=2".to_string(),
        ],
        families: vec![GraphFamily::Er, GraphFamily::Tree],
        sizes: vec![48, 96],
        seeds: vec![1, 2, 3],
        threads,
        energy: EnergyModel::default(),
    }
}

#[test]
fn two_and_eight_thread_payloads_are_byte_identical() {
    let two = run_sweep(&spec(2)).expect("sweep");
    let eight = run_sweep(&spec(8)).expect("sweep");
    assert_eq!(
        two.payload_json(),
        eight.payload_json(),
        "thread count leaked into the deterministic sweep payload"
    );
    // And both match a fully serial run.
    let one = run_sweep(&spec(1)).expect("sweep");
    assert_eq!(one.payload_json(), two.payload_json());
}

#[test]
fn meta_carries_the_wall_clock_fields_only() {
    let result = run_sweep(&spec(2)).expect("sweep");
    let payload = result.payload_json();
    let full = result.to_json(&GridMeta { threads: 2, wall_ms: 99 });
    assert!(!payload.contains("wall_ms"));
    assert!(!payload.contains("elapsed_ns"));
    assert!(full.contains("\"wall_ms\": 99"));
    let stripped = full
        .lines()
        .filter(|l| !l.contains("\"meta\"") && !l.contains("\"timing\""))
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";
    assert_eq!(stripped, payload);
}

#[test]
fn every_cell_has_a_multi_point_frontier() {
    // The acceptance shape of the energy-frontier subsystem: with both
    // awake measures and two dials in one sweep, no single point
    // dominates a cell.
    let result = run_sweep(&spec(0)).expect("sweep");
    for cell in &result.cells {
        assert!(cell.entries.iter().all(|e| e.all_correct), "all entries must verify");
        let frontier = cell.frontier();
        assert!(
            frontier.len() >= 2,
            "{}/{}: expected a genuine trade-off, frontier = {frontier:?}",
            cell.family.key(),
            cell.n
        );
        // Dominated entries name a dominator that exists in the cell.
        for e in &cell.entries {
            if let Some(d) = &e.dominated_by {
                assert!(
                    cell.entries.iter().any(|o| o.algorithm.key() == d),
                    "dangling dominator {d}"
                );
                assert!(!e.pareto, "a dominated entry cannot be on the frontier");
            }
        }
    }
}
