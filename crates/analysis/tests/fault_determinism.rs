//! Fault-sweep determinism: the `BENCH_faults.json` payload — spec
//! echo, expansions, robustness cells, grid-format points — must be
//! byte-identical no matter how many worker threads ran the sweep.
//! Fault draws come from a stateless per-site RNG stream, so this holds
//! even when loss and crashes fire mid-run. And the `loss=0` levels
//! must reproduce the committed clean grid byte-for-byte: the clean
//! anchor of every robustness surface IS the benchmarked algorithm.

use analysis::faults::{run_faults, FaultSweepSpec};
use analysis::GridMeta;
use graphgen::GraphFamily;

fn spec(threads: usize) -> FaultSweepSpec {
    FaultSweepSpec {
        specs: vec![
            "luby?loss=0,0.05".to_string(),
            "vt?loss=0.1&crash=0.002".to_string(),
            "awake?jitter=4".to_string(),
        ],
        families: vec![GraphFamily::Er, GraphFamily::Tree],
        sizes: vec![48, 96],
        seeds: vec![1, 2, 3],
        threads,
    }
}

#[test]
fn two_and_eight_thread_payloads_are_byte_identical() {
    let two = run_faults(&spec(2)).expect("faults");
    let eight = run_faults(&spec(8)).expect("faults");
    assert_eq!(
        two.payload_json(),
        eight.payload_json(),
        "thread count leaked into the deterministic fault payload"
    );
    // And both match a fully serial run.
    let one = run_faults(&spec(1)).expect("faults");
    assert_eq!(one.payload_json(), two.payload_json());
}

#[test]
fn meta_carries_the_wall_clock_fields_only() {
    let result = run_faults(&spec(2)).expect("faults");
    let payload = result.payload_json();
    let full = result.to_json(&GridMeta { threads: 2, wall_ms: 99 });
    assert!(!payload.contains("wall_ms"));
    assert!(!payload.contains("elapsed_ns"));
    assert!(full.contains("\"wall_ms\": 99"));
    let stripped = full
        .lines()
        .filter(|l| !l.contains("\"meta\"") && !l.contains("\"timing\""))
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";
    assert_eq!(stripped, payload);
}

#[test]
fn clean_levels_reproduce_the_committed_grid() {
    // `luby?loss=0` collapses to the clean `luby` runner, so its points
    // over the committed grid's axes must serialize to the exact lines
    // `BENCH_grid.json` pins — the acceptance criterion for treating
    // fault knobs as parameters of the same benchmarked algorithm.
    let committed = include_str!("../../../BENCH_grid.json");
    let result = run_faults(&FaultSweepSpec {
        specs: vec!["luby?loss=0,0.05".to_string()],
        families: vec![GraphFamily::Er],
        sizes: vec![1000],
        seeds: (1..=8).collect(),
        threads: 0,
    })
    .expect("faults");
    let clean: Vec<_> =
        result.points.iter().filter(|p| p.job.algorithm.key() == "luby").collect();
    assert_eq!(clean.len(), 8, "one clean point per committed seed");
    for p in clean {
        assert!(
            committed.contains(&format!("    {}", p.json())),
            "clean-level point not pinned by BENCH_grid.json: {}",
            p.json()
        );
    }
    // The lossy level genuinely diverges from those same cells.
    let lossy: Vec<_> =
        result.points.iter().filter(|p| p.job.algorithm.key() != "luby").collect();
    assert!(lossy.iter().all(|p| p.faulted > 0), "5% loss at n=1000 must drop messages");
    assert!(
        lossy.iter().any(|p| !committed.contains(&format!("    {}", p.json()))),
        "lossy points must not collide with committed clean points"
    );
}
