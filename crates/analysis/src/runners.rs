//! Unified algorithm runners: one call = one algorithm on one graph,
//! returning normalized measurements.

use awake_mis_core::awake_mis::AwakeMisMsg;
use awake_mis_core::ldt_mis::{LdtMis, LdtMisMsg, LdtMisParams};
use awake_mis_core::luby::LubyMsg;
use awake_mis_core::{
    AwakeMis, AwakeMisConfig, LdtStrategy, Luby, MisMsg, MisState, NaiveGreedy, VtMis,
};
use graphgen::Graph;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sleeping_congest::{Metrics, SimConfig, SimError, SimScratch, Simulator, Standalone};

/// The MIS algorithms the harness can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// `Awake-MIS` (Theorem 13).
    AwakeMis,
    /// `Awake-MIS` with round-efficient LDTs (Corollary 14).
    AwakeMisRound,
    /// Luby's algorithm (always awake).
    Luby,
    /// `VT-MIS` with a random ID permutation.
    VtMis,
    /// Naive distributed greedy (always awake, `I` rounds).
    NaiveGreedy,
    /// `LDT-MIS` on the whole graph (one component = one pipeline).
    LdtMis,
}

impl Algorithm {
    /// Display name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::AwakeMis => "Awake-MIS",
            Algorithm::AwakeMisRound => "Awake-MIS-Round",
            Algorithm::Luby => "Luby",
            Algorithm::VtMis => "VT-MIS",
            Algorithm::NaiveGreedy => "Naive-Greedy",
            Algorithm::LdtMis => "LDT-MIS",
        }
    }

    /// All algorithms, in comparison-table order.
    pub fn all() -> [Algorithm; 6] {
        [
            Algorithm::AwakeMis,
            Algorithm::AwakeMisRound,
            Algorithm::LdtMis,
            Algorithm::VtMis,
            Algorithm::NaiveGreedy,
            Algorithm::Luby,
        ]
    }

    /// Parses a CLI-style algorithm key (`awake`, `awake-round`, `ldt`,
    /// `vt`, `naive`, `luby`; the display names are accepted too,
    /// case-insensitively).
    pub fn parse(s: &str) -> Option<Algorithm> {
        match s.to_ascii_lowercase().as_str() {
            "awake" | "awake-mis" => Some(Algorithm::AwakeMis),
            "awake-round" | "awake-mis-round" => Some(Algorithm::AwakeMisRound),
            "ldt" | "ldt-mis" => Some(Algorithm::LdtMis),
            "vt" | "vt-mis" => Some(Algorithm::VtMis),
            "naive" | "naive-greedy" => Some(Algorithm::NaiveGreedy),
            "luby" => Some(Algorithm::Luby),
            _ => None,
        }
    }

    /// CLI key accepted by [`parse`](Algorithm::parse).
    pub fn key(self) -> &'static str {
        match self {
            Algorithm::AwakeMis => "awake",
            Algorithm::AwakeMisRound => "awake-round",
            Algorithm::Luby => "luby",
            Algorithm::VtMis => "vt",
            Algorithm::NaiveGreedy => "naive",
            Algorithm::LdtMis => "ldt",
        }
    }
}

/// Reusable simulator scratch for every algorithm the harness runs.
///
/// One `AlgoScratch` per worker thread lets a whole grid of runs share
/// mailbox / RNG-table / wake-bucket allocations (see
/// [`SimScratch`]). Message types differ per algorithm, so the scratch
/// keeps one typed arena per protocol family.
#[derive(Debug, Default)]
pub struct AlgoScratch {
    awake: SimScratch<AwakeMisMsg>,
    luby: SimScratch<LubyMsg>,
    /// Shared by `VT-MIS` and `Naive-Greedy` (both exchange [`MisMsg`]).
    mis: SimScratch<MisMsg>,
    ldt: SimScratch<LdtMisMsg>,
}

impl AlgoScratch {
    /// A scratch with no buffers allocated yet.
    pub fn new() -> AlgoScratch {
        AlgoScratch::default()
    }
}

/// Normalized result of one run.
#[derive(Debug, Clone)]
pub struct AlgoResult {
    /// Which algorithm ran.
    pub algorithm: Algorithm,
    /// Worst-case awake complexity (`max_v A_v`).
    pub awake_max: u64,
    /// Node-averaged awake complexity.
    pub awake_avg: f64,
    /// Round complexity (sleeping + awake).
    pub rounds: u64,
    /// Total messages sent.
    pub messages: u64,
    /// Largest message in bits.
    pub max_message_bits: usize,
    /// Size of the computed MIS.
    pub mis_size: usize,
    /// Whether the output verified as a correct MIS.
    pub correct: bool,
    /// Number of nodes that reported a Monte Carlo failure.
    pub failures: usize,
    /// Full engine metrics.
    pub metrics: Metrics,
    /// Per-node final states (for re-verification by callers).
    pub states: Vec<MisState>,
}

/// Distinct random IDs in `[1, upper]`.
fn draw_distinct_ids(n: usize, upper: u64, rng: &mut impl Rng) -> Vec<u64> {
    let mut seen = std::collections::HashSet::with_capacity(n * 2);
    let mut ids = Vec::with_capacity(n);
    while ids.len() < n {
        let id = rng.gen_range(1..=upper);
        if seen.insert(id) {
            ids.push(id);
        }
    }
    ids
}

fn finish(
    algorithm: Algorithm,
    g: &Graph,
    states: Vec<MisState>,
    failures: usize,
    metrics: Metrics,
) -> AlgoResult {
    let correct = failures == 0 && awake_mis_core::check_mis(g, &states).is_ok();
    let mis_size = states.iter().filter(|&&s| s == MisState::InMis).count();
    AlgoResult {
        algorithm,
        awake_max: metrics.awake_complexity(),
        awake_avg: metrics.awake_average(),
        rounds: metrics.round_complexity(),
        messages: metrics.messages_sent,
        max_message_bits: metrics.max_message_bits,
        mis_size,
        correct,
        failures,
        metrics,
        states,
    }
}

/// Runs `algorithm` on `g` with the given seed, allocating fresh
/// simulator working memory.
///
/// # Errors
///
/// Propagates simulator errors (round-limit overflows and the like);
/// algorithmic Monte Carlo failures are reported in
/// [`AlgoResult::failures`], not as errors.
pub fn run_algorithm(algorithm: Algorithm, g: &Graph, seed: u64) -> Result<AlgoResult, SimError> {
    run_algorithm_with_scratch(algorithm, g, seed, &mut AlgoScratch::new())
}

/// Runs `algorithm` on `g` with the given seed, reusing `scratch`'s
/// buffers. Results are identical to [`run_algorithm`]; this variant
/// exists so grid workers amortize allocations across many runs.
///
/// # Errors
///
/// Same as [`run_algorithm`].
pub fn run_algorithm_with_scratch(
    algorithm: Algorithm,
    g: &Graph,
    seed: u64,
    scratch: &mut AlgoScratch,
) -> Result<AlgoResult, SimError> {
    let n = g.n();
    let cfg = SimConfig::seeded(seed);
    match algorithm {
        Algorithm::AwakeMis | Algorithm::AwakeMisRound => {
            let acfg = if algorithm == Algorithm::AwakeMis {
                AwakeMisConfig::default()
            } else {
                AwakeMisConfig::round_efficient()
            };
            let nodes = (0..n).map(|_| AwakeMis::new(acfg)).collect();
            let report = Simulator::new(g.clone(), nodes, cfg).run_with_scratch(&mut scratch.awake)?;
            let failures = report.outputs.iter().filter(|o| o.failed).count();
            let states = report.outputs.iter().map(|o| o.state).collect();
            Ok(finish(algorithm, g, states, failures, report.metrics))
        }
        Algorithm::Luby => {
            let nodes = (0..n).map(|_| Luby::new()).collect();
            let report = Simulator::new(g.clone(), nodes, cfg).run_with_scratch(&mut scratch.luby)?;
            Ok(finish(algorithm, g, report.outputs, 0, report.metrics))
        }
        Algorithm::VtMis => {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x77);
            let mut ids: Vec<u64> = (1..=n as u64).collect();
            ids.shuffle(&mut rng);
            let nodes =
                (0..n).map(|v| Standalone::new(VtMis::new(ids[v], n as u64, None))).collect();
            let report = Simulator::new(g.clone(), nodes, cfg).run_with_scratch(&mut scratch.mis)?;
            Ok(finish(algorithm, g, report.outputs, 0, report.metrics))
        }
        Algorithm::NaiveGreedy => {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x77);
            let mut ids: Vec<u64> = (1..=n as u64).collect();
            ids.shuffle(&mut rng);
            let nodes = (0..n).map(|v| NaiveGreedy::new(ids[v], n as u64)).collect();
            let report = Simulator::new(g.clone(), nodes, cfg).run_with_scratch(&mut scratch.mis)?;
            Ok(finish(algorithm, g, report.outputs, 0, report.metrics))
        }
        Algorithm::LdtMis => {
            let id_upper = (n.max(4) as u64).pow(3).max(1 << 24);
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x77);
            let ids = draw_distinct_ids(n, id_upper, &mut rng);
            let nodes = (0..n)
                .map(|v| {
                    Standalone::new(LdtMis::new(LdtMisParams {
                        my_id: ids[v],
                        id_upper,
                        k: n.max(1) as u32,
                        strategy: LdtStrategy::Awake,
                    }))
                })
                .collect();
            let report = Simulator::new(g.clone(), nodes, cfg).run_with_scratch(&mut scratch.ldt)?;
            let failures = report.outputs.iter().filter(|o| o.failed).count();
            let states = report.outputs.iter().map(|o| o.state).collect();
            Ok(finish(algorithm, g, states, failures, report.metrics))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::generators;

    #[test]
    fn every_algorithm_runs_and_verifies() {
        let g = generators::gnp(60, 0.1, &mut SmallRng::seed_from_u64(1));
        for alg in Algorithm::all() {
            let r = run_algorithm(alg, &g, 5).expect("run");
            assert!(r.correct, "{} produced an invalid MIS", alg.name());
            assert!(r.mis_size > 0);
            assert!(r.awake_max > 0);
            assert!(r.awake_avg <= r.awake_max as f64);
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        // One dirty scratch reused across all algorithms and two graphs
        // must reproduce the fresh-allocation results exactly.
        let mut scratch = AlgoScratch::new();
        for (n, p, seed) in [(40usize, 0.15, 3u64), (70, 0.08, 9)] {
            let g = generators::gnp(n, p, &mut SmallRng::seed_from_u64(seed));
            for alg in Algorithm::all() {
                let fresh = run_algorithm(alg, &g, seed).expect("fresh");
                let reused =
                    run_algorithm_with_scratch(alg, &g, seed, &mut scratch).expect("reused");
                assert_eq!(fresh.states, reused.states, "{} diverged", alg.name());
                assert_eq!(fresh.awake_max, reused.awake_max);
                assert_eq!(fresh.rounds, reused.rounds);
                assert_eq!(fresh.messages, reused.messages);
                assert_eq!(fresh.metrics.active_rounds, reused.metrics.active_rounds);
            }
        }
    }

    #[test]
    fn parse_round_trips() {
        for alg in Algorithm::all() {
            assert_eq!(Algorithm::parse(alg.key()), Some(alg));
            assert_eq!(Algorithm::parse(alg.name()), Some(alg));
        }
        assert_eq!(Algorithm::parse("quantum"), None);
    }

    #[test]
    fn awake_ordering_holds_on_midsize_graph() {
        // The headline ordering at moderate n: VT-MIS ≤ O(log n) <
        // Naive = n awake; Awake-MIS ≪ its own round complexity.
        let g = generators::gnp(128, 0.08, &mut SmallRng::seed_from_u64(2));
        let vt = run_algorithm(Algorithm::VtMis, &g, 3).unwrap();
        let naive = run_algorithm(Algorithm::NaiveGreedy, &g, 3).unwrap();
        assert!(vt.awake_max * 4 < naive.awake_max);
        let am = run_algorithm(Algorithm::AwakeMis, &g, 3).unwrap();
        assert!(am.awake_max * 100 < am.rounds);
    }
}
