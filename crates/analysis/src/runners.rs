//! Unified algorithm runners: one call = one algorithm on one graph,
//! returning normalized measurements.

use awake_mis_core::ldt_mis::{LdtMis, LdtMisParams};
use awake_mis_core::{AwakeMis, AwakeMisConfig, LdtStrategy, Luby, MisState, NaiveGreedy, VtMis};
use graphgen::Graph;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sleeping_congest::{Metrics, SimConfig, SimError, Simulator, Standalone};

/// The MIS algorithms the harness can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// `Awake-MIS` (Theorem 13).
    AwakeMis,
    /// `Awake-MIS` with round-efficient LDTs (Corollary 14).
    AwakeMisRound,
    /// Luby's algorithm (always awake).
    Luby,
    /// `VT-MIS` with a random ID permutation.
    VtMis,
    /// Naive distributed greedy (always awake, `I` rounds).
    NaiveGreedy,
    /// `LDT-MIS` on the whole graph (one component = one pipeline).
    LdtMis,
}

impl Algorithm {
    /// Display name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::AwakeMis => "Awake-MIS",
            Algorithm::AwakeMisRound => "Awake-MIS-Round",
            Algorithm::Luby => "Luby",
            Algorithm::VtMis => "VT-MIS",
            Algorithm::NaiveGreedy => "Naive-Greedy",
            Algorithm::LdtMis => "LDT-MIS",
        }
    }

    /// All algorithms, in comparison-table order.
    pub fn all() -> [Algorithm; 6] {
        [
            Algorithm::AwakeMis,
            Algorithm::AwakeMisRound,
            Algorithm::LdtMis,
            Algorithm::VtMis,
            Algorithm::NaiveGreedy,
            Algorithm::Luby,
        ]
    }
}

/// Normalized result of one run.
#[derive(Debug, Clone)]
pub struct AlgoResult {
    /// Which algorithm ran.
    pub algorithm: Algorithm,
    /// Worst-case awake complexity (`max_v A_v`).
    pub awake_max: u64,
    /// Node-averaged awake complexity.
    pub awake_avg: f64,
    /// Round complexity (sleeping + awake).
    pub rounds: u64,
    /// Total messages sent.
    pub messages: u64,
    /// Largest message in bits.
    pub max_message_bits: usize,
    /// Size of the computed MIS.
    pub mis_size: usize,
    /// Whether the output verified as a correct MIS.
    pub correct: bool,
    /// Number of nodes that reported a Monte Carlo failure.
    pub failures: usize,
    /// Full engine metrics.
    pub metrics: Metrics,
    /// Per-node final states (for re-verification by callers).
    pub states: Vec<MisState>,
}

/// Distinct random IDs in `[1, upper]`.
fn draw_distinct_ids(n: usize, upper: u64, rng: &mut impl Rng) -> Vec<u64> {
    let mut seen = std::collections::HashSet::with_capacity(n * 2);
    let mut ids = Vec::with_capacity(n);
    while ids.len() < n {
        let id = rng.gen_range(1..=upper);
        if seen.insert(id) {
            ids.push(id);
        }
    }
    ids
}

fn finish(
    algorithm: Algorithm,
    g: &Graph,
    states: Vec<MisState>,
    failures: usize,
    metrics: Metrics,
) -> AlgoResult {
    let correct = failures == 0 && awake_mis_core::check_mis(g, &states).is_ok();
    let mis_size = states.iter().filter(|&&s| s == MisState::InMis).count();
    AlgoResult {
        algorithm,
        awake_max: metrics.awake_complexity(),
        awake_avg: metrics.awake_average(),
        rounds: metrics.round_complexity(),
        messages: metrics.messages_sent,
        max_message_bits: metrics.max_message_bits,
        mis_size,
        correct,
        failures,
        metrics,
        states,
    }
}

/// Runs `algorithm` on `g` with the given seed.
///
/// # Errors
///
/// Propagates simulator errors (round-limit overflows and the like);
/// algorithmic Monte Carlo failures are reported in
/// [`AlgoResult::failures`], not as errors.
pub fn run_algorithm(algorithm: Algorithm, g: &Graph, seed: u64) -> Result<AlgoResult, SimError> {
    let n = g.n();
    let cfg = SimConfig::seeded(seed);
    match algorithm {
        Algorithm::AwakeMis | Algorithm::AwakeMisRound => {
            let acfg = if algorithm == Algorithm::AwakeMis {
                AwakeMisConfig::default()
            } else {
                AwakeMisConfig::round_efficient()
            };
            let nodes = (0..n).map(|_| AwakeMis::new(acfg)).collect();
            let report = Simulator::new(g.clone(), nodes, cfg).run()?;
            let failures = report.outputs.iter().filter(|o| o.failed).count();
            let states = report.outputs.iter().map(|o| o.state).collect();
            Ok(finish(algorithm, g, states, failures, report.metrics))
        }
        Algorithm::Luby => {
            let nodes = (0..n).map(|_| Luby::new()).collect();
            let report = Simulator::new(g.clone(), nodes, cfg).run()?;
            Ok(finish(algorithm, g, report.outputs, 0, report.metrics))
        }
        Algorithm::VtMis => {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x77);
            let mut ids: Vec<u64> = (1..=n as u64).collect();
            ids.shuffle(&mut rng);
            let nodes =
                (0..n).map(|v| Standalone::new(VtMis::new(ids[v], n as u64, None))).collect();
            let report = Simulator::new(g.clone(), nodes, cfg).run()?;
            Ok(finish(algorithm, g, report.outputs, 0, report.metrics))
        }
        Algorithm::NaiveGreedy => {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x77);
            let mut ids: Vec<u64> = (1..=n as u64).collect();
            ids.shuffle(&mut rng);
            let nodes = (0..n).map(|v| NaiveGreedy::new(ids[v], n as u64)).collect();
            let report = Simulator::new(g.clone(), nodes, cfg).run()?;
            Ok(finish(algorithm, g, report.outputs, 0, report.metrics))
        }
        Algorithm::LdtMis => {
            let id_upper = (n.max(4) as u64).pow(3).max(1 << 24);
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x77);
            let ids = draw_distinct_ids(n, id_upper, &mut rng);
            let nodes = (0..n)
                .map(|v| {
                    Standalone::new(LdtMis::new(LdtMisParams {
                        my_id: ids[v],
                        id_upper,
                        k: n.max(1) as u32,
                        strategy: LdtStrategy::Awake,
                    }))
                })
                .collect();
            let report = Simulator::new(g.clone(), nodes, cfg).run()?;
            let failures = report.outputs.iter().filter(|o| o.failed).count();
            let states = report.outputs.iter().map(|o| o.state).collect();
            Ok(finish(algorithm, g, states, failures, report.metrics))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::generators;

    #[test]
    fn every_algorithm_runs_and_verifies() {
        let g = generators::gnp(60, 0.1, &mut SmallRng::seed_from_u64(1));
        for alg in Algorithm::all() {
            let r = run_algorithm(alg, &g, 5).expect("run");
            assert!(r.correct, "{} produced an invalid MIS", alg.name());
            assert!(r.mis_size > 0);
            assert!(r.awake_max > 0);
            assert!(r.awake_avg <= r.awake_max as f64);
        }
    }

    #[test]
    fn awake_ordering_holds_on_midsize_graph() {
        // The headline ordering at moderate n: VT-MIS ≤ O(log n) <
        // Naive = n awake; Awake-MIS ≪ its own round complexity.
        let g = generators::gnp(128, 0.08, &mut SmallRng::seed_from_u64(2));
        let vt = run_algorithm(Algorithm::VtMis, &g, 3).unwrap();
        let naive = run_algorithm(Algorithm::NaiveGreedy, &g, 3).unwrap();
        assert!(vt.awake_max * 4 < naive.awake_max);
        let am = run_algorithm(Algorithm::AwakeMis, &g, 3).unwrap();
        assert!(am.awake_max * 100 < am.rounds);
    }
}
