//! Built-in algorithm runners.
//!
//! The executable form of every algorithm in the comparison table lives
//! here as a [`DynRunner`](crate::spec::DynRunner) implementation,
//! registered with the [`Registry`](crate::spec::Registry) under its
//! CLI key (see [`register_builtins`]). Parameterized variants are
//! specs, not new code: `awake?round_efficient=true`,
//! `ldt?strategy=round`, `vt?id_upper=1000000`, `na?stride=8`,
//! `gp-avg?balance=0` all resolve to configured instances of the
//! runners below.
//!
//! Three families of measures are covered: the paper's worst-case awake
//! complexity (`awake`, `awake-round`, `ldt`, `vt`, `naive`, `luby`),
//! the *node-averaged* measure of the related sleeping-model work (`na`,
//! `gp-avg`) — see [`awake_mis_core::na_mis`] and
//! [`awake_mis_core::avg_mis`] — and the explicit time/energy trade-off
//! (`le`, [`awake_mis_core::low_energy_mis`]), whose `bits` parameter is
//! the flagship axis of the [`crate::sweep`] energy-frontier harness.
//!
//! The `Algorithm` enum and the `run_algorithm(_with_scratch)` shims
//! that used to live here were deprecated in favor of the registry and
//! have been removed; resolve a [`RunnerHandle`] instead.

use crate::spec::{AlgorithmSpec, DynRunner, Registry, RunnerHandle, SpecError};
use awake_mis_core::ldt_mis::{LdtMis, LdtMisParams};
use awake_mis_core::{
    AvgMis, AvgMisConfig, AwakeMis, AwakeMisConfig, LdtStrategy, LeMis, LeMisConfig, Luby,
    MisState, NaMis, NaMisConfig, NaiveGreedy, VtMis, LE_MAX_BITS,
};
use graphgen::Graph;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sleeping_congest::{Metrics, ScratchArena, SimConfig, SimError, Simulator, Standalone};

/// Normalized result of one run.
#[derive(Debug, Clone)]
pub struct AlgoResult {
    /// Display name of the algorithm that ran (paper terminology).
    pub algorithm: String,
    /// Canonical spec key of the algorithm that ran (`"awake"`,
    /// `"ldt?strategy=round"`, …).
    pub key: String,
    /// Worst-case awake complexity (`max_v A_v`).
    pub awake_max: u64,
    /// Node-averaged awake complexity.
    pub awake_avg: f64,
    /// Round complexity (sleeping + awake).
    pub rounds: u64,
    /// Total messages sent.
    pub messages: u64,
    /// Largest message in bits.
    pub max_message_bits: usize,
    /// Size of the computed MIS.
    pub mis_size: usize,
    /// Whether the output verified as a correct MIS.
    pub correct: bool,
    /// Number of nodes that reported a Monte Carlo failure.
    pub failures: usize,
    /// Full engine metrics (per-node awake counts live here; see
    /// [`Metrics::awake_distribution`]).
    pub metrics: Metrics,
    /// Per-node final states (for re-verification by callers).
    pub states: Vec<MisState>,
}

impl AlgoResult {
    /// Builds a normalized result from a finished run: verifies the
    /// states against `g`, counts the MIS, and copies the headline
    /// numbers out of `metrics`. This is the constructor custom
    /// [`DynRunner`]s should use.
    pub fn from_states(
        name: impl Into<String>,
        key: impl Into<String>,
        g: &Graph,
        states: Vec<MisState>,
        failures: usize,
        metrics: Metrics,
    ) -> AlgoResult {
        let correct = failures == 0 && awake_mis_core::check_mis(g, &states).is_ok();
        let mis_size = states.iter().filter(|&&s| s == MisState::InMis).count();
        AlgoResult {
            algorithm: name.into(),
            key: key.into(),
            awake_max: metrics.awake_complexity(),
            awake_avg: metrics.awake_average(),
            rounds: metrics.round_complexity(),
            messages: metrics.messages_sent,
            max_message_bits: metrics.max_message_bits,
            mis_size,
            correct,
            failures,
            metrics,
            states,
        }
    }
}

/// Distinct random IDs in `[1, upper]`.
fn draw_distinct_ids(n: usize, upper: u64, rng: &mut impl Rng) -> Vec<u64> {
    let mut seen = std::collections::HashSet::with_capacity(n * 2);
    let mut ids = Vec::with_capacity(n);
    while ids.len() < n {
        let id = rng.gen_range(1..=upper);
        if seen.insert(id) {
            ids.push(id);
        }
    }
    ids
}

// ---------------------------------------------------------------------------
// Built-in runners
// ---------------------------------------------------------------------------

/// Reads an optional `strategy=awake|round` parameter.
fn read_strategy(
    p: &mut crate::spec::ParamReader<'_>,
) -> Result<Option<LdtStrategy>, SpecError> {
    match p.str("strategy") {
        None => Ok(None),
        Some(s) => match s.to_ascii_lowercase().as_str() {
            "awake" => Ok(Some(LdtStrategy::Awake)),
            "round" => Ok(Some(LdtStrategy::Round)),
            other => Err(SpecError::BadValue {
                param: "strategy".to_string(),
                value: other.to_string(),
                expected: "awake or round".to_string(),
            }),
        },
    }
}

/// `Awake-MIS` family: Theorem 13 by default, Corollary 14 via
/// `strategy=round` / `round_efficient=true`, plus every
/// [`AwakeMisConfig`] knob as a spec parameter.
struct AwakeRunner {
    name: &'static str,
    key: String,
    cfg: AwakeMisConfig,
}

impl AwakeRunner {
    fn from_spec(spec: &AlgorithmSpec, round_default: bool) -> Result<RunnerHandle, SpecError> {
        let mut cfg = if round_default {
            AwakeMisConfig::round_efficient()
        } else {
            AwakeMisConfig::default()
        };
        let mut p = spec.reader();
        let strategy = read_strategy(&mut p)?;
        let round_efficient = p.bool("round_efficient")?;
        // `round_efficient` is sugar for `strategy`; asking for both is
        // ambiguous, so it is rejected rather than resolved by order.
        match (strategy, round_efficient) {
            (Some(_), Some(_)) => {
                return Err(SpecError::BadValue {
                    param: "round_efficient".to_string(),
                    value: spec.canonical(),
                    expected: "either strategy= or round_efficient=, not both".to_string(),
                })
            }
            (Some(s), None) => cfg.strategy = s,
            (None, Some(b)) => {
                cfg.strategy = if b { LdtStrategy::Round } else { LdtStrategy::Awake }
            }
            (None, None) => {}
        }
        if let Some(v) = p.f64("delta_factor")? {
            cfg.delta_factor = v;
        }
        if let Some(v) = p.f64("comp_factor")? {
            cfg.comp_factor = v;
        }
        if let Some(v) = p.f64("ell_density")? {
            cfg.ell_density = v;
        }
        if let Some(b) = p.bool("always_awake_comm")? {
            cfg.always_awake_comm = b;
        }
        if let Some(b) = p.bool("uniform_batches")? {
            cfg.uniform_batches = b;
        }
        p.finish()?;
        let name = match cfg.strategy {
            LdtStrategy::Awake => "Awake-MIS",
            LdtStrategy::Round => "Awake-MIS-Round",
        };
        Ok(RunnerHandle::new(AwakeRunner { name, key: spec.canonical(), cfg }))
    }
}

impl DynRunner for AwakeRunner {
    fn name(&self) -> &str {
        self.name
    }

    fn key(&self) -> &str {
        &self.key
    }

    fn run_on(
        &self,
        g: &Graph,
        seed: u64,
        scratch: &mut ScratchArena,
    ) -> Result<AlgoResult, SimError> {
        let nodes = (0..g.n()).map(|_| AwakeMis::new(self.cfg)).collect();
        let report = Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run_in(scratch)?;
        let failures = report.outputs.iter().filter(|o| o.failed).count();
        let states = report.outputs.iter().map(|o| o.state).collect();
        Ok(AlgoResult::from_states(self.name, &self.key, g, states, failures, report.metrics))
    }
}

/// Luby's classical algorithm (always awake); takes no parameters.
struct LubyRunner {
    key: String,
}

impl LubyRunner {
    fn from_spec(spec: &AlgorithmSpec) -> Result<RunnerHandle, SpecError> {
        spec.reader().finish()?;
        Ok(RunnerHandle::new(LubyRunner { key: spec.canonical() }))
    }
}

impl DynRunner for LubyRunner {
    fn name(&self) -> &str {
        "Luby"
    }

    fn key(&self) -> &str {
        &self.key
    }

    fn run_on(
        &self,
        g: &Graph,
        seed: u64,
        scratch: &mut ScratchArena,
    ) -> Result<AlgoResult, SimError> {
        let nodes = (0..g.n()).map(|_| Luby::new()).collect();
        let report = Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run_in(scratch)?;
        Ok(AlgoResult::from_states("Luby", &self.key, g, report.outputs, 0, report.metrics))
    }
}

/// `NA-MIS` (Chatterjee–Gmyr–Pandurangan, arXiv:2006.07449): `O(1)`
/// *node-averaged* awake complexity via immediate dropout. Parameters:
/// `stride=R` spaces the compete/resolve phases `R` rounds apart
/// (default 2 = back to back) without changing any awake count.
struct NaRunner {
    key: String,
    cfg: NaMisConfig,
}

impl NaRunner {
    fn from_spec(spec: &AlgorithmSpec) -> Result<RunnerHandle, SpecError> {
        let mut cfg = NaMisConfig::default();
        let mut p = spec.reader();
        if let Some(v) = p.u64("stride")? {
            if v < 2 {
                return Err(SpecError::BadValue {
                    param: "stride".to_string(),
                    value: v.to_string(),
                    expected: "an integer ≥ 2 (a phase spans two rounds)".to_string(),
                });
            }
            cfg.stride = v;
        }
        p.finish()?;
        Ok(RunnerHandle::new(NaRunner { key: spec.canonical(), cfg }))
    }
}

impl DynRunner for NaRunner {
    fn name(&self) -> &str {
        "NA-MIS"
    }

    fn key(&self) -> &str {
        &self.key
    }

    fn run_on(
        &self,
        g: &Graph,
        seed: u64,
        scratch: &mut ScratchArena,
    ) -> Result<AlgoResult, SimError> {
        let nodes = (0..g.n()).map(|_| NaMis::new(self.cfg)).collect();
        let report = Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run_in(scratch)?;
        Ok(AlgoResult::from_states("NA-MIS", &self.key, g, report.outputs, 0, report.metrics))
    }
}

/// `GP-Avg-MIS` (Ghaffari–Portmann, arXiv:2305.06120): dropout phases
/// followed by a deterministically-capped ranked schedule. The
/// `balance=K` parameter (default 3) sets the number of dropout phases
/// — the dial between node-averaged and worst-case awake cost.
struct AvgRunner {
    key: String,
    cfg: AvgMisConfig,
}

impl AvgRunner {
    fn from_spec(spec: &AlgorithmSpec) -> Result<RunnerHandle, SpecError> {
        let mut cfg = AvgMisConfig::default();
        let mut p = spec.reader();
        if let Some(v) = p.u64("balance")? {
            cfg.balance = v;
        }
        p.finish()?;
        Ok(RunnerHandle::new(AvgRunner { key: spec.canonical(), cfg }))
    }
}

impl DynRunner for AvgRunner {
    fn name(&self) -> &str {
        "GP-Avg-MIS"
    }

    fn key(&self) -> &str {
        &self.key
    }

    fn run_on(
        &self,
        g: &Graph,
        seed: u64,
        scratch: &mut ScratchArena,
    ) -> Result<AlgoResult, SimError> {
        let nodes = (0..g.n()).map(|_| AvgMis::new(self.cfg)).collect();
        let report = Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run_in(scratch)?;
        // An adjacent rank collision is a Monte Carlo failure (module
        // docs of `awake_mis_core::avg_mis`), reported like Awake-MIS's.
        let failures = report.outputs.iter().filter(|o| o.failed).count();
        let states = report.outputs.iter().map(|o| o.state).collect();
        Ok(AlgoResult::from_states("GP-Avg-MIS", &self.key, g, states, failures, report.metrics))
    }
}

/// `LE-MIS` (Ghaffari–Portmann, arXiv:2305.11639): the explicit
/// time/energy trade-off — epoch-ranked schedules over a `2^bits` rank
/// space. `bits=B` is the dial (tiny = time-optimal but energy-hungry,
/// moderate = energy-optimal, the large tail dominated on both — see
/// `awake_mis_core::low_energy_mis`); `max_epochs=E` bounds the Monte
/// Carlo retries.
struct LeRunner {
    key: String,
    cfg: LeMisConfig,
}

impl LeRunner {
    fn from_spec(spec: &AlgorithmSpec) -> Result<RunnerHandle, SpecError> {
        let mut cfg = LeMisConfig::default();
        let mut p = spec.reader();
        if let Some(v) = p.u64("bits")? {
            if v < 1 || v > u64::from(LE_MAX_BITS) {
                return Err(SpecError::BadValue {
                    param: "bits".to_string(),
                    value: v.to_string(),
                    expected: format!("an integer in [1, {LE_MAX_BITS}]"),
                });
            }
            cfg.bits = v as u32;
        }
        if let Some(v) = p.u64("max_epochs")? {
            if v == 0 {
                return Err(SpecError::BadValue {
                    param: "max_epochs".to_string(),
                    value: v.to_string(),
                    expected: "a positive epoch budget".to_string(),
                });
            }
            cfg.max_epochs = v;
        }
        p.finish()?;
        Ok(RunnerHandle::new(LeRunner { key: spec.canonical(), cfg }))
    }
}

impl DynRunner for LeRunner {
    fn name(&self) -> &str {
        "LE-MIS"
    }

    fn key(&self) -> &str {
        &self.key
    }

    fn run_on(
        &self,
        g: &Graph,
        seed: u64,
        scratch: &mut ScratchArena,
    ) -> Result<AlgoResult, SimError> {
        let nodes = (0..g.n()).map(|_| LeMis::new(self.cfg)).collect();
        let report = Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run_in(scratch)?;
        // Epoch-budget exhaustion is a Monte Carlo failure (module docs
        // of `awake_mis_core::low_energy_mis`), reported like Awake-MIS's.
        let failures = report.outputs.iter().filter(|o| o.failed).count();
        let states = report.outputs.iter().map(|o| o.state).collect();
        Ok(AlgoResult::from_states("LE-MIS", &self.key, g, states, failures, report.metrics))
    }
}

/// `VT-MIS`: random ID permutation over `[1, n]` by default; the
/// `id_upper=U` parameter sweeps the ID space instead (distinct random
/// IDs in `[1, max(U, n)]`, so awake complexity scales with `log U`).
struct VtRunner {
    key: String,
    id_upper: Option<u64>,
}

impl VtRunner {
    fn from_spec(spec: &AlgorithmSpec) -> Result<RunnerHandle, SpecError> {
        let mut p = spec.reader();
        let id_upper = p.u64("id_upper")?;
        p.finish()?;
        Ok(RunnerHandle::new(VtRunner { key: spec.canonical(), id_upper }))
    }
}

impl DynRunner for VtRunner {
    fn name(&self) -> &str {
        "VT-MIS"
    }

    fn key(&self) -> &str {
        &self.key
    }

    fn run_on(
        &self,
        g: &Graph,
        seed: u64,
        scratch: &mut ScratchArena,
    ) -> Result<AlgoResult, SimError> {
        let n = g.n();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x77);
        let (ids, i_upper) = match self.id_upper {
            None => {
                let mut ids: Vec<u64> = (1..=n as u64).collect();
                ids.shuffle(&mut rng);
                (ids, n as u64)
            }
            Some(u) => {
                let upper = u.max(n as u64);
                (draw_distinct_ids(n, upper, &mut rng), upper)
            }
        };
        let nodes =
            (0..n).map(|v| Standalone::new(VtMis::new(ids[v], i_upper, None))).collect();
        let report = Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run_in(scratch)?;
        Ok(AlgoResult::from_states("VT-MIS", &self.key, g, report.outputs, 0, report.metrics))
    }
}

/// Naive distributed greedy baseline; takes no parameters.
struct NaiveRunner {
    key: String,
}

impl NaiveRunner {
    fn from_spec(spec: &AlgorithmSpec) -> Result<RunnerHandle, SpecError> {
        spec.reader().finish()?;
        Ok(RunnerHandle::new(NaiveRunner { key: spec.canonical() }))
    }
}

impl DynRunner for NaiveRunner {
    fn name(&self) -> &str {
        "Naive-Greedy"
    }

    fn key(&self) -> &str {
        &self.key
    }

    fn run_on(
        &self,
        g: &Graph,
        seed: u64,
        scratch: &mut ScratchArena,
    ) -> Result<AlgoResult, SimError> {
        let n = g.n();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x77);
        let mut ids: Vec<u64> = (1..=n as u64).collect();
        ids.shuffle(&mut rng);
        let nodes = (0..n).map(|v| NaiveGreedy::new(ids[v], n as u64)).collect();
        let report = Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run_in(scratch)?;
        Ok(AlgoResult::from_states(
            "Naive-Greedy",
            &self.key,
            g,
            report.outputs,
            0,
            report.metrics,
        ))
    }
}

/// `LDT-MIS` on the whole graph; `strategy=awake|round` picks the LDT
/// construction (Lemma 6/7 vs Lemma 15).
struct LdtRunner {
    key: String,
    strategy: LdtStrategy,
}

impl LdtRunner {
    fn from_spec(spec: &AlgorithmSpec) -> Result<RunnerHandle, SpecError> {
        let mut p = spec.reader();
        let strategy = read_strategy(&mut p)?.unwrap_or(LdtStrategy::Awake);
        p.finish()?;
        Ok(RunnerHandle::new(LdtRunner { key: spec.canonical(), strategy }))
    }
}

impl DynRunner for LdtRunner {
    fn name(&self) -> &str {
        "LDT-MIS"
    }

    fn key(&self) -> &str {
        &self.key
    }

    fn run_on(
        &self,
        g: &Graph,
        seed: u64,
        scratch: &mut ScratchArena,
    ) -> Result<AlgoResult, SimError> {
        let n = g.n();
        let id_upper = (n.max(4) as u64).pow(3).max(1 << 24);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x77);
        let ids = draw_distinct_ids(n, id_upper, &mut rng);
        let nodes = (0..n)
            .map(|v| {
                Standalone::new(LdtMis::new(LdtMisParams {
                    my_id: ids[v],
                    id_upper,
                    k: n.max(1) as u32,
                    strategy: self.strategy,
                }))
            })
            .collect();
        let report = Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run_in(scratch)?;
        let failures = report.outputs.iter().filter(|o| o.failed).count();
        let states = report.outputs.iter().map(|o| o.state).collect();
        Ok(AlgoResult::from_states("LDT-MIS", &self.key, g, states, failures, report.metrics))
    }
}

/// Registers every built-in algorithm family. Called by
/// [`Registry::builtin`].
pub(crate) fn register_builtins(reg: &mut Registry) {
    reg.register_aliased(
        &["awake", "awake-mis"],
        "Awake-MIS (Theorem 13): O(log log n) awake. Params: strategy=awake|round, \
         round_efficient, delta_factor, comp_factor, ell_density, always_awake_comm, \
         uniform_batches",
        |spec| AwakeRunner::from_spec(spec, false),
    )
    .expect("builtin keys are distinct");
    reg.register_aliased(
        &["awake-round", "awake-mis-round"],
        "Awake-MIS with round-efficient LDTs (Corollary 14). Same params as awake",
        |spec| AwakeRunner::from_spec(spec, true),
    )
    .expect("builtin keys are distinct");
    reg.register_aliased(
        &["ldt", "ldt-mis"],
        "LDT-MIS on the whole graph (Lemma 11). Params: strategy=awake|round",
        LdtRunner::from_spec,
    )
    .expect("builtin keys are distinct");
    reg.register_aliased(
        &["vt", "vt-mis"],
        "VT-MIS (Lemma 10): O(log I) awake. Params: id_upper=U (ID-space sweep)",
        VtRunner::from_spec,
    )
    .expect("builtin keys are distinct");
    reg.register_aliased(
        &["naive", "naive-greedy"],
        "Naive distributed greedy baseline (always awake, Θ(I) rounds). No params",
        NaiveRunner::from_spec,
    )
    .expect("builtin keys are distinct");
    reg.register_aliased(&["luby"], "Luby's algorithm (always awake, Θ(log n)). No params", |spec| {
        LubyRunner::from_spec(spec)
    })
    .expect("builtin keys are distinct");
    reg.register_aliased(
        &["na", "na-mis"],
        "NA-MIS (CGP 2020): O(1) node-averaged awake via dropout phases. Params: stride=R \
         (rounds between phases, default 2)",
        NaRunner::from_spec,
    )
    .expect("builtin keys are distinct");
    reg.register_aliased(
        &["gp-avg", "gp-avg-mis"],
        "GP-Avg-MIS (GP 2023): dropout + capped ranked finish. Params: balance=K \
         (dropout phases before the ranked stage, default 3)",
        AvgRunner::from_spec,
    )
    .expect("builtin keys are distinct");
    reg.register_aliased(
        &["le", "le-mis"],
        "LE-MIS (GP 2023 low-energy): epoch-ranked time/energy trade-off. Params: bits=B \
         (rank bits per epoch, default auto = ⌈log₂ n⌉), max_epochs=E (Monte Carlo \
         budget, default 64)",
        LeRunner::from_spec,
    )
    .expect("builtin keys are distinct");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::default_registry;
    use graphgen::generators;

    #[test]
    fn every_builtin_runs_and_verifies() {
        let g = generators::gnp(60, 0.1, &mut SmallRng::seed_from_u64(1));
        let reg = default_registry();
        let keys: Vec<String> = reg.keys().map(str::to_string).collect();
        assert_eq!(
            keys,
            ["awake", "awake-round", "ldt", "vt", "naive", "luby", "na", "gp-avg", "le"],
            "comparison-table order"
        );
        for key in &keys {
            let runner = reg.resolve(key).expect("builtin resolves");
            let r = runner.run(&g, 5).expect("run");
            assert!(r.correct, "{} produced an invalid MIS", runner.name());
            assert!(r.mis_size > 0);
            assert!(r.awake_max > 0);
            assert!(r.awake_avg <= r.awake_max as f64);
            assert_eq!(r.algorithm, runner.name());
            assert_eq!(r.key, *key);
            // The distribution view agrees with the headline numbers.
            let d = r.metrics.awake_distribution();
            assert_eq!(d.max, r.awake_max, "{key}: distribution max");
            assert!((d.mean - r.awake_avg).abs() < 1e-12, "{key}: distribution mean");
            assert!(d.median <= d.p95 && d.p95 <= d.max as f64, "{key}: quantile order");
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        // One dirty scratch reused across all algorithms and two graphs
        // must reproduce the fresh-allocation results exactly.
        let mut scratch = ScratchArena::new();
        let reg = default_registry();
        for (n, p, seed) in [(40usize, 0.15, 3u64), (70, 0.08, 9)] {
            let g = generators::gnp(n, p, &mut SmallRng::seed_from_u64(seed));
            for key in reg.keys() {
                let runner = reg.resolve(key).expect("builtin resolves");
                let fresh = runner.run(&g, seed).expect("fresh");
                let reused =
                    runner.run_with_scratch(&g, seed, &mut scratch).expect("reused");
                assert_eq!(fresh.states, reused.states, "{key} diverged");
                assert_eq!(fresh.awake_max, reused.awake_max);
                assert_eq!(fresh.rounds, reused.rounds);
                assert_eq!(fresh.messages, reused.messages);
                assert_eq!(fresh.metrics.active_rounds, reused.metrics.active_rounds);
            }
        }
    }

    #[test]
    fn display_names_resolve_as_aliases() {
        let reg = default_registry();
        for (key, name) in [
            ("awake", "Awake-MIS"),
            ("awake-round", "Awake-MIS-Round"),
            ("ldt", "LDT-MIS"),
            ("vt", "VT-MIS"),
            ("naive", "Naive-Greedy"),
            ("luby", "Luby"),
            ("na", "NA-MIS"),
            ("gp-avg", "GP-Avg-MIS"),
            ("le", "LE-MIS"),
        ] {
            assert_eq!(reg.resolve(key).unwrap().name(), name);
            assert_eq!(reg.resolve(name).unwrap().name(), name, "display-name alias {name}");
        }
        assert!(reg.resolve("quantum").is_err());
    }

    #[test]
    fn awake_ordering_holds_on_midsize_graph() {
        // The headline ordering at moderate n: VT-MIS ≤ O(log n) <
        // Naive = n awake; Awake-MIS ≪ its own round complexity.
        let g = generators::gnp(128, 0.08, &mut SmallRng::seed_from_u64(2));
        let reg = default_registry();
        let vt = reg.resolve("vt").unwrap().run(&g, 3).unwrap();
        let naive = reg.resolve("naive").unwrap().run(&g, 3).unwrap();
        assert!(vt.awake_max * 4 < naive.awake_max);
        let am = reg.resolve("awake").unwrap().run(&g, 3).unwrap();
        assert!(am.awake_max * 100 < am.rounds);
        // The node-averaged entrant: its *average* beats its own worst
        // case by a wide margin (the whole point of the measure).
        let na = reg.resolve("na").unwrap().run(&g, 3).unwrap();
        assert!(na.awake_avg * 2.0 < na.awake_max as f64);
    }

    #[test]
    fn param_overrides_change_behavior() {
        let g = generators::gnp(64, 0.1, &mut SmallRng::seed_from_u64(4));
        let reg = default_registry();
        // round_efficient=true must reproduce the awake-round builtin.
        let round = reg.resolve("awake?round_efficient=true").unwrap();
        let legacy = reg.resolve("awake-round").unwrap();
        let a = round.run(&g, 9).unwrap();
        let b = legacy.run(&g, 9).unwrap();
        assert_eq!(a.states, b.states);
        assert_eq!(a.awake_max, b.awake_max);
        assert_eq!(a.algorithm, "Awake-MIS-Round");
        assert_eq!(a.key, "awake?round_efficient=true");
        // An ID-space sweep changes VT-MIS's awake complexity scale.
        let vt_small = reg.resolve("vt").unwrap().run(&g, 9).unwrap();
        let vt_wide = reg.resolve("vt?id_upper=1048576").unwrap().run(&g, 9).unwrap();
        assert!(vt_wide.correct && vt_small.correct);
        assert!(
            vt_wide.rounds > vt_small.rounds,
            "a 2^20 ID space must stretch VT-MIS's schedule ({} vs {})",
            vt_wide.rounds,
            vt_small.rounds
        );
    }

    #[test]
    fn na_stride_spaces_the_schedule_without_touching_awake() {
        let g = generators::gnp(72, 0.1, &mut SmallRng::seed_from_u64(6));
        let reg = default_registry();
        let dense = reg.resolve("na").unwrap().run(&g, 11).unwrap();
        let spaced = reg.resolve("na?stride=32").unwrap().run(&g, 11).unwrap();
        assert!(dense.correct && spaced.correct);
        assert_eq!(dense.states, spaced.states);
        assert_eq!(dense.awake_max, spaced.awake_max);
        assert_eq!(dense.awake_avg, spaced.awake_avg);
        assert!(spaced.rounds > 8 * dense.rounds, "{} vs {}", spaced.rounds, dense.rounds);
        assert_eq!(spaced.key, "na?stride=32");
        // A one-round stride cannot hold a two-round phase.
        assert!(matches!(
            reg.resolve("na?stride=1"),
            Err(SpecError::BadValue { ref param, .. }) if param == "stride"
        ));
    }

    #[test]
    fn gp_balance_dials_average_against_worst_case() {
        let g = generators::gnp_avg_degree(256, 8.0, &mut SmallRng::seed_from_u64(8));
        let reg = default_registry();
        let mean_over_seeds = |spec: &str| -> (f64, f64) {
            let runner = reg.resolve(spec).unwrap();
            let mut avg = 0.0;
            let mut max = 0.0;
            for seed in 0..6u64 {
                let r = runner.run(&g, seed).unwrap();
                assert!(r.correct, "{spec} seed {seed}");
                avg += r.awake_avg;
                max += r.awake_max as f64;
            }
            (avg / 6.0, max / 6.0)
        };
        let (avg0, _) = mean_over_seeds("gp-avg?balance=0");
        let (avg6, _) = mean_over_seeds("gp-avg?balance=6");
        assert!(
            avg6 < avg0 / 2.0,
            "balance=6 must at least halve the node average: {avg6} vs {avg0}"
        );
    }

    #[test]
    fn contradictory_strategy_params_are_rejected() {
        let reg = default_registry();
        let err = reg.resolve("awake?strategy=awake&round_efficient=true").unwrap_err();
        assert!(matches!(err, SpecError::BadValue { ref param, .. } if param == "round_efficient"));
        // Each spelling alone still works.
        assert!(reg.resolve("awake?strategy=round").is_ok());
        assert!(reg.resolve("awake?round_efficient=false").is_ok());
        assert!(reg.resolve("ldt?strategy=round").is_ok());
        assert!(matches!(
            reg.resolve("ldt?strategy=sideways"),
            Err(SpecError::BadValue { .. })
        ));
        // The new families are strict about their parameters too.
        assert!(matches!(reg.resolve("na?balance=3"), Err(SpecError::UnknownParam { .. })));
        assert!(matches!(reg.resolve("gp-avg?stride=4"), Err(SpecError::UnknownParam { .. })));
        assert!(matches!(reg.resolve("le?balance=3"), Err(SpecError::UnknownParam { .. })));
        assert!(matches!(
            reg.resolve("le?bits=0"),
            Err(SpecError::BadValue { ref param, .. }) if param == "bits"
        ));
        assert!(matches!(
            reg.resolve("le?bits=41"),
            Err(SpecError::BadValue { ref param, .. }) if param == "bits"
        ));
        assert!(matches!(
            reg.resolve("le?max_epochs=0"),
            Err(SpecError::BadValue { ref param, .. }) if param == "max_epochs"
        ));
        assert!(reg.resolve("le?bits=8&max_epochs=16").is_ok());
    }

    #[test]
    fn le_bits_trade_rounds_for_awake_through_the_registry() {
        // The time/energy dial end to end: fewer rank bits finish in
        // far fewer rounds but cost more awake rounds, seed-averaged.
        let g = generators::gnp_avg_degree(256, 8.0, &mut SmallRng::seed_from_u64(15));
        let reg = default_registry();
        let mean = |spec: &str| -> (f64, f64) {
            let runner = reg.resolve(spec).unwrap();
            let mut awake = 0.0;
            let mut rounds = 0.0;
            for seed in 0..6u64 {
                let r = runner.run(&g, seed).unwrap();
                assert!(r.correct, "{spec} seed {seed}");
                awake += r.awake_max as f64 / 6.0;
                rounds += r.rounds as f64 / 6.0;
            }
            (awake, rounds)
        };
        let (awake_fast, rounds_fast) = mean("le?bits=2");
        let (awake_cheap, rounds_cheap) = mean("le?bits=6");
        assert!(rounds_fast * 2.0 < rounds_cheap, "{rounds_fast} vs {rounds_cheap}");
        assert!(awake_cheap < awake_fast, "{awake_cheap} vs {awake_fast}");
    }
}
