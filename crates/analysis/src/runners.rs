//! Built-in algorithm runners.
//!
//! The executable form of every algorithm in the comparison table lives
//! here as a [`DynRunner`](crate::spec::DynRunner) implementation,
//! registered with the [`Registry`](crate::spec::Registry) under its
//! CLI key (see [`register_builtins`]). Parameterized variants are
//! specs, not new code: `awake?round_efficient=true`,
//! `ldt?strategy=round`, `vt?id_upper=1000000`, `na?stride=8`,
//! `gp-avg?balance=0` all resolve to configured instances of the
//! runners below.
//!
//! Three families of measures are covered: the paper's worst-case awake
//! complexity (`awake`, `awake-round`, `ldt`, `vt`, `naive`, `luby`),
//! the *node-averaged* measure of the related sleeping-model work (`na`,
//! `gp-avg`) — see [`awake_mis_core::na_mis`] and
//! [`awake_mis_core::avg_mis`] — and the explicit time/energy trade-off
//! (`le`, [`awake_mis_core::low_energy_mis`]), whose `bits` parameter is
//! the flagship axis of the [`crate::sweep`] energy-frontier harness.
//!
//! Every builtin additionally accepts the shared **fault-model
//! parameters** `loss=P`, `crash=P`, `crash_from=R`, `crash_until=R`
//! and `jitter=J` (see [`read_fault`] and
//! [`sleeping_congest::FaultModel`]), the **execution parameter**
//! `shards=K` (intra-run engine parallelism, `0` = auto; see
//! [`sleeping_congest::SimConfig::shards`]), and the ID-based runners
//! (`vt`, `naive`, `ldt`) accept `adv_ids=random|worst` for adversarial
//! ID assignment. Fault parameters spelling their defaults are dropped
//! from the runner key, so `awake?loss=0` *is* `awake` — clean levels
//! of a fault sweep reuse the fault-free identity and payloads. The
//! `shards` parameter never enters the key at all: sharding cannot
//! change results, so `luby?shards=8` *is* `luby` and its payloads stay
//! byte-comparable across machines.
//!
//! The `Algorithm` enum and the `run_algorithm(_with_scratch)` shims
//! that used to live here were deprecated in favor of the registry and
//! have been removed; resolve a [`RunnerHandle`] instead.

use crate::spec::{AlgorithmSpec, DynRunner, ParamReader, Registry, RunnerHandle, SpecError};
use awake_mis_core::ldt_mis::{LdtMis, LdtMisParams};
use awake_mis_core::{
    AvgMis, AvgMisConfig, AwakeMis, AwakeMisConfig, LdtStrategy, LeMis, LeMisConfig, Luby,
    MisState, NaMis, NaMisConfig, NaiveGreedy, VtMis, LE_MAX_BITS,
};
use graphgen::Graph;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sleeping_congest::{
    FaultModel, JsonlSink, Metrics, Profile, ScratchArena, SimConfig, SimError, Simulator,
    Standalone, TraceHandle,
};

/// Normalized result of one run.
#[derive(Debug, Clone)]
pub struct AlgoResult {
    /// Display name of the algorithm that ran (paper terminology).
    pub algorithm: String,
    /// Canonical spec key of the algorithm that ran (`"awake"`,
    /// `"ldt?strategy=round"`, …).
    pub key: String,
    /// Worst-case awake complexity (`max_v A_v`).
    pub awake_max: u64,
    /// Node-averaged awake complexity.
    pub awake_avg: f64,
    /// Round complexity (sleeping + awake).
    pub rounds: u64,
    /// Total messages sent.
    pub messages: u64,
    /// Largest message in bits.
    pub max_message_bits: usize,
    /// Size of the computed MIS.
    pub mis_size: usize,
    /// Whether the output verified as a correct MIS — on the survivor
    /// subgraph when the run crashed nodes, on the whole graph otherwise
    /// (see [`awake_mis_core::check_mis_survivors`]).
    pub correct: bool,
    /// Number of nodes that reported a Monte Carlo failure. Crashes are
    /// *not* failures; they are counted in [`AlgoResult::crashed`].
    pub failures: usize,
    /// Number of nodes crashed by the fault model (0 on clean runs).
    pub crashed: usize,
    /// Number of deliverable message copies dropped by the fault model's
    /// lossy links (0 on clean runs).
    pub faulted: u64,
    /// Full engine metrics (per-node awake counts live here; see
    /// [`Metrics::awake_distribution`]).
    pub metrics: Metrics,
    /// Per-node final states (for re-verification by callers).
    pub states: Vec<MisState>,
}

impl AlgoResult {
    /// Builds a normalized result from a finished run: verifies the
    /// states against `g`, counts the MIS, and copies the headline
    /// numbers out of `metrics`. This is the constructor custom
    /// [`DynRunner`]s should use.
    ///
    /// Verification is survivor-aware: nodes crashed by the engine's
    /// [`FaultModel`] (per `metrics.crashed_at`) are exempt, and the
    /// remaining states must form an MIS of the subgraph induced by the
    /// survivors. With no crashes this is exactly the classic
    /// [`awake_mis_core::check_mis`].
    pub fn from_states(
        name: impl Into<String>,
        key: impl Into<String>,
        g: &Graph,
        states: Vec<MisState>,
        failures: usize,
        metrics: Metrics,
    ) -> AlgoResult {
        let alive = metrics.alive();
        let correct =
            failures == 0 && awake_mis_core::check_mis_survivors(g, &states, &alive).is_ok();
        let mis_size = states
            .iter()
            .zip(&alive)
            .filter(|&(&s, &a)| a && s == MisState::InMis)
            .count();
        AlgoResult {
            algorithm: name.into(),
            key: key.into(),
            awake_max: metrics.awake_complexity(),
            awake_avg: metrics.awake_average(),
            rounds: metrics.round_complexity(),
            messages: metrics.messages_sent,
            max_message_bits: metrics.max_message_bits,
            mis_size,
            correct,
            failures,
            crashed: metrics.crashed_count(),
            faulted: metrics.messages_faulted,
            metrics,
            states,
        }
    }
}

/// Distinct random IDs in `[1, upper]`.
fn draw_distinct_ids(n: usize, upper: u64, rng: &mut impl Rng) -> Vec<u64> {
    let mut seen = std::collections::HashSet::with_capacity(n * 2);
    let mut ids = Vec::with_capacity(n);
    while ids.len() < n {
        let id = rng.gen_range(1..=upper);
        if seen.insert(id) {
            ids.push(id);
        }
    }
    ids
}

// ---------------------------------------------------------------------------
// Fault-model parameters (shared by every builtin)
// ---------------------------------------------------------------------------

/// Reads a probability-valued fault parameter, rejecting anything
/// outside `[0, 1]`.
fn read_prob(p: &mut ParamReader<'_>, name: &'static str) -> Result<Option<f64>, SpecError> {
    match p.f64(name)? {
        None => Ok(None),
        Some(v) if v.is_finite() && (0.0..=1.0).contains(&v) => Ok(Some(v)),
        Some(v) => Err(SpecError::BadValue {
            param: name.to_string(),
            value: v.to_string(),
            expected: "a probability in [0, 1]".to_string(),
        }),
    }
}

/// Reads the fault-model parameters every builtin accepts:
/// `loss=P` (per-copy i.i.d. message loss), `crash=P` (per-node
/// per-round crash probability), `crash_from=R`/`crash_until=R`
/// (inclusive round window for crashes), `jitter=J` (late-wake jitter:
/// node `v` starts up to `J` rounds late, deterministically per seed).
pub(crate) fn read_fault(p: &mut ParamReader<'_>) -> Result<FaultModel, SpecError> {
    let mut fault = FaultModel::none();
    if let Some(v) = read_prob(p, "loss")? {
        fault.loss = v;
    }
    if let Some(v) = read_prob(p, "crash")? {
        fault.crash = v;
    }
    if let Some(v) = p.u64("crash_from")? {
        fault.crash_from = v;
    }
    if let Some(v) = p.u64("crash_until")? {
        fault.crash_until = v;
    }
    if fault.crash_from > fault.crash_until {
        return Err(SpecError::BadValue {
            param: "crash_until".to_string(),
            value: fault.crash_until.to_string(),
            expected: format!("a round >= crash_from ({})", fault.crash_from),
        });
    }
    if let Some(v) = p.u64("jitter")? {
        fault.wake_jitter = v;
    }
    Ok(fault)
}

/// Execution knobs shared by every builtin: the fault model, the
/// engine's intra-run shard count, and an optional trace sink. Parsed
/// after algorithm-specific parameters, see [`read_exec`].
#[derive(Debug, Clone)]
pub(crate) struct ExecParams {
    pub(crate) fault: FaultModel,
    pub(crate) shards: usize,
    pub(crate) trace: Option<TraceHandle>,
}

/// Reads the shared execution parameters: the fault model
/// ([`read_fault`]), `shards=K` — the engine's intra-run shard count
/// (`1` = serial, `0` = one shard per hardware thread; results are
/// byte-identical either way) — and `trace=profile|jsonl`, which
/// attaches an observational sink shared by every run of the resolved
/// runner (`profile` aggregates a phase report retrievable through
/// [`DynRunner::trace`]; `jsonl` streams one event per line to
/// stderr). Tracing never changes results.
pub(crate) fn read_exec(p: &mut ParamReader<'_>) -> Result<ExecParams, SpecError> {
    let fault = read_fault(p)?;
    let shards = p.u64("shards")?.unwrap_or(1) as usize;
    let trace = match p.str("trace") {
        None => None,
        Some(s) => match s.to_ascii_lowercase().as_str() {
            "profile" => Some(TraceHandle::new(Profile::new())),
            "jsonl" => Some(TraceHandle::new(JsonlSink::stderr())),
            other => {
                return Err(SpecError::BadValue {
                    param: "trace".to_string(),
                    value: other.to_string(),
                    expected: "profile or jsonl".to_string(),
                })
            }
        },
    };
    Ok(ExecParams { fault, shards, trace })
}

/// Canonical runner key for `spec`: the spec as written, minus fault
/// parameters spelling their default values. `awake?loss=0` keys as
/// `awake`, so a fault sweep's clean level is *the same runner
/// identity* as the fault-free builtin and its grid payloads are
/// byte-identical to the clean grid's.
fn runner_key(spec: &AlgorithmSpec) -> String {
    let kept: Vec<String> = spec
        .params()
        .iter()
        .filter(|(name, value)| {
            let is_default = match name.as_str() {
                "loss" | "crash" => value.parse::<f64>().map(|v| v == 0.0).unwrap_or(false),
                "crash_from" | "jitter" => {
                    value.parse::<u64>().map(|v| v == 0).unwrap_or(false)
                }
                "crash_until" => value.parse::<u64>().map(|v| v == u64::MAX).unwrap_or(false),
                "adv_ids" => value.eq_ignore_ascii_case("random"),
                // Sharding and tracing are pure execution: they can
                // never change results, so they never enter the
                // identity.
                "shards" | "trace" => true,
                _ => false,
            };
            !is_default
        })
        .map(|(name, value)| format!("{name}={value}"))
        .collect();
    if kept.is_empty() {
        spec.key().to_string()
    } else {
        format!("{}?{}", spec.key(), kept.join("&"))
    }
}

/// A [`SimConfig`] carrying the runner's fault model, shard count, and
/// trace sink.
fn sim_config(seed: u64, exec: &ExecParams) -> SimConfig {
    SimConfig {
        fault: exec.fault.clone(),
        shards: exec.shards,
        trace: exec.trace.clone(),
        ..SimConfig::seeded(seed)
    }
}

/// How ID-based runners (`vt`, `naive`, `ldt`) assign their IDs:
/// seeded-random (the default) or the deterministic adversarial
/// worst case (`adv_ids=worst`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IdAssignment {
    Random,
    Worst,
}

/// Reads the optional `adv_ids=random|worst` parameter.
fn read_adv_ids(p: &mut ParamReader<'_>) -> Result<IdAssignment, SpecError> {
    match p.str("adv_ids") {
        None => Ok(IdAssignment::Random),
        Some(s) => match s.to_ascii_lowercase().as_str() {
            "random" => Ok(IdAssignment::Random),
            "worst" => Ok(IdAssignment::Worst),
            other => Err(SpecError::BadValue {
                param: "adv_ids".to_string(),
                value: other.to_string(),
                expected: "random or worst".to_string(),
            }),
        },
    }
}

/// The adversarial ID multiset for `VT-MIS`: the `n` IDs in
/// `[1, upper]` with the *longest* virtual-tree wake schedules,
/// assigned to nodes in ascending order. VT-MIS nodes attend their full
/// schedule (no early exit), so per-node awake cost is exactly the
/// schedule length — an adversary controlling the ID assignment
/// maximizes the worst case by handing out the longest schedules,
/// which random draws from a wide ID space are unlikely to hit.
fn worst_vt_ids(n: usize, upper: u64) -> Vec<u64> {
    let mut ranked: Vec<u64> = (1..=upper).collect();
    ranked.sort_by_key(|&k| (std::cmp::Reverse(vtree::wake_count(k, upper)), k));
    ranked.truncate(n);
    ranked.sort_unstable();
    ranked
}

// ---------------------------------------------------------------------------
// Built-in runners
// ---------------------------------------------------------------------------

/// Reads an optional `strategy=awake|round` parameter.
fn read_strategy(
    p: &mut crate::spec::ParamReader<'_>,
) -> Result<Option<LdtStrategy>, SpecError> {
    match p.str("strategy") {
        None => Ok(None),
        Some(s) => match s.to_ascii_lowercase().as_str() {
            "awake" => Ok(Some(LdtStrategy::Awake)),
            "round" => Ok(Some(LdtStrategy::Round)),
            other => Err(SpecError::BadValue {
                param: "strategy".to_string(),
                value: other.to_string(),
                expected: "awake or round".to_string(),
            }),
        },
    }
}

/// `Awake-MIS` family: Theorem 13 by default, Corollary 14 via
/// `strategy=round` / `round_efficient=true`, plus every
/// [`AwakeMisConfig`] knob as a spec parameter.
struct AwakeRunner {
    name: &'static str,
    key: String,
    cfg: AwakeMisConfig,
    exec: ExecParams,
}

impl AwakeRunner {
    fn from_spec(spec: &AlgorithmSpec, round_default: bool) -> Result<RunnerHandle, SpecError> {
        let mut cfg = if round_default {
            AwakeMisConfig::round_efficient()
        } else {
            AwakeMisConfig::default()
        };
        let mut p = spec.reader();
        let strategy = read_strategy(&mut p)?;
        let round_efficient = p.bool("round_efficient")?;
        // `round_efficient` is sugar for `strategy`; asking for both is
        // ambiguous, so it is rejected rather than resolved by order.
        match (strategy, round_efficient) {
            (Some(_), Some(_)) => {
                return Err(SpecError::BadValue {
                    param: "round_efficient".to_string(),
                    value: spec.canonical(),
                    expected: "either strategy= or round_efficient=, not both".to_string(),
                })
            }
            (Some(s), None) => cfg.strategy = s,
            (None, Some(b)) => {
                cfg.strategy = if b { LdtStrategy::Round } else { LdtStrategy::Awake }
            }
            (None, None) => {}
        }
        if let Some(v) = p.f64("delta_factor")? {
            cfg.delta_factor = v;
        }
        if let Some(v) = p.f64("comp_factor")? {
            cfg.comp_factor = v;
        }
        if let Some(v) = p.f64("ell_density")? {
            cfg.ell_density = v;
        }
        if let Some(b) = p.bool("always_awake_comm")? {
            cfg.always_awake_comm = b;
        }
        if let Some(b) = p.bool("uniform_batches")? {
            cfg.uniform_batches = b;
        }
        let exec = read_exec(&mut p)?;
        p.finish()?;
        let name = match cfg.strategy {
            LdtStrategy::Awake => "Awake-MIS",
            LdtStrategy::Round => "Awake-MIS-Round",
        };
        Ok(RunnerHandle::new(AwakeRunner { name, key: runner_key(spec), cfg, exec }))
    }
}

impl DynRunner for AwakeRunner {
    fn name(&self) -> &str {
        self.name
    }

    fn key(&self) -> &str {
        &self.key
    }

    fn trace(&self) -> Option<&TraceHandle> {
        self.exec.trace.as_ref()
    }

    fn run_on(
        &self,
        g: &Graph,
        seed: u64,
        scratch: &mut ScratchArena,
    ) -> Result<AlgoResult, SimError> {
        let nodes = (0..g.n()).map(|_| AwakeMis::new(self.cfg)).collect();
        let report =
            Simulator::new(g.clone(), nodes, sim_config(seed, &self.exec)).run_in(scratch)?;
        let failures = report.outputs.iter().filter(|o| o.failed).count();
        let states = report.outputs.iter().map(|o| o.state).collect();
        Ok(AlgoResult::from_states(self.name, &self.key, g, states, failures, report.metrics))
    }
}

/// Luby's classical algorithm (always awake); takes only the shared
/// fault parameters.
struct LubyRunner {
    key: String,
    exec: ExecParams,
}

impl LubyRunner {
    fn from_spec(spec: &AlgorithmSpec) -> Result<RunnerHandle, SpecError> {
        let mut p = spec.reader();
        let exec = read_exec(&mut p)?;
        p.finish()?;
        Ok(RunnerHandle::new(LubyRunner { key: runner_key(spec), exec }))
    }
}

impl DynRunner for LubyRunner {
    fn name(&self) -> &str {
        "Luby"
    }

    fn key(&self) -> &str {
        &self.key
    }

    fn trace(&self) -> Option<&TraceHandle> {
        self.exec.trace.as_ref()
    }

    fn run_on(
        &self,
        g: &Graph,
        seed: u64,
        scratch: &mut ScratchArena,
    ) -> Result<AlgoResult, SimError> {
        let nodes = (0..g.n()).map(|_| Luby::new()).collect();
        let report =
            Simulator::new(g.clone(), nodes, sim_config(seed, &self.exec)).run_in(scratch)?;
        Ok(AlgoResult::from_states("Luby", &self.key, g, report.outputs, 0, report.metrics))
    }
}

/// `NA-MIS` (Chatterjee–Gmyr–Pandurangan, arXiv:2006.07449): `O(1)`
/// *node-averaged* awake complexity via immediate dropout. Parameters:
/// `stride=R` spaces the compete/resolve phases `R` rounds apart
/// (default 2 = back to back) without changing any awake count.
struct NaRunner {
    key: String,
    cfg: NaMisConfig,
    exec: ExecParams,
}

impl NaRunner {
    fn from_spec(spec: &AlgorithmSpec) -> Result<RunnerHandle, SpecError> {
        let mut cfg = NaMisConfig::default();
        let mut p = spec.reader();
        if let Some(v) = p.u64("stride")? {
            if v < 2 {
                return Err(SpecError::BadValue {
                    param: "stride".to_string(),
                    value: v.to_string(),
                    expected: "an integer ≥ 2 (a phase spans two rounds)".to_string(),
                });
            }
            cfg.stride = v;
        }
        let exec = read_exec(&mut p)?;
        p.finish()?;
        Ok(RunnerHandle::new(NaRunner { key: runner_key(spec), cfg, exec }))
    }
}

impl DynRunner for NaRunner {
    fn name(&self) -> &str {
        "NA-MIS"
    }

    fn key(&self) -> &str {
        &self.key
    }

    fn trace(&self) -> Option<&TraceHandle> {
        self.exec.trace.as_ref()
    }

    fn run_on(
        &self,
        g: &Graph,
        seed: u64,
        scratch: &mut ScratchArena,
    ) -> Result<AlgoResult, SimError> {
        let nodes = (0..g.n()).map(|_| NaMis::new(self.cfg)).collect();
        let report =
            Simulator::new(g.clone(), nodes, sim_config(seed, &self.exec)).run_in(scratch)?;
        Ok(AlgoResult::from_states("NA-MIS", &self.key, g, report.outputs, 0, report.metrics))
    }
}

/// `GP-Avg-MIS` (Ghaffari–Portmann, arXiv:2305.06120): dropout phases
/// followed by a deterministically-capped ranked schedule. The
/// `balance=K` parameter (default 3) sets the number of dropout phases
/// — the dial between node-averaged and worst-case awake cost.
struct AvgRunner {
    key: String,
    cfg: AvgMisConfig,
    exec: ExecParams,
}

impl AvgRunner {
    fn from_spec(spec: &AlgorithmSpec) -> Result<RunnerHandle, SpecError> {
        let mut cfg = AvgMisConfig::default();
        let mut p = spec.reader();
        if let Some(v) = p.u64("balance")? {
            cfg.balance = v;
        }
        let exec = read_exec(&mut p)?;
        p.finish()?;
        Ok(RunnerHandle::new(AvgRunner { key: runner_key(spec), cfg, exec }))
    }
}

impl DynRunner for AvgRunner {
    fn name(&self) -> &str {
        "GP-Avg-MIS"
    }

    fn key(&self) -> &str {
        &self.key
    }

    fn trace(&self) -> Option<&TraceHandle> {
        self.exec.trace.as_ref()
    }

    fn run_on(
        &self,
        g: &Graph,
        seed: u64,
        scratch: &mut ScratchArena,
    ) -> Result<AlgoResult, SimError> {
        let nodes = (0..g.n()).map(|_| AvgMis::new(self.cfg)).collect();
        let report =
            Simulator::new(g.clone(), nodes, sim_config(seed, &self.exec)).run_in(scratch)?;
        // An adjacent rank collision is a Monte Carlo failure (module
        // docs of `awake_mis_core::avg_mis`), reported like Awake-MIS's.
        let failures = report.outputs.iter().filter(|o| o.failed).count();
        let states = report.outputs.iter().map(|o| o.state).collect();
        Ok(AlgoResult::from_states("GP-Avg-MIS", &self.key, g, states, failures, report.metrics))
    }
}

/// `LE-MIS` (Ghaffari–Portmann, arXiv:2305.11639): the explicit
/// time/energy trade-off — epoch-ranked schedules over a `2^bits` rank
/// space. `bits=B` is the dial (tiny = time-optimal but energy-hungry,
/// moderate = energy-optimal, the large tail dominated on both — see
/// `awake_mis_core::low_energy_mis`); `max_epochs=E` bounds the Monte
/// Carlo retries.
struct LeRunner {
    key: String,
    cfg: LeMisConfig,
    exec: ExecParams,
}

impl LeRunner {
    fn from_spec(spec: &AlgorithmSpec) -> Result<RunnerHandle, SpecError> {
        let mut cfg = LeMisConfig::default();
        let mut p = spec.reader();
        if let Some(v) = p.u64("bits")? {
            if v < 1 || v > u64::from(LE_MAX_BITS) {
                return Err(SpecError::BadValue {
                    param: "bits".to_string(),
                    value: v.to_string(),
                    expected: format!("an integer in [1, {LE_MAX_BITS}]"),
                });
            }
            cfg.bits = v as u32;
        }
        if let Some(v) = p.u64("max_epochs")? {
            if v == 0 {
                return Err(SpecError::BadValue {
                    param: "max_epochs".to_string(),
                    value: v.to_string(),
                    expected: "a positive epoch budget".to_string(),
                });
            }
            cfg.max_epochs = v;
        }
        let exec = read_exec(&mut p)?;
        p.finish()?;
        Ok(RunnerHandle::new(LeRunner { key: runner_key(spec), cfg, exec }))
    }
}

impl DynRunner for LeRunner {
    fn name(&self) -> &str {
        "LE-MIS"
    }

    fn key(&self) -> &str {
        &self.key
    }

    fn trace(&self) -> Option<&TraceHandle> {
        self.exec.trace.as_ref()
    }

    fn run_on(
        &self,
        g: &Graph,
        seed: u64,
        scratch: &mut ScratchArena,
    ) -> Result<AlgoResult, SimError> {
        let nodes = (0..g.n()).map(|_| LeMis::new(self.cfg)).collect();
        let report =
            Simulator::new(g.clone(), nodes, sim_config(seed, &self.exec)).run_in(scratch)?;
        // Epoch-budget exhaustion is a Monte Carlo failure (module docs
        // of `awake_mis_core::low_energy_mis`), reported like Awake-MIS's.
        let failures = report.outputs.iter().filter(|o| o.failed).count();
        let states = report.outputs.iter().map(|o| o.state).collect();
        Ok(AlgoResult::from_states("LE-MIS", &self.key, g, states, failures, report.metrics))
    }
}

/// `VT-MIS`: random ID permutation over `[1, n]` by default; the
/// `id_upper=U` parameter sweeps the ID space instead (distinct random
/// IDs in `[1, max(U, n)]`, so awake complexity scales with `log U`).
/// `adv_ids=worst` replaces the random draw with the adversarial
/// assignment: the `n` longest-schedule IDs (see [`worst_vt_ids`]).
struct VtRunner {
    key: String,
    id_upper: Option<u64>,
    adv_ids: IdAssignment,
    exec: ExecParams,
}

impl VtRunner {
    fn from_spec(spec: &AlgorithmSpec) -> Result<RunnerHandle, SpecError> {
        let mut p = spec.reader();
        let id_upper = p.u64("id_upper")?;
        let adv_ids = read_adv_ids(&mut p)?;
        let exec = read_exec(&mut p)?;
        p.finish()?;
        Ok(RunnerHandle::new(VtRunner { key: runner_key(spec), id_upper, adv_ids, exec }))
    }
}

impl DynRunner for VtRunner {
    fn name(&self) -> &str {
        "VT-MIS"
    }

    fn key(&self) -> &str {
        &self.key
    }

    fn trace(&self) -> Option<&TraceHandle> {
        self.exec.trace.as_ref()
    }

    fn run_on(
        &self,
        g: &Graph,
        seed: u64,
        scratch: &mut ScratchArena,
    ) -> Result<AlgoResult, SimError> {
        let n = g.n();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x77);
        let upper = self.id_upper.map_or(n as u64, |u| u.max(n as u64));
        let ids = match (self.adv_ids, self.id_upper) {
            (IdAssignment::Worst, _) => worst_vt_ids(n, upper),
            (IdAssignment::Random, None) => {
                let mut ids: Vec<u64> = (1..=n as u64).collect();
                ids.shuffle(&mut rng);
                ids
            }
            (IdAssignment::Random, Some(_)) => draw_distinct_ids(n, upper, &mut rng),
        };
        let nodes = (0..n).map(|v| Standalone::new(VtMis::new(ids[v], upper, None))).collect();
        let report =
            Simulator::new(g.clone(), nodes, sim_config(seed, &self.exec)).run_in(scratch)?;
        Ok(AlgoResult::from_states("VT-MIS", &self.key, g, report.outputs, 0, report.metrics))
    }
}

/// Naive distributed greedy baseline. `adv_ids=worst` pins the
/// adversarial sequential assignment `id[v] = v + 1` (ID order
/// correlated with node numbering — on path/grid families this chains
/// the greedy dependencies) instead of a random permutation.
struct NaiveRunner {
    key: String,
    adv_ids: IdAssignment,
    exec: ExecParams,
}

impl NaiveRunner {
    fn from_spec(spec: &AlgorithmSpec) -> Result<RunnerHandle, SpecError> {
        let mut p = spec.reader();
        let adv_ids = read_adv_ids(&mut p)?;
        let exec = read_exec(&mut p)?;
        p.finish()?;
        Ok(RunnerHandle::new(NaiveRunner { key: runner_key(spec), adv_ids, exec }))
    }
}

impl DynRunner for NaiveRunner {
    fn name(&self) -> &str {
        "Naive-Greedy"
    }

    fn key(&self) -> &str {
        &self.key
    }

    fn trace(&self) -> Option<&TraceHandle> {
        self.exec.trace.as_ref()
    }

    fn run_on(
        &self,
        g: &Graph,
        seed: u64,
        scratch: &mut ScratchArena,
    ) -> Result<AlgoResult, SimError> {
        let n = g.n();
        let mut ids: Vec<u64> = (1..=n as u64).collect();
        if self.adv_ids == IdAssignment::Random {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x77);
            ids.shuffle(&mut rng);
        }
        let nodes = (0..n).map(|v| NaiveGreedy::new(ids[v], n as u64)).collect();
        let report =
            Simulator::new(g.clone(), nodes, sim_config(seed, &self.exec)).run_in(scratch)?;
        Ok(AlgoResult::from_states(
            "Naive-Greedy",
            &self.key,
            g,
            report.outputs,
            0,
            report.metrics,
        ))
    }
}

/// `LDT-MIS` on the whole graph; `strategy=awake|round` picks the LDT
/// construction (Lemma 6/7 vs Lemma 15). `adv_ids=worst` packs the IDs
/// into the bottom of the huge ID space (`1..=n`, maximal shared
/// prefixes in the labeling tree) instead of random distinct draws.
struct LdtRunner {
    key: String,
    strategy: LdtStrategy,
    adv_ids: IdAssignment,
    exec: ExecParams,
}

impl LdtRunner {
    fn from_spec(spec: &AlgorithmSpec) -> Result<RunnerHandle, SpecError> {
        let mut p = spec.reader();
        let strategy = read_strategy(&mut p)?.unwrap_or(LdtStrategy::Awake);
        let adv_ids = read_adv_ids(&mut p)?;
        let exec = read_exec(&mut p)?;
        p.finish()?;
        Ok(RunnerHandle::new(LdtRunner { key: runner_key(spec), strategy, adv_ids, exec }))
    }
}

impl DynRunner for LdtRunner {
    fn name(&self) -> &str {
        "LDT-MIS"
    }

    fn key(&self) -> &str {
        &self.key
    }

    fn trace(&self) -> Option<&TraceHandle> {
        self.exec.trace.as_ref()
    }

    fn run_on(
        &self,
        g: &Graph,
        seed: u64,
        scratch: &mut ScratchArena,
    ) -> Result<AlgoResult, SimError> {
        let n = g.n();
        let id_upper = (n.max(4) as u64).pow(3).max(1 << 24);
        let ids = match self.adv_ids {
            IdAssignment::Random => {
                let mut rng = SmallRng::seed_from_u64(seed ^ 0x77);
                draw_distinct_ids(n, id_upper, &mut rng)
            }
            IdAssignment::Worst => (1..=n as u64).collect(),
        };
        let nodes = (0..n)
            .map(|v| {
                Standalone::new(LdtMis::new(LdtMisParams {
                    my_id: ids[v],
                    id_upper,
                    k: n.max(1) as u32,
                    strategy: self.strategy,
                }))
            })
            .collect();
        let report =
            Simulator::new(g.clone(), nodes, sim_config(seed, &self.exec)).run_in(scratch)?;
        let failures = report.outputs.iter().filter(|o| o.failed).count();
        let states = report.outputs.iter().map(|o| o.state).collect();
        Ok(AlgoResult::from_states("LDT-MIS", &self.key, g, states, failures, report.metrics))
    }
}

/// Registers every built-in algorithm family. Called by
/// [`Registry::builtin`].
pub(crate) fn register_builtins(reg: &mut Registry) {
    reg.register_aliased(
        &["awake", "awake-mis"],
        "Awake-MIS (Theorem 13): O(log log n) awake. Params: strategy=awake|round, \
         round_efficient, delta_factor, comp_factor, ell_density, always_awake_comm, \
         uniform_batches",
        |spec| AwakeRunner::from_spec(spec, false),
    )
    .expect("builtin keys are distinct");
    reg.register_aliased(
        &["awake-round", "awake-mis-round"],
        "Awake-MIS with round-efficient LDTs (Corollary 14). Same params as awake",
        |spec| AwakeRunner::from_spec(spec, true),
    )
    .expect("builtin keys are distinct");
    reg.register_aliased(
        &["ldt", "ldt-mis"],
        "LDT-MIS on the whole graph (Lemma 11). Params: strategy=awake|round, \
         adv_ids=random|worst",
        LdtRunner::from_spec,
    )
    .expect("builtin keys are distinct");
    reg.register_aliased(
        &["vt", "vt-mis"],
        "VT-MIS (Lemma 10): O(log I) awake. Params: id_upper=U (ID-space sweep), \
         adv_ids=random|worst (adversarial longest-schedule IDs)",
        VtRunner::from_spec,
    )
    .expect("builtin keys are distinct");
    reg.register_aliased(
        &["naive", "naive-greedy"],
        "Naive distributed greedy baseline (always awake, Θ(I) rounds). Params: \
         adv_ids=random|worst",
        NaiveRunner::from_spec,
    )
    .expect("builtin keys are distinct");
    reg.register_aliased(&["luby"], "Luby's algorithm (always awake, Θ(log n)). No params", |spec| {
        LubyRunner::from_spec(spec)
    })
    .expect("builtin keys are distinct");
    reg.register_aliased(
        &["na", "na-mis"],
        "NA-MIS (CGP 2020): O(1) node-averaged awake via dropout phases. Params: stride=R \
         (rounds between phases, default 2)",
        NaRunner::from_spec,
    )
    .expect("builtin keys are distinct");
    reg.register_aliased(
        &["gp-avg", "gp-avg-mis"],
        "GP-Avg-MIS (GP 2023): dropout + capped ranked finish. Params: balance=K \
         (dropout phases before the ranked stage, default 3)",
        AvgRunner::from_spec,
    )
    .expect("builtin keys are distinct");
    reg.register_aliased(
        &["le", "le-mis"],
        "LE-MIS (GP 2023 low-energy): epoch-ranked time/energy trade-off. Params: bits=B \
         (rank bits per epoch, default auto = ⌈log₂ n⌉), max_epochs=E (Monte Carlo \
         budget, default 64)",
        LeRunner::from_spec,
    )
    .expect("builtin keys are distinct");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::default_registry;
    use graphgen::generators;

    #[test]
    fn every_builtin_runs_and_verifies() {
        let g = generators::gnp(60, 0.1, &mut SmallRng::seed_from_u64(1));
        let reg = default_registry();
        let keys: Vec<String> = reg.keys().map(str::to_string).collect();
        assert_eq!(
            keys,
            ["awake", "awake-round", "ldt", "vt", "naive", "luby", "na", "gp-avg", "le"],
            "comparison-table order"
        );
        for key in &keys {
            let runner = reg.resolve(key).expect("builtin resolves");
            let r = runner.run(&g, 5).expect("run");
            assert!(r.correct, "{} produced an invalid MIS", runner.name());
            assert!(r.mis_size > 0);
            assert!(r.awake_max > 0);
            assert!(r.awake_avg <= r.awake_max as f64);
            assert_eq!(r.algorithm, runner.name());
            assert_eq!(r.key, *key);
            // The distribution view agrees with the headline numbers.
            let d = r.metrics.awake_distribution();
            assert_eq!(d.max, r.awake_max, "{key}: distribution max");
            assert!((d.mean - r.awake_avg).abs() < 1e-12, "{key}: distribution mean");
            assert!(d.median <= d.p95 && d.p95 <= d.max as f64, "{key}: quantile order");
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        // One dirty scratch reused across all algorithms and two graphs
        // must reproduce the fresh-allocation results exactly.
        let mut scratch = ScratchArena::new();
        let reg = default_registry();
        for (n, p, seed) in [(40usize, 0.15, 3u64), (70, 0.08, 9)] {
            let g = generators::gnp(n, p, &mut SmallRng::seed_from_u64(seed));
            for key in reg.keys() {
                let runner = reg.resolve(key).expect("builtin resolves");
                let fresh = runner.run(&g, seed).expect("fresh");
                let reused =
                    runner.run_with_scratch(&g, seed, &mut scratch).expect("reused");
                assert_eq!(fresh.states, reused.states, "{key} diverged");
                assert_eq!(fresh.awake_max, reused.awake_max);
                assert_eq!(fresh.rounds, reused.rounds);
                assert_eq!(fresh.messages, reused.messages);
                assert_eq!(fresh.metrics.active_rounds, reused.metrics.active_rounds);
            }
        }
    }

    #[test]
    fn display_names_resolve_as_aliases() {
        let reg = default_registry();
        for (key, name) in [
            ("awake", "Awake-MIS"),
            ("awake-round", "Awake-MIS-Round"),
            ("ldt", "LDT-MIS"),
            ("vt", "VT-MIS"),
            ("naive", "Naive-Greedy"),
            ("luby", "Luby"),
            ("na", "NA-MIS"),
            ("gp-avg", "GP-Avg-MIS"),
            ("le", "LE-MIS"),
        ] {
            assert_eq!(reg.resolve(key).unwrap().name(), name);
            assert_eq!(reg.resolve(name).unwrap().name(), name, "display-name alias {name}");
        }
        assert!(reg.resolve("quantum").is_err());
    }

    #[test]
    fn awake_ordering_holds_on_midsize_graph() {
        // The headline ordering at moderate n: VT-MIS ≤ O(log n) <
        // Naive = n awake; Awake-MIS ≪ its own round complexity.
        let g = generators::gnp(128, 0.08, &mut SmallRng::seed_from_u64(2));
        let reg = default_registry();
        let vt = reg.resolve("vt").unwrap().run(&g, 3).unwrap();
        let naive = reg.resolve("naive").unwrap().run(&g, 3).unwrap();
        assert!(vt.awake_max * 4 < naive.awake_max);
        let am = reg.resolve("awake").unwrap().run(&g, 3).unwrap();
        assert!(am.awake_max * 100 < am.rounds);
        // The node-averaged entrant: its *average* beats its own worst
        // case by a wide margin (the whole point of the measure).
        let na = reg.resolve("na").unwrap().run(&g, 3).unwrap();
        assert!(na.awake_avg * 2.0 < na.awake_max as f64);
    }

    #[test]
    fn param_overrides_change_behavior() {
        let g = generators::gnp(64, 0.1, &mut SmallRng::seed_from_u64(4));
        let reg = default_registry();
        // round_efficient=true must reproduce the awake-round builtin.
        let round = reg.resolve("awake?round_efficient=true").unwrap();
        let legacy = reg.resolve("awake-round").unwrap();
        let a = round.run(&g, 9).unwrap();
        let b = legacy.run(&g, 9).unwrap();
        assert_eq!(a.states, b.states);
        assert_eq!(a.awake_max, b.awake_max);
        assert_eq!(a.algorithm, "Awake-MIS-Round");
        assert_eq!(a.key, "awake?round_efficient=true");
        // An ID-space sweep changes VT-MIS's awake complexity scale.
        let vt_small = reg.resolve("vt").unwrap().run(&g, 9).unwrap();
        let vt_wide = reg.resolve("vt?id_upper=1048576").unwrap().run(&g, 9).unwrap();
        assert!(vt_wide.correct && vt_small.correct);
        assert!(
            vt_wide.rounds > vt_small.rounds,
            "a 2^20 ID space must stretch VT-MIS's schedule ({} vs {})",
            vt_wide.rounds,
            vt_small.rounds
        );
    }

    #[test]
    fn na_stride_spaces_the_schedule_without_touching_awake() {
        let g = generators::gnp(72, 0.1, &mut SmallRng::seed_from_u64(6));
        let reg = default_registry();
        let dense = reg.resolve("na").unwrap().run(&g, 11).unwrap();
        let spaced = reg.resolve("na?stride=32").unwrap().run(&g, 11).unwrap();
        assert!(dense.correct && spaced.correct);
        assert_eq!(dense.states, spaced.states);
        assert_eq!(dense.awake_max, spaced.awake_max);
        assert_eq!(dense.awake_avg, spaced.awake_avg);
        assert!(spaced.rounds > 8 * dense.rounds, "{} vs {}", spaced.rounds, dense.rounds);
        assert_eq!(spaced.key, "na?stride=32");
        // A one-round stride cannot hold a two-round phase.
        assert!(matches!(
            reg.resolve("na?stride=1"),
            Err(SpecError::BadValue { ref param, .. }) if param == "stride"
        ));
    }

    #[test]
    fn gp_balance_dials_average_against_worst_case() {
        let g = generators::gnp_avg_degree(256, 8.0, &mut SmallRng::seed_from_u64(8));
        let reg = default_registry();
        let mean_over_seeds = |spec: &str| -> (f64, f64) {
            let runner = reg.resolve(spec).unwrap();
            let mut avg = 0.0;
            let mut max = 0.0;
            for seed in 0..6u64 {
                let r = runner.run(&g, seed).unwrap();
                assert!(r.correct, "{spec} seed {seed}");
                avg += r.awake_avg;
                max += r.awake_max as f64;
            }
            (avg / 6.0, max / 6.0)
        };
        let (avg0, _) = mean_over_seeds("gp-avg?balance=0");
        let (avg6, _) = mean_over_seeds("gp-avg?balance=6");
        assert!(
            avg6 < avg0 / 2.0,
            "balance=6 must at least halve the node average: {avg6} vs {avg0}"
        );
    }

    #[test]
    fn contradictory_strategy_params_are_rejected() {
        let reg = default_registry();
        let err = reg.resolve("awake?strategy=awake&round_efficient=true").unwrap_err();
        assert!(matches!(err, SpecError::BadValue { ref param, .. } if param == "round_efficient"));
        // Each spelling alone still works.
        assert!(reg.resolve("awake?strategy=round").is_ok());
        assert!(reg.resolve("awake?round_efficient=false").is_ok());
        assert!(reg.resolve("ldt?strategy=round").is_ok());
        assert!(matches!(
            reg.resolve("ldt?strategy=sideways"),
            Err(SpecError::BadValue { .. })
        ));
        // The new families are strict about their parameters too.
        assert!(matches!(reg.resolve("na?balance=3"), Err(SpecError::UnknownParam { .. })));
        assert!(matches!(reg.resolve("gp-avg?stride=4"), Err(SpecError::UnknownParam { .. })));
        assert!(matches!(reg.resolve("le?balance=3"), Err(SpecError::UnknownParam { .. })));
        assert!(matches!(
            reg.resolve("le?bits=0"),
            Err(SpecError::BadValue { ref param, .. }) if param == "bits"
        ));
        assert!(matches!(
            reg.resolve("le?bits=41"),
            Err(SpecError::BadValue { ref param, .. }) if param == "bits"
        ));
        assert!(matches!(
            reg.resolve("le?max_epochs=0"),
            Err(SpecError::BadValue { ref param, .. }) if param == "max_epochs"
        ));
        assert!(reg.resolve("le?bits=8&max_epochs=16").is_ok());
    }

    #[test]
    fn le_bits_trade_rounds_for_awake_through_the_registry() {
        // The time/energy dial end to end: fewer rank bits finish in
        // far fewer rounds but cost more awake rounds, seed-averaged.
        let g = generators::gnp_avg_degree(256, 8.0, &mut SmallRng::seed_from_u64(15));
        let reg = default_registry();
        let mean = |spec: &str| -> (f64, f64) {
            let runner = reg.resolve(spec).unwrap();
            let mut awake = 0.0;
            let mut rounds = 0.0;
            for seed in 0..6u64 {
                let r = runner.run(&g, seed).unwrap();
                assert!(r.correct, "{spec} seed {seed}");
                awake += r.awake_max as f64 / 6.0;
                rounds += r.rounds as f64 / 6.0;
            }
            (awake, rounds)
        };
        let (awake_fast, rounds_fast) = mean("le?bits=2");
        let (awake_cheap, rounds_cheap) = mean("le?bits=6");
        assert!(rounds_fast * 2.0 < rounds_cheap, "{rounds_fast} vs {rounds_cheap}");
        assert!(awake_cheap < awake_fast, "{awake_cheap} vs {awake_fast}");
    }

    #[test]
    fn default_fault_params_collapse_to_the_clean_key() {
        let reg = default_registry();
        // Spelled-out defaults are the same runner identity as the bare key.
        for (spec, clean) in [
            ("awake?loss=0", "awake"),
            ("awake?loss=0.0&crash=0&jitter=0", "awake"),
            ("luby?crash=0.0&crash_from=0", "luby"),
            ("vt?adv_ids=random", "vt"),
            ("vt?id_upper=4096&loss=0", "vt?id_upper=4096"),
        ] {
            assert_eq!(reg.resolve(spec).unwrap().key(), clean, "{spec}");
        }
        // Non-default fault params stay in the key, as written.
        assert_eq!(reg.resolve("awake?loss=0.05").unwrap().key(), "awake?loss=0.05");
        assert_eq!(
            reg.resolve("vt?id_upper=6144&adv_ids=worst").unwrap().key(),
            "vt?id_upper=6144&adv_ids=worst"
        );
    }

    #[test]
    fn fault_params_are_validated() {
        let reg = default_registry();
        for bad in ["awake?loss=1.5", "awake?loss=-0.1", "luby?crash=2", "vt?loss=nan"] {
            assert!(
                matches!(reg.resolve(bad), Err(SpecError::BadValue { .. })),
                "{bad} must be rejected"
            );
        }
        assert!(matches!(
            reg.resolve("awake?crash=0.1&crash_from=9&crash_until=3"),
            Err(SpecError::BadValue { ref param, .. }) if param == "crash_until"
        ));
        assert!(matches!(
            reg.resolve("vt?adv_ids=sideways"),
            Err(SpecError::BadValue { ref param, .. }) if param == "adv_ids"
        ));
        assert!(matches!(
            reg.resolve("luby?trace=flamegraph"),
            Err(SpecError::BadValue { ref param, .. }) if param == "trace"
        ));
        // Every builtin accepts the shared fault and execution params.
        for key in default_registry().keys() {
            assert!(
                reg.resolve(&format!(
                    "{key}?loss=0.01&crash=0.0001&jitter=2&shards=2&trace=profile"
                ))
                .is_ok(),
                "{key} must accept fault params"
            );
        }
    }

    #[test]
    fn shards_param_is_execution_only() {
        let reg = default_registry();
        // Any shard count collapses to the bare key — including auto (0).
        assert_eq!(reg.resolve("luby?shards=8").unwrap().key(), "luby");
        assert_eq!(reg.resolve("awake?shards=0").unwrap().key(), "awake");
        assert_eq!(reg.resolve("vt?id_upper=4096&shards=2").unwrap().key(), "vt?id_upper=4096");
        // …and runs are byte-identical to the serial engine, faults and all.
        let g = generators::gnp(80, 0.1, &mut SmallRng::seed_from_u64(33));
        for (serial, sharded) in [
            ("luby", "luby?shards=8"),
            ("awake?loss=0.02&jitter=2", "awake?loss=0.02&jitter=2&shards=4"),
        ] {
            let a = reg.resolve(serial).unwrap().run(&g, 7).unwrap();
            let b = reg.resolve(sharded).unwrap().run(&g, 7).unwrap();
            assert_eq!(a.key, b.key, "{sharded}: key must collapse");
            assert_eq!(a.states, b.states, "{sharded}: states diverged");
            assert_eq!(a.metrics, b.metrics, "{sharded}: metrics diverged");
        }
    }

    #[test]
    fn trace_param_is_execution_only() {
        let reg = default_registry();
        // Both sink kinds collapse to the bare key, composing with the
        // other execution-only params.
        assert_eq!(reg.resolve("luby?trace=profile").unwrap().key(), "luby");
        assert_eq!(reg.resolve("awake?trace=jsonl&shards=4").unwrap().key(), "awake");
        assert_eq!(
            reg.resolve("vt?id_upper=4096&trace=profile").unwrap().key(),
            "vt?id_upper=4096"
        );
        // A traced runner exposes its handle; an untraced one does not.
        let traced = reg.resolve("luby?trace=profile").unwrap();
        assert!(traced.trace().is_some());
        assert!(reg.resolve("luby").unwrap().trace().is_none());
        // Runs are byte-identical to the untraced runner — sharded and
        // faulted included — and the profile actually aggregated them.
        let g = generators::gnp(80, 0.1, &mut SmallRng::seed_from_u64(33));
        for (plain, with_trace) in [
            ("luby", "luby?trace=profile"),
            ("awake?loss=0.02&shards=4", "awake?loss=0.02&shards=4&trace=profile"),
        ] {
            let a = reg.resolve(plain).unwrap().run(&g, 7).unwrap();
            let runner = reg.resolve(with_trace).unwrap();
            let b = runner.run(&g, 7).unwrap();
            assert_eq!(a.key, b.key, "{with_trace}: key must collapse");
            assert_eq!(a.states, b.states, "{with_trace}: states diverged");
            assert_eq!(a.metrics, b.metrics, "{with_trace}: metrics diverged");
            let report = runner.trace().unwrap().report().expect("profile report");
            assert!(report.contains("1 run,"), "report should cover the run:\n{report}");
        }
    }

    #[test]
    fn zero_rate_fault_runs_are_byte_identical_to_clean_runs() {
        let g = generators::gnp(80, 0.1, &mut SmallRng::seed_from_u64(21));
        let reg = default_registry();
        for key in ["awake", "luby", "vt", "na"] {
            let clean = reg.resolve(key).unwrap().run(&g, 13).unwrap();
            let zeroed =
                reg.resolve(&format!("{key}?loss=0&crash=0&jitter=0")).unwrap().run(&g, 13).unwrap();
            assert_eq!(clean.key, zeroed.key, "{key}: keys must collapse");
            assert_eq!(clean.states, zeroed.states, "{key}: states diverged");
            assert_eq!(clean.awake_max, zeroed.awake_max);
            assert_eq!(clean.rounds, zeroed.rounds);
            assert_eq!(clean.messages, zeroed.messages);
            assert_eq!(zeroed.crashed, 0);
            assert_eq!(zeroed.faulted, 0);
        }
    }

    #[test]
    fn lossy_links_are_observable_and_runs_stay_reproducible() {
        let g = generators::gnp(96, 0.1, &mut SmallRng::seed_from_u64(30));
        let reg = default_registry();
        let lossy = reg.resolve("luby?loss=0.05").unwrap();
        let a = lossy.run(&g, 3).unwrap();
        let b = lossy.run(&g, 3).unwrap();
        assert!(a.faulted > 0, "5% loss on a dense run must drop something");
        assert_eq!(a.states, b.states, "lossy runs are deterministic per seed");
        assert_eq!(a.faulted, b.faulted);
        // Luby with message loss mis-coordinates: the detection machinery
        // (survivor-aware check with an all-alive mask = classic check)
        // must notice rather than report a clean MIS, at least for some
        // seeds. Loss never crashes nodes.
        assert_eq!(a.crashed, 0);
        let broken = (0..8u64).filter(|&s| !lossy.run(&g, s).unwrap().correct).count();
        assert!(broken > 0, "5% loss must break Luby on some of 8 seeds");
    }

    #[test]
    fn crashes_are_exempted_by_survivor_verification() {
        let g = generators::gnp(120, 0.08, &mut SmallRng::seed_from_u64(31));
        let reg = default_registry();
        // A crash window confined to the early rounds of Luby: crashed
        // nodes abort mid-protocol, survivors still finish an MIS of the
        // induced subgraph.
        let runner = reg.resolve("luby?crash=0.02&crash_until=3").unwrap();
        let mut crashed_total = 0;
        for seed in 0..6u64 {
            let r = runner.run(&g, seed).unwrap();
            crashed_total += r.crashed;
            assert!(
                r.correct,
                "seed {seed}: survivors must verify (crashed {})",
                r.crashed
            );
            let alive = r.metrics.alive();
            assert_eq!(alive.iter().filter(|&&a| !a).count(), r.crashed);
            awake_mis_core::check_mis_survivors(&g, &r.states, &alive).unwrap();
        }
        assert!(crashed_total > 0, "2% x 4 rounds x 120 nodes x 6 seeds must crash someone");
    }

    #[test]
    fn worst_vt_ids_have_the_longest_schedules() {
        let upper = 6144u64;
        let ids = worst_vt_ids(64, upper);
        assert_eq!(ids.len(), 64);
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "sorted distinct");
        let floor = ids.iter().map(|&k| vtree::wake_count(k, upper)).min().unwrap();
        // Every ID *not* selected has a schedule no longer than the
        // shortest selected one.
        for k in (1..=upper).step_by(37) {
            if !ids.contains(&k) {
                assert!(vtree::wake_count(k, upper) <= floor, "id {k} beats the selection");
            }
        }
    }
}
