//! Statistics, growth-rate fitting, table rendering, the energy model,
//! and the algorithm registry for the `awake-mis` experiment harness.
//!
//! Every experiment in `EXPERIMENTS.md` is built from these pieces:
//! [`spec`] turns textual algorithm specs (`awake?round_efficient=true`)
//! into executable [`spec::RunnerHandle`]s through an extensible
//! [`spec::Registry`] (built-ins pre-registered, user algorithms
//! addable); [`runners`] holds the built-in runner implementations and
//! the normalized [`runners::AlgoResult`]; [`grid`] fans a cartesian
//! `{algorithm × family × n × seed}` grid across OS threads with
//! per-worker scratch reuse and emits the `BENCH_grid.json` payload;
//! [`sweep`] expands *range-valued* specs (`le?bits=6..14&step=4`) into
//! spec families, runs them with energy pricing, and computes per-cell
//! Pareto frontiers over `(rounds, max awake, mean awake, energy)` — the
//! `BENCH_sweep.json` energy-frontier payload; [`faults`] sweeps the
//! fault-model knobs (`loss`, `crash`, `jitter` — parameters every
//! builtin accepts) into robustness surfaces with survivor-aware
//! verification — the `BENCH_faults.json` payload; [`stats`] summarizes
//! repeated runs; [`fit`] decides which growth law (`log n` vs
//! `log log n`) a measured curve follows; [`table`] renders the
//! paper-style tables; and [`energy`] converts awake/sleeping rounds
//! into the energy figures that motivate the sleeping model (paper §1.2).

pub mod churn;
pub mod energy;
pub mod faults;
pub mod fit;
pub mod grid;
pub mod runners;
pub mod shattering;
pub mod spec;
pub mod stats;
pub mod sweep;
pub mod table;
pub mod timeline;

pub use churn::{
    random_batch, run_churn, ChurnCell, ChurnJob, ChurnMeta, ChurnPoint, ChurnResult, ChurnSpec,
    EpochReport, MisService, ServeThroughput,
};
pub use energy::EnergyModel;
pub use faults::{fault_axis, run_faults, FaultAxis, FaultCell, FaultResult, FaultSweepSpec};
pub use fit::{fit_linear, growth_exponent, Fit};
pub use grid::{run_grid, GridCell, GridJob, GridMeta, GridPoint, GridResult, GridSpec};
pub use runners::AlgoResult;
pub use spec::{default_registry, AlgorithmSpec, DynRunner, Registry, RunnerHandle, SpecError};
pub use stats::Summary;
pub use sweep::{
    expand_families, run_sweep, SweepCell, SweepEntry, SweepGroup, SweepPoint, SweepResult,
    SweepSpec,
};
pub use table::Table;
pub use timeline::{render_timeline, TimelineError};
