//! Churn-epoch experiment harness and the long-running MIS service.
//!
//! A [`ChurnSpec`] describes a grid of
//! `{algorithm × family × n × churn rate × seed}`; each point boots a
//! [`MisService`] (one-shot MIS via the registry runner, normalized into
//! an embedded [`GridPoint`] through the exact code path the grid
//! harness uses, so a zero-delta churn point is byte-identical to the
//! corresponding one-shot grid point), then alternates epochs of random
//! topology deltas ([`random_batch`]) with incremental repair
//! ([`awake_mis_core::incremental::repair`]). The headline measurement
//! is **locality**: `woken_ratio` compares the nodes repair actually
//! woke against what a full recompute would have woken (every active
//! node, every epoch) — the churn-side version of the paper's awake
//! complexity argument.
//!
//! Determinism contract: identical to the grid's. Every point is a pure
//! function of its coordinates plus the spec's churn knobs;
//! [`ChurnResult::payload_json`] is byte-identical across thread
//! counts. Wall-clock (including the optional full-recompute timing
//! comparison) lives only in the `meta`/`timing` lines appended by
//! [`ChurnResult::to_json`].

use crate::grid::{json_escape, point_from_run, summary_json, GridJob, GridPoint};
use crate::runners::AlgoResult;
use crate::spec::RunnerHandle;
use crate::stats::Summary;
use awake_mis_core::incremental::{repair, RepairConfig, SubSolution};
use awake_mis_core::MisState;
use graphgen::delta::{DeltaBatch, DeltaError, DynGraph};
use graphgen::{Graph, GraphFamily, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sleeping_congest::batch::{resolve_threads, run_batch};
use sleeping_congest::{ScratchArena, SimError};
use std::collections::HashSet;
use std::time::Instant;

/// Deterministic seed mixer (splitmix64 finalizer), used to derive
/// per-epoch batch and repair seeds from the point seed.
fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A churn experiment grid.
#[derive(Debug, Clone)]
pub struct ChurnSpec {
    /// Algorithms servicing the MIS (bootstrap and frontier repair).
    pub algorithms: Vec<RunnerHandle>,
    /// Graph families generating the initial instance.
    pub families: Vec<GraphFamily>,
    /// Initial node counts.
    pub sizes: Vec<usize>,
    /// Churn rates: effective deltas per epoch as a fraction of `n`
    /// (`rate * n` rounded; 0 is allowed and means delta-free epochs).
    pub rates: Vec<f64>,
    /// Epochs per point (delta batch + repair each).
    pub epochs: usize,
    /// Fraction of edge ops that are inserts (the rest delete).
    pub insert_frac: f64,
    /// Fraction of ops that are node churn (half removals, half
    /// additions) instead of edge ops.
    pub node_churn: f64,
    /// Seeds (innermost axis); drives instance, bootstrap, batches,
    /// and repair.
    pub seeds: Vec<u64>,
    /// Worker threads; `0` = all hardware threads. Never affects
    /// results.
    pub threads: usize,
    /// Also run a from-scratch recompute every epoch and record its
    /// wall clock in the `timing` section (doubles the work; the
    /// deterministic payload is unaffected).
    pub recompute: bool,
}

impl ChurnSpec {
    /// The grid flattened to jobs (algorithm-major, seed-minor).
    pub fn jobs(&self) -> Vec<ChurnJob> {
        let mut jobs = Vec::new();
        for algorithm in &self.algorithms {
            for &family in &self.families {
                for &n in &self.sizes {
                    for &rate in &self.rates {
                        for &seed in &self.seeds {
                            jobs.push(ChurnJob {
                                algorithm: algorithm.clone(),
                                family,
                                n,
                                rate,
                                seed,
                            });
                        }
                    }
                }
            }
        }
        jobs
    }
}

/// One churn-grid coordinate.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnJob {
    /// Algorithm servicing the MIS.
    pub algorithm: RunnerHandle,
    /// Graph family of the initial instance.
    pub family: GraphFamily,
    /// Initial node count.
    pub n: usize,
    /// Deltas per epoch as a fraction of `n`.
    pub rate: f64,
    /// Seed.
    pub seed: u64,
}

/// What one repair epoch did, as reported by [`MisService::apply`].
#[derive(Debug, Clone, Default)]
pub struct EpochReport {
    /// Epoch counter (1-based, monotonically increasing per service).
    pub epoch: u64,
    /// Effective deltas applied this epoch.
    pub deltas: u64,
    /// Nodes the repair woke.
    pub woken: u64,
    /// Frontier size (subset of `woken` that was re-solved).
    pub frontier: u64,
    /// MIS nodes evicted by inserted-edge conflicts.
    pub evicted: u64,
    /// Dominated nodes that lost their dominator.
    pub uncovered: u64,
    /// Rounds the frontier solver ran.
    pub repair_rounds: u64,
    /// Maximum per-node awake rounds in the repair.
    pub awake_max: u64,
    /// Total awake node-rounds in the repair.
    pub awake_total: u64,
    /// Messages the repair sent.
    pub messages: u64,
    /// Reseeded solver attempts beyond the first.
    pub retries: u64,
    /// Whether the repaired MIS verified on the mutated graph.
    pub correct: bool,
    /// Verification/solver error when `correct` is false.
    pub error: Option<String>,
    /// Nodes that joined the MIS this epoch (sorted) — the service's
    /// outgoing "MIS delta" stream.
    pub joined: Vec<NodeId>,
    /// Nodes that left the MIS this epoch (sorted).
    pub left: Vec<NodeId>,
    /// Wall-clock nanoseconds the whole repair took (solver, splice,
    /// verification). Observational only: the churn payload never
    /// includes it, so payloads stay byte-identical across machines.
    pub repair_ns: u64,
    /// Wall-clock nanoseconds of the repair spent verifying candidate
    /// states. Observational only, like [`repair_ns`](Self::repair_ns).
    pub verify_ns: u64,
}

/// A long-running MIS service: holds a [`DynGraph`] and a valid MIS,
/// and turns incoming topology deltas into outgoing MIS deltas by
/// incremental frontier repair with a registry-selected algorithm.
#[derive(Debug, Clone)]
pub struct MisService {
    runner: RunnerHandle,
    graph: DynGraph,
    states: Vec<MisState>,
    cfg: RepairConfig,
    seed: u64,
    epoch: u64,
}

impl MisService {
    /// Boots the service: runs `runner` one-shot on `g` and adopts its
    /// MIS. The returned [`AlgoResult`] carries the bootstrap cost;
    /// its `correct` flag should be checked before trusting the
    /// service.
    pub fn bootstrap(
        runner: RunnerHandle,
        g: Graph,
        seed: u64,
        scratch: &mut ScratchArena,
    ) -> Result<(MisService, AlgoResult), SimError> {
        let r = runner.run_with_scratch(&g, seed, scratch)?;
        let service = MisService::from_parts(runner, DynGraph::new(g), r.states.clone(), seed);
        Ok((service, r))
    }

    /// Assembles a service from an existing dynamic graph and a MIS
    /// known (by the caller) to be valid on its active subgraph.
    pub fn from_parts(
        runner: RunnerHandle,
        graph: DynGraph,
        states: Vec<MisState>,
        seed: u64,
    ) -> MisService {
        MisService { runner, graph, states, cfg: RepairConfig::default(), seed, epoch: 0 }
    }

    /// The current topology.
    pub fn graph(&self) -> &DynGraph {
        &self.graph
    }

    /// The current per-node MIS states.
    pub fn states(&self) -> &[MisState] {
        &self.states
    }

    /// Current MIS size (active nodes only).
    pub fn mis_size(&self) -> usize {
        self.states.iter().filter(|&&s| s == MisState::InMis).count()
    }

    /// Applies one delta batch and repairs the MIS, returning the
    /// epoch's metrics and MIS delta (joined/left).
    ///
    /// # Errors
    ///
    /// Propagates [`DeltaError`] from batch validation; the service is
    /// unchanged in that case. Repair-level failures are reported via
    /// [`EpochReport::correct`]/[`EpochReport::error`] instead (the
    /// service keeps running with its best-attempt states).
    pub fn apply(
        &mut self,
        batch: &DeltaBatch,
        scratch: &mut ScratchArena,
    ) -> Result<EpochReport, DeltaError> {
        let old_in: Vec<bool> =
            self.states.iter().map(|&s| s == MisState::InMis).collect();
        let applied = self.graph.apply(batch)?;
        self.epoch += 1;
        let runner = self.runner.clone();
        let repair_t0 = std::time::Instant::now();
        let out = repair(
            self.graph.graph(),
            self.graph.active(),
            &self.states,
            &applied,
            mix(self.seed, self.epoch),
            &self.cfg,
            |sub, s| {
                runner
                    .run_with_scratch(sub, s, scratch)
                    .map(|r| SubSolution {
                        awake_total: r.metrics.awake_total(),
                        states: r.states,
                        rounds: r.rounds,
                        awake_max: r.awake_max,
                        messages: r.messages,
                    })
                    .map_err(|e| e.to_string())
            },
        );
        let repair_ns = repair_t0.elapsed().as_nanos() as u64;
        let mut joined = Vec::new();
        let mut left = Vec::new();
        for (v, &s) in out.states.iter().enumerate() {
            let now_in = s == MisState::InMis && self.graph.is_active(v as NodeId);
            let was_in = v < old_in.len() && old_in[v];
            match (was_in, now_in) {
                (false, true) => joined.push(v as NodeId),
                (true, false) => left.push(v as NodeId),
                _ => {}
            }
        }
        self.states = out.states;
        Ok(EpochReport {
            epoch: self.epoch,
            deltas: applied.ops() as u64,
            woken: out.woken,
            frontier: out.frontier.len() as u64,
            evicted: out.evicted,
            uncovered: out.uncovered,
            repair_rounds: out.repair_rounds,
            awake_max: out.awake_max,
            awake_total: out.awake_total,
            messages: out.messages,
            retries: out.retries,
            correct: out.correct,
            error: out.error,
            joined,
            left,
            repair_ns,
            verify_ns: out.verify_ns,
        })
    }
}

/// Generates a random, conflict-free delta batch against the current
/// dynamic graph: `deltas` operations, `insert_frac` of the edge ops
/// inserting absent edges between active nodes, the rest deleting
/// existing edges (picked by random node + random port, so high-degree
/// nodes shed edges proportionally more often), and `node_churn` of all
/// ops churning nodes (alternating removals and additions; additions
/// are wired to two random active nodes so they are not trivially
/// isolated). Deterministic in `(graph, arguments)`.
pub fn random_batch(
    d: &DynGraph,
    deltas: usize,
    insert_frac: f64,
    node_churn: f64,
    seed: u64,
) -> DeltaBatch {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut batch = DeltaBatch::new();
    let g = d.graph();
    let active: Vec<NodeId> = (0..d.n() as NodeId).filter(|&v| d.is_active(v)).collect();
    // Guards: edges touched this batch (insert/delete conflicts), node
    // ids an inserted edge uses (cannot be removed by the same batch),
    // and nodes already removed (no further ops may touch them).
    let mut touched: HashSet<(NodeId, NodeId)> = HashSet::new();
    let mut pinned: HashSet<NodeId> = HashSet::new();
    let mut removed: HashSet<NodeId> = HashSet::new();
    let mut remove_next = true;
    for _ in 0..deltas {
        // A few placement attempts per op; skip the op if the random
        // draws keep colliding (dense graph, tiny graph, …).
        for _attempt in 0..8 {
            let roll: f64 = rng.gen();
            if roll < node_churn {
                if remove_next {
                    if active.is_empty() {
                        continue;
                    }
                    let v = active[rng.gen_range(0..active.len())];
                    if removed.contains(&v) || pinned.contains(&v) {
                        continue;
                    }
                    batch.remove_node(v);
                    removed.insert(v);
                    remove_next = false;
                } else {
                    let id = (d.n() + batch.added_count()) as NodeId;
                    batch.add_nodes(1);
                    for _ in 0..2 {
                        let w = active[rng.gen_range(0..active.len())];
                        if !removed.contains(&w) && touched.insert((w.min(id), w.max(id))) {
                            batch.insert_edge(id, w);
                            pinned.insert(w);
                        }
                    }
                    remove_next = true;
                }
                break;
            } else if roll < node_churn + (1.0 - node_churn) * insert_frac {
                if active.len() < 2 {
                    break;
                }
                let a = active[rng.gen_range(0..active.len())];
                let b = active[rng.gen_range(0..active.len())];
                if a == b
                    || g.has_edge(a, b)
                    || removed.contains(&a)
                    || removed.contains(&b)
                    || touched.contains(&(a.min(b), a.max(b)))
                {
                    continue;
                }
                batch.insert_edge(a, b);
                touched.insert((a.min(b), a.max(b)));
                pinned.insert(a);
                pinned.insert(b);
                break;
            } else {
                if active.is_empty() {
                    break;
                }
                let v = active[rng.gen_range(0..active.len())];
                if g.degree(v) == 0 || removed.contains(&v) {
                    continue;
                }
                let u = g.neighbors(v)[rng.gen_range(0..g.degree(v))];
                if removed.contains(&u) || !touched.insert((v.min(u), v.max(u))) {
                    continue;
                }
                batch.delete_edge(v, u);
                break;
            }
        }
    }
    batch
}

/// Normalized measurements of one churn point: a bootstrap plus
/// `epochs` delta/repair cycles.
#[derive(Debug, Clone)]
pub struct ChurnPoint {
    /// The coordinates this point was measured at.
    pub job: ChurnJob,
    /// Actual node count of the generated initial instance.
    pub nodes: usize,
    /// The one-shot bootstrap run, normalized exactly like a grid
    /// point (same code path — a zero-delta churn point embeds a
    /// byte-identical copy of the corresponding grid point).
    pub bootstrap: GridPoint,
    /// Epochs actually run.
    pub epochs: u64,
    /// Total effective deltas applied.
    pub deltas: u64,
    /// Total nodes woken by repairs.
    pub woken: u64,
    /// Nodes a full recompute would have woken: the active node count,
    /// summed over epochs.
    pub woken_full: u64,
    /// `woken / woken_full` — the locality headline (0 when no epochs
    /// ran).
    pub woken_ratio: f64,
    /// Total MIS evictions from inserted-edge conflicts.
    pub evicted: u64,
    /// Total dominated nodes that lost their dominator.
    pub uncovered: u64,
    /// Total frontier-solver rounds.
    pub repair_rounds: u64,
    /// Maximum per-node awake rounds over all repairs.
    pub awake_max: u64,
    /// Total awake node-rounds spent repairing, per effective delta
    /// (0 when no deltas were applied).
    pub awake_per_delta: f64,
    /// Total MIS-delta stream volume (nodes joined + left).
    pub mis_deltas: u64,
    /// Total messages sent by repairs.
    pub messages: u64,
    /// Total reseeded solver retries.
    pub retries: u64,
    /// Final MIS size.
    pub mis_size: usize,
    /// Final active node count.
    pub active_nodes: usize,
    /// Bootstrap and every epoch verified correct.
    pub correct: bool,
    /// Wall clock of the service path (bootstrap + batches + repairs),
    /// nanoseconds; `timing` section only.
    pub elapsed_ns: u64,
    /// Wall clock of per-epoch full recomputes when
    /// [`ChurnSpec::recompute`] is set (0 otherwise); `timing` only.
    pub recompute_ns: u64,
}

/// Aggregates over the seed axis for one `{algorithm × family × n ×
/// rate}`.
#[derive(Debug, Clone)]
pub struct ChurnCell {
    /// Algorithm of this cell.
    pub algorithm: RunnerHandle,
    /// Graph family of this cell.
    pub family: GraphFamily,
    /// Initial node count of this cell.
    pub n: usize,
    /// Churn rate of this cell.
    pub rate: f64,
    /// Seeds aggregated.
    pub runs: usize,
    /// Total effective deltas across seeds.
    pub deltas: u64,
    /// Summary of the per-seed woken ratio (repair vs full recompute).
    pub woken_ratio: Summary,
    /// Summary of awake node-rounds per delta.
    pub awake_per_delta: Summary,
    /// Summary of total repair rounds.
    pub repair_rounds: Summary,
    /// Total reseeded solver retries across seeds.
    pub retries: u64,
    /// Whether every seed's bootstrap and every epoch verified.
    pub all_correct: bool,
}

/// The outcome of [`run_churn`].
#[derive(Debug, Clone)]
pub struct ChurnResult {
    /// The spec that ran.
    pub spec: ChurnSpec,
    /// Per-run measurements, in grid order.
    pub points: Vec<ChurnPoint>,
    /// Per-cell aggregates, in grid order.
    pub cells: Vec<ChurnCell>,
}

/// Sustained-throughput figures from a `serve` run, recorded in the
/// meta line (machine-dependent, excluded from the payload).
#[derive(Debug, Clone)]
pub struct ServeThroughput {
    /// Node count of the serve instance.
    pub n: usize,
    /// Algorithm key that serviced it.
    pub algorithm: String,
    /// Delta batches applied.
    pub batches: u64,
    /// Effective deltas applied.
    pub deltas: u64,
    /// Wall clock of the serve loop (excluding bootstrap), ms.
    pub wall_ms: u128,
    /// Sustained effective deltas per second.
    pub deltas_per_sec: f64,
}

/// Non-deterministic churn-run metadata (kept out of the payload).
#[derive(Debug, Clone)]
pub struct ChurnMeta {
    /// Worker threads actually used.
    pub threads: usize,
    /// Wall clock of the whole grid, ms.
    pub wall_ms: u128,
    /// Optional serve-bin throughput measurement.
    pub serve: Option<ServeThroughput>,
}

/// Runs one churn point on a caller-provided scratch.
pub fn run_churn_point(
    job: &ChurnJob,
    spec: &ChurnSpec,
    scratch: &mut ScratchArena,
) -> ChurnPoint {
    let start = Instant::now();
    let g = job.family.generate(job.n, job.seed);
    let nodes = g.n();
    let grid_job = GridJob {
        algorithm: job.algorithm.clone(),
        family: job.family,
        n: job.n,
        seed: job.seed,
    };
    let res = job.algorithm.run_with_scratch(&g, job.seed, scratch);
    let (bootstrap, result) = point_from_run(&grid_job, nodes, res);

    let mut point = ChurnPoint {
        job: job.clone(),
        nodes,
        epochs: 0,
        deltas: 0,
        woken: 0,
        woken_full: 0,
        woken_ratio: 0.0,
        evicted: 0,
        uncovered: 0,
        repair_rounds: 0,
        awake_max: 0,
        awake_per_delta: 0.0,
        mis_deltas: 0,
        messages: 0,
        retries: 0,
        mis_size: bootstrap.mis_size,
        active_nodes: nodes,
        correct: bootstrap.correct,
        elapsed_ns: 0,
        recompute_ns: 0,
        bootstrap,
    };
    let Some(r) = result else {
        point.elapsed_ns = start.elapsed().as_nanos() as u64;
        return point;
    };
    if !point.correct {
        // Can't service from an invalid MIS; report the bootstrap and
        // stop.
        point.elapsed_ns = start.elapsed().as_nanos() as u64;
        return point;
    }

    let mut service =
        MisService::from_parts(job.algorithm.clone(), DynGraph::new(g), r.states, job.seed);
    let deltas_per_epoch = (job.rate * nodes as f64).round() as usize;
    let mut awake_total = 0u64;
    let mut recompute_ns = 0u64;
    for epoch in 0..spec.epochs {
        let batch = random_batch(
            service.graph(),
            deltas_per_epoch,
            spec.insert_frac,
            spec.node_churn,
            mix(job.seed, 0x10_0000 + epoch as u64),
        );
        let rep = match service.apply(&batch, scratch) {
            Ok(rep) => rep,
            Err(e) => {
                point.correct = false;
                point.bootstrap.sim_error = Some(format!("epoch {epoch}: {e}"));
                break;
            }
        };
        point.epochs += 1;
        point.deltas += rep.deltas;
        point.woken += rep.woken;
        point.woken_full += service.graph().active_count() as u64;
        point.evicted += rep.evicted;
        point.uncovered += rep.uncovered;
        point.repair_rounds += rep.repair_rounds;
        point.awake_max = point.awake_max.max(rep.awake_max);
        point.mis_deltas += (rep.joined.len() + rep.left.len()) as u64;
        point.messages += rep.messages;
        point.retries += rep.retries;
        awake_total += rep.awake_total;
        point.correct &= rep.correct;

        if spec.recompute {
            // Time what a from-scratch run on the current active graph
            // costs; the result is discarded and the payload unaffected.
            let t = Instant::now();
            let keep: Vec<NodeId> = (0..service.graph().n() as NodeId)
                .filter(|&v| service.graph().is_active(v))
                .collect();
            let (sub, _) = service.graph().graph().induced(&keep);
            let _ = job.algorithm.run_with_scratch(
                &sub,
                mix(job.seed, 0x20_0000 + epoch as u64),
                scratch,
            );
            recompute_ns += t.elapsed().as_nanos() as u64;
        }
    }
    if point.woken_full > 0 {
        point.woken_ratio = point.woken as f64 / point.woken_full as f64;
    }
    if point.deltas > 0 {
        point.awake_per_delta = awake_total as f64 / point.deltas as f64;
    }
    point.mis_size = service.mis_size();
    point.active_nodes = service.graph().active_count();
    point.recompute_ns = recompute_ns;
    point.elapsed_ns = start.elapsed().as_nanos() as u64 - recompute_ns;
    point
}

/// Runs the whole churn grid, fanning jobs over `spec.threads` workers
/// with per-worker scratch reuse. Points and cells come back in grid
/// order and — wall-clock fields apart — bit-identical for every
/// thread count.
pub fn run_churn(spec: &ChurnSpec) -> ChurnResult {
    let jobs = spec.jobs();
    let threads = resolve_threads(spec.threads);
    let points = run_batch(&jobs, threads, |_| ScratchArena::new(), |scratch, _i, job| {
        run_churn_point(job, spec, scratch)
    });
    let cells = aggregate(spec, &points);
    ChurnResult { spec: spec.clone(), points, cells }
}

fn aggregate(spec: &ChurnSpec, points: &[ChurnPoint]) -> Vec<ChurnCell> {
    let runs = spec.seeds.len();
    if runs == 0 {
        return Vec::new();
    }
    points
        .chunks(runs)
        .map(|chunk| {
            let head = &chunk[0].job;
            let woken_ratio: Vec<f64> = chunk.iter().map(|p| p.woken_ratio).collect();
            let awake_per_delta: Vec<f64> = chunk.iter().map(|p| p.awake_per_delta).collect();
            let repair_rounds: Vec<u64> = chunk.iter().map(|p| p.repair_rounds).collect();
            ChurnCell {
                algorithm: head.algorithm.clone(),
                family: head.family,
                n: head.n,
                rate: head.rate,
                runs,
                deltas: chunk.iter().map(|p| p.deltas).sum(),
                woken_ratio: Summary::of(&woken_ratio),
                awake_per_delta: Summary::of(&awake_per_delta),
                repair_rounds: Summary::of_u64(&repair_rounds),
                retries: chunk.iter().map(|p| p.retries).sum(),
                all_correct: chunk.iter().all(|p| p.correct),
            }
        })
        .collect()
}

impl ChurnPoint {
    /// The point's deterministic JSON object — one line of the
    /// `points` section of `BENCH_churn.json`. The embedded
    /// `bootstrap` object reuses the grid point format verbatim.
    pub fn json(&self) -> String {
        format!(
            "{{\"algorithm\":\"{}\",\"family\":\"{}\",\"n\":{},\"rate\":{},\"seed\":{},\
             \"nodes\":{},\"bootstrap\":{},\"epochs\":{},\"deltas\":{},\"woken\":{},\
             \"woken_full\":{},\"woken_ratio\":{},\"evicted\":{},\"uncovered\":{},\
             \"repair_rounds\":{},\"awake_max\":{},\"awake_per_delta\":{},\"mis_deltas\":{},\
             \"messages\":{},\"retries\":{},\"mis_size\":{},\"active_nodes\":{},\"correct\":{}}}",
            json_escape(self.job.algorithm.key()),
            self.job.family.key(),
            self.job.n,
            self.job.rate,
            self.job.seed,
            self.nodes,
            self.bootstrap.json(),
            self.epochs,
            self.deltas,
            self.woken,
            self.woken_full,
            self.woken_ratio,
            self.evicted,
            self.uncovered,
            self.repair_rounds,
            self.awake_max,
            self.awake_per_delta,
            self.mis_deltas,
            self.messages,
            self.retries,
            self.mis_size,
            self.active_nodes,
            self.correct,
        )
    }
}

impl ChurnCell {
    /// The payload fields that identify one churn cell, in key order.
    pub const KEY_FIELDS: [&'static str; 4] = ["algorithm", "family", "n", "rate"];

    /// This cell's identity as textual key components matching
    /// [`Self::KEY_FIELDS`] and the artifact JSON spelling (the rate
    /// renders exactly as the payload writes it).
    pub fn cell_key(&self) -> Vec<String> {
        vec![
            self.algorithm.key().to_string(),
            self.family.key(),
            self.n.to_string(),
            format!("{}", self.rate),
        ]
    }

    fn json(&self) -> String {
        format!(
            "{{\"algorithm\":\"{}\",\"family\":\"{}\",\"n\":{},\"rate\":{},\"runs\":{},\
             \"deltas\":{},\"woken_ratio\":{},\"awake_per_delta\":{},\"repair_rounds\":{},\
             \"retries\":{},\"all_correct\":{}}}",
            json_escape(self.algorithm.key()),
            self.family.key(),
            self.n,
            self.rate,
            self.runs,
            self.deltas,
            summary_json(&self.woken_ratio),
            summary_json(&self.awake_per_delta),
            summary_json(&self.repair_rounds),
            self.retries,
            self.all_correct,
        )
    }
}

impl ChurnResult {
    /// The deterministic JSON payload: schema id, spec echo, cells,
    /// points. Byte-identical across thread counts and repeat runs.
    pub fn payload_json(&self) -> String {
        self.json_with_meta(None)
    }

    /// The full JSON document: payload plus single-line `meta` and
    /// `timing` sections (both excluded from determinism comparisons).
    pub fn to_json(&self, meta: &ChurnMeta) -> String {
        self.json_with_meta(Some(meta))
    }

    fn json_with_meta(&self, meta: Option<&ChurnMeta>) -> String {
        let mut out = String::from("{\n  \"schema\": \"awake-mis/bench-churn/v1\",\n");
        if let Some(m) = meta {
            let serve = match &m.serve {
                Some(s) => format!(
                    ", \"serve\": {{\"n\": {}, \"algorithm\": \"{}\", \"batches\": {}, \
                     \"deltas\": {}, \"wall_ms\": {}, \"deltas_per_sec\": {}}}",
                    s.n,
                    json_escape(&s.algorithm),
                    s.batches,
                    s.deltas,
                    s.wall_ms,
                    s.deltas_per_sec,
                ),
                None => String::new(),
            };
            out.push_str(&format!(
                "  \"meta\": {{\"threads\": {}, \"wall_ms\": {}{serve}}},\n",
                m.threads, m.wall_ms
            ));
            let ns: Vec<String> = self.points.iter().map(|p| p.elapsed_ns.to_string()).collect();
            let rns: Vec<String> =
                self.points.iter().map(|p| p.recompute_ns.to_string()).collect();
            out.push_str(&format!(
                "  \"timing\": {{\"elapsed_ns\": [{}], \"recompute_ns\": [{}]}},\n",
                ns.join(", "),
                rns.join(", ")
            ));
        }
        let algorithms: Vec<String> = self
            .spec
            .algorithms
            .iter()
            .map(|a| format!("\"{}\"", json_escape(a.key())))
            .collect();
        let families: Vec<String> =
            self.spec.families.iter().map(|f| format!("\"{}\"", f.key())).collect();
        let sizes: Vec<String> = self.spec.sizes.iter().map(|n| n.to_string()).collect();
        let rates: Vec<String> = self.spec.rates.iter().map(|r| r.to_string()).collect();
        let seeds: Vec<String> = self.spec.seeds.iter().map(|s| s.to_string()).collect();
        out.push_str(&format!(
            "  \"spec\": {{\"algorithms\": [{}], \"families\": [{}], \"sizes\": [{}], \
             \"rates\": [{}], \"epochs\": {}, \"insert_frac\": {}, \"node_churn\": {}, \
             \"seeds\": [{}]}},\n",
            algorithms.join(", "),
            families.join(", "),
            sizes.join(", "),
            rates.join(", "),
            self.spec.epochs,
            self.spec.insert_frac,
            self.spec.node_churn,
            seeds.join(", "),
        ));
        out.push_str("  \"cells\": [\n");
        let cells: Vec<String> = self.cells.iter().map(|c| format!("    {}", c.json())).collect();
        out.push_str(&cells.join(",\n"));
        out.push_str("\n  ],\n  \"points\": [\n");
        let points: Vec<String> = self.points.iter().map(|p| format!("    {}", p.json())).collect();
        out.push_str(&points.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::default_registry;
    use awake_mis_core::check_mis_survivors;

    fn tiny_spec(threads: usize) -> ChurnSpec {
        ChurnSpec {
            algorithms: default_registry().resolve_list("luby,vt").unwrap(),
            families: vec![GraphFamily::Er, GraphFamily::Tree],
            sizes: vec![48],
            rates: vec![0.0, 0.05],
            epochs: 4,
            insert_frac: 0.5,
            node_churn: 0.1,
            seeds: vec![1, 2],
            threads,
            recompute: false,
        }
    }

    #[test]
    fn churn_grid_shape_and_correctness() {
        let spec = tiny_spec(1);
        let result = run_churn(&spec);
        // algorithms × families × sizes × rates (× seeds for points).
        let cells = spec.algorithms.len() * spec.families.len() * spec.sizes.len()
            * spec.rates.len();
        assert_eq!(result.points.len(), cells * spec.seeds.len());
        assert_eq!(result.cells.len(), cells);
        assert!(result.cells.iter().all(|c| c.all_correct), "every epoch must verify");
        for p in &result.points {
            assert_eq!(p.epochs, 4);
            if p.job.rate == 0.0 {
                assert_eq!(p.deltas, 0, "zero rate must apply zero deltas");
                assert_eq!(p.woken, 0, "zero deltas must wake nobody");
            } else {
                assert!(p.deltas > 0);
                assert!(
                    p.woken_ratio < 1.0,
                    "repair must beat full recompute at 5% churn: {}",
                    p.woken_ratio
                );
            }
        }
    }

    #[test]
    fn payload_is_deterministic_and_well_formed() {
        let spec = tiny_spec(1);
        let a = run_churn(&spec).payload_json();
        let b = run_churn(&spec).payload_json();
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"awake-mis/bench-churn/v1\""));
        assert!(a.contains("\"woken_ratio\""));
        assert!(a.contains("\"bootstrap\":{\"algorithm\""));
        assert!(!a.contains("elapsed_ns"));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }

    #[test]
    fn service_emits_mis_deltas() {
        let g = GraphFamily::Er.generate(64, 3);
        let runner = default_registry().resolve("luby").unwrap();
        let mut scratch = ScratchArena::new();
        let (mut service, r) =
            MisService::bootstrap(runner, g, 3, &mut scratch).unwrap();
        assert!(r.correct);
        let before = service.mis_size();
        let batch = random_batch(service.graph(), 12, 0.5, 0.2, 99);
        assert!(!batch.is_empty());
        let rep = service.apply(&batch, &mut scratch).unwrap();
        assert!(rep.correct, "{:?}", rep.error);
        check_mis_survivors(service.graph().graph(), service.states(), service.graph().active())
            .unwrap();
        let after = service.mis_size();
        assert_eq!(
            after as i64 - before as i64,
            rep.joined.len() as i64 - rep.left.len() as i64,
            "joined/left must reconcile the MIS size"
        );
    }

    #[test]
    fn random_batch_is_deterministic() {
        let d = DynGraph::new(GraphFamily::Er.generate(32, 5));
        let a = random_batch(&d, 10, 0.5, 0.1, 42);
        let b = random_batch(&d, 10, 0.5, 0.1, 42);
        assert_eq!(a, b);
        let c = random_batch(&d, 10, 0.5, 0.1, 43);
        assert_ne!(a, c, "different seeds should produce different batches");
    }
}
