//! Summary statistics over repeated measurements.

/// Five-number-style summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Median (mean of middle pair for even sizes).
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// NaN measures (possible in corrupt or hand-edited artifacts fed to
    /// the diff tooling) do not panic: the sort uses [`f64::total_cmp`],
    /// which orders NaNs after `+inf`, so `min`/`median` stay meaningful
    /// while `mean`/`std` (and `max`, if a NaN is present) propagate NaN
    /// — visible in any report rather than a crash deep in the tooling.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample.
    pub fn of(values: &[f64]) -> Summary {
        assert!(!values.is_empty(), "cannot summarize an empty sample");
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        Summary { n, mean, std: var.sqrt(), min: sorted[0], median, max: sorted[n - 1] }
    }

    /// Summarizes integer measurements.
    pub fn of_u64(values: &[u64]) -> Summary {
        let v: Vec<f64> = values.iter().map(|&x| x as f64).collect();
        Summary::of(&v)
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mean {:.2} ± {:.2} (min {:.0}, med {:.1}, max {:.0}, n={})",
            self.mean, self.std, self.min, self.median, self.max, self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_summary() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn odd_median_and_u64() {
        let s = Summary::of_u64(&[5, 1, 9]);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_rejected() {
        Summary::of(&[]);
    }

    #[test]
    fn nan_measures_do_not_panic() {
        // A NaN in a hand-edited artifact used to panic inside the sort
        // (`partial_cmp(...).expect(...)`); total_cmp orders it after
        // +inf instead, keeping min/median meaningful and letting the
        // positional max and the moments go NaN visibly.
        let s = Summary::of(&[2.0, f64::NAN, 1.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 2.0);
        assert!(s.max.is_nan());
        assert!(s.mean.is_nan());
        assert!(s.std.is_nan());
    }
}
