//! The energy model motivating the sleeping model (paper §1.2).
//!
//! Radio measurements (Feeney–Nilsson 2001; Zheng–Kravets 2005; cited by
//! the paper) consistently find that idle *listening* costs nearly as
//! much as transmitting, while *sleeping* costs one to two orders of
//! magnitude less. The default model uses a 60 mW awake draw vs 3 mW
//! asleep (a 20:1 ratio, conservative for 802.11-class radios) and 1 ms
//! rounds.

/// Per-state power draw and round duration.
///
/// Note the subtlety the paper's model abstracts away: with a *nonzero*
/// sleeping draw, a schedule stretched over `R` rounds pays
/// `R·sleep_mw` regardless of awake complexity — which is exactly why
/// the paper minimizes round complexity *too* (Corollary 14) and treats
/// sleeping cost as negligible ("significantly less", §1.2). Use
/// [`EnergyModel::awake_energy_mj`] for the paper's metric and
/// [`EnergyModel::node_energy_mj`] when a residual sleep draw matters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Power draw while awake (sending/receiving/listening), in mW.
    pub awake_mw: f64,
    /// Power draw while asleep (deep sleep), in mW.
    pub sleep_mw: f64,
    /// Round duration in milliseconds.
    pub round_ms: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        // 60 mW active radio vs 5 µW deep sleep (typical MCU + radio),
        // 1 ms rounds.
        EnergyModel { awake_mw: 60.0, sleep_mw: 0.005, round_ms: 1.0 }
    }
}

impl EnergyModel {
    /// The paper's energy metric: energy spent in awake rounds only
    /// (sleeping treated as free), in millijoules.
    pub fn awake_energy_mj(&self, awake: u64) -> f64 {
        awake as f64 * self.round_ms * self.awake_mw / 1000.0
    }

    /// Energy (in millijoules) for a node awake `awake` rounds out of
    /// `total` rounds of execution.
    ///
    /// # Panics
    ///
    /// Panics if `awake > total`.
    pub fn node_energy_mj(&self, awake: u64, total: u64) -> f64 {
        assert!(awake <= total, "awake rounds cannot exceed total rounds");
        let awake_ms = awake as f64 * self.round_ms;
        let sleep_ms = (total - awake) as f64 * self.round_ms;
        (awake_ms * self.awake_mw + sleep_ms * self.sleep_mw) / 1000.0
    }

    /// Energy of an always-awake node for the same duration.
    pub fn always_awake_mj(&self, total: u64) -> f64 {
        total as f64 * self.round_ms * self.awake_mw / 1000.0
    }

    /// Worst-case node energy over a run, given per-node awake counts
    /// and per-node termination rounds (a node sleeps from its last
    /// round to its own termination, not the global end).
    pub fn max_node_energy_mj(&self, awake_rounds: &[u64], terminated_at: &[u64]) -> f64 {
        awake_rounds
            .iter()
            .zip(terminated_at)
            .map(|(&a, &t)| self.node_energy_mj(a, t + 1))
            .fold(0.0, f64::max)
    }

    /// Mean node energy over a run — the fleet-battery analogue of the
    /// node-averaged awake complexity, with the residual sleep draw
    /// priced in. Zero for an empty network.
    pub fn mean_node_energy_mj(&self, awake_rounds: &[u64], terminated_at: &[u64]) -> f64 {
        if awake_rounds.is_empty() {
            return 0.0;
        }
        let total: f64 = awake_rounds
            .iter()
            .zip(terminated_at)
            .map(|(&a, &t)| self.node_energy_mj(a, t + 1))
            .sum();
        total / awake_rounds.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn awake_dominates() {
        let m = EnergyModel::default();
        // 10 awake rounds of 1000: 10ms*60mW + 990ms*0.005mW.
        let e = m.node_energy_mj(10, 1000);
        assert!((e - (0.6 + 0.00495)).abs() < 1e-9);
        // Always awake: 60 mJ — ~100x more.
        assert!((m.always_awake_mj(1000) - 60.0).abs() < 1e-9);
        // The paper's awake-only metric.
        assert!((m.awake_energy_mj(10) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn max_energy_over_nodes() {
        let m = EnergyModel { awake_mw: 10.0, sleep_mw: 0.0, round_ms: 1.0 };
        let e = m.max_node_energy_mj(&[5, 50, 20], &[99, 99, 99]);
        assert!((e - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_energy_over_nodes() {
        let m = EnergyModel { awake_mw: 10.0, sleep_mw: 0.0, round_ms: 1.0 };
        let e = m.mean_node_energy_mj(&[5, 50, 20], &[99, 99, 99]);
        assert!((e - 0.25).abs() < 1e-12);
        assert_eq!(m.mean_node_energy_mj(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn rejects_inconsistent_counts() {
        EnergyModel::default().node_energy_mj(10, 5);
    }
}
