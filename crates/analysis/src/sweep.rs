//! Parameter sweeps and the energy frontier.
//!
//! The sleeping-model literature is a trade-off *surface*: worst-case
//! awake (the source paper), node-averaged awake (Ghaffari–Portmann,
//! arXiv:2305.06120), and explicit energy/time trade-offs
//! (Ghaffari–Portmann, arXiv:2305.11639). Charting that surface means
//! sweeping the knob that moves along it, so this module makes parameter
//! sweeps first-class:
//!
//! 1. **Range-valued spec params** — [`expand`] extends the
//!    [`AlgorithmSpec`] grammar so a parameter value may be an integer
//!    range (`le?bits=6..14`, optionally stepped with `step=4`) or a
//!    comma list (`gp-avg?balance=0,2,4,8`), expanding one spec string
//!    into an ordered family of concrete [`RunnerHandle`]s. Parsing is
//!    strict: unknown keys/params, empty or inverted ranges, zero steps,
//!    duplicate expansion points, and oversized expansions are all
//!    errors. A single-valued spec expands to exactly itself.
//! 2. **The sweep engine** — [`run_sweep`] runs
//!    `{expanded spec × family × n × seed}` through the same
//!    deterministic batch fan-out as [`crate::grid`] (byte-identical
//!    payloads for every thread count), additionally pricing every run
//!    with the [`EnergyModel`]: worst-node and mean-node energy in
//!    millijoules, residual sleep draw included.
//! 3. **Pareto analysis** — per `{family × n}` cell, every swept
//!    `(algorithm, param)` point is scored on
//!    `(rounds, max awake, mean awake, worst-node energy)` and the
//!    non-dominated frontier is computed ([`dominators`]); dominated
//!    points are annotated with a dominating spec. The committed
//!    `BENCH_sweep.json` (schema `awake-mis/bench-sweep/v1`) is the
//!    serialized result, and `bench-diff` gates on frontier regressions.
//!
//! # Range grammar
//!
//! ```text
//! value  := scalar | range | list
//! range  := int '..' int            # inclusive on both ends, step 1
//! list   := scalar ( ',' scalar )+  # explicit points, any scalar type
//! step=K                            # applies to every range in the spec
//! ```
//!
//! `le?bits=6..14&step=4` → `le?bits=6`, `le?bits=10`, `le?bits=14`.
//! Multiple swept parameters combine as a cartesian product in spec
//! order (the last parameter varies fastest). `step=` without any range
//! is an error, as is a range whose low end exceeds its high end.
//!
//! ```
//! use analysis::spec::default_registry;
//! use analysis::sweep::expand;
//!
//! let group = expand(default_registry(), "gp-avg?balance=0..8&step=4").unwrap();
//! let keys: Vec<&str> = group.runners.iter().map(|r| r.key()).collect();
//! assert_eq!(keys, ["gp-avg?balance=0", "gp-avg?balance=4", "gp-avg?balance=8"]);
//! // A scalar spec is left exactly as it was.
//! assert_eq!(expand(default_registry(), "luby").unwrap().runners.len(), 1);
//! ```

use crate::energy::EnergyModel;
use crate::grid::{
    json_escape, run_point_detailed, summary_json, GridJob, GridMeta, GridPoint,
};
use crate::spec::{default_registry, AlgorithmSpec, Registry, RunnerHandle, SpecError};
use crate::stats::Summary;
use graphgen::GraphFamily;
use sleeping_congest::batch::{resolve_threads, run_batch};
use sleeping_congest::ScratchArena;

/// Cap on the number of concrete points one spec string may expand to —
/// a typo like `bits=0..1000000` must fail loudly, not spawn a month of
/// work.
pub const MAX_EXPANSION: usize = 256;

/// One spec string's expansion: the raw sweep spec as written plus the
/// ordered family of concrete runners it denotes.
#[derive(Debug, Clone)]
pub struct SweepGroup {
    /// The sweep spec as written (`"le?bits=6..14&step=4"`).
    pub raw: String,
    /// The expanded concrete runners, in expansion order.
    pub runners: Vec<RunnerHandle>,
}

/// The expanded values of one parameter, plus whether the expression was
/// a range (ranges are what `step=` applies to).
fn expand_value(param: &str, value: &str, step: u64) -> Result<(Vec<String>, bool), SpecError> {
    let bad = |expected: &str| SpecError::BadValue {
        param: param.to_string(),
        value: value.to_string(),
        expected: expected.to_string(),
    };
    if let Some((lo, hi)) = value.split_once("..") {
        let lo: u64 = lo.trim().parse().map_err(|_| bad("an integer range lo..hi"))?;
        let hi: u64 = hi.trim().parse().map_err(|_| bad("an integer range lo..hi"))?;
        if lo > hi {
            return Err(bad("a non-empty range (lo must not exceed hi)"));
        }
        let mut out = Vec::new();
        let mut v = lo;
        loop {
            out.push(v.to_string());
            match v.checked_add(step) {
                Some(next) if next <= hi => v = next,
                _ => break,
            }
            if out.len() > MAX_EXPANSION {
                return Err(bad("a range expanding to at most 256 points"));
            }
        }
        return Ok((out, true));
    }
    if value.contains(',') {
        let items: Vec<String> = value.split(',').map(|s| s.trim().to_string()).collect();
        if items.iter().any(String::is_empty) {
            return Err(bad("a comma list without empty elements"));
        }
        return Ok((items, false));
    }
    Ok((vec![value.to_string()], false))
}

/// Expands one (possibly range-valued) spec string into its ordered
/// family of concrete runners, resolving each point through `registry`.
///
/// # Errors
///
/// Everything [`AlgorithmSpec::parse`] and the registry reject, plus the
/// sweep-grammar errors documented in the module docs
/// ([`SpecError::BadValue`] for malformed ranges/steps,
/// [`SpecError::DuplicateKey`] when two expansion points collapse to the
/// same canonical spec).
pub fn expand(registry: &Registry, raw: &str) -> Result<SweepGroup, SpecError> {
    let spec = AlgorithmSpec::parse(raw)?;

    // Pull out the reserved `step=` parameter.
    let mut step: Option<u64> = None;
    let mut params: Vec<(&str, &str)> = Vec::new();
    for (name, value) in spec.params() {
        if name == "step" {
            let v: u64 = value.parse().map_err(|_| SpecError::BadValue {
                param: "step".to_string(),
                value: value.to_string(),
                expected: "a positive integer".to_string(),
            })?;
            if v == 0 {
                return Err(SpecError::BadValue {
                    param: "step".to_string(),
                    value: value.to_string(),
                    expected: "a positive integer".to_string(),
                });
            }
            step = Some(v);
        } else {
            params.push((name, value));
        }
    }

    // Expand every parameter value; cartesian product in spec order.
    let mut axes: Vec<(&str, Vec<String>)> = Vec::new();
    let mut saw_range = false;
    for (name, value) in &params {
        let (values, was_range) = expand_value(name, value, step.unwrap_or(1))?;
        saw_range |= was_range;
        axes.push((name, values));
    }
    if let Some(s) = step {
        if !saw_range {
            return Err(SpecError::BadValue {
                param: "step".to_string(),
                value: s.to_string(),
                expected: "a range-valued parameter for step= to apply to".to_string(),
            });
        }
    }
    let count: usize = axes.iter().map(|(_, v)| v.len()).product();
    if count > MAX_EXPANSION {
        return Err(SpecError::BadValue {
            param: "spec".to_string(),
            value: raw.trim().to_string(),
            expected: format!("at most {MAX_EXPANSION} expansion points, got {count}"),
        });
    }

    let mut runners = Vec::with_capacity(count);
    for idx in 0..count {
        // Mixed-radix decode, last axis fastest.
        let mut rest = idx;
        let mut picks = vec![0usize; axes.len()];
        for (a, (_, values)) in axes.iter().enumerate().rev() {
            picks[a] = rest % values.len();
            rest /= values.len();
        }
        let mut s = spec.key().to_string();
        for (a, (name, values)) in axes.iter().enumerate() {
            s.push(if a == 0 { '?' } else { '&' });
            s.push_str(name);
            s.push('=');
            s.push_str(&values[picks[a]]);
        }
        let runner = registry.resolve(&s)?;
        if runners.iter().any(|r: &RunnerHandle| r.key() == runner.key()) {
            return Err(SpecError::DuplicateKey { key: runner.key().to_string() });
        }
        runners.push(runner);
    }
    Ok(SweepGroup { raw: raw.trim().to_string(), runners })
}

/// Expands one (possibly range-valued) *family* spec into its ordered
/// list of concrete [`GraphFamily`] values, reusing the algorithm-sweep
/// range grammar: `er?avg_deg=8..16&step=4` → `er`, `er?avg_deg=12`,
/// `er?avg_deg=16` (a parameter at its default canonicalizes to the
/// bare family, exactly as [`GraphFamily::parse`] does). Ranges are
/// integer-valued; non-integer dials such as `rgg?radius=…` sweep via
/// comma lists (`rgg?radius=0.03,0.06`).
///
/// ```
/// use analysis::sweep::expand_families;
///
/// let fams = expand_families("er?avg_deg=8..16&step=4").unwrap();
/// let keys: Vec<String> = fams.iter().map(|f| f.key()).collect();
/// assert_eq!(keys, ["er", "er?avg_deg=12", "er?avg_deg=16"]);
/// ```
///
/// # Errors
///
/// [`SpecError::BadValue`] for unknown families, malformed ranges/steps,
/// parameter points [`GraphFamily::parse`] rejects, and oversized
/// expansions; [`SpecError::Syntax`] for non-`name=value` parameters;
/// [`SpecError::DuplicateKey`] when two expansion points collapse to the
/// same canonical family.
pub fn expand_families(raw: &str) -> Result<Vec<GraphFamily>, SpecError> {
    let trimmed = raw.trim();
    let bad_family = |value: &str, expected: &str| SpecError::BadValue {
        param: "family".to_string(),
        value: value.to_string(),
        expected: expected.to_string(),
    };
    let Some((base, params_str)) = trimmed.split_once('?') else {
        let f = GraphFamily::parse(trimmed)
            .ok_or_else(|| bad_family(trimmed, "a known graph family key"))?;
        return Ok(vec![f]);
    };

    // Same reserved `step=` convention as algorithm sweeps.
    let mut step: Option<u64> = None;
    let mut params: Vec<(&str, &str)> = Vec::new();
    for part in params_str.split('&') {
        let (name, value) = part.split_once('=').ok_or_else(|| SpecError::Syntax {
            spec: trimmed.to_string(),
            detail: format!("family parameter {part:?} is not `name=value`"),
        })?;
        if name == "step" {
            let v = value.parse().ok().filter(|&v: &u64| v > 0).ok_or_else(|| {
                SpecError::BadValue {
                    param: "step".to_string(),
                    value: value.to_string(),
                    expected: "a positive integer".to_string(),
                }
            })?;
            step = Some(v);
        } else {
            params.push((name, value));
        }
    }

    let mut axes: Vec<(&str, Vec<String>)> = Vec::new();
    let mut saw_range = false;
    for (name, value) in &params {
        let (values, was_range) = expand_value(name, value, step.unwrap_or(1))?;
        saw_range |= was_range;
        axes.push((name, values));
    }
    if let Some(s) = step {
        if !saw_range {
            return Err(SpecError::BadValue {
                param: "step".to_string(),
                value: s.to_string(),
                expected: "a range-valued parameter for step= to apply to".to_string(),
            });
        }
    }
    let count: usize = axes.iter().map(|(_, v)| v.len()).product();
    if count > MAX_EXPANSION {
        return Err(bad_family(
            trimmed,
            &format!("at most {MAX_EXPANSION} expansion points, got {count}"),
        ));
    }

    let mut out = Vec::with_capacity(count);
    for idx in 0..count {
        // Mixed-radix decode, last axis fastest (as in [`expand`]).
        let mut rest = idx;
        let mut picks = vec![0usize; axes.len()];
        for (a, (_, values)) in axes.iter().enumerate().rev() {
            picks[a] = rest % values.len();
            rest /= values.len();
        }
        let mut s = base.to_string();
        for (a, (name, values)) in axes.iter().enumerate() {
            s.push(if a == 0 { '?' } else { '&' });
            s.push_str(name);
            s.push('=');
            s.push_str(&values[picks[a]]);
        }
        let family = GraphFamily::parse(&s)
            .ok_or_else(|| bad_family(&s, "a family point GraphFamily::parse accepts"))?;
        if out.contains(&family) {
            return Err(SpecError::DuplicateKey { key: family.key() });
        }
        out.push(family);
    }
    Ok(out)
}

/// A sweep: range-valued specs crossed with graph families, sizes, and
/// seeds, plus the energy model pricing every run.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Sweep spec strings (range/list-valued; see the module docs).
    pub specs: Vec<String>,
    /// Graph families.
    pub families: Vec<GraphFamily>,
    /// Node counts.
    pub sizes: Vec<usize>,
    /// Seeds (innermost axis), as in [`crate::grid::GridSpec`].
    pub seeds: Vec<u64>,
    /// Worker threads; `0` means all available. Does not affect results.
    pub threads: usize,
    /// Energy model pricing awake and sleeping rounds.
    pub energy: EnergyModel,
}

/// One sweep run: the normalized grid measurements plus its energy bill.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The underlying grid-point measurements.
    pub point: GridPoint,
    /// Worst-node energy over the run, in millijoules (awake draw plus
    /// residual sleep draw until the node's own termination).
    pub energy_max_mj: f64,
    /// Mean node energy over the run, in millijoules.
    pub energy_mean_mj: f64,
}

/// Per-`{family × n}` aggregates of one swept `(algorithm, param)` point.
#[derive(Debug, Clone)]
pub struct SweepEntry {
    /// The concrete algorithm point.
    pub algorithm: RunnerHandle,
    /// Index into [`SweepResult::groups`] of the spec this point was
    /// expanded from.
    pub group: usize,
    /// Number of seeds aggregated.
    pub runs: usize,
    /// Summary of worst-case awake complexity over seeds.
    pub awake_max: Summary,
    /// Summary of node-averaged awake complexity over seeds.
    pub awake_avg: Summary,
    /// Summary of round complexity over seeds.
    pub rounds: Summary,
    /// Summary of worst-node energy (mJ) over seeds.
    pub energy_max_mj: Summary,
    /// Summary of mean-node energy (mJ) over seeds.
    pub energy_mean_mj: Summary,
    /// Largest message observed across seeds, in bits.
    pub max_message_bits: usize,
    /// Whether every seed verified correct with zero failures.
    pub all_correct: bool,
    /// True when this entry is on the cell's Pareto frontier over
    /// `(rounds, awake max, awake mean, worst-node energy)`, all
    /// minimized. Incorrect entries never make the frontier.
    pub pareto: bool,
    /// For dominated entries: the key of a frontier entry that weakly
    /// improves on every objective.
    pub dominated_by: Option<String>,
}

/// One `{family × n}` cell: every swept point, frontier-annotated.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Graph family of this cell.
    pub family: GraphFamily,
    /// Node count of this cell.
    pub n: usize,
    /// One entry per swept `(algorithm, param)` point, in sweep order.
    pub entries: Vec<SweepEntry>,
}

impl SweepCell {
    /// The payload fields that identify one sweep cell (entries within
    /// a cell are keyed by their `algorithm` spec point).
    pub const KEY_FIELDS: [&'static str; 2] = ["family", "n"];

    /// This cell's identity as textual key components matching
    /// [`Self::KEY_FIELDS`] and the artifact JSON spelling.
    pub fn cell_key(&self) -> Vec<String> {
        vec![self.family.key(), self.n.to_string()]
    }

    /// Keys of the non-dominated entries, in sweep order.
    pub fn frontier(&self) -> Vec<&str> {
        self.entries.iter().filter(|e| e.pareto).map(|e| e.algorithm.key()).collect()
    }
}

/// The outcome of [`run_sweep`].
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The sweep that was run.
    pub spec: SweepSpec,
    /// Each input spec's expansion, in input order.
    pub groups: Vec<SweepGroup>,
    /// Per-run measurements, in sweep order (algorithm-major,
    /// seed-minor, exactly like the grid).
    pub points: Vec<SweepPoint>,
    /// Per-`{family × n}` cells with Pareto annotations.
    pub cells: Vec<SweepCell>,
}

/// For each point (a vector of objectives, all minimized), `None` when
/// the point is non-dominated, or `Some(i)` naming the first point that
/// dominates it.
///
/// `q` dominates `p` when `q` is no worse on every objective and
/// strictly better on at least one. Equal points do not dominate each
/// other — both stay on the frontier. The function is pure and
/// deterministic: ties and dominator choice go by index order.
///
/// # Panics
///
/// Panics if the points do not all have the same number of objectives.
pub fn dominators(objectives: &[Vec<f64>]) -> Vec<Option<usize>> {
    let dim = objectives.first().map_or(0, Vec::len);
    assert!(
        objectives.iter().all(|o| o.len() == dim),
        "all points must score the same objectives"
    );
    (0..objectives.len())
        .map(|pi| {
            let p = &objectives[pi];
            (0..objectives.len()).find(|&qi| {
                let q = &objectives[qi];
                qi != pi
                    && q.iter().zip(p).all(|(a, b)| a <= b)
                    && q.iter().zip(p).any(|(a, b)| a < b)
            })
        })
        .collect()
}

/// Expands every spec and runs the sweep, fanning
/// `{algorithm point × family × n × seed}` over `spec.threads` workers
/// with per-worker scratch reuse. Deterministic like the grid: apart
/// from wall-clock fields, the result is identical for every thread
/// count.
///
/// # Errors
///
/// Expansion errors (see [`expand`]); also rejects a sweep with zero
/// expanded points or zero seeds ([`SpecError::Syntax`]).
pub fn run_sweep(spec: &SweepSpec) -> Result<SweepResult, SpecError> {
    let registry = default_registry();
    let mut groups = Vec::with_capacity(spec.specs.len());
    let mut flat: Vec<(usize, RunnerHandle)> = Vec::new();
    for (gi, raw) in spec.specs.iter().enumerate() {
        let group = expand(registry, raw)?;
        for r in &group.runners {
            if flat.iter().any(|(_, f)| f.key() == r.key()) {
                return Err(SpecError::DuplicateKey { key: r.key().to_string() });
            }
            flat.push((gi, r.clone()));
        }
        groups.push(group);
    }
    if flat.is_empty() || spec.seeds.is_empty() {
        return Err(SpecError::Syntax {
            spec: spec.specs.join(","),
            detail: "a sweep needs at least one algorithm point and one seed".to_string(),
        });
    }

    // Jobs in sweep order: algorithm-major, seed-minor (grid order).
    let mut jobs = Vec::with_capacity(
        flat.len() * spec.families.len() * spec.sizes.len() * spec.seeds.len(),
    );
    for (_, algorithm) in &flat {
        for &family in &spec.families {
            for &n in &spec.sizes {
                for &seed in &spec.seeds {
                    jobs.push(GridJob { algorithm: algorithm.clone(), family, n, seed });
                }
            }
        }
    }
    let threads = resolve_threads(spec.threads);
    let energy = spec.energy;
    let points = run_batch(&jobs, threads, |_| ScratchArena::new(), move |scratch, _i, job| {
        let (point, metrics) = run_point_detailed(job, scratch);
        let (energy_max_mj, energy_mean_mj) = match &metrics {
            Some(m) => (
                energy.max_node_energy_mj(&m.awake_rounds, &m.terminated_at),
                energy.mean_node_energy_mj(&m.awake_rounds, &m.terminated_at),
            ),
            None => (0.0, 0.0),
        };
        SweepPoint { point, energy_max_mj, energy_mean_mj }
    });

    let cells = aggregate(spec, &flat, &points);
    Ok(SweepResult { spec: spec.clone(), groups, points, cells })
}

fn aggregate(
    spec: &SweepSpec,
    flat: &[(usize, RunnerHandle)],
    points: &[SweepPoint],
) -> Vec<SweepCell> {
    let (nf, ns, nk) = (spec.families.len(), spec.sizes.len(), spec.seeds.len());
    let mut cells = Vec::with_capacity(nf * ns);
    for (fi, &family) in spec.families.iter().enumerate() {
        for (si, &n) in spec.sizes.iter().enumerate() {
            let mut entries: Vec<SweepEntry> = flat
                .iter()
                .enumerate()
                .map(|(ai, (group, algorithm))| {
                    let base = ((ai * nf + fi) * ns + si) * nk;
                    let chunk = &points[base..base + nk];
                    let awake_max: Vec<u64> = chunk.iter().map(|p| p.point.awake_max).collect();
                    let awake_avg: Vec<f64> = chunk.iter().map(|p| p.point.awake_avg).collect();
                    let rounds: Vec<u64> = chunk.iter().map(|p| p.point.rounds).collect();
                    let e_max: Vec<f64> = chunk.iter().map(|p| p.energy_max_mj).collect();
                    let e_mean: Vec<f64> = chunk.iter().map(|p| p.energy_mean_mj).collect();
                    SweepEntry {
                        algorithm: algorithm.clone(),
                        group: *group,
                        runs: nk,
                        awake_max: Summary::of_u64(&awake_max),
                        awake_avg: Summary::of(&awake_avg),
                        rounds: Summary::of_u64(&rounds),
                        energy_max_mj: Summary::of(&e_max),
                        energy_mean_mj: Summary::of(&e_mean),
                        max_message_bits: chunk
                            .iter()
                            .map(|p| p.point.max_message_bits)
                            .max()
                            .unwrap_or(0),
                        all_correct: chunk.iter().all(|p| p.point.correct),
                        pareto: false,
                        dominated_by: None,
                    }
                })
                .collect();

            // Pareto frontier over the seed-mean objectives, minimized.
            // Incorrect entries are excluded outright: an aborted or
            // failing run's zeroed measurements must never "dominate".
            let scored: Vec<usize> =
                (0..entries.len()).filter(|&i| entries[i].all_correct).collect();
            let objectives: Vec<Vec<f64>> = scored
                .iter()
                .map(|&i| {
                    let e = &entries[i];
                    vec![e.rounds.mean, e.awake_max.mean, e.awake_avg.mean, e.energy_max_mj.mean]
                })
                .collect();
            for (rank, dom) in dominators(&objectives).into_iter().enumerate() {
                let i = scored[rank];
                match dom {
                    None => entries[i].pareto = true,
                    Some(d) => {
                        entries[i].dominated_by =
                            Some(entries[scored[d]].algorithm.key().to_string());
                    }
                }
            }
            cells.push(SweepCell { family, n, entries });
        }
    }
    cells
}

impl SweepPoint {
    fn json(&self) -> String {
        let mut s = self.point.json();
        s.pop(); // strip the closing brace, append the energy fields
        s.push_str(&format!(
            ",\"energy_max_mj\":{},\"energy_mean_mj\":{}}}",
            self.energy_max_mj, self.energy_mean_mj
        ));
        s
    }
}

impl SweepEntry {
    fn json(&self) -> String {
        let mut s = format!(
            "{{\"algorithm\":\"{}\",\"group\":{},\"runs\":{},\"awake_max\":{},\
             \"awake_avg\":{},\"rounds\":{},\"energy_max_mj\":{},\"energy_mean_mj\":{},\
             \"max_message_bits\":{},\"all_correct\":{},\"pareto\":{}",
            json_escape(self.algorithm.key()),
            self.group,
            self.runs,
            summary_json(&self.awake_max),
            summary_json(&self.awake_avg),
            summary_json(&self.rounds),
            summary_json(&self.energy_max_mj),
            summary_json(&self.energy_mean_mj),
            self.max_message_bits,
            self.all_correct,
            self.pareto,
        );
        if let Some(d) = &self.dominated_by {
            s.push_str(&format!(",\"dominated_by\":\"{}\"", json_escape(d)));
        }
        s.push('}');
        s
    }
}

impl SweepResult {
    /// The deterministic JSON payload (schema
    /// `awake-mis/bench-sweep/v1`): spec echo with expansions, cells
    /// with frontier annotations, energy-priced points. Byte-identical
    /// across thread counts and repeat runs.
    pub fn payload_json(&self) -> String {
        self.json_with_meta(None)
    }

    /// The full document: the payload plus `meta` and per-point `timing`
    /// sections (excluded from determinism comparisons, like the grid's).
    pub fn to_json(&self, meta: &GridMeta) -> String {
        self.json_with_meta(Some(meta))
    }

    fn json_with_meta(&self, meta: Option<&GridMeta>) -> String {
        let mut out = String::from("{\n  \"schema\": \"awake-mis/bench-sweep/v1\",\n");
        if let Some(m) = meta {
            out.push_str(&format!(
                "  \"meta\": {{\"threads\": {}, \"wall_ms\": {}}},\n",
                m.threads, m.wall_ms
            ));
            let ns: Vec<String> =
                self.points.iter().map(|p| p.point.elapsed_ns.to_string()).collect();
            out.push_str(&format!("  \"timing\": {{\"elapsed_ns\": [{}]}},\n", ns.join(", ")));
        }
        let specs: Vec<String> =
            self.spec.specs.iter().map(|s| format!("\"{}\"", json_escape(s))).collect();
        let expanded: Vec<String> = self
            .groups
            .iter()
            .map(|g| {
                let keys: Vec<String> =
                    g.runners.iter().map(|r| format!("\"{}\"", json_escape(r.key()))).collect();
                format!("[{}]", keys.join(", "))
            })
            .collect();
        let families: Vec<String> =
            self.spec.families.iter().map(|f| format!("\"{}\"", f.key())).collect();
        let sizes: Vec<String> = self.spec.sizes.iter().map(|n| n.to_string()).collect();
        let seeds: Vec<String> = self.spec.seeds.iter().map(|s| s.to_string()).collect();
        let e = &self.spec.energy;
        out.push_str(&format!(
            "  \"spec\": {{\"specs\": [{}], \"expanded\": [{}], \"families\": [{}], \
             \"sizes\": [{}], \"seeds\": [{}], \"energy\": {{\"awake_mw\": {}, \
             \"sleep_mw\": {}, \"round_ms\": {}}}}},\n",
            specs.join(", "),
            expanded.join(", "),
            families.join(", "),
            sizes.join(", "),
            seeds.join(", "),
            e.awake_mw,
            e.sleep_mw,
            e.round_ms,
        ));
        out.push_str("  \"cells\": [\n");
        let cells: Vec<String> = self
            .cells
            .iter()
            .map(|c| {
                let frontier: Vec<String> =
                    c.frontier().iter().map(|k| format!("\"{}\"", json_escape(k))).collect();
                let entries: Vec<String> =
                    c.entries.iter().map(|e| format!("      {}", e.json())).collect();
                format!(
                    "    {{\"family\":\"{}\",\"n\":{},\"frontier\":[{}],\"entries\":[\n{}\n    ]}}",
                    c.family.key(),
                    c.n,
                    frontier.join(", "),
                    entries.join(",\n"),
                )
            })
            .collect();
        out.push_str(&cells.join(",\n"));
        out.push_str("\n  ],\n  \"points\": [\n");
        let points: Vec<String> =
            self.points.iter().map(|p| format!("    {}", p.json())).collect();
        out.push_str(&points.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_lists_and_scalars_expand() {
        let reg = default_registry();
        let keys = |raw: &str| -> Vec<String> {
            expand(reg, raw)
                .unwrap()
                .runners
                .iter()
                .map(|r| r.key().to_string())
                .collect()
        };
        assert_eq!(keys("le?bits=6..8"), ["le?bits=6", "le?bits=7", "le?bits=8"]);
        assert_eq!(
            keys("gp-avg?balance=0..8&step=4"),
            ["gp-avg?balance=0", "gp-avg?balance=4", "gp-avg?balance=8"]
        );
        // A step overshooting the high end keeps the in-range points.
        assert_eq!(keys("le?bits=4..9&step=4"), ["le?bits=4", "le?bits=8"]);
        assert_eq!(keys("gp-avg?balance=0,2,4"), ["gp-avg?balance=0", "gp-avg?balance=2", "gp-avg?balance=4"]);
        // Lists are not restricted to integers.
        assert_eq!(keys("ldt?strategy=awake,round"), ["ldt?strategy=awake", "ldt?strategy=round"]);
        // Scalars pass through untouched.
        assert_eq!(keys("awake"), ["awake"]);
        assert_eq!(keys("vt?id_upper=4096"), ["vt?id_upper=4096"]);
    }

    #[test]
    fn cartesian_product_orders_last_axis_fastest() {
        let g = expand(default_registry(), "awake?delta_factor=1,2&comp_factor=3,4").unwrap();
        let keys: Vec<&str> = g.runners.iter().map(|r| r.key()).collect();
        assert_eq!(
            keys,
            [
                "awake?delta_factor=1&comp_factor=3",
                "awake?delta_factor=1&comp_factor=4",
                "awake?delta_factor=2&comp_factor=3",
                "awake?delta_factor=2&comp_factor=4",
            ]
        );
    }

    #[test]
    fn expansion_is_strict() {
        let reg = default_registry();
        // Inverted and malformed ranges.
        assert!(matches!(expand(reg, "le?bits=9..4"), Err(SpecError::BadValue { .. })));
        assert!(matches!(expand(reg, "le?bits=a..4"), Err(SpecError::BadValue { .. })));
        // step without a range, zero step.
        assert!(matches!(expand(reg, "le?bits=5&step=2"), Err(SpecError::BadValue { .. })));
        assert!(matches!(expand(reg, "le?bits=4..8&step=0"), Err(SpecError::BadValue { .. })));
        // Unknown algorithm / unknown parameter still error.
        assert!(matches!(expand(reg, "quantum?x=1..3"), Err(SpecError::UnknownAlgorithm { .. })));
        assert!(matches!(expand(reg, "luby?x=1..3"), Err(SpecError::UnknownParam { .. })));
        // Oversized expansions fail loudly.
        assert!(matches!(expand(reg, "vt?id_upper=1..100000"), Err(SpecError::BadValue { .. })));
        // Duplicate expansion points collapse to the same key.
        assert!(matches!(
            expand(reg, "gp-avg?balance=2,2"),
            Err(SpecError::DuplicateKey { .. })
        ));
    }

    #[test]
    fn family_ranges_expand_and_canonicalize() {
        let keys = |raw: &str| -> Vec<String> {
            expand_families(raw).unwrap().iter().map(|f| f.key()).collect()
        };
        // The default point canonicalizes to the bare family key, so the
        // grid/sweep cell keys stay stable across spellings.
        assert_eq!(keys("er?avg_deg=8..16&step=4"), ["er", "er?avg_deg=12", "er?avg_deg=16"]);
        assert_eq!(keys("ba?attach=3"), ["ba"]);
        // Non-integer dials sweep via comma lists.
        assert_eq!(keys("rgg?radius=0.03,0.06"), ["rgg?radius=0.03", "rgg?radius=0.06"]);
        // Bare keys pass through untouched.
        assert_eq!(keys("tree"), ["tree"]);
    }

    #[test]
    fn family_expansion_is_strict() {
        assert!(matches!(expand_families("nope"), Err(SpecError::BadValue { .. })));
        assert!(matches!(expand_families("er?avg_deg=9..4"), Err(SpecError::BadValue { .. })));
        // Families without that dial reject the parameter.
        assert!(matches!(expand_families("tree?x=1..3"), Err(SpecError::BadValue { .. })));
        // step without a range; malformed parameter syntax.
        assert!(matches!(expand_families("er?avg_deg=5&step=2"), Err(SpecError::BadValue { .. })));
        assert!(matches!(expand_families("er?avg_deg"), Err(SpecError::Syntax { .. })));
        // Two expansion points collapsing to one canonical family.
        assert!(matches!(expand_families("er?avg_deg=8,8"), Err(SpecError::DuplicateKey { .. })));
        // Oversized expansions fail loudly.
        assert!(matches!(expand_families("er?avg_deg=1..10000"), Err(SpecError::BadValue { .. })));
    }

    #[test]
    fn pareto_dominators_on_hand_built_points() {
        // p0 is the unique best on x, p1 on y; p2 is dominated by p0;
        // p3 ties p0 exactly (equal points never dominate each other);
        // p4 is dominated by p1 only.
        let pts = vec![
            vec![1.0, 5.0],
            vec![5.0, 1.0],
            vec![2.0, 6.0],
            vec![1.0, 5.0],
            vec![6.0, 1.0],
        ];
        assert_eq!(
            dominators(&pts),
            vec![None, None, Some(0), None, Some(1)]
        );
        // Single point and empty input are trivially non-dominated.
        assert_eq!(dominators(&[vec![3.0, 3.0]]), vec![None]);
        assert_eq!(dominators(&[]), Vec::<Option<usize>>::new());
        // One objective degenerates to the minimum; the annotation picks
        // the first dominator in index order (2.0 already beats 3.0).
        assert_eq!(
            dominators(&[vec![2.0], vec![1.0], vec![3.0]]),
            vec![Some(1), None, Some(0)]
        );
    }

    #[test]
    #[should_panic(expected = "same objectives")]
    fn pareto_rejects_ragged_input() {
        dominators(&[vec![1.0, 2.0], vec![1.0]]);
    }

    #[test]
    fn sweep_runs_and_annotates_a_frontier() {
        let spec = SweepSpec {
            specs: vec!["luby".into(), "na".into(), "le?bits=5..7&step=2".into()],
            families: vec![GraphFamily::Er],
            sizes: vec![48],
            seeds: vec![1, 2],
            threads: 1,
            energy: EnergyModel::default(),
        };
        let result = run_sweep(&spec).unwrap();
        assert_eq!(result.groups.len(), 3);
        assert_eq!(result.groups[2].runners.len(), 2);
        assert_eq!(result.points.len(), 4 * 2);
        assert_eq!(result.cells.len(), 1);
        let cell = &result.cells[0];
        assert_eq!(cell.entries.len(), 4);
        assert!(cell.entries.iter().all(|e| e.all_correct), "all entries must verify");
        // Every entry is either on the frontier or annotated with a
        // dominator that is itself on the frontier... or at least
        // present in the cell.
        let keys: Vec<&str> = cell.entries.iter().map(|e| e.algorithm.key()).collect();
        for e in &cell.entries {
            match (&e.pareto, &e.dominated_by) {
                (true, None) => {}
                (false, Some(d)) => assert!(keys.contains(&d.as_str()), "dangling dominator {d}"),
                other => panic!("entry {} in impossible state {other:?}", e.algorithm.key()),
            }
        }
        assert!(!cell.frontier().is_empty(), "a non-empty cell has a frontier");
        // Energy is priced on every point.
        for p in &result.points {
            assert!(p.energy_max_mj > 0.0);
            assert!(p.energy_mean_mj > 0.0);
            assert!(p.energy_mean_mj <= p.energy_max_mj + 1e-12);
        }
    }

    #[test]
    fn sweep_payload_shape() {
        let spec = SweepSpec {
            specs: vec!["luby".into(), "gp-avg?balance=0..2&step=2".into()],
            families: vec![GraphFamily::Cycle],
            sizes: vec![24],
            seeds: vec![1],
            threads: 1,
            energy: EnergyModel::default(),
        };
        let result = run_sweep(&spec).unwrap();
        let payload = result.payload_json();
        assert!(payload.contains("\"schema\": \"awake-mis/bench-sweep/v1\""));
        assert!(payload.contains("\"specs\": [\"luby\", \"gp-avg?balance=0..2&step=2\"]"));
        assert!(payload.contains("\"expanded\": [[\"luby\"], [\"gp-avg?balance=0\", \"gp-avg?balance=2\"]]"));
        assert!(payload.contains("\"frontier\":["));
        assert!(payload.contains("\"energy_max_mj\""));
        assert!(!payload.contains("wall_ms"));
        assert!(!payload.contains("elapsed_ns"));
        assert_eq!(payload.matches('{').count(), payload.matches('}').count());
        assert_eq!(payload.matches('[').count(), payload.matches(']').count());
        // The full document strips back to the payload.
        let full = result.to_json(&GridMeta { threads: 2, wall_ms: 5 });
        let stripped: String = full
            .lines()
            .filter(|l| !l.contains("\"meta\"") && !l.contains("\"timing\""))
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
        assert_eq!(stripped, payload);
    }

    #[test]
    fn duplicate_points_across_specs_are_rejected() {
        let spec = SweepSpec {
            specs: vec!["luby".into(), "luby".into()],
            families: vec![GraphFamily::Er],
            sizes: vec![16],
            seeds: vec![1],
            threads: 1,
            energy: EnergyModel::default(),
        };
        assert!(matches!(run_sweep(&spec), Err(SpecError::DuplicateKey { .. })));
    }
}
