//! First-class algorithm specs and the runner registry.
//!
//! The experiment harness treats algorithms as *data*: a textual
//! [`AlgorithmSpec`] (`key?param=value&…`) names an algorithm family and
//! a bag of parameter overrides, a [`Registry`] turns specs into
//! executable [`RunnerHandle`]s, and everything downstream — the grid
//! harness, the experiment binaries, the examples — consumes the
//! object-safe [`DynRunner`] trait instead of matching on a closed enum.
//! Adding an algorithm (or a parameterization of an existing one) means
//! registering one builder; no dispatch site changes.
//!
//! # Spec grammar
//!
//! ```text
//! spec      := key [ '?' param ( '&' param )* ]
//! param     := name [ '=' value ]        (bare name means "=true")
//! key, name := [A-Za-z0-9_-]+            (case-insensitive)
//! ```
//!
//! Examples: `awake`, `awake?round_efficient=true`, `ldt?strategy=round`,
//! `vt?id_upper=1000000`, `awake?delta_factor=9&comp_factor=18`.
//! Unknown keys, unknown parameters, malformed values, and duplicate
//! parameters are all errors — a typo never silently runs the default.
//!
//! # Registering your own algorithm
//!
//! A runner is anything implementing [`DynRunner`]; the registry maps a
//! CLI key to a builder that may inspect the spec's parameters:
//!
//! ```
//! use analysis::runners::AlgoResult;
//! use analysis::spec::{AlgorithmSpec, DynRunner, Registry, RunnerHandle};
//! use awake_mis_core::Luby;
//! use graphgen::{generators, Graph};
//! use sleeping_congest::{ScratchArena, SimConfig, SimError, Simulator};
//!
//! /// Toy entrant: Luby's algorithm under its own comparison-table row.
//! struct CoinFlip;
//!
//! impl DynRunner for CoinFlip {
//!     fn name(&self) -> &str {
//!         "Coin-Flip"
//!     }
//!     fn key(&self) -> &str {
//!         "coin"
//!     }
//!     fn run_on(
//!         &self,
//!         g: &Graph,
//!         seed: u64,
//!         scratch: &mut ScratchArena,
//!     ) -> Result<AlgoResult, SimError> {
//!         let nodes = (0..g.n()).map(|_| Luby::new()).collect();
//!         let report = Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run_in(scratch)?;
//!         Ok(AlgoResult::from_states("Coin-Flip", "coin", g, report.outputs, 0, report.metrics))
//!     }
//! }
//!
//! let mut reg = Registry::builtin();
//! reg.register("coin", "toy Luby clone", |_spec: &AlgorithmSpec| Ok(RunnerHandle::new(CoinFlip)))?;
//! let runner = reg.resolve("coin")?;
//! let result = runner.run(&generators::cycle(16), 1)?;
//! assert!(result.correct);
//! assert_eq!(runner.key(), "coin");
//! // Registering over an existing key is an error, not a shadow:
//! assert!(reg.register("luby", "dup", |_s| unreachable!()).is_err());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::runners::AlgoResult;
use graphgen::Graph;
use sleeping_congest::{ScratchArena, SimError, TraceHandle};
use std::fmt;
use std::sync::Arc;

/// Errors from spec parsing, registry lookup, and runner construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The spec string violated the `key?param=value&…` grammar.
    Syntax {
        /// The offending spec string.
        spec: String,
        /// What was wrong with it.
        detail: String,
    },
    /// No registry entry matches the spec's key.
    UnknownAlgorithm {
        /// The key that failed to resolve.
        key: String,
        /// Every key the registry does know.
        known: Vec<String>,
    },
    /// The algorithm family does not accept this parameter.
    UnknownParam {
        /// The algorithm key.
        key: String,
        /// The rejected parameter name.
        param: String,
        /// Parameters the family does accept.
        known: Vec<String>,
    },
    /// A parameter value failed to parse.
    BadValue {
        /// The parameter name.
        param: String,
        /// The unparsable value.
        value: String,
        /// What a valid value looks like.
        expected: String,
    },
    /// The same parameter appeared twice in one spec.
    DuplicateParam {
        /// The repeated parameter name.
        param: String,
    },
    /// [`Registry::register`] was called with a key (or alias) already
    /// registered.
    DuplicateKey {
        /// The contested key.
        key: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Syntax { spec, detail } => {
                write!(f, "malformed algorithm spec {spec:?}: {detail}")
            }
            SpecError::UnknownAlgorithm { key, known } => {
                write!(f, "unknown algorithm {key:?} (known: {})", known.join(", "))
            }
            SpecError::UnknownParam { key, param, known } => write!(
                f,
                "algorithm {key:?} has no parameter {param:?} (accepted: {})",
                if known.is_empty() { "none".to_string() } else { known.join(", ") }
            ),
            SpecError::BadValue { param, value, expected } => {
                write!(f, "parameter {param:?}: bad value {value:?} (expected {expected})")
            }
            SpecError::DuplicateParam { param } => {
                write!(f, "parameter {param:?} given more than once")
            }
            SpecError::DuplicateKey { key } => {
                write!(f, "an algorithm is already registered under {key:?}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// A parsed algorithm spec: a family key plus a parameter bag.
///
/// Parse one with [`AlgorithmSpec::parse`] (or `str::parse`); turn it
/// back into its canonical string with [`canonical`](Self::canonical)
/// or `Display`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlgorithmSpec {
    key: String,
    params: Vec<(String, String)>,
}

fn valid_word(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
}

impl AlgorithmSpec {
    /// A spec with no parameters.
    pub fn bare(key: &str) -> AlgorithmSpec {
        AlgorithmSpec { key: key.to_ascii_lowercase(), params: Vec::new() }
    }

    /// Parses `key?param=value&…` (see the module docs for the grammar).
    ///
    /// # Errors
    ///
    /// [`SpecError::Syntax`] on grammar violations,
    /// [`SpecError::DuplicateParam`] on a repeated parameter name.
    pub fn parse(s: &str) -> Result<AlgorithmSpec, SpecError> {
        let s = s.trim();
        let syntax = |detail: &str| SpecError::Syntax { spec: s.to_string(), detail: detail.into() };
        let (key, rest) = match s.split_once('?') {
            None => (s, None),
            Some((k, r)) => (k, Some(r)),
        };
        if !valid_word(key) {
            return Err(syntax("key must be non-empty [A-Za-z0-9_-]+"));
        }
        let mut params: Vec<(String, String)> = Vec::new();
        if let Some(rest) = rest {
            for piece in rest.split('&') {
                let (name, value) = match piece.split_once('=') {
                    None => (piece, "true"),
                    Some((n, v)) => (n, v),
                };
                if !valid_word(name) {
                    return Err(syntax("parameter name must be non-empty [A-Za-z0-9_-]+"));
                }
                if value.is_empty() {
                    return Err(syntax("parameter value must be non-empty"));
                }
                let name = name.to_ascii_lowercase();
                if params.iter().any(|(n, _)| *n == name) {
                    return Err(SpecError::DuplicateParam { param: name });
                }
                params.push((name, value.to_string()));
            }
        }
        Ok(AlgorithmSpec { key: key.to_ascii_lowercase(), params })
    }

    /// The (lowercased) family key.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The parameter bag, in spec order.
    pub fn params(&self) -> &[(String, String)] {
        &self.params
    }

    /// The canonical spelling: lowercased key, parameters in spec order,
    /// bare flags normalized to `name=true`.
    pub fn canonical(&self) -> String {
        if self.params.is_empty() {
            return self.key.clone();
        }
        let params: Vec<String> =
            self.params.iter().map(|(n, v)| format!("{n}={v}")).collect();
        format!("{}?{}", self.key, params.join("&"))
    }

    /// A consuming reader over the parameter bag; builders use it so any
    /// parameter they never asked about becomes an
    /// [`UnknownParam`](SpecError::UnknownParam) error in
    /// [`finish`](ParamReader::finish).
    pub fn reader(&self) -> ParamReader<'_> {
        ParamReader { spec: self, used: vec![false; self.params.len()], asked: Vec::new() }
    }
}

impl fmt::Display for AlgorithmSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

impl std::str::FromStr for AlgorithmSpec {
    type Err = SpecError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        AlgorithmSpec::parse(s)
    }
}

/// Tracks which parameters of an [`AlgorithmSpec`] a builder consumed.
pub struct ParamReader<'a> {
    spec: &'a AlgorithmSpec,
    used: Vec<bool>,
    asked: Vec<&'static str>,
}

impl<'a> ParamReader<'a> {
    /// The raw string value of `name`, if given. Marks it consumed.
    pub fn str(&mut self, name: &'static str) -> Option<&'a str> {
        self.asked.push(name);
        for (i, (n, v)) in self.spec.params.iter().enumerate() {
            if n == name {
                self.used[i] = true;
                return Some(v);
            }
        }
        None
    }

    /// Parses `name` with `FromStr`, describing `expected` on failure.
    ///
    /// # Errors
    ///
    /// [`SpecError::BadValue`] when the value does not parse.
    pub fn parse<T: std::str::FromStr>(
        &mut self,
        name: &'static str,
        expected: &str,
    ) -> Result<Option<T>, SpecError> {
        match self.str(name) {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|_| SpecError::BadValue {
                param: name.to_string(),
                value: v.to_string(),
                expected: expected.to_string(),
            }),
        }
    }

    /// Parses `name` as an `f64`.
    ///
    /// # Errors
    ///
    /// [`SpecError::BadValue`] when the value does not parse.
    pub fn f64(&mut self, name: &'static str) -> Result<Option<f64>, SpecError> {
        self.parse(name, "a number")
    }

    /// Parses `name` as a `u64`.
    ///
    /// # Errors
    ///
    /// [`SpecError::BadValue`] when the value does not parse.
    pub fn u64(&mut self, name: &'static str) -> Result<Option<u64>, SpecError> {
        self.parse(name, "a non-negative integer")
    }

    /// Parses `name` as a boolean (`true/false/1/0/yes/no`).
    ///
    /// # Errors
    ///
    /// [`SpecError::BadValue`] when the value is none of those.
    pub fn bool(&mut self, name: &'static str) -> Result<Option<bool>, SpecError> {
        match self.str(name) {
            None => Ok(None),
            Some(v) => match v.to_ascii_lowercase().as_str() {
                "true" | "1" | "yes" => Ok(Some(true)),
                "false" | "0" | "no" => Ok(Some(false)),
                _ => Err(SpecError::BadValue {
                    param: name.to_string(),
                    value: v.to_string(),
                    expected: "true/false/1/0/yes/no".to_string(),
                }),
            },
        }
    }

    /// Rejects any parameter the builder never consumed.
    ///
    /// # Errors
    ///
    /// [`SpecError::UnknownParam`] naming the first unconsumed parameter
    /// and listing every parameter that was accepted.
    pub fn finish(self) -> Result<(), SpecError> {
        for (i, (n, _)) in self.spec.params.iter().enumerate() {
            if !self.used[i] {
                return Err(SpecError::UnknownParam {
                    key: self.spec.key.clone(),
                    param: n.clone(),
                    known: self.asked.iter().map(|s| s.to_string()).collect(),
                });
            }
        }
        Ok(())
    }
}

/// An executable algorithm: the object-safe interface the whole harness
/// dispatches through.
///
/// One implementation per algorithm *family*; parameterized variants are
/// distinct instances built from their [`AlgorithmSpec`]s. A runner must
/// be a pure function of `(graph, seed)` — all randomness derived from
/// the seed — so grids stay reproducible and thread-count independent.
pub trait DynRunner: Send + Sync {
    /// Display name matching the paper's terminology (`"Awake-MIS"`).
    fn name(&self) -> &str;

    /// Canonical spec string this runner was built from (`"awake"`,
    /// `"ldt?strategy=round"`). Used as the identity in grid payloads.
    fn key(&self) -> &str;

    /// Runs the algorithm on `g` with the given seed, drawing simulator
    /// working memory from `scratch`.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors; algorithmic Monte Carlo failures are
    /// reported in [`AlgoResult::failures`], not as errors.
    fn run_on(
        &self,
        g: &Graph,
        seed: u64,
        scratch: &mut ScratchArena,
    ) -> Result<AlgoResult, SimError>;

    /// The observational trace handle attached to this runner, when its
    /// spec asked for one (`trace=profile|jsonl`). Sinks aggregate
    /// across every run the handle observes; `Profile`'s rendered
    /// report is retrievable through
    /// [`TraceHandle::report`](sleeping_congest::TraceHandle::report).
    /// The default (and the norm) is no sink.
    fn trace(&self) -> Option<&TraceHandle> {
        None
    }
}

/// A cheaply-cloneable shared handle to a [`DynRunner`].
///
/// This is what grid specs, cells, and jobs carry; equality and hashing
/// go by [`key`](Self::key), so two handles resolved from the same spec
/// compare equal.
#[derive(Clone)]
pub struct RunnerHandle(Arc<dyn DynRunner>);

impl RunnerHandle {
    /// Wraps a runner.
    pub fn new(runner: impl DynRunner + 'static) -> RunnerHandle {
        RunnerHandle(Arc::new(runner))
    }

    /// Display name (see [`DynRunner::name`]).
    pub fn name(&self) -> &str {
        self.0.name()
    }

    /// Canonical spec key (see [`DynRunner::key`]).
    pub fn key(&self) -> &str {
        self.0.key()
    }

    /// Borrows the underlying trait object.
    pub fn as_dyn(&self) -> &dyn DynRunner {
        &*self.0
    }

    /// The runner's attached trace handle (see [`DynRunner::trace`]).
    pub fn trace(&self) -> Option<&TraceHandle> {
        self.0.trace()
    }

    /// Runs on `g` with fresh simulator working memory.
    ///
    /// # Errors
    ///
    /// See [`DynRunner::run_on`].
    pub fn run(&self, g: &Graph, seed: u64) -> Result<AlgoResult, SimError> {
        self.0.run_on(g, seed, &mut ScratchArena::new())
    }

    /// Runs on `g` reusing `scratch`'s buffers (identical results).
    ///
    /// # Errors
    ///
    /// See [`DynRunner::run_on`].
    pub fn run_with_scratch(
        &self,
        g: &Graph,
        seed: u64,
        scratch: &mut ScratchArena,
    ) -> Result<AlgoResult, SimError> {
        self.0.run_on(g, seed, scratch)
    }
}

impl fmt::Debug for RunnerHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RunnerHandle({})", self.key())
    }
}

impl PartialEq for RunnerHandle {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for RunnerHandle {}

impl std::hash::Hash for RunnerHandle {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.key().hash(state);
    }
}

type BuildFn = Box<dyn Fn(&AlgorithmSpec) -> Result<RunnerHandle, SpecError> + Send + Sync>;

struct RegistryEntry {
    /// Primary CLI key plus accepted aliases (all lowercased).
    keys: Vec<String>,
    /// One-line description for `--list-algos`-style help.
    about: String,
    build: BuildFn,
}

/// Maps CLI keys to runner builders.
///
/// [`Registry::builtin`] pre-registers the nine algorithms of the
/// comparison table; [`register`](Registry::register) adds user entries.
/// Resolution order and entry listing are deterministic (registration
/// order). See the module docs for a full registration example.
#[derive(Default)]
pub struct Registry {
    entries: Vec<RegistryEntry>,
}

impl Registry {
    /// An empty registry (no algorithms).
    pub fn empty() -> Registry {
        Registry { entries: Vec::new() }
    }

    /// A registry with every built-in algorithm pre-registered under its
    /// CLI key (`awake`, `awake-round`, `ldt`, `vt`, `naive`, `luby`,
    /// `na`, `gp-avg`, `le`, plus the paper-style display names as
    /// aliases).
    pub fn builtin() -> Registry {
        let mut reg = Registry::empty();
        crate::runners::register_builtins(&mut reg);
        reg
    }

    /// Registers `build` under `key`.
    ///
    /// # Errors
    ///
    /// [`SpecError::DuplicateKey`] if `key` (or an alias of an existing
    /// entry) is already taken.
    pub fn register<F>(&mut self, key: &str, about: &str, build: F) -> Result<(), SpecError>
    where
        F: Fn(&AlgorithmSpec) -> Result<RunnerHandle, SpecError> + Send + Sync + 'static,
    {
        self.register_aliased(&[key], about, build)
    }

    /// Registers `build` under a primary key plus aliases (all resolve;
    /// only the primary is listed by [`keys`](Registry::keys)).
    ///
    /// # Errors
    ///
    /// [`SpecError::DuplicateKey`] if any of `keys` is already taken.
    pub fn register_aliased<F>(
        &mut self,
        keys: &[&str],
        about: &str,
        build: F,
    ) -> Result<(), SpecError>
    where
        F: Fn(&AlgorithmSpec) -> Result<RunnerHandle, SpecError> + Send + Sync + 'static,
    {
        assert!(!keys.is_empty(), "an entry needs at least one key");
        let keys: Vec<String> = keys.iter().map(|k| k.to_ascii_lowercase()).collect();
        for k in &keys {
            if self.entries.iter().any(|e| e.keys.contains(k)) {
                return Err(SpecError::DuplicateKey { key: k.clone() });
            }
        }
        self.entries.push(RegistryEntry { keys, about: about.to_string(), build: Box::new(build) });
        Ok(())
    }

    /// Parses `spec` and builds its runner.
    ///
    /// # Errors
    ///
    /// Parse errors, [`SpecError::UnknownAlgorithm`], or whatever the
    /// entry's builder rejects (unknown/ill-typed parameters).
    pub fn resolve(&self, spec: &str) -> Result<RunnerHandle, SpecError> {
        self.resolve_spec(&AlgorithmSpec::parse(spec)?)
    }

    /// Builds the runner for an already-parsed spec.
    ///
    /// # Errors
    ///
    /// See [`resolve`](Registry::resolve).
    pub fn resolve_spec(&self, spec: &AlgorithmSpec) -> Result<RunnerHandle, SpecError> {
        let entry = self
            .entries
            .iter()
            .find(|e| e.keys.iter().any(|k| k == spec.key()))
            .ok_or_else(|| SpecError::UnknownAlgorithm {
                key: spec.key().to_string(),
                known: self.keys().map(str::to_string).collect(),
            })?;
        (entry.build)(spec)
    }

    /// Resolves a comma-separated list of specs, in order. An empty
    /// list (or an empty element, e.g. a stray comma) is an error —
    /// a mangled CLI value must never silently run zero algorithms.
    ///
    /// # Errors
    ///
    /// [`SpecError::Syntax`] on an empty list or element, otherwise the
    /// first error among the list's specs.
    pub fn resolve_list(&self, list: &str) -> Result<Vec<RunnerHandle>, SpecError> {
        if list.trim().is_empty() {
            return Err(SpecError::Syntax {
                spec: list.to_string(),
                detail: "empty algorithm list".to_string(),
            });
        }
        list.split(',').map(|s| self.resolve(s)).collect()
    }

    /// Primary keys, in registration order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|e| e.keys[0].as_str())
    }

    /// `(primary key, description)` pairs, in registration order.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|e| (e.keys[0].as_str(), e.about.as_str()))
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry").field("keys", &self.keys().collect::<Vec<_>>()).finish()
    }
}

/// The process-wide default registry (built-ins only), built once.
///
/// Binaries resolve through this; code that wants custom entries builds
/// its own [`Registry`] (start from [`Registry::builtin`]).
pub fn default_registry() -> &'static Registry {
    static REGISTRY: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
    REGISTRY.get_or_init(Registry::builtin)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_bare_key() {
        let s = AlgorithmSpec::parse("Awake").unwrap();
        assert_eq!(s.key(), "awake");
        assert!(s.params().is_empty());
        assert_eq!(s.canonical(), "awake");
    }

    #[test]
    fn parse_params_and_flags() {
        let s = AlgorithmSpec::parse("awake?delta_factor=9.5&Uniform_Batches&x=y").unwrap();
        assert_eq!(s.key(), "awake");
        assert_eq!(
            s.params(),
            &[
                ("delta_factor".to_string(), "9.5".to_string()),
                ("uniform_batches".to_string(), "true".to_string()),
                ("x".to_string(), "y".to_string()),
            ]
        );
        assert_eq!(s.canonical(), "awake?delta_factor=9.5&uniform_batches=true&x=y");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(AlgorithmSpec::parse(""), Err(SpecError::Syntax { .. })));
        assert!(matches!(AlgorithmSpec::parse("a b"), Err(SpecError::Syntax { .. })));
        assert!(matches!(AlgorithmSpec::parse("awake?"), Err(SpecError::Syntax { .. })));
        assert!(matches!(AlgorithmSpec::parse("awake?=3"), Err(SpecError::Syntax { .. })));
        assert!(matches!(AlgorithmSpec::parse("awake?x="), Err(SpecError::Syntax { .. })));
        assert!(matches!(
            AlgorithmSpec::parse("awake?x=1&x=2"),
            Err(SpecError::DuplicateParam { .. })
        ));
    }

    #[test]
    fn reader_flags_unknown_params() {
        let s = AlgorithmSpec::parse("awake?mystery=1").unwrap();
        let mut r = s.reader();
        assert_eq!(r.f64("delta_factor").unwrap(), None);
        let err = r.finish().unwrap_err();
        assert!(
            matches!(err, SpecError::UnknownParam { ref param, .. } if param == "mystery"),
            "{err:?}"
        );
    }

    #[test]
    fn reader_types() {
        let s = AlgorithmSpec::parse("x?a=2.5&b=7&c=yes&d").unwrap();
        let mut r = s.reader();
        assert_eq!(r.f64("a").unwrap(), Some(2.5));
        assert_eq!(r.u64("b").unwrap(), Some(7));
        assert_eq!(r.bool("c").unwrap(), Some(true));
        assert_eq!(r.bool("d").unwrap(), Some(true));
        r.finish().unwrap();

        let s = AlgorithmSpec::parse("x?a=nope").unwrap();
        let mut r = s.reader();
        assert!(matches!(r.f64("a"), Err(SpecError::BadValue { .. })));
    }

    #[test]
    fn registry_rejects_duplicate_keys() {
        let mut reg = Registry::builtin();
        let err = reg
            .register("awake", "clash", |_| unreachable!("never built"))
            .unwrap_err();
        assert_eq!(err, SpecError::DuplicateKey { key: "awake".to_string() });
        // Aliases clash too.
        let err = reg.register("awake-mis", "clash", |_| unreachable!()).unwrap_err();
        assert!(matches!(err, SpecError::DuplicateKey { .. }));
    }

    #[test]
    fn unknown_algorithm_lists_known_keys() {
        let err = default_registry().resolve("quantum").unwrap_err();
        match err {
            SpecError::UnknownAlgorithm { key, known } => {
                assert_eq!(key, "quantum");
                assert!(known.contains(&"awake".to_string()));
                assert!(known.contains(&"luby".to_string()));
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn resolve_list_splits_on_commas() {
        let handles = default_registry().resolve_list("awake, luby").unwrap();
        assert_eq!(handles.len(), 2);
        assert_eq!(handles[0].key(), "awake");
        assert_eq!(handles[1].key(), "luby");
        assert!(default_registry().resolve_list("awake,nope").is_err());
        // Mangled lists must not silently resolve to zero algorithms.
        assert!(matches!(
            default_registry().resolve_list(""),
            Err(SpecError::Syntax { .. })
        ));
        assert!(default_registry().resolve_list("awake,,luby").is_err());
        assert!(default_registry().resolve_list(",").is_err());
    }
}
