//! Batched seed-grid experiment harness.
//!
//! A [`GridSpec`] describes a cartesian grid of
//! `{algorithm × graph family × n × seed}` where the algorithm axis is a
//! list of registry-resolved [`RunnerHandle`]s; [`run_grid`] fans the
//! grid across OS threads via [`sleeping_congest::batch`], reusing one
//! type-erased [`ScratchArena`] per worker so mailboxes, RNG tables, and
//! wake buckets are shared across runs of every protocol family. Results
//! come back as per-run [`GridPoint`]s (in grid order, independent of
//! the thread count) plus per-cell aggregates ([`GridCell`], one per
//! `{algorithm × family × n}` with summary statistics over seeds), and
//! serialize to the machine-readable `BENCH_grid.json` payload.
//!
//! Determinism contract: every run is a pure function of
//! `(family, n, seed, algorithm spec)`, so [`GridResult::payload_json`]
//! is byte-identical across thread counts. Wall-clock and thread-count
//! metadata live only in the separate [`GridMeta`] object and the
//! per-point `timing` section appended by [`GridResult::to_json`] —
//! never in the payload.

use crate::runners::AlgoResult;
use crate::spec::RunnerHandle;
use crate::stats::Summary;
use graphgen::GraphFamily;
use sleeping_congest::batch::{resolve_threads, run_batch};
use sleeping_congest::{AwakeDistribution, Metrics, ScratchArena, SimError};
use std::time::Instant;

/// A cartesian experiment grid.
#[derive(Debug, Clone)]
pub struct GridSpec {
    /// Algorithms to run (outermost grid axis), as registry-resolved
    /// runner handles — any spec the registry accepts, including
    /// parameterized variants like `awake?round_efficient=true`.
    pub algorithms: Vec<RunnerHandle>,
    /// Graph families.
    pub families: Vec<GraphFamily>,
    /// Node counts.
    pub sizes: Vec<usize>,
    /// Seeds (innermost axis). Each seed drives both the instance
    /// generation and the run randomness, so any point is reproducible
    /// from its coordinates alone.
    pub seeds: Vec<u64>,
    /// Extra coordinate blocks appended after the base grid, each with
    /// its own axes (see [`GridTier`]). Empty for a plain cartesian
    /// grid; the payload spec echoes a `tiers` array only when this is
    /// non-empty, so pre-tier documents are byte-unchanged.
    pub tiers: Vec<GridTier>,
    /// Worker threads; `0` means all available hardware threads. Does
    /// not affect results.
    pub threads: usize,
}

/// A named block of grid coordinates with its own axes, appended after
/// the base cartesian product.
///
/// This is how `BENCH_grid.json` carries the `large` tier: million-node
/// points for the fast algorithms (`luby`, `awake`) on one family with
/// few seeds, without multiplying the full base grid by a size nobody
/// wants to run the slow baselines at. Tier points obey the same
/// determinism contract as base points — their coordinates fully
/// reproduce them.
#[derive(Debug, Clone)]
pub struct GridTier {
    /// Tier name, echoed in the payload spec (e.g. `"large"`).
    pub name: String,
    /// Algorithms of this tier.
    pub algorithms: Vec<RunnerHandle>,
    /// Graph families of this tier.
    pub families: Vec<GraphFamily>,
    /// Node counts of this tier.
    pub sizes: Vec<usize>,
    /// Seeds of this tier.
    pub seeds: Vec<u64>,
}

impl GridSpec {
    /// The grid flattened to jobs, in deterministic grid order
    /// (algorithm-major, seed-minor): the base cartesian product first,
    /// then each tier's, in declaration order.
    pub fn jobs(&self) -> Vec<GridJob> {
        let mut jobs = Vec::with_capacity(
            self.algorithms.len() * self.families.len() * self.sizes.len() * self.seeds.len(),
        );
        push_jobs(&mut jobs, &self.algorithms, &self.families, &self.sizes, &self.seeds);
        for tier in &self.tiers {
            push_jobs(&mut jobs, &tier.algorithms, &tier.families, &tier.sizes, &tier.seeds);
        }
        jobs
    }
}

fn push_jobs(
    jobs: &mut Vec<GridJob>,
    algorithms: &[RunnerHandle],
    families: &[GraphFamily],
    sizes: &[usize],
    seeds: &[u64],
) {
    for algorithm in algorithms {
        for &family in families {
            for &n in sizes {
                for &seed in seeds {
                    jobs.push(GridJob { algorithm: algorithm.clone(), family, n, seed });
                }
            }
        }
    }
}

/// One coordinate of the grid: a single `(algorithm, family, n, seed)`
/// run. The algorithm is a shared handle, so cloning a job is cheap.
#[derive(Debug, Clone, PartialEq)]
pub struct GridJob {
    /// Algorithm to run.
    pub algorithm: RunnerHandle,
    /// Graph family generating the instance.
    pub family: GraphFamily,
    /// Node count.
    pub n: usize,
    /// Seed for both instance generation and run randomness.
    pub seed: u64,
}

/// Normalized measurements of one grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct GridPoint {
    /// The coordinates this point was measured at.
    pub job: GridJob,
    /// Actual node count of the generated instance. Families that round
    /// to a lattice (`grid`) or clamp (`cycle`) can deviate from the
    /// requested `job.n`; fits against instance size must use this.
    pub nodes: usize,
    /// Worst-case awake complexity (`max_v A_v`).
    pub awake_max: u64,
    /// Node-averaged awake complexity.
    pub awake_avg: f64,
    /// Full distribution statistics over the per-node awake counts
    /// (mean = `awake_avg`, max = `awake_max`, plus median, p95, Gini,
    /// skew). This is what makes worst-case and node-averaged
    /// algorithms comparable cell by cell.
    pub awake_dist: AwakeDistribution,
    /// Round complexity (sleeping + awake).
    pub rounds: u64,
    /// Rounds the engine actually simulated (≥ 1 node awake).
    pub active_rounds: u64,
    /// Total messages sent.
    pub messages: u64,
    /// Largest message in bits.
    pub max_message_bits: usize,
    /// Size of the computed MIS.
    pub mis_size: usize,
    /// Whether the output verified as a correct MIS — of the survivor
    /// subgraph when the run's fault model crashed nodes.
    pub correct: bool,
    /// Number of nodes reporting a Monte Carlo failure.
    pub failures: usize,
    /// Number of nodes crashed by the fault model (0 on clean runs).
    pub crashed: usize,
    /// Deliverable message copies dropped by the fault model's lossy
    /// links (0 on clean runs).
    pub faulted: u64,
    /// Engine-level error, if the run aborted (correct is false then).
    pub sim_error: Option<String>,
    /// Wall-clock time of this point (generation + run), in
    /// nanoseconds. Machine-dependent, so it is serialized in the
    /// `timing` sibling section, **never** in the deterministic payload.
    pub elapsed_ns: u64,
}

/// Aggregates over the seed axis for one `{algorithm × family × n}`.
#[derive(Debug, Clone)]
pub struct GridCell {
    /// Algorithm of this cell.
    pub algorithm: RunnerHandle,
    /// Graph family of this cell.
    pub family: GraphFamily,
    /// Node count of this cell.
    pub n: usize,
    /// Number of seeds aggregated.
    pub runs: usize,
    /// Summary of worst-case awake complexity over seeds.
    pub awake_max: Summary,
    /// Summary of node-averaged awake complexity over seeds.
    pub awake_avg: Summary,
    /// Summary of the per-run 95th-percentile awake rounds over seeds.
    pub awake_p95: Summary,
    /// Summary of the per-run awake-load Gini coefficient over seeds.
    pub awake_gini: Summary,
    /// Summary of round complexity over seeds.
    pub rounds: Summary,
    /// Largest message observed across seeds, in bits.
    pub max_message_bits: usize,
    /// Whether every seed verified correct with zero failures.
    pub all_correct: bool,
    /// Fraction of seeds that did **not** verify correct — the
    /// robustness headline under a fault model (0.0 on clean cells).
    pub failure_rate: f64,
    /// Total nodes crashed across seeds (0 on clean cells).
    pub crashed: u64,
    /// Total deliverable message copies dropped across seeds (0 on
    /// clean cells).
    pub faulted: u64,
}

/// The outcome of [`run_grid`]: the spec, every point, every cell.
#[derive(Debug, Clone)]
pub struct GridResult {
    /// The grid that was run.
    pub spec: GridSpec,
    /// Per-run measurements, in grid order.
    pub points: Vec<GridPoint>,
    /// Per-`{algorithm × family × n}` aggregates, in grid order.
    pub cells: Vec<GridCell>,
}

/// Non-deterministic run metadata, kept out of the payload so payloads
/// compare byte-identical across machines and thread counts.
#[derive(Debug, Clone)]
pub struct GridMeta {
    /// Worker threads actually used.
    pub threads: usize,
    /// Wall-clock duration of the grid in milliseconds.
    pub wall_ms: u128,
}

/// Runs one grid job on a caller-provided scratch.
pub fn run_point(job: &GridJob, scratch: &mut ScratchArena) -> GridPoint {
    run_point_detailed(job, scratch).0
}

/// Like [`run_point`], additionally returning the run's full engine
/// [`Metrics`] (`None` when the engine aborted) so richer harnesses —
/// the energy-frontier sweep in [`crate::sweep`] — can derive
/// per-node measurements the normalized [`GridPoint`] does not carry.
pub fn run_point_detailed(
    job: &GridJob,
    scratch: &mut ScratchArena,
) -> (GridPoint, Option<Metrics>) {
    let start = Instant::now();
    let g = job.family.generate(job.n, job.seed);
    let nodes = g.n();
    let res = job.algorithm.run_with_scratch(&g, job.seed, scratch);
    let (point, result) = point_from_run(job, nodes, res);
    (GridPoint { elapsed_ns: start.elapsed().as_nanos() as u64, ..point }, result.map(|r| r.metrics))
}

/// Normalizes a finished (or aborted) run into a [`GridPoint`],
/// returning the full [`AlgoResult`] alongside on success. Shared by
/// [`run_point_detailed`] and the churn harness's bootstrap run
/// ([`crate::churn`]), so a zero-delta churn point is byte-identical to
/// the corresponding one-shot grid point. `elapsed_ns` is left at 0 —
/// timing is the caller's concern.
pub(crate) fn point_from_run(
    job: &GridJob,
    nodes: usize,
    res: Result<AlgoResult, SimError>,
) -> (GridPoint, Option<AlgoResult>) {
    match res {
        Ok(r) => (
            GridPoint {
                job: job.clone(),
                nodes,
                awake_max: r.awake_max,
                awake_avg: r.awake_avg,
                awake_dist: r.metrics.awake_distribution(),
                rounds: r.rounds,
                active_rounds: r.metrics.active_rounds,
                messages: r.messages,
                max_message_bits: r.max_message_bits,
                mis_size: r.mis_size,
                correct: r.correct,
                failures: r.failures,
                crashed: r.crashed,
                faulted: r.faulted,
                sim_error: None,
                elapsed_ns: 0,
            },
            Some(r),
        ),
        Err(e) => (
            GridPoint {
                job: job.clone(),
                nodes,
                awake_max: 0,
                awake_avg: 0.0,
                awake_dist: AwakeDistribution::default(),
                rounds: 0,
                active_rounds: 0,
                messages: 0,
                max_message_bits: 0,
                mis_size: 0,
                correct: false,
                failures: 0,
                crashed: 0,
                faulted: 0,
                sim_error: Some(e.to_string()),
                elapsed_ns: 0,
            },
            None,
        ),
    }
}

/// Runs the whole grid, fanning jobs over `spec.threads` workers with
/// per-worker scratch reuse. The returned points and cells are in grid
/// order and — apart from the wall-clock `elapsed_ns` field — bit-
/// identical for every thread count.
pub fn run_grid(spec: &GridSpec) -> GridResult {
    let jobs = spec.jobs();
    let threads = resolve_threads(spec.threads);
    let points = run_batch(&jobs, threads, |_| ScratchArena::new(), |scratch, _i, job| {
        run_point(job, scratch)
    });
    let cells = aggregate(spec, &points);
    GridResult { spec: spec.clone(), points, cells }
}

fn aggregate(spec: &GridSpec, points: &[GridPoint]) -> Vec<GridCell> {
    // Points arrive in job order: the base grid's segment first, then
    // one segment per tier — each chunked by its own seed count.
    let mut cells = Vec::new();
    let base_cells = spec.algorithms.len() * spec.families.len() * spec.sizes.len();
    let (segment, mut rest) = points.split_at((base_cells * spec.seeds.len()).min(points.len()));
    aggregate_segment(segment, spec.seeds.len(), &mut cells);
    for tier in &spec.tiers {
        let tier_cells = tier.algorithms.len() * tier.families.len() * tier.sizes.len();
        let (segment, r) = rest.split_at((tier_cells * tier.seeds.len()).min(rest.len()));
        aggregate_segment(segment, tier.seeds.len(), &mut cells);
        rest = r;
    }
    cells
}

fn aggregate_segment(points: &[GridPoint], runs: usize, cells: &mut Vec<GridCell>) {
    if runs == 0 {
        return;
    }
    cells.extend(points.chunks(runs).map(|chunk| {
        let head = &chunk[0].job;
        let awake_max: Vec<u64> = chunk.iter().map(|p| p.awake_max).collect();
        let awake_avg: Vec<f64> = chunk.iter().map(|p| p.awake_avg).collect();
        let awake_p95: Vec<f64> = chunk.iter().map(|p| p.awake_dist.p95).collect();
        let awake_gini: Vec<f64> = chunk.iter().map(|p| p.awake_dist.gini).collect();
        let rounds: Vec<u64> = chunk.iter().map(|p| p.rounds).collect();
        GridCell {
            algorithm: head.algorithm.clone(),
            family: head.family,
            n: head.n,
            runs,
            awake_max: Summary::of_u64(&awake_max),
            awake_avg: Summary::of(&awake_avg),
            awake_p95: Summary::of(&awake_p95),
            awake_gini: Summary::of(&awake_gini),
            rounds: Summary::of_u64(&rounds),
            max_message_bits: chunk.iter().map(|p| p.max_message_bits).max().unwrap_or(0),
            all_correct: chunk.iter().all(|p| p.correct),
            failure_rate: chunk.iter().filter(|p| !p.correct).count() as f64 / runs as f64,
            crashed: chunk.iter().map(|p| p.crashed as u64).sum(),
            faulted: chunk.iter().map(|p| p.faulted).sum(),
        }
    }));
}

/// One axes block of the spec echo, shared by the base grid and tiers.
fn axes_json(
    algorithms: &[RunnerHandle],
    families: &[GraphFamily],
    sizes: &[usize],
    seeds: &[u64],
) -> String {
    let algorithms: Vec<String> =
        algorithms.iter().map(|a| format!("\"{}\"", json_escape(a.key()))).collect();
    let families: Vec<String> = families.iter().map(|f| format!("\"{}\"", f.key())).collect();
    let sizes: Vec<String> = sizes.iter().map(|n| n.to_string()).collect();
    let seeds: Vec<String> = seeds.iter().map(|s| s.to_string()).collect();
    format!(
        "\"algorithms\": [{}], \"families\": [{}], \"sizes\": [{}], \"seeds\": [{}]",
        algorithms.join(", "),
        families.join(", "),
        sizes.join(", "),
        seeds.join(", "),
    )
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn summary_json(s: &Summary) -> String {
    format!(
        "{{\"mean\":{},\"std\":{},\"min\":{},\"median\":{},\"max\":{}}}",
        s.mean, s.std, s.min, s.median, s.max
    )
}

fn dist_json(d: &AwakeDistribution) -> String {
    format!(
        "{{\"mean\":{},\"median\":{},\"p95\":{},\"max\":{},\"gini\":{},\"skew\":{}}}",
        d.mean, d.median, d.p95, d.max, d.gini, d.skew
    )
}

impl GridPoint {
    /// The point's deterministic JSON object — one line of the
    /// `points` section of `BENCH_grid.json` (and of the fault
    /// document, which reuses the format so clean fault levels are
    /// byte-comparable against the grid).
    pub fn json(&self) -> String {
        let mut out = format!(
            "{{\"algorithm\":\"{}\",\"family\":\"{}\",\"n\":{},\"seed\":{},\"nodes\":{},\
             \"awake_max\":{},\"awake_avg\":{},\"awake_dist\":{},\"rounds\":{},\
             \"active_rounds\":{},\"messages\":{},\"max_message_bits\":{},\"mis_size\":{},\
             \"correct\":{},\"failures\":{},\"crashed\":{},\"faulted\":{}",
            json_escape(self.job.algorithm.key()),
            self.job.family.key(),
            self.job.n,
            self.job.seed,
            self.nodes,
            self.awake_max,
            self.awake_avg,
            dist_json(&self.awake_dist),
            self.rounds,
            self.active_rounds,
            self.messages,
            self.max_message_bits,
            self.mis_size,
            self.correct,
            self.failures,
            self.crashed,
            self.faulted,
        );
        if let Some(e) = &self.sim_error {
            out.push_str(&format!(",\"sim_error\":\"{}\"", json_escape(e)));
        }
        out.push('}');
        out
    }
}

impl GridCell {
    /// The payload fields that identify one grid cell, in key order —
    /// the single source of truth `bench-diff`/`bench-report` use when
    /// grouping `points` into cells.
    pub const KEY_FIELDS: [&'static str; 3] = ["algorithm", "family", "n"];

    /// This cell's identity as textual key components matching
    /// [`Self::KEY_FIELDS`] and the artifact JSON spelling.
    pub fn cell_key(&self) -> Vec<String> {
        vec![self.algorithm.key().to_string(), self.family.key(), self.n.to_string()]
    }

    fn json(&self) -> String {
        format!(
            "{{\"algorithm\":\"{}\",\"family\":\"{}\",\"n\":{},\"runs\":{},\
             \"awake_max\":{},\"awake_avg\":{},\"awake_p95\":{},\"awake_gini\":{},\
             \"rounds\":{},\"max_message_bits\":{},\"all_correct\":{},\
             \"failure_rate\":{},\"crashed\":{},\"faulted\":{}}}",
            json_escape(self.algorithm.key()),
            self.family.key(),
            self.n,
            self.runs,
            summary_json(&self.awake_max),
            summary_json(&self.awake_avg),
            summary_json(&self.awake_p95),
            summary_json(&self.awake_gini),
            summary_json(&self.rounds),
            self.max_message_bits,
            self.all_correct,
            self.failure_rate,
            self.crashed,
            self.faulted,
        )
    }
}

impl GridResult {
    /// The deterministic JSON payload: schema id, spec echo, cells,
    /// points. Byte-identical across thread counts and repeat runs.
    pub fn payload_json(&self) -> String {
        self.json_with_meta(None)
    }

    /// The full JSON document: the payload plus a `meta` object and a
    /// per-point `timing` section carrying wall-clock fields (both
    /// excluded from determinism comparisons).
    pub fn to_json(&self, meta: &GridMeta) -> String {
        self.json_with_meta(Some(meta))
    }

    fn json_with_meta(&self, meta: Option<&GridMeta>) -> String {
        let mut out = String::from("{\n  \"schema\": \"awake-mis/bench-grid/v3\",\n");
        if let Some(m) = meta {
            out.push_str(&format!(
                "  \"meta\": {{\"threads\": {}, \"wall_ms\": {}}},\n",
                m.threads, m.wall_ms
            ));
            // Per-point wall-clock timing, in grid (= points) order.
            // Lives beside the payload, not in it, for the same reason
            // as `meta`: payloads must compare byte-identical.
            let ns: Vec<String> = self.points.iter().map(|p| p.elapsed_ns.to_string()).collect();
            out.push_str(&format!("  \"timing\": {{\"elapsed_ns\": [{}]}},\n", ns.join(", ")));
        }
        let mut spec_body = axes_json(
            &self.spec.algorithms,
            &self.spec.families,
            &self.spec.sizes,
            &self.spec.seeds,
        );
        // `tiers` is echoed only when present, so pre-tier documents
        // (and every small explicit-axes grid) stay byte-unchanged.
        if !self.spec.tiers.is_empty() {
            let tiers: Vec<String> = self
                .spec
                .tiers
                .iter()
                .map(|t| {
                    format!(
                        "{{\"name\": \"{}\", {}}}",
                        json_escape(&t.name),
                        axes_json(&t.algorithms, &t.families, &t.sizes, &t.seeds)
                    )
                })
                .collect();
            spec_body.push_str(&format!(", \"tiers\": [{}]", tiers.join(", ")));
        }
        out.push_str(&format!("  \"spec\": {{{spec_body}}},\n"));
        out.push_str("  \"cells\": [\n");
        let cells: Vec<String> = self.cells.iter().map(|c| format!("    {}", c.json())).collect();
        out.push_str(&cells.join(",\n"));
        out.push_str("\n  ],\n  \"points\": [\n");
        let points: Vec<String> = self.points.iter().map(|p| format!("    {}", p.json())).collect();
        out.push_str(&points.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::default_registry;

    fn tiny_spec(threads: usize) -> GridSpec {
        GridSpec {
            algorithms: default_registry().resolve_list("luby,vt").unwrap(),
            families: vec![GraphFamily::Er, GraphFamily::Cycle],
            sizes: vec![32, 64],
            seeds: vec![1, 2, 3],
            tiers: Vec::new(),
            threads,
        }
    }

    #[test]
    fn grid_shape_and_order() {
        let spec = tiny_spec(1);
        let jobs = spec.jobs();
        assert_eq!(jobs.len(), 2 * 2 * 2 * 3);
        // Seed-minor ordering.
        assert_eq!(jobs[0].seed, 1);
        assert_eq!(jobs[1].seed, 2);
        assert_eq!(jobs[3].n, 64);
        assert_eq!(jobs[3].seed, 1);
        let result = run_grid(&spec);
        assert_eq!(result.points.len(), jobs.len());
        assert_eq!(result.cells.len(), 2 * 2 * 2);
        assert!(result.cells.iter().all(|c| c.all_correct), "all cells must verify");
        for (job, point) in jobs.iter().zip(&result.points) {
            assert_eq!(*job, point.job, "points must come back in grid order");
            assert!(point.elapsed_ns > 0, "every point must be timed");
        }
    }

    #[test]
    fn payload_is_valid_shape_and_deterministic() {
        let spec = tiny_spec(1);
        let a = run_grid(&spec).payload_json();
        let b = run_grid(&spec).payload_json();
        assert_eq!(a, b, "payload must be reproducible");
        assert!(a.contains("\"schema\": \"awake-mis/bench-grid/v3\""));
        assert!(a.contains("\"cells\""));
        assert!(a.contains("\"points\""));
        assert!(a.contains("\"awake_dist\":{\"mean\":"), "points carry the distribution");
        assert!(a.contains("\"awake_p95\":{\"mean\":"), "cells summarize p95");
        assert!(a.contains("\"awake_gini\":{\"mean\":"), "cells summarize gini");
        assert!(a.contains("\"crashed\":0,\"faulted\":0"), "points carry fault counters");
        assert!(a.contains("\"failure_rate\":0,"), "cells carry the failure rate");
        assert!(!a.contains("wall_ms"), "payload must not carry wall-clock fields");
        assert!(!a.contains("elapsed_ns"), "payload must not carry per-point timing");
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }

    #[test]
    fn meta_and_timing_live_only_in_full_document() {
        let spec = tiny_spec(1);
        let result = run_grid(&spec);
        let full = result.to_json(&GridMeta { threads: 3, wall_ms: 17 });
        assert!(full.contains("\"meta\": {\"threads\": 3, \"wall_ms\": 17}"));
        assert!(full.contains("\"timing\": {\"elapsed_ns\": ["));
        // Stripping the meta and timing lines reproduces the payload
        // exactly.
        let stripped: String = full
            .lines()
            .filter(|l| !l.contains("\"meta\"") && !l.contains("\"timing\""))
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
        assert_eq!(stripped, result.payload_json());
    }

    #[test]
    fn node_averaged_algorithms_flow_through_the_grid() {
        // The two average-awake entrants ride the same axes as the
        // worst-case algorithms, with no dispatch edits anywhere.
        let spec = GridSpec {
            algorithms: default_registry().resolve_list("na,gp-avg,luby").unwrap(),
            families: vec![GraphFamily::Er],
            sizes: vec![48],
            seeds: vec![1, 2],
            tiers: Vec::new(),
            threads: 1,
        };
        let result = run_grid(&spec);
        assert!(result.cells.iter().all(|c| c.all_correct));
        for cell in &result.cells {
            assert!(cell.awake_gini.mean >= 0.0 && cell.awake_gini.mean < 1.0);
            assert!(cell.awake_p95.mean <= cell.awake_max.mean + 1e-9);
        }
        // The dropout algorithms concentrate awake load on a few nodes:
        // their Gini must exceed always-awake Luby's.
        let (na, luby) = (&result.cells[0], &result.cells[2]);
        assert_eq!(na.algorithm.key(), "na");
        assert_eq!(luby.algorithm.key(), "luby");
        assert!(
            na.awake_gini.mean > luby.awake_gini.mean,
            "dropout skew: na {} vs luby {}",
            na.awake_gini.mean,
            luby.awake_gini.mean
        );
    }

    #[test]
    fn parameterized_spec_runs_end_to_end() {
        // A spec override must flow through the grid with its canonical
        // key in the payload — no dispatch edits anywhere.
        let spec = GridSpec {
            algorithms: default_registry().resolve_list("vt?id_upper=4096").unwrap(),
            families: vec![GraphFamily::Cycle],
            sizes: vec![24],
            seeds: vec![1, 2],
            tiers: Vec::new(),
            threads: 1,
        };
        let result = run_grid(&spec);
        assert!(result.cells[0].all_correct);
        assert!(result.payload_json().contains("\"vt?id_upper=4096\""));
    }

    #[test]
    fn tiers_append_points_and_cells_after_the_base_grid() {
        let spec = GridSpec {
            algorithms: default_registry().resolve_list("luby").unwrap(),
            families: vec![GraphFamily::Er],
            sizes: vec![32],
            seeds: vec![1, 2],
            tiers: vec![GridTier {
                name: "big".to_string(),
                algorithms: default_registry().resolve_list("vt,luby").unwrap(),
                families: vec![GraphFamily::Cycle],
                sizes: vec![24],
                seeds: vec![9],
            }],
            threads: 1,
        };
        // Jobs: the base product first, then the tier's, in tier order.
        let jobs = spec.jobs();
        assert_eq!(jobs.len(), 2 + 2);
        assert_eq!(jobs[0].family, GraphFamily::Er);
        assert_eq!(jobs[2].family, GraphFamily::Cycle);
        assert_eq!(jobs[2].algorithm.key(), "vt");
        assert_eq!(jobs[3].algorithm.key(), "luby");

        let result = run_grid(&spec);
        assert_eq!(result.points.len(), 4);
        // Aggregation is segment-aware: the base cell averages the base
        // seeds, each tier cell averages only its own tier's seeds.
        assert_eq!(result.cells.len(), 1 + 2);
        assert_eq!(result.cells[0].runs, 2);
        assert_eq!(result.cells[1].runs, 1);
        assert_eq!(result.cells[1].algorithm.key(), "vt");
        assert!(result.cells.iter().all(|c| c.all_correct));

        // The tier is echoed in the payload spec; tier-free specs stay
        // byte-compatible with pre-tier documents.
        let payload = result.payload_json();
        assert!(payload.contains(
            "\"tiers\": [{\"name\": \"big\", \"algorithms\": [\"vt\", \"luby\"], \
             \"families\": [\"cycle\"], \"sizes\": [24], \"seeds\": [9]}]"
        ));
        let plain = GridSpec { tiers: Vec::new(), ..spec };
        assert!(!run_grid(&plain).payload_json().contains("tiers"));
    }
}
