//! Direct measurement of the paper's two probabilistic workhorses:
//! residual sparsity (Lemma 2) and graph shattering (Lemma 3).

use graphgen::{props, Graph, NodeId};
use rand::Rng;

/// One data point of the Lemma 2 measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResidualPoint {
    /// Prefix length `t`.
    pub t: usize,
    /// Horizon `t′`.
    pub t_prime: usize,
    /// Measured maximum degree of `G[V_t′ \ N(M_t)]`.
    pub max_degree: usize,
    /// Lemma 2's bound `(t′/t)·ln(n/ε)`.
    pub bound: f64,
}

/// Measures the residual-degree profile of randomized greedy MIS along a
/// given random order: for each `t` in `ts`, the maximum degree of the
/// subgraph induced by the first `t′ = ratio·t` nodes that are neither
/// in nor adjacent to the LFMIS of the first `t` (Lemma 2, with
/// `ε = 1/n`).
pub fn residual_profile(
    g: &Graph,
    order: &[NodeId],
    ts: &[usize],
    ratio: f64,
) -> Vec<ResidualPoint> {
    let n = g.n();
    let ln_bound = |t: usize, tp: usize| (tp as f64 / t as f64) * ((n * n) as f64).ln();
    ts.iter()
        .filter_map(|&t| {
            let tp = ((t as f64 * ratio) as usize).min(n);
            if t == 0 || tp <= t {
                return None;
            }
            let (_, d) = awake_mis_core::greedy::residual_degree(g, order, t, tp);
            Some(ResidualPoint { t, t_prime: tp, max_degree: d, bound: ln_bound(t, tp) })
        })
        .collect()
}

/// One data point of the Lemma 3 measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShatterPoint {
    /// Number of parts `2Δ`.
    pub parts: usize,
    /// Largest connected component observed over all parts.
    pub max_component: usize,
    /// Lemma 3's bound `6·ln(n/ε)` with `ε = 1/n`.
    pub bound: f64,
}

/// Partitions the nodes of `h` into `parts` classes uniformly at random
/// and reports the largest connected component among the induced
/// subgraphs (one sample of Lemma 3's experiment).
pub fn shatter_once(h: &Graph, parts: usize, rng: &mut impl Rng) -> ShatterPoint {
    assert!(parts >= 1, "need at least one part");
    let n = h.n();
    let mut classes: Vec<Vec<NodeId>> = vec![Vec::new(); parts];
    for v in 0..n as NodeId {
        classes[rng.gen_range(0..parts)].push(v);
    }
    let max_component = classes
        .iter()
        .map(|class| {
            if class.is_empty() {
                0
            } else {
                let (sub, _) = h.induced(class);
                props::component_sizes(&sub).first().copied().unwrap_or(0)
            }
        })
        .max()
        .unwrap_or(0);
    ShatterPoint { parts, max_component, bound: 6.0 * ((n * n) as f64).ln() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::generators;
    use rand::rngs::SmallRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    #[test]
    fn residual_profile_respects_bound() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = generators::gnp(400, 0.1, &mut rng);
        let mut order: Vec<NodeId> = (0..400).collect();
        order.shuffle(&mut rng);
        let pts = residual_profile(&g, &order, &[20, 40, 80, 160], 2.0);
        assert_eq!(pts.len(), 4);
        for p in &pts {
            assert!(
                (p.max_degree as f64) <= p.bound,
                "t = {}: degree {} above Lemma 2 bound {:.1}",
                p.t,
                p.max_degree,
                p.bound
            );
        }
    }

    #[test]
    fn shattering_with_enough_parts() {
        // A bounded-degree graph split into 2Δ parts has components
        // within the Lemma 3 bound.
        let g = generators::grid(30, 30); // Δ = 4
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..5 {
            let p = shatter_once(&g, 8, &mut rng);
            assert!(
                (p.max_component as f64) <= p.bound,
                "component {} above bound {:.1}",
                p.max_component,
                p.bound
            );
        }
    }

    #[test]
    fn single_part_is_whole_graph() {
        let g = generators::path(10);
        let mut rng = SmallRng::seed_from_u64(3);
        let p = shatter_once(&g, 1, &mut rng);
        assert_eq!(p.max_component, 10);
    }
}
