//! Aligned ASCII tables and CSV output for experiment results.

/// A simple column-aligned table builder.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Table {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let parts: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, &w)| format!("{:<w$}", c, w = w))
                .collect();
            format!("| {} |", parts.join(" | "))
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        out.push_str(&format!("|-{}-|", sep.join("-|-")));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["n", "awake"]);
        t.row(vec!["64", "21"]).row(vec!["65536", "30"]);
        let r = t.render();
        assert!(r.contains("| n     | awake |"));
        assert!(r.contains("| 64    | 21    |"));
        assert!(r.lines().count() == 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["plain", "has,comma"]);
        t.row(vec!["has\"quote", "x"]);
        let csv = t.to_csv();
        assert!(csv.contains("plain,\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\",x"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        Table::new(vec!["a"]).row(vec!["1", "2"]);
    }
}
