//! ASCII wake-timeline rendering: a visual of *when* nodes are awake
//! across an execution, the sleeping model's defining picture.
//!
//! Requires a run with [`sleeping_congest::SimConfig::record_wake_history`]
//! enabled. Rounds are bucketed into a fixed number of columns; a cell
//! shows `█` if the node was awake in any round of the bucket, `·`
//! otherwise, and a space after the node terminated.

use sleeping_congest::Metrics;

/// Renders the wake history of `nodes` (a selection of node ids) over
/// `cols` time buckets.
///
/// # Panics
///
/// Panics if the metrics were collected without
/// `record_wake_history`, or if `cols == 0`.
pub fn render_timeline(metrics: &Metrics, nodes: &[u32], cols: usize) -> String {
    assert!(cols > 0, "need at least one column");
    let hist = metrics
        .wake_history
        .as_ref()
        .expect("run with SimConfig::record_wake_history = true");
    let horizon = metrics.round_complexity().max(1);
    let bucket = horizon.div_ceil(cols as u64);
    let mut out = String::new();
    let label_w = nodes.iter().map(|v| v.to_string().len()).max().unwrap_or(1);
    for &v in nodes {
        let wakes = &hist[v as usize];
        let end = metrics.terminated_at[v as usize];
        let mut row = String::with_capacity(cols);
        for c in 0..cols as u64 {
            let lo = c * bucket;
            let hi = lo + bucket;
            if lo > end {
                row.push(' ');
            } else if wakes.iter().any(|&r| r >= lo && r < hi) {
                row.push('█');
            } else {
                row.push('·');
            }
        }
        out.push_str(&format!(
            "{:>w$} |{}| awake {}\n",
            v,
            row,
            metrics.awake_rounds[v as usize],
            w = label_w
        ));
    }
    out.push_str(&format!(
        "{:>w$}  {} rounds total, each column ≈ {} rounds\n",
        "",
        horizon,
        bucket,
        w = label_w
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::generators;
    use sleeping_congest::{Action, NodeCtx, Outbox, Protocol, SimConfig, Simulator};

    /// Node v wakes at rounds 0 and 10·(v+1), then terminates.
    struct TwoWakes;
    impl Protocol for TwoWakes {
        type Msg = ();
        type Output = ();
        fn send(&mut self, _: &mut NodeCtx) -> Outbox<()> {
            Outbox::Silent
        }
        fn receive(&mut self, ctx: &mut NodeCtx, _: &[(graphgen::Port, ())]) -> Action {
            if ctx.round == 0 {
                Action::SleepUntil(10 * (ctx.node as u64 + 1))
            } else {
                Action::Terminate
            }
        }
        fn output(&self) {}
    }

    #[test]
    fn renders_expected_pattern() {
        let g = generators::path(3);
        let cfg = SimConfig { record_wake_history: true, ..SimConfig::seeded(1) };
        let rep = Simulator::new(g, vec![TwoWakes, TwoWakes, TwoWakes], cfg).run().unwrap();
        let s = render_timeline(&rep.metrics, &[0, 1, 2], 31);
        // Node 0: awake at rounds 0 and 10 (columns 0 and 10), then gone.
        let row0 = s.lines().next().unwrap();
        assert!(row0.starts_with("0 |█"), "got: {row0}");
        assert_eq!(row0.matches('█').count(), 2);
        assert!(row0.ends_with("awake 2"));
        // All three nodes rendered plus the footer.
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains("31 rounds total"));
    }

    #[test]
    #[should_panic(expected = "record_wake_history")]
    fn requires_history() {
        let g = generators::path(2);
        let rep =
            Simulator::new(g, vec![TwoWakes, TwoWakes], SimConfig::seeded(1)).run().unwrap();
        render_timeline(&rep.metrics, &[0], 10);
    }
}
