//! ASCII wake-timeline rendering: a visual of *when* nodes are awake
//! across an execution, the sleeping model's defining picture.
//!
//! Requires a run with [`sleeping_congest::SimConfig::record_wake_history`]
//! enabled. Rounds are bucketed into a fixed number of columns; a cell
//! shows `█` if the node was awake in any round of the bucket, `·`
//! otherwise, and a space after the node terminated.

use sleeping_congest::Metrics;
use std::fmt;

/// Why a timeline could not be rendered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimelineError {
    /// The metrics carry no wake history: the run was executed without
    /// [`sleeping_congest::SimConfig::record_wake_history`].
    NoWakeHistory,
    /// `cols == 0` — a timeline needs at least one column.
    ZeroColumns,
    /// A requested node id is outside the run's node range.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// The number of nodes in the run.
        n: usize,
    },
}

impl fmt::Display for TimelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimelineError::NoWakeHistory => write!(
                f,
                "metrics carry no wake history; run with \
                 SimConfig::record_wake_history = true"
            ),
            TimelineError::ZeroColumns => {
                write!(f, "cols == 0: a timeline needs at least one column")
            }
            TimelineError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} is out of range for a {n}-node run")
            }
        }
    }
}

impl std::error::Error for TimelineError {}

/// Renders the wake history of `nodes` (a selection of node ids) over
/// `cols` time buckets.
///
/// # Errors
///
/// [`TimelineError::NoWakeHistory`] if the metrics were collected
/// without `record_wake_history`, [`TimelineError::ZeroColumns`] if
/// `cols == 0`, and [`TimelineError::NodeOutOfRange`] if a selected id
/// does not exist in the run.
pub fn render_timeline(
    metrics: &Metrics,
    nodes: &[u32],
    cols: usize,
) -> Result<String, TimelineError> {
    if cols == 0 {
        return Err(TimelineError::ZeroColumns);
    }
    let hist = metrics.wake_history.as_ref().ok_or(TimelineError::NoWakeHistory)?;
    if let Some(&v) = nodes.iter().find(|&&v| v as usize >= hist.len()) {
        return Err(TimelineError::NodeOutOfRange { node: v, n: hist.len() });
    }
    let horizon = metrics.round_complexity().max(1);
    let bucket = horizon.div_ceil(cols as u64);
    let mut out = String::new();
    let label_w = nodes.iter().map(|v| v.to_string().len()).max().unwrap_or(1);
    for &v in nodes {
        let wakes = &hist[v as usize];
        let end = metrics.terminated_at[v as usize];
        let mut row = String::with_capacity(cols);
        for c in 0..cols as u64 {
            let lo = c * bucket;
            let hi = lo + bucket;
            if lo > end {
                row.push(' ');
            } else if wakes.iter().any(|&r| r >= lo && r < hi) {
                row.push('█');
            } else {
                row.push('·');
            }
        }
        out.push_str(&format!(
            "{:>w$} |{}| awake {}\n",
            v,
            row,
            metrics.awake_rounds[v as usize],
            w = label_w
        ));
    }
    out.push_str(&format!(
        "{:>w$}  {} rounds total, each column ≈ {} rounds\n",
        "",
        horizon,
        bucket,
        w = label_w
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::generators;
    use sleeping_congest::{Action, NodeCtx, Outbox, Protocol, SimConfig, Simulator};

    /// Node v wakes at rounds 0 and 10·(v+1), then terminates.
    struct TwoWakes;
    impl Protocol for TwoWakes {
        type Msg = ();
        type Output = ();
        fn send(&mut self, _: &mut NodeCtx) -> Outbox<()> {
            Outbox::Silent
        }
        fn receive(&mut self, ctx: &mut NodeCtx, _: &[(graphgen::Port, ())]) -> Action {
            if ctx.round == 0 {
                Action::SleepUntil(10 * (ctx.node as u64 + 1))
            } else {
                Action::Terminate
            }
        }
        fn output(&self) {}
    }

    #[test]
    fn renders_expected_pattern() {
        let g = generators::path(3);
        let cfg = SimConfig { record_wake_history: true, ..SimConfig::seeded(1) };
        let rep = Simulator::new(g, vec![TwoWakes, TwoWakes, TwoWakes], cfg).run().unwrap();
        let s = render_timeline(&rep.metrics, &[0, 1, 2], 31).unwrap();
        // Node 0: awake at rounds 0 and 10 (columns 0 and 10), then gone.
        let row0 = s.lines().next().unwrap();
        assert!(row0.starts_with("0 |█"), "got: {row0}");
        assert_eq!(row0.matches('█').count(), 2);
        assert!(row0.ends_with("awake 2"));
        // All three nodes rendered plus the footer.
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains("31 rounds total"));
    }

    #[test]
    fn reports_descriptive_errors_instead_of_panicking() {
        let g = generators::path(2);
        let rep =
            Simulator::new(g, vec![TwoWakes, TwoWakes], SimConfig::seeded(1)).run().unwrap();
        let err = render_timeline(&rep.metrics, &[0], 10).unwrap_err();
        assert_eq!(err, TimelineError::NoWakeHistory);
        assert!(err.to_string().contains("record_wake_history"));

        let g = generators::path(2);
        let cfg = SimConfig { record_wake_history: true, ..SimConfig::seeded(1) };
        let rep = Simulator::new(g, vec![TwoWakes, TwoWakes], cfg).run().unwrap();
        assert_eq!(
            render_timeline(&rep.metrics, &[0], 0).unwrap_err(),
            TimelineError::ZeroColumns
        );
        let err = render_timeline(&rep.metrics, &[7], 10).unwrap_err();
        assert_eq!(err, TimelineError::NodeOutOfRange { node: 7, n: 2 });
        assert!(err.to_string().contains("node 7"));
    }
}
