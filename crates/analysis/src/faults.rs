//! Fault-injection sweeps: robustness surfaces over loss/crash levels.
//!
//! The fault model ([`sleeping_congest::FaultModel`]) turns message
//! loss, node crashes, and wake jitter into spec parameters every
//! builtin accepts (`awake?loss=0.01&crash=0.001`). This module sweeps
//! those knobs the way [`crate::sweep`] sweeps algorithm parameters —
//! the same range grammar (`luby?loss=0,0.01,0.05`), the same
//! deterministic batch fan-out — and aggregates *robustness* cells:
//! per `{fault level × family × n}`, the failure rate over seeds, the
//! crash/loss exposure, and the awake inflation relative to the clean
//! baseline of the same base algorithm.
//!
//! Two identities anchor the analysis:
//!
//! * **Clean levels are the clean algorithm.** Fault parameters
//!   spelling their defaults are dropped from the runner key (see
//!   [`crate::runners`]), so the `loss=0` level of a sweep keys as the
//!   bare algorithm and its [`GridPoint`] payloads are byte-identical
//!   to a fault-free grid's — pinned by `BENCH_grid.json`.
//! * **Failure is observable, never silent.** Every point either
//!   reports `failures > 0` / `correct: false`, or verified as an MIS
//!   of the survivor subgraph. The committed `BENCH_faults.json`
//!   (schema `awake-mis/bench-faults/v1`) freezes the resulting
//!   failure-rate surface, and `bench-diff` gates on it: a failure-rate
//!   increase beyond threshold at any swept level exits nonzero.

use crate::grid::{json_escape, run_point, summary_json, GridJob, GridMeta, GridPoint};
use crate::spec::{default_registry, AlgorithmSpec, RunnerHandle, SpecError};
use crate::stats::Summary;
use crate::sweep::{expand, SweepGroup};
use graphgen::GraphFamily;
use sleeping_congest::batch::{resolve_threads, run_batch};
use sleeping_congest::ScratchArena;

/// A fault sweep: range-valued specs (typically over `loss`/`crash`)
/// crossed with graph families, sizes, and seeds.
#[derive(Debug, Clone)]
pub struct FaultSweepSpec {
    /// Sweep spec strings (range/list-valued fault knobs; see
    /// [`crate::sweep::expand`] for the grammar).
    pub specs: Vec<String>,
    /// Graph families.
    pub families: Vec<GraphFamily>,
    /// Node counts.
    pub sizes: Vec<usize>,
    /// Seeds (innermost axis), as in [`crate::grid::GridSpec`].
    pub seeds: Vec<u64>,
    /// Worker threads; `0` means all available. Does not affect results.
    pub threads: usize,
}

/// The fault knobs a concrete runner key carries, parsed back out of
/// the key, plus the *base* key with every fault parameter stripped —
/// the clean algorithm this level degrades.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultAxis {
    /// The clean counterpart's key (`"luby"` for `"luby?loss=0.05"`).
    pub base: String,
    /// Per-copy message-loss probability (0 when absent).
    pub loss: f64,
    /// Per-node per-round crash probability (0 when absent).
    pub crash: f64,
    /// Late-wake jitter bound in rounds (0 when absent).
    pub jitter: u64,
}

/// The fault parameters recognized by [`fault_axis`]; `adv_ids` is an
/// algorithm variant, not a fault level, so it stays in the base key.
const FAULT_PARAMS: [&str; 5] = ["loss", "crash", "crash_from", "crash_until", "jitter"];

/// Parses the fault knobs out of a concrete runner key.
///
/// # Errors
///
/// Propagates [`AlgorithmSpec::parse`] errors — runner keys round-trip
/// through the spec grammar, so this only fails on hand-built keys.
pub fn fault_axis(key: &str) -> Result<FaultAxis, SpecError> {
    let spec = AlgorithmSpec::parse(key)?;
    let mut axis = FaultAxis {
        base: String::new(),
        loss: 0.0,
        crash: 0.0,
        jitter: 0,
    };
    let mut kept: Vec<String> = Vec::new();
    for (name, value) in spec.params() {
        match name.as_str() {
            "loss" => axis.loss = value.parse().unwrap_or(0.0),
            "crash" => axis.crash = value.parse().unwrap_or(0.0),
            "jitter" => axis.jitter = value.parse().unwrap_or(0),
            _ if FAULT_PARAMS.contains(&name.as_str()) => {}
            _ => kept.push(format!("{name}={value}")),
        }
    }
    axis.base = if kept.is_empty() {
        spec.key().to_string()
    } else {
        format!("{}?{}", spec.key(), kept.join("&"))
    };
    Ok(axis)
}

/// Per-`{fault level × family × n}` robustness aggregates.
#[derive(Debug, Clone)]
pub struct FaultCell {
    /// The concrete fault level (a runner handle; its key carries the
    /// fault knobs).
    pub algorithm: RunnerHandle,
    /// Parsed fault knobs plus the clean base key.
    pub axis: FaultAxis,
    /// Graph family of this cell.
    pub family: GraphFamily,
    /// Node count of this cell.
    pub n: usize,
    /// Number of seeds aggregated.
    pub runs: usize,
    /// Fraction of seeds that did **not** verify correct (on the
    /// survivor subgraph). The robustness headline.
    pub failure_rate: f64,
    /// Total nodes crashed across seeds.
    pub crashed: u64,
    /// Total deliverable message copies dropped across seeds.
    pub faulted: u64,
    /// Summary of worst-case awake complexity over seeds.
    pub awake_max: Summary,
    /// Summary of node-averaged awake complexity over seeds.
    pub awake_avg: Summary,
    /// Summary of round complexity over seeds.
    pub rounds: Summary,
    /// Mean worst-case awake of this cell divided by the clean
    /// baseline's (the cell whose key equals `axis.base`, same family
    /// and n) — awake inflation under faults. `None` when the sweep
    /// does not include the clean level or the baseline mean is 0.
    pub awake_inflation: Option<f64>,
    /// Whether every seed verified correct.
    pub all_correct: bool,
}

/// The outcome of [`run_faults`].
#[derive(Debug, Clone)]
pub struct FaultResult {
    /// The sweep that ran.
    pub spec: FaultSweepSpec,
    /// Each input spec's expansion, in input order.
    pub groups: Vec<SweepGroup>,
    /// Per-run measurements, in sweep order (fault-level-major,
    /// seed-minor — grid order).
    pub points: Vec<GridPoint>,
    /// Per-`{fault level × family × n}` robustness aggregates.
    pub cells: Vec<FaultCell>,
}

/// Expands every spec and runs the fault sweep over
/// `{fault level × family × n × seed}` with per-worker scratch reuse.
/// Deterministic like the grid: apart from wall-clock fields, the
/// result is identical for every thread count.
///
/// # Errors
///
/// Expansion errors (see [`crate::sweep::expand`]); also rejects an
/// empty sweep ([`SpecError::Syntax`]) and duplicate levels across
/// specs ([`SpecError::DuplicateKey`]).
pub fn run_faults(spec: &FaultSweepSpec) -> Result<FaultResult, SpecError> {
    let registry = default_registry();
    let mut groups = Vec::with_capacity(spec.specs.len());
    let mut flat: Vec<RunnerHandle> = Vec::new();
    for raw in &spec.specs {
        let group = expand(registry, raw)?;
        for r in &group.runners {
            if flat.iter().any(|f| f.key() == r.key()) {
                return Err(SpecError::DuplicateKey { key: r.key().to_string() });
            }
            flat.push(r.clone());
        }
        groups.push(group);
    }
    if flat.is_empty() || spec.seeds.is_empty() {
        return Err(SpecError::Syntax {
            spec: spec.specs.join(","),
            detail: "a fault sweep needs at least one level and one seed".to_string(),
        });
    }

    let mut jobs = Vec::with_capacity(
        flat.len() * spec.families.len() * spec.sizes.len() * spec.seeds.len(),
    );
    for algorithm in &flat {
        for &family in &spec.families {
            for &n in &spec.sizes {
                for &seed in &spec.seeds {
                    jobs.push(GridJob { algorithm: algorithm.clone(), family, n, seed });
                }
            }
        }
    }
    let threads = resolve_threads(spec.threads);
    let points = run_batch(&jobs, threads, |_| ScratchArena::new(), |scratch, _i, job| {
        run_point(job, scratch)
    });
    let cells = aggregate(spec, &flat, &points)?;
    Ok(FaultResult { spec: spec.clone(), groups, points, cells })
}

fn aggregate(
    spec: &FaultSweepSpec,
    flat: &[RunnerHandle],
    points: &[GridPoint],
) -> Result<Vec<FaultCell>, SpecError> {
    let (nf, ns, nk) = (spec.families.len(), spec.sizes.len(), spec.seeds.len());
    let mut cells = Vec::with_capacity(flat.len() * nf * ns);
    for (ai, algorithm) in flat.iter().enumerate() {
        let axis = fault_axis(algorithm.key())?;
        for (fi, &family) in spec.families.iter().enumerate() {
            for (si, &n) in spec.sizes.iter().enumerate() {
                let base = ((ai * nf + fi) * ns + si) * nk;
                let chunk = &points[base..base + nk];
                let awake_max: Vec<u64> = chunk.iter().map(|p| p.awake_max).collect();
                let awake_avg: Vec<f64> = chunk.iter().map(|p| p.awake_avg).collect();
                let rounds: Vec<u64> = chunk.iter().map(|p| p.rounds).collect();
                let incorrect = chunk.iter().filter(|p| !p.correct).count();
                cells.push(FaultCell {
                    algorithm: algorithm.clone(),
                    axis: axis.clone(),
                    family,
                    n,
                    runs: nk,
                    failure_rate: incorrect as f64 / nk as f64,
                    crashed: chunk.iter().map(|p| p.crashed as u64).sum(),
                    faulted: chunk.iter().map(|p| p.faulted).sum(),
                    awake_max: Summary::of_u64(&awake_max),
                    awake_avg: Summary::of(&awake_avg),
                    rounds: Summary::of_u64(&rounds),
                    awake_inflation: None,
                    all_correct: incorrect == 0,
                });
            }
        }
    }
    // Second pass: awake inflation against the clean baseline cell of
    // the same base algorithm, family, and n — when the sweep has one.
    let clean: Vec<(String, GraphFamily, usize, f64)> = cells
        .iter()
        .filter(|c| c.algorithm.key() == c.axis.base)
        .map(|c| (c.axis.base.clone(), c.family, c.n, c.awake_max.mean))
        .collect();
    for cell in &mut cells {
        if cell.algorithm.key() == cell.axis.base {
            continue;
        }
        cell.awake_inflation = clean
            .iter()
            .find(|(b, f, n, m)| {
                *b == cell.axis.base && *f == cell.family && *n == cell.n && *m > 0.0
            })
            .map(|(_, _, _, m)| cell.awake_max.mean / m);
    }
    Ok(cells)
}

impl FaultCell {
    /// The payload fields that identify one robustness cell (the
    /// `algorithm` component is the full fault-level key).
    pub const KEY_FIELDS: [&'static str; 3] = ["algorithm", "family", "n"];

    /// This cell's identity as textual key components matching
    /// [`Self::KEY_FIELDS`] and the artifact JSON spelling.
    pub fn cell_key(&self) -> Vec<String> {
        vec![self.algorithm.key().to_string(), self.family.key(), self.n.to_string()]
    }

    fn json(&self) -> String {
        let mut s = format!(
            "{{\"algorithm\":\"{}\",\"base\":\"{}\",\"loss\":{},\"crash\":{},\
             \"jitter\":{},\"family\":\"{}\",\"n\":{},\"runs\":{},\"failure_rate\":{},\
             \"crashed\":{},\"faulted\":{},\"awake_max\":{},\"awake_avg\":{},\"rounds\":{},\
             \"all_correct\":{}",
            json_escape(self.algorithm.key()),
            json_escape(&self.axis.base),
            self.axis.loss,
            self.axis.crash,
            self.axis.jitter,
            self.family.key(),
            self.n,
            self.runs,
            self.failure_rate,
            self.crashed,
            self.faulted,
            summary_json(&self.awake_max),
            summary_json(&self.awake_avg),
            summary_json(&self.rounds),
            self.all_correct,
        );
        if let Some(i) = self.awake_inflation {
            s.push_str(&format!(",\"awake_inflation\":{i}"));
        }
        s.push('}');
        s
    }
}

impl FaultResult {
    /// The deterministic JSON payload (schema
    /// `awake-mis/bench-faults/v1`): spec echo with expansions,
    /// robustness cells, grid-format points. Byte-identical across
    /// thread counts and repeat runs; clean-level points byte-identical
    /// to a fault-free grid's.
    pub fn payload_json(&self) -> String {
        self.json_with_meta(None)
    }

    /// The full document: the payload plus `meta` and per-point
    /// `timing` sections (excluded from determinism comparisons).
    pub fn to_json(&self, meta: &GridMeta) -> String {
        self.json_with_meta(Some(meta))
    }

    fn json_with_meta(&self, meta: Option<&GridMeta>) -> String {
        let mut out = String::from("{\n  \"schema\": \"awake-mis/bench-faults/v1\",\n");
        if let Some(m) = meta {
            out.push_str(&format!(
                "  \"meta\": {{\"threads\": {}, \"wall_ms\": {}}},\n",
                m.threads, m.wall_ms
            ));
            let ns: Vec<String> =
                self.points.iter().map(|p| p.elapsed_ns.to_string()).collect();
            out.push_str(&format!("  \"timing\": {{\"elapsed_ns\": [{}]}},\n", ns.join(", ")));
        }
        let specs: Vec<String> =
            self.spec.specs.iter().map(|s| format!("\"{}\"", json_escape(s))).collect();
        let expanded: Vec<String> = self
            .groups
            .iter()
            .map(|g| {
                let keys: Vec<String> =
                    g.runners.iter().map(|r| format!("\"{}\"", json_escape(r.key()))).collect();
                format!("[{}]", keys.join(", "))
            })
            .collect();
        let families: Vec<String> =
            self.spec.families.iter().map(|f| format!("\"{}\"", f.key())).collect();
        let sizes: Vec<String> = self.spec.sizes.iter().map(|n| n.to_string()).collect();
        let seeds: Vec<String> = self.spec.seeds.iter().map(|s| s.to_string()).collect();
        out.push_str(&format!(
            "  \"spec\": {{\"specs\": [{}], \"expanded\": [{}], \"families\": [{}], \
             \"sizes\": [{}], \"seeds\": [{}]}},\n",
            specs.join(", "),
            expanded.join(", "),
            families.join(", "),
            sizes.join(", "),
            seeds.join(", "),
        ));
        out.push_str("  \"cells\": [\n");
        let cells: Vec<String> = self.cells.iter().map(|c| format!("    {}", c.json())).collect();
        out.push_str(&cells.join(",\n"));
        out.push_str("\n  ],\n  \"points\": [\n");
        let points: Vec<String> =
            self.points.iter().map(|p| format!("    {}", p.json())).collect();
        out.push_str(&points.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{run_grid, GridSpec};

    #[test]
    fn fault_axis_parses_and_strips() {
        let a = fault_axis("luby?loss=0.05").unwrap();
        assert_eq!(a, FaultAxis { base: "luby".into(), loss: 0.05, crash: 0.0, jitter: 0 });
        let a = fault_axis("vt?id_upper=4096&loss=0.01&crash=0.002&jitter=3").unwrap();
        assert_eq!(a.base, "vt?id_upper=4096");
        assert_eq!((a.loss, a.crash, a.jitter), (0.01, 0.002, 3));
        // adv_ids is an algorithm variant, not a fault level.
        let a = fault_axis("vt?adv_ids=worst&loss=0.01").unwrap();
        assert_eq!(a.base, "vt?adv_ids=worst");
        // The clean key is its own base.
        assert_eq!(fault_axis("awake").unwrap().base, "awake");
    }

    #[test]
    fn fault_sweep_aggregates_a_robustness_surface() {
        let spec = FaultSweepSpec {
            specs: vec!["luby?loss=0,0.05".into()],
            families: vec![GraphFamily::Er],
            sizes: vec![64],
            seeds: vec![1, 2, 3, 4, 5, 6],
            threads: 1,
        };
        let result = run_faults(&spec).unwrap();
        assert_eq!(result.points.len(), 2 * 6);
        assert_eq!(result.cells.len(), 2);
        let (clean, lossy) = (&result.cells[0], &result.cells[1]);
        // The loss=0 level collapses to the clean runner identity.
        assert_eq!(clean.algorithm.key(), "luby");
        assert_eq!(clean.failure_rate, 0.0);
        assert_eq!(clean.faulted, 0);
        assert!(clean.all_correct);
        assert!(clean.awake_inflation.is_none(), "the baseline has no inflation");
        assert_eq!(lossy.algorithm.key(), "luby?loss=0.05");
        assert_eq!(lossy.axis.base, "luby");
        assert!(lossy.faulted > 0, "5% loss must drop messages");
        assert!(lossy.failure_rate >= clean.failure_rate, "loss cannot help");
        assert!(
            lossy.awake_inflation.is_some(),
            "clean level present, so inflation is computable"
        );
    }

    #[test]
    fn clean_level_points_are_byte_identical_to_a_grid_run() {
        // The acceptance criterion behind the key-canonicalization
        // design: the loss=0 slice of a fault sweep serializes exactly
        // like a fault-free grid over the same axes.
        let families = vec![GraphFamily::Er, GraphFamily::Cycle];
        let sizes = vec![48];
        let seeds = vec![1, 2, 3];
        let fr = run_faults(&FaultSweepSpec {
            specs: vec!["luby?loss=0,0.08".into()],
            families: families.clone(),
            sizes: sizes.clone(),
            seeds: seeds.clone(),
            threads: 1,
        })
        .unwrap();
        let gr = run_grid(&GridSpec {
            algorithms: vec![default_registry().resolve("luby").unwrap()],
            families,
            sizes,
            seeds,
            tiers: Vec::new(),
            threads: 1,
        });
        // Fault-sweep points are level-major, so the clean level is the
        // leading slice.
        for (fp, gp) in fr.points.iter().zip(&gr.points) {
            assert_eq!(fp.json(), gp.json(), "clean-level point diverged from the grid");
        }
    }

    #[test]
    fn fault_payload_shape() {
        let spec = FaultSweepSpec {
            specs: vec!["luby?loss=0,0.03".into(), "vt?crash=0.001".into()],
            families: vec![GraphFamily::Cycle],
            sizes: vec![32],
            seeds: vec![1, 2],
            threads: 1,
        };
        let result = run_faults(&spec).unwrap();
        let payload = result.payload_json();
        assert!(payload.contains("\"schema\": \"awake-mis/bench-faults/v1\""));
        assert!(payload.contains("\"specs\": [\"luby?loss=0,0.03\", \"vt?crash=0.001\"]"));
        assert!(payload.contains("\"expanded\": [[\"luby\", \"luby?loss=0.03\"], [\"vt?crash=0.001\"]]"));
        assert!(payload.contains("\"failure_rate\""));
        assert!(payload.contains("\"base\":\"luby\""));
        assert!(!payload.contains("wall_ms"));
        assert!(!payload.contains("elapsed_ns"));
        assert_eq!(payload.matches('{').count(), payload.matches('}').count());
        assert_eq!(payload.matches('[').count(), payload.matches(']').count());
        let full = result.to_json(&GridMeta { threads: 2, wall_ms: 5 });
        let stripped: String = full
            .lines()
            .filter(|l| !l.contains("\"meta\"") && !l.contains("\"timing\""))
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
        assert_eq!(stripped, payload);
    }

    #[test]
    fn duplicate_levels_are_rejected() {
        let spec = FaultSweepSpec {
            specs: vec!["luby?loss=0".into(), "luby".into()],
            families: vec![GraphFamily::Er],
            sizes: vec![16],
            seeds: vec![1],
            threads: 1,
        };
        // `luby?loss=0` IS `luby` after key canonicalization; listing
        // both is a duplicate level.
        assert!(matches!(run_faults(&spec), Err(SpecError::DuplicateKey { .. })));
    }
}
