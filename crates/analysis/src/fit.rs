//! Least-squares fitting and growth-law classification.
//!
//! The central question of experiment E1 is *"does the measured awake
//! complexity grow like `log log n` (Theorem 13) or like `log n`
//! (Luby)?"*. We answer it by fitting `y = a·f(n) + b` for both
//! candidate transforms `f` and comparing coefficients of
//! determination.

/// A least-squares line fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fit {
    /// Slope.
    pub a: f64,
    /// Intercept.
    pub b: f64,
    /// Coefficient of determination in `[0, 1]` (1 = perfect).
    pub r2: f64,
}

/// Ordinary least squares for `y = a·x + b`.
///
/// # Panics
///
/// Panics if fewer than two points are given or all `x` are equal.
pub fn fit_linear(xs: &[f64], ys: &[f64]) -> Fit {
    assert_eq!(xs.len(), ys.len(), "mismatched sample lengths");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    assert!(sxx > 0.0, "all x values identical");
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let a = sxy / sxx;
    let b = my - a * mx;
    let ss_res: f64 = xs.iter().zip(ys).map(|(x, y)| (y - (a * x + b)).powi(2)).sum();
    let ss_tot: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
    let r2 = if ss_tot == 0.0 { 1.0 } else { 1.0 - ss_res / ss_tot };
    Fit { a, b, r2 }
}

/// Fits `y = c·n^e` by regressing `ln y` on `ln n` and returns the
/// exponent `e` — useful to confirm polylogarithmic growth (`e ≈ 0`
/// against `n`) or measure a polynomial factor.
///
/// # Panics
///
/// Panics if any sample is non-positive.
pub fn growth_exponent(ns: &[f64], ys: &[f64]) -> f64 {
    assert!(ns.iter().chain(ys).all(|&v| v > 0.0), "log-log fit needs positive samples");
    let lx: Vec<f64> = ns.iter().map(|v| v.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|v| v.ln()).collect();
    fit_linear(&lx, &ly).a
}

/// Which of `log₂ n` or `log₂ log₂ n` better explains the curve
/// `(n, y)`; returns `(fit_loglog, fit_log)`.
pub fn compare_growth_laws(ns: &[f64], ys: &[f64]) -> (Fit, Fit) {
    let xs_ll: Vec<f64> = ns.iter().map(|&n| n.log2().log2()).collect();
    let xs_l: Vec<f64> = ns.iter().map(|&n| n.log2()).collect();
    (fit_linear(&xs_ll, ys), fit_linear(&xs_l, ys))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line() {
        let f = fit_linear(&[1.0, 2.0, 3.0], &[3.0, 5.0, 7.0]);
        assert!((f.a - 2.0).abs() < 1e-12);
        assert!((f.b - 1.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_r2_below_one() {
        let f = fit_linear(&[1.0, 2.0, 3.0, 4.0], &[1.0, 2.5, 2.4, 4.2]);
        assert!(f.r2 < 1.0 && f.r2 > 0.7);
    }

    #[test]
    fn exponent_of_quadratic() {
        let ns = [8.0, 16.0, 32.0, 64.0];
        let ys: Vec<f64> = ns.iter().map(|n| 3.0 * n * n).collect();
        assert!((growth_exponent(&ns, &ys) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn loglog_curve_classified_correctly() {
        let ns = [64.0, 256.0, 1024.0, 4096.0, 16384.0];
        let ys: Vec<f64> = ns.iter().map(|n: &f64| 7.0 * n.log2().log2() + 3.0).collect();
        let (ll, l) = compare_growth_laws(&ns, &ys);
        assert!(ll.r2 > l.r2, "log log fit must win: {} vs {}", ll.r2, l.r2);
        assert!((ll.a - 7.0).abs() < 1e-9);
    }

    #[test]
    fn log_curve_classified_correctly() {
        let ns = [64.0, 256.0, 1024.0, 4096.0, 16384.0];
        let ys: Vec<f64> = ns.iter().map(|n: &f64| 2.0 * n.log2() + 1.0).collect();
        let (ll, l) = compare_growth_laws(&ns, &ys);
        assert!(l.r2 > ll.r2, "log fit must win: {} vs {}", l.r2, ll.r2);
    }
}
