//! Criterion wall-clock benchmarks of the MIS algorithms (one group per
//! headline experiment; the *measured model quantities* — awake rounds,
//! round complexity — come from the `experiments` binary, while these
//! benches track the simulator's own performance).

use analysis::runners::{run_algorithm, Algorithm};
use bench::Family;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// E1/E10 timing: full Awake-MIS runs across sizes.
fn bench_awake_mis(c: &mut Criterion) {
    let mut group = c.benchmark_group("awake_mis");
    group.sample_size(10);
    for n in [512usize, 2048, 8192] {
        let g = Family::Er.generate(n, 1);
        group.bench_with_input(BenchmarkId::new("theorem13", n), &g, |b, g| {
            b.iter(|| run_algorithm(Algorithm::AwakeMis, g, 1).unwrap())
        });
    }
    for n in [512usize, 2048] {
        let g = Family::Er.generate(n, 1);
        group.bench_with_input(BenchmarkId::new("corollary14", n), &g, |b, g| {
            b.iter(|| run_algorithm(Algorithm::AwakeMisRound, g, 1).unwrap())
        });
    }
    group.finish();
}

/// Baseline timings for the comparison table.
fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    for n in [512usize, 2048, 8192] {
        let g = Family::Er.generate(n, 1);
        group.bench_with_input(BenchmarkId::new("luby", n), &g, |b, g| {
            b.iter(|| run_algorithm(Algorithm::Luby, g, 1).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("vt_mis", n), &g, |b, g| {
            b.iter(|| run_algorithm(Algorithm::VtMis, g, 1).unwrap())
        });
    }
    for n in [512usize, 2048] {
        let g = Family::Er.generate(n, 1);
        group.bench_with_input(BenchmarkId::new("naive_greedy", n), &g, |b, g| {
            b.iter(|| run_algorithm(Algorithm::NaiveGreedy, g, 1).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("ldt_mis", n), &g, |b, g| {
            b.iter(|| run_algorithm(Algorithm::LdtMis, g, 1).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_awake_mis, bench_baselines);
criterion_main!(benches);
