//! Criterion wall-clock benchmarks of the MIS algorithms (one group per
//! headline experiment; the *measured model quantities* — awake rounds,
//! round complexity — come from the `experiments` binary, while these
//! benches track the simulator's own performance).

use analysis::spec::{default_registry, RunnerHandle};
use bench::Family;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn runner(key: &str) -> RunnerHandle {
    default_registry().resolve(key).expect("builtin resolves")
}

/// E1/E10 timing: full Awake-MIS runs across sizes.
fn bench_awake_mis(c: &mut Criterion) {
    let mut group = c.benchmark_group("awake_mis");
    group.sample_size(10);
    let (t13, c14) = (runner("awake"), runner("awake-round"));
    for n in [512usize, 2048, 8192] {
        let g = Family::Er.generate(n, 1);
        group.bench_with_input(BenchmarkId::new("theorem13", n), &g, |b, g| {
            b.iter(|| t13.run(g, 1).unwrap())
        });
    }
    for n in [512usize, 2048] {
        let g = Family::Er.generate(n, 1);
        group.bench_with_input(BenchmarkId::new("corollary14", n), &g, |b, g| {
            b.iter(|| c14.run(g, 1).unwrap())
        });
    }
    group.finish();
}

/// Baseline timings for the comparison table.
fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    let (luby, vt) = (runner("luby"), runner("vt"));
    for n in [512usize, 2048, 8192] {
        let g = Family::Er.generate(n, 1);
        group.bench_with_input(BenchmarkId::new("luby", n), &g, |b, g| {
            b.iter(|| luby.run(g, 1).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("vt_mis", n), &g, |b, g| {
            b.iter(|| vt.run(g, 1).unwrap())
        });
    }
    let (naive, ldt) = (runner("naive"), runner("ldt"));
    for n in [512usize, 2048] {
        let g = Family::Er.generate(n, 1);
        group.bench_with_input(BenchmarkId::new("naive_greedy", n), &g, |b, g| {
            b.iter(|| naive.run(g, 1).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("ldt_mis", n), &g, |b, g| {
            b.iter(|| ldt.run(g, 1).unwrap())
        });
    }
    group.finish();
}

/// Node-averaged entrants: simulator cost of the dropout/ranked paths.
fn bench_node_averaged(c: &mut Criterion) {
    let mut group = c.benchmark_group("node_averaged");
    group.sample_size(10);
    let (na, gp) = (runner("na"), runner("gp-avg"));
    for n in [512usize, 2048, 8192] {
        let g = Family::Er.generate(n, 1);
        group.bench_with_input(BenchmarkId::new("na_mis", n), &g, |b, g| {
            b.iter(|| na.run(g, 1).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("gp_avg_mis", n), &g, |b, g| {
            b.iter(|| gp.run(g, 1).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_awake_mis, bench_baselines, bench_node_averaged);
criterion_main!(benches);
