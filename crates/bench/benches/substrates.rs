//! Criterion benchmarks of the substrates: graph generation, the virtual
//! binary tree, LDT construction, and the sequential greedy reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphgen::generators;
use ldt::construct::{ConstructAwake, ConstructParams};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sleeping_congest::{SimConfig, Simulator, Standalone};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    for n in [1024usize, 8192] {
        group.bench_with_input(BenchmarkId::new("gnp_d8", n), &n, |b, &n| {
            let mut rng = SmallRng::seed_from_u64(1);
            b.iter(|| generators::gnp_avg_degree(n, 8.0, &mut rng))
        });
        group.bench_with_input(BenchmarkId::new("rgg", n), &n, |b, &n| {
            let mut rng = SmallRng::seed_from_u64(1);
            let r = (10.0 / (std::f64::consts::PI * n as f64)).sqrt();
            b.iter(|| generators::random_geometric(n, r, &mut rng))
        });
        group.bench_with_input(BenchmarkId::new("barabasi_albert", n), &n, |b, &n| {
            let mut rng = SmallRng::seed_from_u64(1);
            b.iter(|| generators::barabasi_albert(n, 3, &mut rng))
        });
    }
    group.finish();
}

fn bench_vtree(c: &mut Criterion) {
    let mut group = c.benchmark_group("vtree");
    for i in [1_000u64, 1_000_000] {
        group.bench_with_input(BenchmarkId::new("communication_set", i), &i, |b, &i| {
            let mut k = 1;
            b.iter(|| {
                k = k % i + 1;
                vtree::communication_set(k, i)
            })
        });
    }
    group.finish();
}

fn bench_ldt_construct(c: &mut Criterion) {
    let mut group = c.benchmark_group("ldt_construct");
    group.sample_size(10);
    for n in [256usize, 1024] {
        let g = generators::cycle(n);
        let id_upper = (n as u64).pow(3);
        let ids: Vec<u64> = {
            let mut rng = SmallRng::seed_from_u64(2);
            let mut seen = std::collections::HashSet::new();
            let mut ids = Vec::new();
            while ids.len() < n {
                let id = rng.gen_range(1..=id_upper);
                if seen.insert(id) {
                    ids.push(id);
                }
            }
            ids
        };
        group.bench_with_input(BenchmarkId::new("awake_strategy", n), &g, |b, g| {
            b.iter(|| {
                let nodes = (0..n)
                    .map(|v| {
                        Standalone::new(ConstructAwake::new(ConstructParams {
                            my_id: ids[v],
                            id_upper,
                            k: n as u32,
                        }))
                    })
                    .collect();
                Simulator::new(g.clone(), nodes, SimConfig::seeded(3)).run().unwrap()
            })
        });
    }
    group.finish();
}

fn bench_sequential_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequential_greedy");
    for n in [4096usize, 65536] {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = generators::gnp_avg_degree(n, 8.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("random_greedy", n), &g, |b, g| {
            let mut rng = SmallRng::seed_from_u64(4);
            b.iter(|| awake_mis_core::greedy::random_greedy(g, &mut rng))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_generators,
    bench_vtree,
    bench_ldt_construct,
    bench_sequential_greedy
);
criterion_main!(benches);
