//! Single-run vs batched grid throughput.
//!
//! `serial` runs a seed sweep the pre-harness way: one runner call at a
//! time, fresh simulator allocations per run, one thread. `batched`
//! runs the same sweep through the grid harness: all hardware threads,
//! per-worker scratch reuse (`ScratchArena`). The two produce identical
//! measurements; only the wall clock differs.
//!
//! After the Criterion groups, a throughput report times the full sweep
//! both ways at n = 10⁴ and prints the speedup ratio — the number the
//! acceptance bar cares about (≥ 3× on a ≥ 4-core machine).

use analysis::grid::{run_grid, GridSpec};
use analysis::spec::default_registry;
use bench::Family;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sleeping_congest::batch::available_threads;
use std::time::Instant;

const SWEEP_SEEDS: u64 = 4;

fn spec_for(n: usize) -> GridSpec {
    GridSpec {
        algorithms: default_registry().resolve_list("awake").expect("builtin"),
        families: vec![Family::Er],
        sizes: vec![n],
        seeds: (1..=SWEEP_SEEDS).collect(),
        threads: 0,
    }
}

/// The pre-harness baseline: serial runs, fresh allocations every time.
fn serial_sweep(n: usize) -> u64 {
    let runner = default_registry().resolve("awake").expect("builtin");
    let mut acc = 0;
    for seed in 1..=SWEEP_SEEDS {
        let g = Family::Er.generate(n, seed);
        let r = runner.run(&g, seed).unwrap();
        acc += r.awake_max;
    }
    acc
}

fn bench_grid_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid");
    for n in [1_000usize, 10_000, 100_000] {
        group.sample_size(if n >= 100_000 { 2 } else { 5 });
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, &n| {
            b.iter(|| black_box(serial_sweep(n)))
        });
        group.bench_with_input(BenchmarkId::new("batched", n), &n, |b, &n| {
            b.iter(|| black_box(run_grid(&spec_for(n)).points.len()))
        });
    }
    group.finish();
}

/// Explicit speedup report at the acceptance-bar size.
fn report_speedup(_c: &mut Criterion) {
    let n = 10_000;
    // Warm up both paths once so allocator and page-cache state match.
    serial_sweep(n);
    run_grid(&spec_for(n));

    let reps = 3;
    let t0 = Instant::now();
    for _ in 0..reps {
        black_box(serial_sweep(n));
    }
    let serial = t0.elapsed();
    let t1 = Instant::now();
    for _ in 0..reps {
        black_box(run_grid(&spec_for(n)).points.len());
    }
    let batched = t1.elapsed();
    println!(
        "grid speedup at n={n}: serial {:.3}s vs batched {:.3}s → {:.2}x ({} threads)",
        serial.as_secs_f64() / reps as f64,
        batched.as_secs_f64() / reps as f64,
        serial.as_secs_f64() / batched.as_secs_f64(),
        available_threads(),
    );
}

criterion_group!(benches, bench_grid_throughput, report_speedup);
criterion_main!(benches);
