//! Single-run vs batched grid throughput.
//!
//! `serial` runs a seed sweep the pre-harness way: one runner call at a
//! time, fresh simulator allocations per run, one thread. `batched`
//! runs the same sweep through the grid harness: all hardware threads,
//! per-worker scratch reuse (`ScratchArena`). The two produce identical
//! measurements; only the wall clock differs.
//!
//! After the Criterion groups, a throughput report times the full sweep
//! both ways at n = 10⁴ and prints the speedup ratio — the number the
//! acceptance bar cares about (≥ 3× on a ≥ 4-core machine). A second
//! report times one million-node `luby` run serial vs `shards=8` and
//! prints rounds/s, node·rounds/s, and the intra-run speedup.

use analysis::grid::{run_grid, GridSpec};
use analysis::spec::default_registry;
use bench::Family;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sleeping_congest::batch::available_threads;
use std::time::Instant;

const SWEEP_SEEDS: u64 = 4;

fn spec_for(n: usize) -> GridSpec {
    GridSpec {
        algorithms: default_registry().resolve_list("awake").expect("builtin"),
        families: vec![Family::Er],
        sizes: vec![n],
        seeds: (1..=SWEEP_SEEDS).collect(),
        tiers: Vec::new(),
        threads: 0,
    }
}

/// The pre-harness baseline: serial runs, fresh allocations every time.
fn serial_sweep(n: usize) -> u64 {
    let runner = default_registry().resolve("awake").expect("builtin");
    let mut acc = 0;
    for seed in 1..=SWEEP_SEEDS {
        let g = Family::Er.generate(n, seed);
        let r = runner.run(&g, seed).unwrap();
        acc += r.awake_max;
    }
    acc
}

fn bench_grid_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid");
    for n in [1_000usize, 10_000, 100_000] {
        group.sample_size(if n >= 100_000 { 2 } else { 5 });
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, &n| {
            b.iter(|| black_box(serial_sweep(n)))
        });
        group.bench_with_input(BenchmarkId::new("batched", n), &n, |b, &n| {
            b.iter(|| black_box(run_grid(&spec_for(n)).points.len()))
        });
    }
    group.finish();
}

/// Explicit speedup report at the acceptance-bar size.
fn report_speedup(_c: &mut Criterion) {
    let n = 10_000;
    // Warm up both paths once so allocator and page-cache state match.
    serial_sweep(n);
    run_grid(&spec_for(n));

    let reps = 3;
    let t0 = Instant::now();
    for _ in 0..reps {
        black_box(serial_sweep(n));
    }
    let serial = t0.elapsed();
    let t1 = Instant::now();
    for _ in 0..reps {
        black_box(run_grid(&spec_for(n)).points.len());
    }
    let batched = t1.elapsed();
    println!(
        "grid speedup at n={n}: serial {:.3}s vs batched {:.3}s → {:.2}x ({} threads)",
        serial.as_secs_f64() / reps as f64,
        batched.as_secs_f64() / reps as f64,
        serial.as_secs_f64() / batched.as_secs_f64(),
        available_threads(),
    );
}

/// Intra-run sharding report at the million-node acceptance size.
///
/// One `luby` run on a 10⁶-node ER graph, serial (`shards=1`) vs
/// sharded (`shards=8`). The payload is byte-identical either way
/// (asserted here); the print reports absolute engine throughput —
/// rounds/s and node·rounds/s — plus the speedup ratio the acceptance
/// bar cares about (≥ 2× on a ≥ 4-core machine).
fn report_shard_speedup(_c: &mut Criterion) {
    let n = 1_000_000;
    let seed = 1;
    let g = Family::Er.generate(n, seed);
    let time_run = |spec: &str| {
        let runner = default_registry().resolve(spec).expect("builtin");
        let t = Instant::now();
        let r = runner.run(&g, seed).expect("clean run");
        (t.elapsed(), r)
    };
    // Warm the allocator/page cache on the serial path first.
    time_run("luby?shards=1");
    let (serial, r1) = time_run("luby?shards=1");
    let (sharded, r8) = time_run("luby?shards=8");
    assert_eq!(r1.metrics, r8.metrics, "shard count leaked into the run metrics");
    for (label, dt, r) in [("shards=1", serial, &r1), ("shards=8", sharded, &r8)] {
        let rps = r.metrics.active_rounds as f64 / dt.as_secs_f64();
        println!(
            "luby n={n} {label}: {} active rounds in {:.2}s → {:.0} rounds/s, {:.3e} node·rounds/s",
            r.metrics.active_rounds,
            dt.as_secs_f64(),
            rps,
            n as f64 * rps,
        );
    }
    println!(
        "shard speedup at n={n}: {:.2}x ({} hardware threads)",
        serial.as_secs_f64() / sharded.as_secs_f64(),
        available_threads(),
    );
}

criterion_group!(benches, bench_grid_throughput, report_speedup, report_shard_speedup);
criterion_main!(benches);
