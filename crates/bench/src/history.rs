//! Git-history ingestion: every committed revision of an artifact.
//!
//! `bench-diff` compares exactly two revisions; the trajectory pipeline
//! needs all of them. This module shells out to the repository's own
//! `git` — `git log --reverse` to enumerate the commits that touched an
//! artifact path (oldest first, so series read left to right in time)
//! and `git show <rev>:<path>` to read each committed blob without
//! touching the working tree.
//!
//! Degradation is deliberate and graceful:
//!
//! * a **shallow clone** simply yields fewer revisions (one, on CI's
//!   default `fetch-depth: 1`) — a one-sample history is valid and
//!   reports "no trend" downstream rather than failing;
//! * an **unparseable historical revision** (a schema this reader
//!   predates, a half-committed file) is recorded in
//!   [`ArtifactHistory::skipped`] with its error and the walk
//!   continues;
//! * only *git itself* failing (not a repository, no `git` binary) is
//!   an error.

use crate::artifact::Artifact;
use std::path::{Path, PathBuf};
use std::process::Command;

/// One commit that touched an artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Revision {
    /// Abbreviated commit hash (`git log --format=%h`).
    pub hash: String,
    /// Author date, `YYYY-MM-DD`.
    pub date: String,
}

/// One successfully parsed historical revision of an artifact.
#[derive(Debug, Clone)]
pub struct RevisionSample {
    /// The commit this blob was read from.
    pub rev: Revision,
    /// The parsed document as of that commit.
    pub artifact: Artifact,
}

/// The committed history of one artifact path, oldest revision first.
#[derive(Debug, Clone)]
pub struct ArtifactHistory {
    /// Repo-relative path of the artifact.
    pub path: String,
    /// Parsed revisions, oldest → newest.
    pub samples: Vec<RevisionSample>,
    /// Revisions that listed the path but failed to read or parse:
    /// `(short hash, error)`. Warned about, never fatal.
    pub skipped: Vec<(String, String)>,
}

/// Runs one git command with `repo` as the working directory. The
/// user's and system's git config are masked so output formats are
/// stable wherever the report runs.
fn git(repo: &Path, args: &[&str]) -> Result<String, String> {
    let out = Command::new("git")
        .arg("-C")
        .arg(repo)
        .args(args)
        .env("GIT_CONFIG_GLOBAL", "/dev/null")
        .env("GIT_CONFIG_SYSTEM", "/dev/null")
        .output()
        .map_err(|e| format!("running git: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "git {}: {}",
            args.join(" "),
            String::from_utf8_lossy(&out.stderr).trim()
        ));
    }
    Ok(String::from_utf8_lossy(&out.stdout).into_owned())
}

/// The repository root containing `dir` (`git rev-parse --show-toplevel`).
pub fn repo_root(dir: &Path) -> Result<PathBuf, String> {
    let out = git(dir, &["rev-parse", "--show-toplevel"])?;
    Ok(PathBuf::from(out.trim()))
}

/// Renders `path` relative to the repository root — the spelling
/// `git show <rev>:<path>` requires. Absolute paths are stripped of
/// the root prefix; relative paths are taken as already repo-relative.
pub fn rel_to_repo(repo: &Path, path: &Path) -> Result<String, String> {
    let rel = if path.is_absolute() {
        path.strip_prefix(repo)
            .map_err(|_| format!("{} is outside the repository {}", path.display(), repo.display()))?
    } else {
        path
    };
    rel.to_str()
        .map(str::to_string)
        .ok_or_else(|| format!("{} is not valid UTF-8", rel.display()))
}

/// Commits that touched `path`, oldest first. A path git has never
/// seen yields an empty list, not an error.
pub fn revisions(repo: &Path, path: &str) -> Result<Vec<Revision>, String> {
    let out = git(
        repo,
        &["log", "--reverse", "--format=%h %ad", "--date=short", "--", path],
    )?;
    Ok(out
        .lines()
        .filter_map(|line| {
            let (hash, date) = line.split_once(' ')?;
            Some(Revision { hash: hash.to_string(), date: date.to_string() })
        })
        .collect())
}

/// The blob content of `path` at `rev` (`git show <rev>:<path>`).
pub fn show(repo: &Path, rev: &str, path: &str) -> Result<String, String> {
    git(repo, &["show", &format!("{rev}:{path}")])
}

/// Walks the full committed history of one artifact: enumerate
/// revisions, read and parse each blob. Unreadable or unparseable
/// revisions land in [`ArtifactHistory::skipped`]; only git failures
/// propagate as errors.
pub fn load_history(repo: &Path, path: &str) -> Result<ArtifactHistory, String> {
    let mut samples = Vec::new();
    let mut skipped = Vec::new();
    for rev in revisions(repo, path)? {
        match show(repo, &rev.hash, path)
            .and_then(|text| Artifact::parse(&text, &format!("{}:{}", rev.hash, path)))
        {
            Ok(artifact) => samples.push(RevisionSample { rev, artifact }),
            Err(e) => skipped.push((rev.hash, e)),
        }
    }
    Ok(ArtifactHistory { path: path.to_string(), samples, skipped })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a throwaway git repo and commits `versions` of one file,
    /// returning the repo path.
    fn temp_repo(name: &str, versions: &[&str]) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("bench-history-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let run = |args: &[&str]| {
            let out = Command::new("git")
                .arg("-C")
                .arg(&dir)
                .args(args)
                .env("GIT_CONFIG_GLOBAL", "/dev/null")
                .env("GIT_CONFIG_SYSTEM", "/dev/null")
                .env("GIT_AUTHOR_NAME", "t")
                .env("GIT_AUTHOR_EMAIL", "t@t")
                .env("GIT_COMMITTER_NAME", "t")
                .env("GIT_COMMITTER_EMAIL", "t@t")
                .output()
                .unwrap();
            assert!(out.status.success(), "git {args:?}: {:?}", out);
        };
        run(&["init", "-q", "-b", "main"]);
        for (i, body) in versions.iter().enumerate() {
            std::fs::write(dir.join("BENCH_test.json"), body).unwrap();
            run(&["add", "BENCH_test.json"]);
            run(&["commit", "-q", "-m", &format!("rev {i}")]);
        }
        dir
    }

    fn grid_doc(awake: u32) -> String {
        format!(
            "{{\"schema\":\"awake-mis/bench-grid/v3\",\"spec\":{{}},\"cells\":[],\
             \"points\":[{{\"algorithm\":\"luby\",\"family\":\"er\",\"n\":64,\"seed\":1,\
             \"rounds\":10,\"awake_max\":{awake},\"awake_avg\":3.5,\"max_message_bits\":21,\
             \"correct\":true,\"failures\":0}}]}}"
        )
    }

    #[test]
    fn history_walks_commits_oldest_first_and_skips_garbage() {
        let docs = [grid_doc(8), "{ not json at all".to_string(), grid_doc(9)];
        let repo = temp_repo("walk", &docs.iter().map(String::as_str).collect::<Vec<_>>());
        let h = load_history(&repo, "BENCH_test.json").unwrap();
        assert_eq!(h.samples.len(), 2, "two parseable revisions");
        assert_eq!(h.skipped.len(), 1, "the garbage revision is skipped, not fatal");
        // Oldest first: the awake_max values appear in commit order.
        let awakes: Vec<f64> = h
            .samples
            .iter()
            .map(|s| s.artifact.series_cells()[0].measures[0].value)
            .collect();
        assert_eq!(awakes, [8.0, 9.0]);
        // Revisions carry a short hash and an ISO date.
        for s in &h.samples {
            assert!(s.rev.hash.len() >= 6, "{:?}", s.rev);
            assert_eq!(s.rev.date.len(), 10, "{:?}", s.rev);
        }
        let _ = std::fs::remove_dir_all(&repo);
    }

    #[test]
    fn a_single_revision_history_is_valid_and_an_unknown_path_is_empty() {
        let one = [grid_doc(8)];
        let repo = temp_repo("single", &one.iter().map(String::as_str).collect::<Vec<_>>());
        let h = load_history(&repo, "BENCH_test.json").unwrap();
        assert_eq!(h.samples.len(), 1);
        let none = load_history(&repo, "BENCH_never_committed.json").unwrap();
        assert!(none.samples.is_empty() && none.skipped.is_empty());
        // Outside a repository, git itself fails: that IS an error.
        assert!(load_history(Path::new("/"), "BENCH_test.json").is_err());
        let _ = std::fs::remove_dir_all(&repo);
    }

    #[test]
    fn rel_to_repo_strips_the_root_prefix() {
        let repo = Path::new("/r/epo");
        assert_eq!(rel_to_repo(repo, Path::new("/r/epo/BENCH_grid.json")).unwrap(), "BENCH_grid.json");
        assert_eq!(rel_to_repo(repo, Path::new("BENCH_grid.json")).unwrap(), "BENCH_grid.json");
        assert!(rel_to_repo(repo, Path::new("/elsewhere/x.json")).is_err());
    }
}
