//! Minimal JSON reader for the bench tooling.
//!
//! The workspace vendors no serde (the build environment has no
//! registry access), and the only JSON the bench tools consume is the
//! `BENCH_grid.json` this workspace itself writes — so a small strict
//! recursive-descent parser covers the need. It accepts standard JSON
//! (objects, arrays, strings with escapes, numbers, booleans, null) and
//! keeps object keys in document order.

use std::collections::HashMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, keys in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus a one-line description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub at: usize,
    /// What was expected or found.
    pub detail: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.detail)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// [`JsonError`] describing the first violation.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, detail: &str) -> JsonError {
        JsonError { at: self.pos, detail: detail.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            // `from_str_radix` alone is too lax: it
                            // accepts a leading sign, so "+0ff" would
                            // parse. Require exactly 4 hex digits.
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .filter(|h| h.iter().all(u8::is_ascii_hexdigit))
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates never appear in our own output;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = utf8_prefix_char(rest);
                    out.push_str(s);
                    self.pos += s.len();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        // Strict JSON grammar: `f64::parse` is laxer than RFC 8259 (it
        // accepts `1.`, `.5`, `1.e3`, …), so each digit run is required
        // here rather than left to the final parse.
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_digits = self.digit_run();
        if int_digits == 0 {
            return Err(self.err("number needs an integer part"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.digit_run() == 0 {
                return Err(self.err("number needs digits after the decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.digit_run() == 0 {
                return Err(self.err("number needs exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        text.parse::<f64>().map(Value::Num).map_err(|_| JsonError {
            at: start,
            detail: format!("bad number {text:?}"),
        })
    }

    /// Consumes a run of ASCII digits, returning how many were eaten.
    fn digit_run(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        self.pos - start
    }
}

/// First UTF-8 scalar of `bytes` as a `&str` slice (bytes come from a
/// `&str`, so a boundary always exists within 4 bytes).
fn utf8_prefix_char(bytes: &[u8]) -> &str {
    for len in 1..=4.min(bytes.len()) {
        if let Ok(s) = std::str::from_utf8(&bytes[..len]) {
            return s;
        }
    }
    unreachable!("input came from a &str")
}

/// Groups an array of point objects by a key tuple extracted per point.
///
/// Convenience for diff tooling: `index_by(points, &["algorithm",
/// "family", "n"])` buckets points under their textual coordinates
/// (numbers formatted trimly). Groups come back in **first-seen
/// document order** — for a grid payload that is grid order, so sizes
/// stay numerically ordered instead of lexicographically.
pub fn index_by<'a>(
    points: &'a [Value],
    fields: &[&str],
) -> Vec<(Vec<String>, Vec<&'a Value>)> {
    let mut slot: HashMap<Vec<String>, usize> = HashMap::new();
    let mut out: Vec<(Vec<String>, Vec<&Value>)> = Vec::new();
    for p in points {
        let key: Vec<String> = fields
            .iter()
            .map(|f| match p.get(f) {
                Some(Value::Str(s)) => s.clone(),
                Some(Value::Num(x)) => {
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        format!("{}", *x as i64)
                    } else {
                        format!("{x}")
                    }
                }
                Some(Value::Bool(b)) => b.to_string(),
                _ => String::from("?"),
            })
            .collect();
        let i = *slot.entry(key.clone()).or_insert_with(|| {
            out.push((key, Vec::new()));
            out.len() - 1
        });
        out[i].1.push(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structures() {
        let v = parse(r#"{"a": [1, -2.5, 3e2], "b": {"c": true, "d": null}, "e": "x\n\"y\""}"#)
            .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(-2.5));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\n\"y\""));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated",
            // Strict number grammar: every digit run must be non-empty.
            "1.", "1.e3", "-.5", "-", "1e", "1e+", ".5",
            // \u takes exactly 4 hex digits — no signs, no short forms.
            "\"\\u+0ff\"", "\"\\u12g4\"", "\"\\u123\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn round_trips_a_real_grid_document() {
        // The committed benchmark file must parse, and its points must
        // index cleanly by (algorithm, family, n).
        let doc = include_str!("../../../BENCH_grid.json");
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("schema").and_then(Value::as_str),
            Some("awake-mis/bench-grid/v3")
        );
        // Every point of a v2+ document carries the distribution object.
        let first = v.get("points").and_then(Value::as_arr).unwrap().first().unwrap();
        assert!(first.get("awake_dist").and_then(|d| d.get("gini")).is_some());
        let points = v.get("points").and_then(Value::as_arr).unwrap();
        assert!(!points.is_empty());
        let cells = index_by(points, &["algorithm", "family", "n"]);
        // Every cell holds one point per seed of its segment: the base
        // axes for base cells, a tier's own seed list for tier cells.
        let spec = v.get("spec").unwrap();
        let seed_len = |node: &Value| node.get("seeds").unwrap().as_arr().unwrap().len();
        let mut runs = vec![seed_len(spec)];
        let tiers = spec.get("tiers").and_then(Value::as_arr).unwrap();
        assert_eq!(tiers.len(), 1, "the committed grid carries the large tier");
        runs.extend(tiers.iter().map(seed_len));
        assert!(cells.iter().all(|(_, ps)| runs.contains(&ps.len())));
        // First-seen order = grid order: sizes ascend numerically
        // within the first algorithm/family block, and the tier's
        // million-node cells come last.
        let first_ns: Vec<&str> =
            cells.iter().take(3).map(|(k, _)| k[2].as_str()).collect();
        assert_eq!(first_ns, ["1000", "10000", "100000"]);
        assert_eq!(cells.last().unwrap().0[2], "1000000");
    }

    #[test]
    fn unicode_passes_through() {
        let v = parse(r#""Δ′ ≤ 2Δ A""#).unwrap();
        assert_eq!(v.as_str(), Some("Δ′ ≤ 2Δ A"));
    }
}
