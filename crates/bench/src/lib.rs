//! Shared helpers for the experiment binaries and the Criterion benches.
//!
//! The workload families moved down into [`graphgen::families`] so that
//! experiment grids can iterate generators at the graphs layer; `Family`
//! is re-exported here for the binaries and for backward compatibility.
//! [`json`] is the registry-free JSON reader behind the `bench-diff`
//! regression tool.
//!
//! The bench-trajectory pipeline lives here too: [`artifact`] is the
//! one reader for all four committed `BENCH_*.json` schemas (shared by
//! `bench-diff` and `bench-report`), [`history`] walks every committed
//! revision of an artifact out of git, [`trend`] builds per-cell
//! [`trend::TrendSeries`] with drift statistics and the multi-PR drift
//! gate, and [`report`] renders the series as CSV, ASCII sparklines,
//! and gnuplot scripts.

pub mod artifact;
pub mod history;
pub mod json;
pub mod report;
pub mod trend;

pub use graphgen::families::GraphFamily as Family;
