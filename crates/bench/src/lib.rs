//! Shared helpers for the experiment binary and the Criterion benches.

use graphgen::{generators, Graph};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The workload families used across experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Erdős–Rényi with average degree 8.
    Er,
    /// Random geometric graph with expected average degree ~10.
    Rgg,
    /// Barabási–Albert with attachment 3.
    Ba,
    /// 2D grid (√n × √n).
    Grid,
    /// Uniform random tree.
    Tree,
}

impl Family {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Family::Er => "ER(d=8)",
            Family::Rgg => "RGG",
            Family::Ba => "BA(m=3)",
            Family::Grid => "Grid",
            Family::Tree => "Tree",
        }
    }

    /// Generates an `n`-node instance.
    pub fn generate(self, n: usize, seed: u64) -> Graph {
        let mut rng = SmallRng::seed_from_u64(seed);
        match self {
            Family::Er => generators::gnp_avg_degree(n, 8.0, &mut rng),
            Family::Rgg => {
                // radius for expected degree ~10: pi r^2 n = 10.
                let r = (10.0 / (std::f64::consts::PI * n as f64)).sqrt();
                generators::random_geometric(n, r, &mut rng)
            }
            Family::Ba => generators::barabasi_albert(n, 3, &mut rng),
            Family::Grid => {
                let side = (n as f64).sqrt().round() as usize;
                generators::grid(side.max(2), side.max(2))
            }
            Family::Tree => generators::random_tree(n, &mut rng),
        }
    }
}
