//! Shared helpers for the experiment binaries and the Criterion benches.
//!
//! The workload families moved down into [`graphgen::families`] so that
//! experiment grids can iterate generators at the graphs layer; `Family`
//! is re-exported here for the binaries and for backward compatibility.
//! [`json`] is the registry-free JSON reader behind the `bench-diff`
//! regression tool.

pub mod json;

pub use graphgen::families::GraphFamily as Family;
