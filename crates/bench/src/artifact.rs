//! One reader for every committed benchmark artifact schema.
//!
//! The repo pins four regression-gated artifacts — `BENCH_grid.json`
//! (schema `awake-mis/bench-grid/v1`–`v3`), `BENCH_sweep.json`
//! (`bench-sweep/v1`), `BENCH_faults.json` (`bench-faults/v1`) and
//! `BENCH_churn.json` (`bench-churn/v1`). `bench-diff` compares two
//! revisions of one artifact; `bench-report` trends *every* committed
//! revision. Both consume documents through this module so there is
//! exactly one place that knows how to sniff a schema, group points
//! into cells, and aggregate a cell into its gated measures.
//!
//! Two views are offered:
//!
//! * **Typed views** ([`Artifact::point_cells`], [`Artifact::sweep_cells`])
//!   keep the per-kind shape `bench-diff`'s verdict logic needs.
//! * **The trend view** ([`Artifact::series_cells`]) flattens any kind
//!   into `(cell key, measure name, value, gate)` rows — the unit the
//!   trajectory pipeline samples once per git revision.
//!
//! Cell-key field lists come from the `analysis` result types
//! ([`GridCell::KEY_FIELDS`] et al.), so the writer and both readers
//! cannot drift apart.

use crate::json::{self, Value};
use analysis::{ChurnCell, FaultCell, GridCell, SweepCell};

/// The deterministic payload sections — everything except `meta` and
/// `timing`, which carry machine-dependent wall-clock data. This is
/// what `bench-diff --exact` compares.
pub const PAYLOAD_SECTIONS: [&str; 3] = ["spec", "cells", "points"];

/// The kind of benchmark document, by schema id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArtifactKind {
    /// `awake-mis/bench-grid/v1`–`v3`: the worst-case/node-averaged
    /// awake grid.
    Grid,
    /// `awake-mis/bench-sweep/v1`: the energy/awake Pareto frontier.
    Sweep,
    /// `awake-mis/bench-faults/v1`: the robustness surface.
    Faults,
    /// `awake-mis/bench-churn/v1`: the dynamic-graph locality surface.
    Churn,
}

impl ArtifactKind {
    /// Every kind, in the order the committed artifacts are reported.
    pub fn all() -> [ArtifactKind; 4] {
        [ArtifactKind::Grid, ArtifactKind::Sweep, ArtifactKind::Faults, ArtifactKind::Churn]
    }

    /// Maps a schema id to its kind; `None` for foreign documents.
    pub fn from_schema(schema: &str) -> Option<ArtifactKind> {
        match schema {
            "awake-mis/bench-grid/v3" | "awake-mis/bench-grid/v2" | "awake-mis/bench-grid/v1" => {
                Some(ArtifactKind::Grid)
            }
            "awake-mis/bench-sweep/v1" => Some(ArtifactKind::Sweep),
            "awake-mis/bench-faults/v1" => Some(ArtifactKind::Faults),
            "awake-mis/bench-churn/v1" => Some(ArtifactKind::Churn),
            _ => None,
        }
    }

    /// Short display name (`grid`, `sweep`, `faults`, `churn`).
    pub fn short(self) -> &'static str {
        match self {
            ArtifactKind::Grid => "grid",
            ArtifactKind::Sweep => "sweep",
            ArtifactKind::Faults => "faults",
            ArtifactKind::Churn => "churn",
        }
    }

    /// The committed artifact path at the repository root.
    pub fn default_path(self) -> &'static str {
        match self {
            ArtifactKind::Grid => "BENCH_grid.json",
            ArtifactKind::Sweep => "BENCH_sweep.json",
            ArtifactKind::Faults => "BENCH_faults.json",
            ArtifactKind::Churn => "BENCH_churn.json",
        }
    }

    /// The payload fields identifying one cell of this kind — sourced
    /// from the `analysis` result types that *write* the payloads.
    /// For sweeps this is the cell identity; entries within a sweep
    /// cell are additionally keyed by their `algorithm` spec point.
    pub fn key_fields(self) -> &'static [&'static str] {
        match self {
            ArtifactKind::Grid => &GridCell::KEY_FIELDS,
            ArtifactKind::Sweep => &SweepCell::KEY_FIELDS,
            ArtifactKind::Faults => &FaultCell::KEY_FIELDS,
            ArtifactKind::Churn => &ChurnCell::KEY_FIELDS,
        }
    }
}

/// A parsed benchmark document with its sniffed kind.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Which schema family the document belongs to.
    pub kind: ArtifactKind,
    /// The parsed JSON document.
    pub doc: Value,
}

impl Artifact {
    /// Parses a document from text, sniffing the schema. The `origin`
    /// string names the source in error messages (a path, a git rev).
    pub fn parse(text: &str, origin: &str) -> Result<Artifact, String> {
        let doc = json::parse(text).map_err(|e| format!("parsing {origin}: {e}"))?;
        let kind = doc
            .get("schema")
            .and_then(Value::as_str)
            .and_then(ArtifactKind::from_schema)
            .ok_or_else(|| {
                format!(
                    "{origin}: not an awake-mis/bench-grid/v1|v2|v3, bench-sweep/v1, \
                     bench-faults/v1, or bench-churn/v1 document"
                )
            })?;
        Ok(Artifact { kind, doc })
    }

    /// Reads and parses a document from disk.
    pub fn load(path: &str) -> Result<Artifact, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        Artifact::parse(&text, path)
    }

    /// The document's `points` array (empty for documents without one).
    pub fn points(&self) -> &[Value] {
        self.doc.get("points").and_then(Value::as_arr).unwrap_or(&[])
    }

    /// Groups `points` into cells by this kind's key fields, in
    /// first-seen (payload) order. Meaningful for the point-indexed
    /// kinds (grid, faults, churn); a sweep's per-seed points are not
    /// its unit of comparison — use [`Artifact::sweep_cells`].
    pub fn point_cells(&self) -> Vec<(Vec<String>, Vec<&Value>)> {
        json::index_by(self.points(), self.kind.key_fields())
    }

    /// Sweep documents: the `{family, n}` cells with their frontier
    /// key lists, in payload order.
    pub fn sweep_cells(&self) -> Vec<SweepCellView<'_>> {
        self.doc
            .get("cells")
            .and_then(Value::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(|cell| SweepCellView {
                family: cell.get("family").and_then(Value::as_str).unwrap_or("?").to_string(),
                n: cell
                    .get("n")
                    .and_then(Value::as_f64)
                    .map_or("?".to_string(), |n| format!("{n}")),
                frontier: cell
                    .get("frontier")
                    .and_then(Value::as_arr)
                    .unwrap_or(&[])
                    .iter()
                    .filter_map(|v| v.as_str().map(str::to_string))
                    .collect(),
                cell,
            })
            .collect()
    }

    /// The trend view: every cell flattened to gated measures, exactly
    /// the aggregates `bench-diff` scores (means over points for the
    /// point-indexed kinds, entry summary means for sweeps).
    pub fn series_cells(&self) -> Vec<CellSeries> {
        match self.kind {
            ArtifactKind::Grid => self
                .point_cells()
                .into_iter()
                .map(|(key, pts)| {
                    let mut measures = vec![
                        Measure::new("awake_max", Gate::Relative, mean(&pts, "awake_max")),
                        Measure::new("awake_avg", Gate::Relative, mean(&pts, "awake_avg")),
                    ];
                    // Legacy v1 documents predate `awake_dist`.
                    if let Some(p95) = mean_dist(&pts, "p95") {
                        measures.push(Measure::new("awake_p95", Gate::Relative, p95));
                    }
                    measures.push(Measure::new(
                        "max_message_bits",
                        Gate::Bits,
                        max(&pts, "max_message_bits"),
                    ));
                    measures.push(Measure::new(
                        "failure_rate",
                        Gate::Pp,
                        failure_rate(&pts),
                    ));
                    measures.push(Measure::new("rounds", Gate::Info, mean(&pts, "rounds")));
                    CellSeries { cell: key, measures }
                })
                .collect(),
            ArtifactKind::Faults => self
                .point_cells()
                .into_iter()
                .map(|(key, pts)| CellSeries {
                    cell: key,
                    measures: vec![
                        Measure::new("failure_rate", Gate::Pp, failure_rate(&pts)),
                        Measure::new("awake_max", Gate::Relative, mean(&pts, "awake_max")),
                        Measure::new("awake_avg", Gate::Info, mean(&pts, "awake_avg")),
                        Measure::new("crashed", Gate::Info, mean(&pts, "crashed")),
                        Measure::new("faulted", Gate::Info, mean(&pts, "faulted")),
                    ],
                })
                .collect(),
            ArtifactKind::Churn => self
                .point_cells()
                .into_iter()
                .map(|(key, pts)| CellSeries {
                    cell: key,
                    measures: vec![
                        Measure::new(
                            "woken_ratio",
                            Gate::RelativeZero,
                            mean(&pts, "woken_ratio"),
                        ),
                        Measure::new(
                            "awake_per_delta",
                            Gate::Relative,
                            mean(&pts, "awake_per_delta"),
                        ),
                        Measure::new("failure_rate", Gate::Pp, failure_rate(&pts)),
                    ],
                })
                .collect(),
            ArtifactKind::Sweep => {
                let mut out = Vec::new();
                for view in self.sweep_cells() {
                    for entry in view.entries() {
                        let Some(algo) = entry.get("algorithm").and_then(Value::as_str) else {
                            continue;
                        };
                        let cell =
                            vec![view.family.clone(), view.n.clone(), algo.to_string()];
                        let broken = entry.get("all_correct").and_then(Value::as_bool)
                            != Some(true);
                        let mut measures = Vec::new();
                        for (name, field) in [
                            ("awake_max", "awake_max"),
                            ("awake_avg", "awake_avg"),
                            ("energy_max_mj", "energy_max_mj"),
                        ] {
                            if let Some(v) = entry_mean(entry, field) {
                                measures.push(Measure::new(name, Gate::Relative, v));
                            }
                        }
                        measures.push(Measure::new(
                            "max_message_bits",
                            Gate::Bits,
                            entry.get("max_message_bits").and_then(Value::as_f64).unwrap_or(0.0),
                        ));
                        measures.push(Measure::new(
                            "broken",
                            Gate::Pp,
                            if broken { 1.0 } else { 0.0 },
                        ));
                        measures.push(Measure::new(
                            "frontier",
                            Gate::Info,
                            if view.frontier.iter().any(|k| k == algo) { 1.0 } else { 0.0 },
                        ));
                        out.push(CellSeries { cell, measures });
                    }
                }
                out
            }
        }
    }
}

/// One `{family, n}` sweep cell: identity, frontier keys, and the raw
/// cell object for entry lookups.
#[derive(Debug, Clone)]
pub struct SweepCellView<'a> {
    /// Family key of the cell.
    pub family: String,
    /// Node count, as the payload spells it.
    pub n: String,
    /// Keys of the non-dominated entries.
    pub frontier: Vec<String>,
    /// The underlying cell object.
    pub cell: &'a Value,
}

impl<'a> SweepCellView<'a> {
    /// The cell's entry objects, in sweep order.
    pub fn entries(&self) -> &'a [Value] {
        self.cell.get("entries").and_then(Value::as_arr).unwrap_or(&[])
    }

    /// Finds the entry for one spec-point key.
    pub fn find_entry(&self, key: &str) -> Option<&'a Value> {
        self.entries()
            .iter()
            .find(|e| e.get("algorithm").and_then(Value::as_str) == Some(key))
    }
}

/// How a measure's growth is judged — the same semantics `bench-diff`
/// applies between two adjacent revisions, reused by the trajectory
/// drift gate over any revision span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// Relative growth in percent beyond the threshold regresses (only
    /// from a strictly positive baseline, as in `bench-diff`).
    Relative,
    /// [`Gate::Relative`], plus "zero stays zero": any growth from a
    /// zero baseline regresses regardless of threshold (the churn
    /// locality rule — waking anyone on a delta-free stream is a bug).
    RelativeZero,
    /// Absolute growth in percentage points beyond the threshold
    /// regresses (failure rates; values are fractions in `[0, 1]`).
    Pp,
    /// Absolute growth beyond the bits slack regresses (CONGEST
    /// message width).
    Bits,
    /// Observational only — reported and plotted, never gated.
    Info,
}

/// One aggregated measure of one cell.
#[derive(Debug, Clone)]
pub struct Measure {
    /// Measure name, as spelled in reports (`awake_max`, …).
    pub name: &'static str,
    /// How growth of this measure is gated.
    pub gate: Gate,
    /// The aggregated value.
    pub value: f64,
}

impl Measure {
    fn new(name: &'static str, gate: Gate, value: f64) -> Measure {
        Measure { name, gate, value }
    }
}

/// One cell flattened for trending: its textual key plus every measure.
#[derive(Debug, Clone)]
pub struct CellSeries {
    /// The cell's identity components (key fields, in order; sweep
    /// rows append the entry's spec-point key).
    pub cell: Vec<String>,
    /// The cell's measures, gated and observational alike.
    pub measures: Vec<Measure>,
}

/// Mean of a numeric field over a cell's points.
pub fn mean(points: &[&Value], field: &str) -> f64 {
    let sum: f64 = points.iter().filter_map(|p| p.get(field).and_then(Value::as_f64)).sum();
    sum / points.len().max(1) as f64
}

/// Mean of a field nested in each point's `awake_dist` object; `None`
/// when no point carries it (a legacy v1 grid document).
pub fn mean_dist(points: &[&Value], field: &str) -> Option<f64> {
    let values: Vec<f64> = points
        .iter()
        .filter_map(|p| p.get("awake_dist").and_then(|d| d.get(field)).and_then(Value::as_f64))
        .collect();
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Max of a numeric field over a cell's points.
pub fn max(points: &[&Value], field: &str) -> f64 {
    points
        .iter()
        .filter_map(|p| p.get(field).and_then(Value::as_f64))
        .fold(f64::NEG_INFINITY, f64::max)
}

/// True when every point in the cell verified correct and none carries
/// an engine error. Broken cells must never be scored by their
/// (zeroed) measurements.
pub fn all_correct(points: &[&Value]) -> bool {
    points.iter().all(|p| {
        p.get("correct").and_then(Value::as_bool) == Some(true) && p.get("sim_error").is_none()
    })
}

/// Fraction of a cell's points that did not verify correct.
pub fn failure_rate(points: &[&Value]) -> f64 {
    let bad = points
        .iter()
        .filter(|p| {
            p.get("correct").and_then(Value::as_bool) != Some(true)
                || p.get("sim_error").is_some()
        })
        .count();
    bad as f64 / points.len().max(1) as f64
}

/// Mean of a summary field (`{"mean": …}`) on a sweep-cell entry.
pub fn entry_mean(entry: &Value, field: &str) -> Option<f64> {
    entry.get(field).and_then(|s| s.get("mean")).and_then(Value::as_f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_doc(awake: f64) -> String {
        format!(
            "{{\"schema\":\"awake-mis/bench-grid/v3\",\"spec\":{{}},\"cells\":[],\
             \"points\":[{{\"algorithm\":\"luby\",\"family\":\"er\",\"n\":64,\"seed\":1,\
             \"rounds\":10,\"awake_max\":{awake},\"awake_avg\":3.5,\"max_message_bits\":21,\
             \"correct\":true,\"failures\":0,\
             \"awake_dist\":{{\"p95\":{awake},\"gini\":0.1}}}}]}}"
        )
    }

    const SWEEP_DOC: &str = r#"{"schema":"awake-mis/bench-sweep/v1","spec":{},
        "cells":[{"family":"er","n":64,"frontier":["luby"],"entries":[
            {"algorithm":"luby","group":0,"runs":2,
             "awake_max":{"mean":9.0},"awake_avg":{"mean":4.0},
             "energy_max_mj":{"mean":1.5},"max_message_bits":21,
             "all_correct":true,"pareto":true},
            {"algorithm":"le?bits=6","group":1,"runs":2,
             "awake_max":{"mean":12.0},"awake_avg":{"mean":6.0},
             "energy_max_mj":{"mean":2.5},"max_message_bits":21,
             "all_correct":true,"pareto":false,"dominated_by":"luby"}]}],
        "points":[]}"#;

    #[test]
    fn schema_sniffing_covers_all_kinds_and_rejects_foreigners() {
        for (schema, kind) in [
            ("awake-mis/bench-grid/v1", ArtifactKind::Grid),
            ("awake-mis/bench-grid/v2", ArtifactKind::Grid),
            ("awake-mis/bench-grid/v3", ArtifactKind::Grid),
            ("awake-mis/bench-sweep/v1", ArtifactKind::Sweep),
            ("awake-mis/bench-faults/v1", ArtifactKind::Faults),
            ("awake-mis/bench-churn/v1", ArtifactKind::Churn),
        ] {
            assert_eq!(ArtifactKind::from_schema(schema), Some(kind), "{schema}");
            let doc = format!("{{\"schema\":\"{schema}\",\"points\":[]}}");
            assert_eq!(Artifact::parse(&doc, "t").unwrap().kind, kind);
        }
        assert_eq!(ArtifactKind::from_schema("awake-mis/bench-grid/v99"), None);
        let err = Artifact::parse("{\"schema\":\"other/thing\"}", "t").unwrap_err();
        assert!(err.contains("not an awake-mis"), "{err}");
        assert!(Artifact::parse("not json", "t").is_err());
    }

    #[test]
    fn key_fields_come_from_the_analysis_writers() {
        assert_eq!(ArtifactKind::Grid.key_fields(), ["algorithm", "family", "n"]);
        assert_eq!(ArtifactKind::Faults.key_fields(), ["algorithm", "family", "n"]);
        assert_eq!(ArtifactKind::Churn.key_fields(), ["algorithm", "family", "n", "rate"]);
        assert_eq!(ArtifactKind::Sweep.key_fields(), ["family", "n"]);
    }

    #[test]
    fn grid_series_aggregates_points_per_cell() {
        let a = Artifact::parse(&grid_doc(8.0), "t").unwrap();
        let series = a.series_cells();
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].cell, ["luby", "er", "64"]);
        let get = |name: &str| {
            series[0].measures.iter().find(|m| m.name == name).map(|m| (m.gate, m.value))
        };
        assert_eq!(get("awake_max"), Some((Gate::Relative, 8.0)));
        assert_eq!(get("awake_avg"), Some((Gate::Relative, 3.5)));
        assert_eq!(get("awake_p95"), Some((Gate::Relative, 8.0)));
        assert_eq!(get("max_message_bits"), Some((Gate::Bits, 21.0)));
        assert_eq!(get("failure_rate"), Some((Gate::Pp, 0.0)));
        assert_eq!(get("rounds"), Some((Gate::Info, 10.0)));
    }

    #[test]
    fn legacy_grid_documents_skip_the_p95_measure() {
        let doc = grid_doc(8.0)
            .replace("awake-mis/bench-grid/v3", "awake-mis/bench-grid/v1")
            .replace(",\"awake_dist\":{\"p95\":8,\"gini\":0.1}", "");
        let a = Artifact::parse(&doc, "t").unwrap();
        let series = a.series_cells();
        assert!(series[0].measures.iter().all(|m| m.name != "awake_p95"));
        assert!(series[0].measures.iter().any(|m| m.name == "awake_max"));
    }

    #[test]
    fn sweep_series_flattens_entries_with_frontier_membership() {
        let a = Artifact::parse(SWEEP_DOC, "t").unwrap();
        let views = a.sweep_cells();
        assert_eq!(views.len(), 1);
        assert_eq!(views[0].frontier, ["luby"]);
        assert!(views[0].find_entry("le?bits=6").is_some());
        assert!(views[0].find_entry("nope").is_none());

        let series = a.series_cells();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].cell, ["er", "64", "luby"]);
        assert_eq!(series[1].cell, ["er", "64", "le?bits=6"]);
        let frontier = |s: &CellSeries| {
            s.measures.iter().find(|m| m.name == "frontier").unwrap().value
        };
        assert_eq!(frontier(&series[0]), 1.0);
        assert_eq!(frontier(&series[1]), 0.0);
        let energy = series[0].measures.iter().find(|m| m.name == "energy_max_mj").unwrap();
        assert_eq!((energy.gate, energy.value), (Gate::Relative, 1.5));
    }

    #[test]
    fn churn_series_uses_the_zero_anchored_gate() {
        let doc = r#"{"schema":"awake-mis/bench-churn/v1","spec":{},"cells":[],
            "points":[{"algorithm":"luby","family":"er","n":64,"rate":0,"seed":1,
                       "woken_ratio":0.0,"awake_per_delta":0.0,"correct":true}]}"#;
        let a = Artifact::parse(doc, "t").unwrap();
        let series = a.series_cells();
        assert_eq!(series[0].cell, ["luby", "er", "64", "0"]);
        let woken = series[0].measures.iter().find(|m| m.name == "woken_ratio").unwrap();
        assert_eq!(woken.gate, Gate::RelativeZero);
    }

    #[test]
    fn fault_series_leads_with_the_failure_rate_in_pp() {
        let doc = r#"{"schema":"awake-mis/bench-faults/v1","spec":{},"cells":[],
            "points":[
              {"algorithm":"luby?loss=0.05","family":"er","n":64,"seed":1,
               "awake_max":9,"awake_avg":4.5,"correct":true,"crashed":0,"faulted":3},
              {"algorithm":"luby?loss=0.05","family":"er","n":64,"seed":2,
               "awake_max":9,"awake_avg":4.5,"correct":false,"crashed":0,"faulted":3}]}"#;
        let a = Artifact::parse(doc, "t").unwrap();
        let series = a.series_cells();
        assert_eq!(series.len(), 1);
        let rate = series[0].measures.iter().find(|m| m.name == "failure_rate").unwrap();
        assert_eq!((rate.gate, rate.value), (Gate::Pp, 0.5));
    }
}
