//! The unified trend model and the multi-PR drift gate.
//!
//! A [`TrendSeries`] is one `(artifact, cell key, measure)` line through
//! history: one sample per committed revision (short hash, author date,
//! value), built by replaying [`crate::artifact::Artifact::series_cells`]
//! over a [`crate::history::ArtifactHistory`]. On top of the raw
//! samples, each series reports
//!
//! * **delta vs previous** — the last inter-revision step, what
//!   `bench-diff` would have scored on the final pair;
//! * **cumulative drift vs baseline** — latest against the *first*
//!   committed sample, in the measure's gate unit (`%`, `pp`, or
//!   absolute);
//! * **least-squares slope per revision** — [`analysis::fit_linear`]
//!   over `(revision index, value)`, `None` below two samples.
//!
//! The drift gate ([`gate_drift`]) closes the hole per-PR gating leaves
//! open: a measure that creeps +2% per PR passes every adjacent
//! `bench-diff` at the default 5% threshold, yet after five PRs sits
//! +10% over the committed baseline. Cumulative drift is judged with
//! the *same* gate semantics `bench-diff` applies to a single step
//! ([`Gate`]), so the two tools agree about what a regression means —
//! they just look across different spans.

use crate::artifact::Gate;
use crate::history::ArtifactHistory;
use analysis::fit_linear;

/// One revision's value of one series.
#[derive(Debug, Clone)]
pub struct TrendSample {
    /// Index of the revision in the artifact's history (0 = oldest).
    /// Series born later start at their first covering revision, so
    /// gaps stay visible.
    pub seq: usize,
    /// Abbreviated commit hash.
    pub rev: String,
    /// Author date, `YYYY-MM-DD`.
    pub date: String,
    /// The measure's aggregated value at that revision.
    pub value: f64,
}

/// One `(artifact, cell key, measure)` line through committed history.
#[derive(Debug, Clone)]
pub struct TrendSeries {
    /// Artifact short name (`grid`, `sweep`, `faults`, `churn`).
    pub artifact: String,
    /// Cell identity components (key fields in payload order).
    pub cell: Vec<String>,
    /// Measure name.
    pub measure: &'static str,
    /// The measure's gate semantics.
    pub gate: Gate,
    /// Samples, oldest revision first.
    pub samples: Vec<TrendSample>,
}

impl TrendSeries {
    /// Human-readable identity: `grid luby/er/1024 awake_max`.
    pub fn label(&self) -> String {
        format!("{} {} {}", self.artifact, self.cell.join("/"), self.measure)
    }

    /// The first committed value — the drift baseline.
    pub fn baseline(&self) -> f64 {
        self.samples.first().map_or(0.0, |s| s.value)
    }

    /// The newest committed value.
    pub fn latest(&self) -> f64 {
        self.samples.last().map_or(0.0, |s| s.value)
    }

    /// The last inter-revision step (`latest − previous`); `None` for a
    /// one-sample series.
    pub fn delta_prev(&self) -> Option<f64> {
        let n = self.samples.len();
        (n >= 2).then(|| self.samples[n - 1].value - self.samples[n - 2].value)
    }

    /// Cumulative drift of `latest` from `baseline` in the gate's
    /// native unit: `(value, unit)` with unit `"%"`, `"pp"`, or `""`
    /// (absolute). `None` for one-sample series ("no trend") and for
    /// relative gates on a non-positive baseline, where a percentage
    /// is undefined — the zero-anchored rule still fires in
    /// [`TrendSeries::gate_violation`].
    pub fn drift(&self) -> Option<(f64, &'static str)> {
        if self.samples.len() < 2 {
            return None;
        }
        let (b, l) = (self.baseline(), self.latest());
        match self.gate {
            Gate::Relative | Gate::RelativeZero => {
                (b > 0.0).then(|| (100.0 * (l - b) / b, "%"))
            }
            Gate::Pp => Some((100.0 * (l - b), "pp")),
            Gate::Bits | Gate::Info => Some((l - b, "")),
        }
    }

    /// Least-squares slope in measure units per revision; `None` below
    /// two samples (a shallow clone's "no trend").
    pub fn slope(&self) -> Option<f64> {
        if self.samples.len() < 2 {
            return None;
        }
        let xs: Vec<f64> = self.samples.iter().map(|s| s.seq as f64).collect();
        let ys: Vec<f64> = self.samples.iter().map(|s| s.value).collect();
        Some(fit_linear(&xs, &ys).a)
    }

    /// Judges cumulative drift with the gate semantics `bench-diff`
    /// applies per step. `Some(detail)` when the series violates the
    /// gate at `threshold_pct` (percent for relative gates, percentage
    /// points for rate gates) and `bits_slack` (absolute, for CONGEST
    /// width). One-sample series and [`Gate::Info`] measures never
    /// violate.
    pub fn gate_violation(&self, threshold_pct: f64, bits_slack: f64) -> Option<String> {
        if self.samples.len() < 2 {
            return None;
        }
        let (b, l) = (self.baseline(), self.latest());
        match self.gate {
            Gate::Relative | Gate::RelativeZero => {
                if b > 0.0 && 100.0 * (l - b) / b > threshold_pct {
                    return Some(format!(
                        "drifted {:+.1}% from baseline {b:.4} to {l:.4} (threshold {threshold_pct}%)",
                        100.0 * (l - b) / b
                    ));
                }
                if self.gate == Gate::RelativeZero && b == 0.0 && l > 0.0 {
                    return Some(format!("grew from a zero baseline to {l:.4}"));
                }
                None
            }
            Gate::Pp => {
                let pp = 100.0 * (l - b);
                (pp > threshold_pct).then(|| {
                    format!(
                        "rate drifted {pp:+.1}pp from {b:.3} to {l:.3} (threshold {threshold_pct}pp)"
                    )
                })
            }
            Gate::Bits => (l > b + bits_slack).then(|| {
                format!("grew {:+.0} bits from {b:.0} to {l:.0} (slack {bits_slack})", l - b)
            }),
            Gate::Info => None,
        }
    }
}

/// Builds the trend series of one artifact's history, in first-seen
/// `(cell, measure)` order.
pub fn series_from_history(history: &ArtifactHistory) -> Vec<TrendSeries> {
    let mut out: Vec<TrendSeries> = Vec::new();
    for (seq, sample) in history.samples.iter().enumerate() {
        let artifact = sample.artifact.kind.short().to_string();
        for cell in sample.artifact.series_cells() {
            for m in &cell.measures {
                let found = out
                    .iter_mut()
                    .find(|s| s.cell == cell.cell && s.measure == m.name);
                let series = match found {
                    Some(s) => s,
                    None => {
                        out.push(TrendSeries {
                            artifact: artifact.clone(),
                            cell: cell.cell.clone(),
                            measure: m.name,
                            gate: m.gate,
                            samples: Vec::new(),
                        });
                        out.last_mut().unwrap()
                    }
                };
                series.samples.push(TrendSample {
                    seq,
                    rev: sample.rev.hash.clone(),
                    date: sample.rev.date.clone(),
                    value: m.value,
                });
            }
        }
    }
    out
}

/// One drift-gate violation.
#[derive(Debug, Clone)]
pub struct DriftViolation {
    /// The offending series' label.
    pub label: String,
    /// What drifted and by how much.
    pub detail: String,
}

/// Applies [`TrendSeries::gate_violation`] across every series and
/// collects the violations — the `bench-report --gate` exit criterion.
pub fn gate_drift(
    series: &[TrendSeries],
    threshold_pct: f64,
    bits_slack: f64,
) -> Vec<DriftViolation> {
    series
        .iter()
        .filter_map(|s| {
            s.gate_violation(threshold_pct, bits_slack)
                .map(|detail| DriftViolation { label: s.label(), detail })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(gate: Gate, values: &[f64]) -> TrendSeries {
        TrendSeries {
            artifact: "grid".to_string(),
            cell: vec!["luby".into(), "er".into(), "1024".into()],
            measure: "awake_max",
            gate,
            samples: values
                .iter()
                .enumerate()
                .map(|(i, &v)| TrendSample {
                    seq: i,
                    rev: format!("rev{i}"),
                    date: "2026-08-08".to_string(),
                    value: v,
                })
                .collect(),
        }
    }

    #[test]
    fn a_flat_history_never_gates() {
        let s = series(Gate::Relative, &[20.0, 20.0, 20.0, 20.0]);
        assert_eq!(s.drift(), Some((0.0, "%")));
        assert_eq!(s.delta_prev(), Some(0.0));
        assert_eq!(s.slope(), Some(0.0));
        assert!(s.gate_violation(5.0, 0.0).is_none());
        assert!(gate_drift(&[s], 5.0, 0.0).is_empty());
    }

    #[test]
    fn a_single_step_regression_gates_when_it_exceeds_the_threshold() {
        let s = series(Gate::Relative, &[20.0, 23.0]);
        let (drift, unit) = s.drift().unwrap();
        assert!((drift - 15.0).abs() < 1e-9);
        assert_eq!(unit, "%");
        assert!(s.gate_violation(5.0, 0.0).is_some(), "+15% > 5%");
        assert!(s.gate_violation(20.0, 0.0).is_none(), "+15% under a 20% threshold");
    }

    #[test]
    fn slow_creep_under_the_pair_threshold_still_fires_the_gate() {
        // Five commits, each +2% over the last: every adjacent pair is
        // under bench-diff's default 5% threshold, but the cumulative
        // drift is (1.02^4 - 1) ≈ +8.2% — exactly the failure mode
        // per-PR gating cannot see.
        let mut vals = vec![20.0];
        for _ in 0..4 {
            vals.push(vals.last().unwrap() * 1.02);
        }
        let s = series(Gate::Relative, &vals);
        for w in vals.windows(2) {
            let step_pct = 100.0 * (w[1] - w[0]) / w[0];
            assert!(step_pct < 5.0, "each step stays under the pair threshold");
        }
        let (drift, _) = s.drift().unwrap();
        assert!(drift > 5.0, "cumulative drift {drift:.1}% exceeds the threshold");
        let violations = gate_drift(&[s], 5.0, 0.0);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].label.contains("luby/er/1024"));
    }

    #[test]
    fn one_sample_means_no_trend_and_never_panics() {
        let s = series(Gate::Relative, &[20.0]);
        assert_eq!(s.drift(), None);
        assert_eq!(s.delta_prev(), None);
        assert_eq!(s.slope(), None, "fit_linear must not be fed a single point");
        assert!(s.gate_violation(0.0, 0.0).is_none());
    }

    #[test]
    fn gate_unit_semantics_match_bench_diff() {
        // Pp: failure rate fractions gate in percentage points.
        let rate = series(Gate::Pp, &[0.0, 0.02, 0.08]);
        let (pp, unit) = rate.drift().unwrap();
        assert!((pp - 8.0).abs() < 1e-9);
        assert_eq!(unit, "pp");
        assert!(rate.gate_violation(5.0, 0.0).is_some(), "+8pp > 5pp");
        assert!(rate.gate_violation(10.0, 0.0).is_none());

        // Bits: absolute growth against the slack, not a percentage.
        let bits = series(Gate::Bits, &[21.0, 22.0]);
        assert!(bits.gate_violation(5.0, 0.0).is_some(), "any CONGEST growth at slack 0");
        assert!(bits.gate_violation(5.0, 1.0).is_none(), "one bit of slack forgives one bit");

        // RelativeZero: zero must stay zero regardless of threshold.
        let zero = series(Gate::RelativeZero, &[0.0, 0.001]);
        assert!(zero.gate_violation(1000.0, 0.0).is_some());
        // Info: never gated, still trended.
        let info = series(Gate::Info, &[10.0, 99.0]);
        assert!(info.gate_violation(0.0, 0.0).is_none());
        assert!(info.drift().is_some());
    }

    #[test]
    fn improvements_never_gate() {
        for gate in [Gate::Relative, Gate::RelativeZero, Gate::Pp, Gate::Bits] {
            let s = series(gate, &[20.0, 10.0]);
            assert!(s.gate_violation(0.0, 0.0).is_none(), "{gate:?}");
        }
    }
}
