//! Churn-epoch experiment runner: boots a MIS service per grid point,
//! alternates random topology deltas with incremental frontier repair,
//! and writes the machine-readable `BENCH_churn.json` (schema
//! `awake-mis/bench-churn/v1`) plus a repair-vs-recompute summary table.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin churn -- \
//!     [--algos luby,vt] [--families er,tree] [--sizes 256,1024] \
//!     [--rates 0,0.005,0.01,0.02,0.08] [--epochs 8] [--seeds 3] \
//!     [--insert-frac 0.5] [--node-churn 0.1] [--threads 0] \
//!     [--no-recompute] [--serve N] [--serve-algo luby] \
//!     [--serve-batches 6] [--serve-ops 2000] [--profile] \
//!     [--out BENCH_churn.json]
//! ```
//!
//! `--algos` takes registry specs (same grammar as `grid`). `--rates`
//! are effective deltas per epoch as a fraction of `n`; rate `0` pins
//! the delta-free case (the service must wake nobody). Every point runs
//! `--epochs` cycles of `random_batch` → `MisService::apply`. Unless
//! `--no-recompute` is given, each epoch also times a from-scratch run
//! on the current active graph so the summary can report the wall-clock
//! ratio; the recompute never touches the deterministic payload (its
//! timing lands in the `timing` section).
//!
//! `--serve N` additionally runs a generated-workload throughput probe
//! at `n = N` (the `serve` bin's loop, in-process) and records the
//! sustained deltas/sec in the document's `meta` line — machine-
//! dependent by nature, so it is excluded from `bench-diff --exact`
//! comparisons. The committed `BENCH_churn.json` is produced with
//! `--serve 1000000`.
//!
//! The JSON payload (everything except `meta`/`timing`) is
//! byte-identical for any `--threads` value.
//!
//! `--profile` attaches the engine's phase profiler to every runner
//! (the execution-only `trace=profile` spec param) and prints a
//! per-algorithm phase breakdown after the run, aggregated over every
//! engine run the churn grid triggered — bootstraps, frontier repairs,
//! and recompute baselines alike. Observational only: the payload is
//! byte-identical with or without it.

use analysis::churn::{random_batch, run_churn, ChurnMeta, ChurnSpec, MisService, ServeThroughput};
use analysis::spec::default_registry;
use analysis::Table;
use bench::Family;
use sleeping_congest::batch::resolve_threads;
use sleeping_congest::ScratchArena;
use std::time::Instant;

fn parse_list<T>(arg: &str, parse: impl Fn(&str) -> Option<T>, what: &str) -> Vec<T> {
    arg.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| parse(s).unwrap_or_else(|| panic!("unknown {what} {s:?}")))
        .collect()
}

/// Generated-workload throughput probe: the `serve` loop, in-process,
/// against an ER instance of `n` nodes.
fn serve_probe(n: usize, algo: &str, batches: u64, ops: usize, seed: u64) -> ServeThroughput {
    let runner = default_registry().resolve(algo).unwrap_or_else(|e| panic!("--serve-algo: {e}"));
    let g = Family::Er.generate(n, seed);
    let mut scratch = ScratchArena::new();
    println!("[serve] bootstrapping {} on er n={n}…", runner.key());
    let t0 = Instant::now();
    let (mut service, r) =
        MisService::bootstrap(runner.clone(), g, seed, &mut scratch).expect("serve bootstrap");
    assert!(r.correct, "serve bootstrap must produce a valid MIS");
    println!(
        "[serve] bootstrap: mis={} in {:.2}s; applying {batches} batches × {ops} ops…",
        r.mis_size,
        t0.elapsed().as_secs_f64()
    );
    let start = Instant::now();
    let mut deltas = 0u64;
    let mut woken = 0u64;
    for b in 0..batches {
        let batch = random_batch(service.graph(), ops, 0.5, 0.0, seed.wrapping_add(b + 1));
        let rep = service.apply(&batch, &mut scratch).expect("serve batch");
        assert!(rep.correct, "serve epoch must verify: {:?}", rep.error);
        deltas += rep.deltas;
        woken += rep.woken;
    }
    let wall = start.elapsed();
    let deltas_per_sec = deltas as f64 / wall.as_secs_f64();
    println!(
        "[serve] {deltas} deltas in {batches} batches over {:.2}s → {:.0} deltas/s \
         ({woken} woken total, {:.1} woken/delta)",
        wall.as_secs_f64(),
        deltas_per_sec,
        woken as f64 / deltas.max(1) as f64,
    );
    ServeThroughput {
        n,
        algorithm: runner.key().to_string(),
        batches,
        deltas,
        wall_ms: wall.as_millis(),
        deltas_per_sec,
    }
}

/// Appends the execution-only `trace=profile` param to every spec in a
/// comma-separated list (no-op when `--profile` is off).
fn with_profile(specs: &str, profile: bool) -> String {
    if !profile {
        return specs.to_string();
    }
    specs
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| if s.contains('?') { format!("{s}&trace=profile") } else { format!("{s}?trace=profile") })
        .collect::<Vec<_>>()
        .join(",")
}

fn main() {
    let registry = default_registry();
    let mut algos_spec = String::from("luby,vt");
    let mut families = vec![Family::Er, Family::Tree];
    let mut sizes = vec![256usize, 1024];
    let mut rates = vec![0.0f64, 0.005, 0.01, 0.02, 0.08];
    let mut epochs = 8usize;
    let mut seed_count = 3u64;
    let mut insert_frac = 0.5f64;
    let mut node_churn = 0.1f64;
    let mut threads = 0usize;
    let mut recompute = true;
    let mut serve_n = 0usize;
    let mut serve_algo = String::from("luby");
    let mut serve_batches = 6u64;
    let mut serve_ops = 2000usize;
    let mut profile = false;
    let mut out_path = String::from("BENCH_churn.json");

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> &str {
            *i += 1;
            args.get(*i).unwrap_or_else(|| panic!("{} needs a value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--algos" => algos_spec = value(&mut i).to_string(),
            "--families" => families = parse_list(value(&mut i), Family::parse, "family"),
            "--sizes" => sizes = parse_list(value(&mut i), |s| s.parse().ok(), "size"),
            "--rates" => rates = parse_list(value(&mut i), |s| s.parse().ok(), "rate"),
            "--epochs" => epochs = value(&mut i).parse().expect("--epochs takes a count"),
            "--seeds" => seed_count = value(&mut i).parse().expect("--seeds takes a count"),
            "--insert-frac" => {
                insert_frac = value(&mut i).parse().expect("--insert-frac takes a fraction");
            }
            "--node-churn" => {
                node_churn = value(&mut i).parse().expect("--node-churn takes a fraction");
            }
            "--threads" => threads = value(&mut i).parse().expect("--threads takes a count"),
            "--no-recompute" => recompute = false,
            "--serve" => serve_n = value(&mut i).parse().expect("--serve takes a node count"),
            "--serve-algo" => serve_algo = value(&mut i).to_string(),
            "--serve-batches" => {
                serve_batches = value(&mut i).parse().expect("--serve-batches takes a count");
            }
            "--serve-ops" => {
                serve_ops = value(&mut i).parse().expect("--serve-ops takes a count");
            }
            "--profile" => profile = true,
            "--out" => out_path = value(&mut i).to_string(),
            other => panic!("unknown argument {other:?} (see the doc comment for usage)"),
        }
        i += 1;
    }

    let algorithms = registry
        .resolve_list(&with_profile(&algos_spec, profile))
        .unwrap_or_else(|e| panic!("--algos: {e}"));
    let spec = ChurnSpec {
        algorithms,
        families,
        sizes,
        rates,
        epochs,
        insert_frac,
        node_churn,
        seeds: (1..=seed_count).collect(),
        threads,
        recompute,
    };
    let jobs = spec.jobs().len();
    let threads_used = resolve_threads(spec.threads);
    println!("running {jobs} churn points ({epochs} epochs each) over {threads_used} threads…");

    let start = Instant::now();
    let result = run_churn(&spec);
    let wall = start.elapsed();

    // Per-cell locality table, with the wall-clock repair-vs-recompute
    // ratio recovered from the per-point timing fields.
    let mut t = Table::new(vec![
        "algorithm", "family", "n", "rate", "deltas", "woken ratio", "awake/Δ", "repair rounds",
        "retries", "wall ratio", "ok",
    ]);
    let runs = spec.seeds.len();
    for (ci, c) in result.cells.iter().enumerate() {
        let chunk = &result.points[ci * runs..(ci + 1) * runs];
        let repair_ns: u64 = chunk.iter().map(|p| p.elapsed_ns).sum();
        let recompute_ns: u64 = chunk.iter().map(|p| p.recompute_ns).sum();
        let wall_ratio = if recompute_ns > 0 {
            format!("{:.2}", repair_ns as f64 / recompute_ns as f64)
        } else {
            "-".to_string()
        };
        t.row(vec![
            c.algorithm.name().to_string(),
            c.family.name().to_string(),
            c.n.to_string(),
            format!("{}", c.rate),
            c.deltas.to_string(),
            format!("{:.4}", c.woken_ratio.mean),
            format!("{:.2}", c.awake_per_delta.mean),
            format!("{:.1}", c.repair_rounds.mean),
            c.retries.to_string(),
            wall_ratio,
            if c.all_correct { "yes".into() } else { "NO".to_string() },
        ]);
    }
    print!("{}", t.render());

    if profile {
        for runner in &spec.algorithms {
            if let Some(report) = runner.trace().and_then(|h| h.report()) {
                println!("\n[profile] {}\n{}", runner.key(), report.trim_end());
            }
        }
    }

    let serve = (serve_n > 0)
        .then(|| serve_probe(serve_n, &serve_algo, serve_batches, serve_ops, 1));

    let meta = ChurnMeta { threads: threads_used, wall_ms: wall.as_millis(), serve };
    std::fs::write(&out_path, result.to_json(&meta)).expect("write churn JSON");
    let bad = result.points.iter().filter(|p| !p.correct).count();
    println!(
        "\nwrote {out_path}: {} points, {} cells, {} incorrect, {:.1}s wall",
        result.points.len(),
        result.cells.len(),
        bad,
        wall.as_secs_f64()
    );
    if bad > 0 {
        std::process::exit(1);
    }
}
