//! Energy-frontier sweep runner: expands range-valued algorithm specs
//! (`le?bits=2..10&step=2`, `gp-avg?balance=0,2,4,8`), fans
//! `{spec point × family × n × seed}` across OS threads, prices every
//! run with the energy model, computes the per-cell Pareto frontier over
//! `(rounds, max awake, mean awake, worst-node energy)`, and writes the
//! machine-readable `BENCH_sweep.json` (schema `awake-mis/bench-sweep/v1`)
//! plus a human-readable frontier table.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin sweep -- \
//!     [--spec SPEC]... [--specs 'SPEC;SPEC;…'] \
//!     [--family FAMILY]... [--families er,tree] \
//!     [--sizes 256,1024] [--seeds 4] \
//!     [--threads 0] [--out BENCH_sweep.json]
//! ```
//!
//! Each `--spec` takes ONE sweep spec (repeat the flag to add more);
//! `--specs` takes a `;`-separated list — a separate separator because
//! `,` is part of the sweep grammar (`balance=0,2,4`). Quote `?`/`&`
//! for your shell.
//!
//! The *graph* is a sweep axis too: family specs go through the same
//! range grammar (`analysis::sweep::expand_families`), so
//! `--families 'er?avg_deg=8..16&step=4,tree'` runs ER at degrees 8, 12
//! and 16 plus the tree family. `--families` splits on `,` at the top
//! level (ranges are comma-free); a family point that itself needs a
//! comma list (`rgg?radius=0.03,0.06`) goes in its own repeatable
//! `--family` flag. A parameter at its default (`er?avg_deg=8`)
//! canonicalizes to the bare family key.
//!
//! Run with no arguments to reproduce the committed `BENCH_sweep.json`.
//! The JSON payload (everything except `meta` and `timing`) is
//! byte-identical for any thread count.

use analysis::spec::default_registry;
use analysis::sweep::{expand, expand_families, run_sweep, SweepSpec};
use analysis::{EnergyModel, GridMeta, Table};
use bench::Family;
use sleeping_congest::batch::resolve_threads;
use std::time::Instant;

/// The default sweep: both awake measures, the GP balance dial, and the
/// LE time/energy dial, on the workhorse sparse family and the dense
/// family where symmetry breaking is hard. This is what the committed
/// `BENCH_sweep.json` pins.
const DEFAULT_SPECS: [&str; 6] =
    ["awake", "luby", "vt", "na", "gp-avg?balance=0..8&step=4", "le?bits=4..10&step=2"];

/// The default family axis: the two algorithm-sweep workhorses plus one
/// parameterized graph point (ER at double the default degree), so the
/// committed frontier also pins a graph-parameter dial.
const DEFAULT_FAMILIES: [&str; 3] = ["er", "dense", "er?avg_deg=16"];

fn parse_list<T>(arg: &str, parse: impl Fn(&str) -> Option<T>, what: &str) -> Vec<T> {
    arg.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| parse(s).unwrap_or_else(|| panic!("unknown {what} {s:?}")))
        .collect()
}

/// Expands a list of family specs (each through the range grammar),
/// rejecting families that appear twice across the whole axis.
fn expand_family_axis(raw_specs: &[String]) -> Vec<Family> {
    let mut out: Vec<Family> = Vec::new();
    for raw in raw_specs {
        let expanded =
            expand_families(raw).unwrap_or_else(|e| panic!("family spec {raw:?}: {e}"));
        for f in expanded {
            assert!(
                !out.contains(&f),
                "family {} appears twice in the family axis",
                f.key()
            );
            out.push(f);
        }
    }
    out
}

fn main() {
    let mut specs: Vec<String> = Vec::new();
    let mut family_specs: Vec<String> = Vec::new();
    let mut sizes = vec![1024usize, 4096];
    let mut seed_count = 4u64;
    let mut threads = 0usize;
    let mut out_path = String::from("BENCH_sweep.json");

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> &str {
            *i += 1;
            args.get(*i).unwrap_or_else(|| panic!("{} needs a value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--spec" => specs.push(value(&mut i).to_string()),
            "--specs" => specs.extend(
                value(&mut i).split(';').filter(|s| !s.trim().is_empty()).map(str::to_string),
            ),
            "--family" => family_specs.push(value(&mut i).to_string()),
            "--families" => family_specs.extend(
                value(&mut i).split(',').filter(|s| !s.trim().is_empty()).map(str::to_string),
            ),
            "--sizes" => sizes = parse_list(value(&mut i), |s| s.parse().ok(), "size"),
            "--seeds" => seed_count = value(&mut i).parse().expect("--seeds takes a count"),
            "--threads" => threads = value(&mut i).parse().expect("--threads takes a count"),
            "--out" => out_path = value(&mut i).to_string(),
            other => panic!("unknown argument {other:?} (see the doc comment for usage)"),
        }
        i += 1;
    }
    if specs.is_empty() {
        specs = DEFAULT_SPECS.iter().map(|s| s.to_string()).collect();
    }
    if family_specs.is_empty() {
        family_specs = DEFAULT_FAMILIES.iter().map(|s| s.to_string()).collect();
    }
    let families = expand_family_axis(&family_specs);

    // Expand up front so a bad spec fails before any work runs.
    let registry = default_registry();
    let mut expanded_total = 0;
    for raw in &specs {
        let group = expand(registry, raw).unwrap_or_else(|e| panic!("--spec {raw:?}: {e}"));
        expanded_total += group.runners.len();
    }

    let spec = SweepSpec {
        specs,
        families,
        sizes,
        seeds: (1..=seed_count).collect(),
        threads,
        energy: EnergyModel::default(),
    };
    let jobs =
        expanded_total * spec.families.len() * spec.sizes.len() * spec.seeds.len();
    let threads_used = resolve_threads(spec.threads);
    println!(
        "running {jobs} sweep jobs ({expanded_total} algorithm points) over {threads_used} threads…"
    );

    let start = Instant::now();
    let result = run_sweep(&spec).unwrap_or_else(|e| panic!("sweep: {e}"));
    let wall = start.elapsed();

    let mut t = Table::new(vec![
        "family", "n", "spec point", "awake max", "awake avg", "rounds (mean)",
        "energy max (mJ)", "energy mean (mJ)", "frontier", "ok",
    ]);
    for c in &result.cells {
        for e in &c.entries {
            t.row(vec![
                c.family.name().to_string(),
                c.n.to_string(),
                e.algorithm.key().to_string(),
                format!("{:.1}", e.awake_max.mean),
                format!("{:.2}", e.awake_avg.mean),
                format!("{:.3e}", e.rounds.mean),
                format!("{:.3}", e.energy_max_mj.mean),
                format!("{:.3}", e.energy_mean_mj.mean),
                match (&e.pareto, &e.dominated_by) {
                    (true, _) => "*".to_string(),
                    (false, Some(d)) => format!("≺ {d}"),
                    (false, None) => "-".to_string(),
                },
                if e.all_correct { "yes".into() } else { "NO".to_string() },
            ]);
        }
    }
    print!("{}", t.render());

    let meta = GridMeta { threads: threads_used, wall_ms: wall.as_millis() };
    std::fs::write(&out_path, result.to_json(&meta)).expect("write sweep JSON");
    let bad = result.points.iter().filter(|p| !p.point.correct).count();
    let frontier_sizes: Vec<String> = result
        .cells
        .iter()
        .map(|c| format!("{}/{}:{}", c.family.key(), c.n, c.frontier().len()))
        .collect();
    println!(
        "\nwrote {out_path}: {} points, {} cells, frontier sizes [{}], {} incorrect, {:.1}s wall",
        result.points.len(),
        result.cells.len(),
        frontier_sizes.join(", "),
        bad,
        wall.as_secs_f64()
    );
    if bad > 0 {
        std::process::exit(1);
    }
}
