//! `bench-diff` — compare two `BENCH_grid.json`, `BENCH_sweep.json`,
//! **or** `BENCH_faults.json` files and flag regressions.
//!
//! For grid documents: prints, per `(algorithm, family, n)` cell present
//! in both files, the delta in mean worst-case awake rounds, in mean
//! *node-averaged* awake rounds, in the mean per-run p95 of the awake
//! distribution, and in CONGEST bits (largest message), then exits
//! nonzero when the new file regresses beyond the thresholds. This is
//! the perf-trajectory gate: commit a baseline, regenerate after a
//! change, diff.
//!
//! For sweep documents (`awake-mis/bench-sweep/v1`): compares the
//! per-`{family, n}` **Pareto frontiers**. A baseline frontier point
//! that disappears from the new sweep, or drops off the frontier
//! (becomes dominated), is a regression; so is a frontier point whose
//! mean worst-case awake, node-averaged awake, or worst-node energy
//! regresses beyond the threshold. New frontier points are reported as
//! coverage, not failures.
//!
//! For fault documents (`awake-mis/bench-faults/v1`): compares, per
//! `(fault level, family, n)` cell, the **failure rate** (fraction of
//! seeds that did not verify on the survivor subgraph) and the mean
//! awake measures. This is the robustness gate: a failure-rate increase
//! beyond `--threshold` percentage points at *any* swept loss/crash
//! level is a regression and exits 1, as is lost cell coverage. Lossy
//! cells legitimately contain incorrect runs, so — unlike the grid path
//! — incorrectness alone is not "BROKEN" here; only its growth is.
//!
//! For churn documents (`awake-mis/bench-churn/v1`): compares, per
//! `(algorithm, family, n, rate)` cell, the **woken ratio** (nodes the
//! incremental repair woke vs what a full recompute would wake) and the
//! awake-per-delta cost. This is the locality gate: repair quietly
//! waking more of the graph than the committed baseline is a
//! regression, as is any cell whose epochs stopped verifying.
//!
//! Schema sniffing, cell grouping, and the measure aggregates all come
//! from [`bench::artifact`] — the same reader `bench-report` trends
//! over git history, so the per-PR gate and the trajectory gate cannot
//! disagree about what a document means.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin bench-diff -- \
//!     OLD.json NEW.json [--threshold PCT] [--bits-slack N] [--exact]
//! ```
//!
//! * `--threshold PCT` — allowed relative increase per cell in each
//!   gated measure before it counts as a regression (default 5).
//! * `--bits-slack N` — allowed absolute increase in max message bits
//!   per cell (default 0: any CONGEST growth is a regression).
//! * `--exact` — additionally require the two deterministic payloads to
//!   agree exactly: same spec echo, same cells, same points
//!   (`meta`/`timing` are ignored). This is how CI pins the default
//!   registry's byte-compatibility against the committed grid *and* the
//!   committed sweep.
//!
//! Baseline cells absent from the new file always count as failures
//! (lost coverage must not pass as "0 regressions"); cells only in the
//! new file are reported but don't fail the run. Both files must be the
//! same kind of document.
//!
//! `awake-mis/bench-grid/v3` documents and legacy `v2`/`v1` documents
//! (v2 predates the per-point fault counters, v1 the `awake_dist`
//! object) are accepted; the node-averaged and p95 columns show `-`
//! where a side lacks the data, and those comparisons are skipped for
//! that cell.
//!
//! Exit codes: `0` no regression, `1` regression or `--exact` mismatch,
//! `2` usage or parse error.

use analysis::Table;
use bench::artifact::{
    all_correct, entry_mean, failure_rate, max, mean, mean_dist, Artifact, ArtifactKind,
    PAYLOAD_SECTIONS,
};
use bench::json::Value;
use std::collections::{HashMap, HashSet};
use std::process::ExitCode;

fn fail_usage(msg: &str) -> ExitCode {
    eprintln!("bench-diff: {msg}");
    eprintln!(
        "usage: bench-diff OLD.json NEW.json [--threshold PCT] [--bits-slack N] [--exact]"
    );
    ExitCode::from(2)
}

/// Formats an optional measurement for the table.
fn opt_cell(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_string(), |x| format!("{x:.2}"))
}

/// Relative regression check on an optionally-present measure: only a
/// pair of present values can regress.
fn regressed(old: Option<f64>, new: Option<f64>, threshold: f64) -> bool {
    match (old, new) {
        (Some(o), Some(n)) if o > 0.0 => 100.0 * (n - o) / o > threshold,
        _ => false,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&str> = Vec::new();
    let mut threshold = 5.0f64;
    let mut bits_slack = 0.0f64;
    let mut exact = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" | "--bits-slack" => {
                let flag = args[i].clone();
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse::<f64>().ok()) else {
                    return fail_usage(&format!("{flag} takes a number"));
                };
                if flag == "--threshold" {
                    threshold = v;
                } else {
                    bits_slack = v;
                }
            }
            "--exact" => exact = true,
            other if other.starts_with("--") => {
                return fail_usage(&format!("unknown flag {other:?}"));
            }
            path => paths.push(path),
        }
        i += 1;
    }
    let [old_path, new_path] = paths[..] else {
        return fail_usage("expected exactly two files");
    };

    let (old, new) = match (Artifact::load(old_path), Artifact::load(new_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => return fail_usage(&e),
    };
    if old.kind != new.kind {
        return fail_usage("cannot compare documents of different kinds (grid/sweep/faults)");
    }

    let mut failed = match old.kind {
        ArtifactKind::Grid => diff_grid(&old, &new, old_path, new_path, threshold, bits_slack),
        ArtifactKind::Sweep => diff_sweep(&old, &new, old_path, new_path, threshold, bits_slack),
        ArtifactKind::Faults => diff_faults(&old, &new, old_path, new_path, threshold),
        ArtifactKind::Churn => diff_churn(&old, &new, old_path, new_path, threshold),
    };
    if exact {
        // The deterministic payload is everything but meta/timing.
        for section in PAYLOAD_SECTIONS {
            if old.doc.get(section) != new.doc.get(section) {
                println!("--exact: section {section:?} differs");
                failed = true;
            }
        }
        if !failed {
            println!("--exact: payloads identical");
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Grid-document comparison: per `(algorithm, family, n)` cell deltas
/// over the awake measures and CONGEST bits. Returns whether anything
/// regressed.
fn diff_grid(
    old: &Artifact,
    new: &Artifact,
    old_path: &str,
    new_path: &str,
    threshold: f64,
    bits_slack: f64,
) -> bool {
    let old_cells = old.point_cells();
    let new_cells = new.point_cells();
    let new_by_key: HashMap<&[String], &Vec<&Value>> =
        new_cells.iter().map(|(k, v)| (k.as_slice(), v)).collect();

    let mut t = Table::new(vec![
        "algorithm", "family", "n", "awake old", "awake new", "Δ%", "avg old", "avg new",
        "p95 old", "p95 new", "bits old", "bits new", "verdict",
    ]);
    let mut regressions = 0usize;
    let mut compared = 0usize;
    for (key, old_pts) in &old_cells {
        let Some(new_pts) = new_by_key.get(key.as_slice()) else {
            continue;
        };
        compared += 1;
        let (a_old, a_new) = (mean(old_pts, "awake_max"), mean(new_pts, "awake_max"));
        let (v_old, v_new) = (mean(old_pts, "awake_avg"), mean(new_pts, "awake_avg"));
        let (p_old, p_new) = (mean_dist(old_pts, "p95"), mean_dist(new_pts, "p95"));
        let (b_old, b_new) =
            (max(old_pts, "max_message_bits"), max(new_pts, "max_message_bits"));
        let delta = a_new - a_old;
        let pct = if a_old > 0.0 { 100.0 * delta / a_old } else { 0.0 };
        let awake_bad = pct > threshold
            || regressed(Some(v_old), Some(v_new), threshold)
            || regressed(p_old, p_new, threshold);
        let bits_bad = b_new > b_old + bits_slack;
        // Correctness dominates the numbers: a cell whose new runs fail
        // (sim_error zeroes the measurements) must not read as an
        // "improvement"; an errored baseline makes deltas meaningless.
        let verdict = if !all_correct(new_pts) {
            regressions += 1;
            "BROKEN"
        } else if !all_correct(old_pts) {
            "fixed (baseline was broken)"
        } else if awake_bad || bits_bad {
            regressions += 1;
            "REGRESSED"
        } else if delta < 0.0 || v_new < v_old || b_new < b_old {
            "improved"
        } else {
            "ok"
        };
        t.row(vec![
            key[0].clone(),
            key[1].clone(),
            key[2].clone(),
            format!("{a_old:.2}"),
            format!("{a_new:.2}"),
            format!("{pct:+.1}%"),
            format!("{v_old:.2}"),
            format!("{v_new:.2}"),
            opt_cell(p_old),
            opt_cell(p_new),
            format!("{b_old:.0}"),
            format!("{b_new:.0}"),
            verdict.to_string(),
        ]);
    }
    print!("{}", t.render());

    let old_keys: HashSet<&[String]> = old_cells.iter().map(|(k, _)| k.as_slice()).collect();
    let only_old: Vec<&Vec<String>> = old_cells
        .iter()
        .map(|(k, _)| k)
        .filter(|k| !new_by_key.contains_key(k.as_slice()))
        .collect();
    let only_new: Vec<&Vec<String>> = new_cells
        .iter()
        .map(|(k, _)| k)
        .filter(|k| !old_keys.contains(k.as_slice()))
        .collect();
    // Baseline cells the new run no longer covers are a failure, not a
    // footnote: a renamed key or dropped axis must not slip through as
    // "0 regressions over 0 cells".
    for k in &only_old {
        println!("MISSING: cell {} only in {old_path}", k.join("/"));
    }
    for k in &only_new {
        println!("cell {} only in {new_path} (new coverage, not a failure)", k.join("/"));
    }

    println!(
        "\ncompared {compared} cells: {regressions} regressions, {} baseline cells missing \
         (threshold {threshold}%, bits slack {bits_slack})",
        only_old.len()
    );
    regressions > 0 || !only_old.is_empty()
}

/// Sweep-document comparison: per `{family, n}` cell, the baseline
/// Pareto frontier must survive — every old frontier point must still
/// exist, still be non-dominated, and not regress beyond the threshold
/// on mean worst-case awake, node-averaged awake, or worst-node energy.
/// Returns whether anything regressed.
fn diff_sweep(
    old: &Artifact,
    new: &Artifact,
    old_path: &str,
    new_path: &str,
    threshold: f64,
    bits_slack: f64,
) -> bool {
    let old_cells = old.sweep_cells();
    let new_cells = new.sweep_cells();
    let mut t = Table::new(vec![
        "family", "n", "frontier point", "awake old", "awake new", "avg old", "avg new",
        "energy old", "energy new", "bits old", "bits new", "verdict",
    ]);
    let mut regressions = 0usize;
    let mut missing_cells = 0usize;
    let mut compared = 0usize;
    for oc in &old_cells {
        let Some(nc) = new_cells.iter().find(|c| (c.family == oc.family) && (c.n == oc.n))
        else {
            println!("MISSING: cell {}/{} only in {old_path}", oc.family, oc.n);
            missing_cells += 1;
            continue;
        };
        compared += 1;
        for key in &oc.frontier {
            // A frontier key with no matching entry is a malformed
            // baseline; flag it as a regression rather than panicking.
            let Some(old_e) = oc.find_entry(key) else {
                println!(
                    "MALFORMED: cell {}/{} frontier key {key} has no entry in {old_path}",
                    oc.family, oc.n
                );
                regressions += 1;
                continue;
            };
            let Some(new_e) = nc.find_entry(key) else {
                t.row(vec![
                    oc.family.clone(),
                    oc.n.clone(),
                    key.clone(),
                    opt_cell(entry_mean(old_e, "awake_max")),
                    "-".into(),
                    opt_cell(entry_mean(old_e, "awake_avg")),
                    "-".into(),
                    opt_cell(entry_mean(old_e, "energy_max_mj")),
                    "-".into(),
                    opt_cell(old_e.get("max_message_bits").and_then(Value::as_f64)),
                    "-".into(),
                    "MISSING".into(),
                ]);
                regressions += 1;
                continue;
            };
            let (a_old, a_new) =
                (entry_mean(old_e, "awake_max"), entry_mean(new_e, "awake_max"));
            let (v_old, v_new) =
                (entry_mean(old_e, "awake_avg"), entry_mean(new_e, "awake_avg"));
            let (e_old, e_new) =
                (entry_mean(old_e, "energy_max_mj"), entry_mean(new_e, "energy_max_mj"));
            let (b_old, b_new) = (
                old_e.get("max_message_bits").and_then(Value::as_f64).unwrap_or(0.0),
                new_e.get("max_message_bits").and_then(Value::as_f64).unwrap_or(0.0),
            );
            let dropped = !nc.frontier.contains(key);
            let broken = new_e.get("all_correct").and_then(Value::as_bool) != Some(true);
            let measure_bad = regressed(a_old, a_new, threshold)
                || regressed(v_old, v_new, threshold)
                || regressed(e_old, e_new, threshold)
                || b_new > b_old + bits_slack;
            let verdict = if broken {
                regressions += 1;
                "BROKEN"
            } else if dropped {
                regressions += 1;
                "DOMINATED (was frontier)"
            } else if measure_bad {
                regressions += 1;
                "REGRESSED"
            } else {
                "ok"
            };
            t.row(vec![
                oc.family.clone(),
                oc.n.clone(),
                key.clone(),
                opt_cell(a_old),
                opt_cell(a_new),
                opt_cell(v_old),
                opt_cell(v_new),
                opt_cell(e_old),
                opt_cell(e_new),
                format!("{b_old:.0}"),
                format!("{b_new:.0}"),
                verdict.to_string(),
            ]);
        }
        // New frontier points are coverage, not failures.
        for key in &nc.frontier {
            if !oc.frontier.contains(key) {
                println!(
                    "cell {}/{}: {key} newly on the frontier in {new_path} (not a failure)",
                    oc.family, oc.n
                );
            }
        }
    }
    // Cells only in the new file are coverage, not failures — reported
    // like the grid path does.
    for nc in &new_cells {
        if !old_cells.iter().any(|c| (c.family == nc.family) && (c.n == nc.n)) {
            println!(
                "cell {}/{} only in {new_path} (new coverage, not a failure)",
                nc.family, nc.n
            );
        }
    }
    println!("{}", t.render());
    println!(
        "compared {compared} cells: {regressions} frontier regressions, {missing_cells} \
         baseline cells missing (threshold {threshold}%, bits slack {bits_slack})"
    );
    regressions > 0 || missing_cells > 0
}

/// Fault-document comparison: per `(fault level, family, n)` cell, the
/// failure rate must not grow by more than `threshold` percentage
/// points, and the awake means must not regress beyond `threshold`
/// percent. Unlike [`diff_grid`], incorrect points are expected here
/// (that is what a robustness surface measures) — only their *growth*
/// fails the diff. Returns whether anything regressed.
fn diff_faults(
    old: &Artifact,
    new: &Artifact,
    old_path: &str,
    new_path: &str,
    threshold: f64,
) -> bool {
    let old_cells = old.point_cells();
    let new_cells = new.point_cells();
    let new_by_key: HashMap<&[String], &Vec<&Value>> =
        new_cells.iter().map(|(k, v)| (k.as_slice(), v)).collect();

    let mut t = Table::new(vec![
        "fault level", "family", "n", "rate old", "rate new", "Δpp", "awake old", "awake new",
        "crashed old", "crashed new", "verdict",
    ]);
    let mut regressions = 0usize;
    let mut compared = 0usize;
    for (key, old_pts) in &old_cells {
        let Some(new_pts) = new_by_key.get(key.as_slice()) else {
            continue;
        };
        compared += 1;
        let (r_old, r_new) = (failure_rate(old_pts), failure_rate(new_pts));
        let delta_pp = 100.0 * (r_new - r_old);
        let (a_old, a_new) = (mean(old_pts, "awake_max"), mean(new_pts, "awake_max"));
        let (c_old, c_new) = (mean(old_pts, "crashed"), mean(new_pts, "crashed"));
        let rate_bad = delta_pp > threshold;
        let awake_bad = regressed(Some(a_old), Some(a_new), threshold);
        let verdict = if rate_bad {
            regressions += 1;
            "REGRESSED (failure rate)"
        } else if awake_bad {
            regressions += 1;
            "REGRESSED"
        } else if r_new < r_old || a_new < a_old {
            "improved"
        } else {
            "ok"
        };
        t.row(vec![
            key[0].clone(),
            key[1].clone(),
            key[2].clone(),
            format!("{r_old:.3}"),
            format!("{r_new:.3}"),
            format!("{delta_pp:+.1}"),
            format!("{a_old:.2}"),
            format!("{a_new:.2}"),
            format!("{c_old:.2}"),
            format!("{c_new:.2}"),
            verdict.to_string(),
        ]);
    }
    print!("{}", t.render());

    let old_keys: HashSet<&[String]> = old_cells.iter().map(|(k, _)| k.as_slice()).collect();
    let only_old: Vec<&Vec<String>> = old_cells
        .iter()
        .map(|(k, _)| k)
        .filter(|k| !new_by_key.contains_key(k.as_slice()))
        .collect();
    for k in &only_old {
        println!("MISSING: cell {} only in {old_path}", k.join("/"));
    }
    for (k, _) in &new_cells {
        if !old_keys.contains(k.as_slice()) {
            println!("cell {} only in {new_path} (new coverage, not a failure)", k.join("/"));
        }
    }
    println!(
        "\ncompared {compared} fault cells: {regressions} robustness regressions, {} baseline \
         cells missing (threshold {threshold} pp / %)",
        only_old.len()
    );
    regressions > 0 || !only_old.is_empty()
}

/// Churn-document comparison: per `(algorithm, family, n, rate)` cell,
/// the mean woken ratio (incremental repair vs full recompute) and the
/// awake-per-delta cost must not regress beyond the threshold, and
/// every epoch must still verify. A baseline ratio of 0 (zero-rate
/// cells) must stay 0 — any wake-up on a delta-free stream is a
/// locality bug, not a tolerable drift. Returns whether anything
/// regressed.
fn diff_churn(
    old: &Artifact,
    new: &Artifact,
    old_path: &str,
    new_path: &str,
    threshold: f64,
) -> bool {
    let old_cells = old.point_cells();
    let new_cells = new.point_cells();
    let new_by_key: HashMap<&[String], &Vec<&Value>> =
        new_cells.iter().map(|(k, v)| (k.as_slice(), v)).collect();

    let mut t = Table::new(vec![
        "algorithm", "family", "n", "rate", "ratio old", "ratio new", "Δ%", "awake/Δ old",
        "awake/Δ new", "verdict",
    ]);
    let mut regressions = 0usize;
    let mut compared = 0usize;
    for (key, old_pts) in &old_cells {
        let Some(new_pts) = new_by_key.get(key.as_slice()) else {
            continue;
        };
        compared += 1;
        let (r_old, r_new) = (mean(old_pts, "woken_ratio"), mean(new_pts, "woken_ratio"));
        let (a_old, a_new) =
            (mean(old_pts, "awake_per_delta"), mean(new_pts, "awake_per_delta"));
        let pct = if r_old > 0.0 { 100.0 * (r_new - r_old) / r_old } else { 0.0 };
        let ratio_bad = regressed(Some(r_old), Some(r_new), threshold)
            || (r_old == 0.0 && r_new > 0.0);
        let awake_bad = regressed(Some(a_old), Some(a_new), threshold);
        let verdict = if !all_correct(new_pts) {
            regressions += 1;
            "BROKEN"
        } else if !all_correct(old_pts) {
            "fixed (baseline was broken)"
        } else if ratio_bad || awake_bad {
            regressions += 1;
            "REGRESSED"
        } else if r_new < r_old || a_new < a_old {
            "improved"
        } else {
            "ok"
        };
        t.row(vec![
            key[0].clone(),
            key[1].clone(),
            key[2].clone(),
            key[3].clone(),
            format!("{r_old:.4}"),
            format!("{r_new:.4}"),
            format!("{pct:+.1}%"),
            format!("{a_old:.2}"),
            format!("{a_new:.2}"),
            verdict.to_string(),
        ]);
    }
    print!("{}", t.render());

    let old_keys: HashSet<&[String]> = old_cells.iter().map(|(k, _)| k.as_slice()).collect();
    let only_old: Vec<&Vec<String>> = old_cells
        .iter()
        .map(|(k, _)| k)
        .filter(|k| !new_by_key.contains_key(k.as_slice()))
        .collect();
    for k in &only_old {
        println!("MISSING: cell {} only in {old_path}", k.join("/"));
    }
    for (k, _) in &new_cells {
        if !old_keys.contains(k.as_slice()) {
            println!("cell {} only in {new_path} (new coverage, not a failure)", k.join("/"));
        }
    }
    println!(
        "\ncompared {compared} churn cells: {regressions} locality regressions, {} baseline \
         cells missing (threshold {threshold}%)",
        only_old.len()
    );
    regressions > 0 || !only_old.is_empty()
}
