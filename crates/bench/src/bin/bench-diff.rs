//! `bench-diff` — compare two `BENCH_grid.json` files and flag
//! regressions.
//!
//! Prints, per `(algorithm, family, n)` cell present in both files, the
//! delta in mean worst-case awake rounds, in mean *node-averaged* awake
//! rounds, in the mean per-run p95 of the awake distribution, and in
//! CONGEST bits (largest message), then exits nonzero when the new file
//! regresses beyond the thresholds. This is the perf-trajectory gate:
//! commit a baseline grid, regenerate after a change, diff.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin bench-diff -- \
//!     OLD.json NEW.json [--threshold PCT] [--bits-slack N] [--exact]
//! ```
//!
//! * `--threshold PCT` — allowed relative increase per cell in each of
//!   the three awake measures (worst-case mean, node-averaged mean,
//!   p95 mean) before it counts as a regression (default 5).
//! * `--bits-slack N` — allowed absolute increase in max message bits
//!   per cell (default 0: any CONGEST growth is a regression).
//! * `--exact` — additionally require the two deterministic payloads to
//!   agree exactly: same spec echo, same cells, same points
//!   (`meta`/`timing` are ignored). This is how CI pins the default
//!   registry's byte-compatibility against the committed grid.
//!
//! Baseline cells absent from the new file always count as failures
//! (lost coverage must not pass as "0 regressions"); cells only in the
//! new file are reported but don't fail the run.
//!
//! Both `awake-mis/bench-grid/v2` documents and legacy `v1` documents
//! (which predate the per-point `awake_dist` object) are accepted; the
//! node-averaged and p95 columns show `-` where a side lacks the data,
//! and those comparisons are skipped for that cell.
//!
//! Exit codes: `0` no regression, `1` regression or `--exact` mismatch,
//! `2` usage or parse error.

use analysis::Table;
use bench::json::{self, Value};
use std::collections::{HashMap, HashSet};
use std::process::ExitCode;

fn fail_usage(msg: &str) -> ExitCode {
    eprintln!("bench-diff: {msg}");
    eprintln!(
        "usage: bench-diff OLD.json NEW.json [--threshold PCT] [--bits-slack N] [--exact]"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    let schema = doc.get("schema").and_then(Value::as_str);
    if !matches!(schema, Some("awake-mis/bench-grid/v2" | "awake-mis/bench-grid/v1")) {
        return Err(format!("{path}: not an awake-mis/bench-grid/v1|v2 document"));
    }
    Ok(doc)
}

/// Mean of a numeric field over a cell's points.
fn mean(points: &[&Value], field: &str) -> f64 {
    let sum: f64 = points.iter().filter_map(|p| p.get(field).and_then(Value::as_f64)).sum();
    sum / points.len().max(1) as f64
}

/// Mean of a field nested in each point's `awake_dist` object; `None`
/// when no point carries it (a legacy v1 document).
fn mean_dist(points: &[&Value], field: &str) -> Option<f64> {
    let values: Vec<f64> = points
        .iter()
        .filter_map(|p| p.get("awake_dist").and_then(|d| d.get(field)).and_then(Value::as_f64))
        .collect();
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Formats an optional measurement for the table.
fn opt_cell(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_string(), |x| format!("{x:.2}"))
}

/// Relative regression check on an optionally-present measure: only a
/// pair of present values can regress.
fn regressed(old: Option<f64>, new: Option<f64>, threshold: f64) -> bool {
    match (old, new) {
        (Some(o), Some(n)) if o > 0.0 => 100.0 * (n - o) / o > threshold,
        _ => false,
    }
}

/// Max of a numeric field over a cell's points.
fn max(points: &[&Value], field: &str) -> f64 {
    points
        .iter()
        .filter_map(|p| p.get(field).and_then(Value::as_f64))
        .fold(f64::NEG_INFINITY, f64::max)
}

/// True when every point in the cell verified correct and none carries
/// an engine error. Broken cells must never be scored by their
/// (zeroed) measurements.
fn all_correct(points: &[&Value]) -> bool {
    points.iter().all(|p| {
        p.get("correct").and_then(Value::as_bool) == Some(true) && p.get("sim_error").is_none()
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&str> = Vec::new();
    let mut threshold = 5.0f64;
    let mut bits_slack = 0.0f64;
    let mut exact = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" | "--bits-slack" => {
                let flag = args[i].clone();
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse::<f64>().ok()) else {
                    return fail_usage(&format!("{flag} takes a number"));
                };
                if flag == "--threshold" {
                    threshold = v;
                } else {
                    bits_slack = v;
                }
            }
            "--exact" => exact = true,
            other if other.starts_with("--") => {
                return fail_usage(&format!("unknown flag {other:?}"));
            }
            path => paths.push(path),
        }
        i += 1;
    }
    let [old_path, new_path] = paths[..] else {
        return fail_usage("expected exactly two files");
    };

    let (old_doc, new_doc) = match (load(old_path), load(new_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => return fail_usage(&e),
    };

    let old_points = old_doc.get("points").and_then(Value::as_arr).unwrap_or(&[]);
    let new_points = new_doc.get("points").and_then(Value::as_arr).unwrap_or(&[]);
    let key_fields = ["algorithm", "family", "n"];
    let old_cells = json::index_by(old_points, &key_fields);
    let new_cells: Vec<(Vec<String>, Vec<&Value>)> = json::index_by(new_points, &key_fields);
    let new_by_key: HashMap<&[String], &Vec<&Value>> =
        new_cells.iter().map(|(k, v)| (k.as_slice(), v)).collect();

    let mut t = Table::new(vec![
        "algorithm", "family", "n", "awake old", "awake new", "Δ%", "avg old", "avg new",
        "p95 old", "p95 new", "bits old", "bits new", "verdict",
    ]);
    let mut regressions = 0usize;
    let mut compared = 0usize;
    for (key, old_pts) in &old_cells {
        let Some(new_pts) = new_by_key.get(key.as_slice()) else {
            continue;
        };
        compared += 1;
        let (a_old, a_new) = (mean(old_pts, "awake_max"), mean(new_pts, "awake_max"));
        let (v_old, v_new) = (mean(old_pts, "awake_avg"), mean(new_pts, "awake_avg"));
        let (p_old, p_new) = (mean_dist(old_pts, "p95"), mean_dist(new_pts, "p95"));
        let (b_old, b_new) =
            (max(old_pts, "max_message_bits"), max(new_pts, "max_message_bits"));
        let delta = a_new - a_old;
        let pct = if a_old > 0.0 { 100.0 * delta / a_old } else { 0.0 };
        let awake_bad = pct > threshold
            || regressed(Some(v_old), Some(v_new), threshold)
            || regressed(p_old, p_new, threshold);
        let bits_bad = b_new > b_old + bits_slack;
        // Correctness dominates the numbers: a cell whose new runs fail
        // (sim_error zeroes the measurements) must not read as an
        // "improvement"; an errored baseline makes deltas meaningless.
        let verdict = if !all_correct(new_pts) {
            regressions += 1;
            "BROKEN"
        } else if !all_correct(old_pts) {
            "fixed (baseline was broken)"
        } else if awake_bad || bits_bad {
            regressions += 1;
            "REGRESSED"
        } else if delta < 0.0 || v_new < v_old || b_new < b_old {
            "improved"
        } else {
            "ok"
        };
        t.row(vec![
            key[0].clone(),
            key[1].clone(),
            key[2].clone(),
            format!("{a_old:.2}"),
            format!("{a_new:.2}"),
            format!("{pct:+.1}%"),
            format!("{v_old:.2}"),
            format!("{v_new:.2}"),
            opt_cell(p_old),
            opt_cell(p_new),
            format!("{b_old:.0}"),
            format!("{b_new:.0}"),
            verdict.to_string(),
        ]);
    }
    print!("{}", t.render());

    let old_keys: HashSet<&[String]> = old_cells.iter().map(|(k, _)| k.as_slice()).collect();
    let only_old: Vec<&Vec<String>> = old_cells
        .iter()
        .map(|(k, _)| k)
        .filter(|k| !new_by_key.contains_key(k.as_slice()))
        .collect();
    let only_new: Vec<&Vec<String>> = new_cells
        .iter()
        .map(|(k, _)| k)
        .filter(|k| !old_keys.contains(k.as_slice()))
        .collect();
    // Baseline cells the new run no longer covers are a failure, not a
    // footnote: a renamed key or dropped axis must not slip through as
    // "0 regressions over 0 cells".
    for k in &only_old {
        println!("MISSING: cell {} only in {old_path}", k.join("/"));
    }
    for k in &only_new {
        println!("cell {} only in {new_path} (new coverage, not a failure)", k.join("/"));
    }

    let mut failed = regressions > 0 || !only_old.is_empty();
    if exact {
        // The deterministic payload is everything but meta/timing.
        for section in ["spec", "cells", "points"] {
            if old_doc.get(section) != new_doc.get(section) {
                println!("--exact: section {section:?} differs");
                failed = true;
            }
        }
        if !failed {
            println!("--exact: payloads identical");
        }
    }

    println!(
        "\ncompared {compared} cells: {regressions} regressions, {} baseline cells missing \
         (threshold {threshold}%, bits slack {bits_slack})",
        only_old.len()
    );
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
