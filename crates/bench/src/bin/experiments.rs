//! Regenerates every quantitative claim of
//! *"Distributed MIS in O(log log n) Awake Complexity"* (PODC 2023) as a
//! table or series. See `DESIGN.md` §4 for the claim → experiment index
//! and `EXPERIMENTS.md` for recorded results.
//!
//! Usage: `cargo run -p bench --release --bin experiments [-- e1 e4 …]`
//! (no arguments = run everything).

use analysis::fit::{compare_growth_laws, growth_exponent};
use analysis::grid::{run_grid, GridSpec};
use analysis::shattering::{residual_profile, shatter_once};
use analysis::spec::{default_registry, RunnerHandle};
use analysis::sweep::{run_sweep, SweepSpec};
use analysis::{EnergyModel, Summary, Table};
use awake_mis_core::ldt_mis::{LdtMis, LdtMisParams};
use awake_mis_core::{AwakeMis, AwakeMisConfig, LdtStrategy, MisState};
use bench::Family;
use graphgen::{generators, Graph, NodeId};
use ldt::construct::{ConstructAwake, ConstructParams};
use ldt::construct_round::ConstructRound;
use ldt::ops::{LdtBroadcast, LdtRanking};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sleeping_congest::batch::run_batch;
use sleeping_congest::{SimConfig, Simulator, Standalone};

const SEEDS: [u64; 3] = [11, 22, 33];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty();
    let want = |id: &str| all || args.iter().any(|a| a.eq_ignore_ascii_case(id));

    println!("awake-mis experiment harness — reproduction of PODC 2023 \"Distributed MIS in O(log log n) Awake Complexity\"");
    println!("(absolute numbers are simulator-specific; the *shapes* — growth laws, orderings, crossovers — are the claims)\n");

    // E1/E2 share their sweep; run together when either is requested.
    let mut sweep: Vec<SweepRow> = Vec::new();
    if want("e1") || want("e2") {
        sweep = run_e1_e2_sweep();
    }
    if want("e1") {
        e1(&sweep);
    }
    if want("e2") {
        e2(&sweep);
    }
    if want("e3") {
        e3();
    }
    if want("e4") {
        e4();
    }
    if want("e5") {
        e5();
    }
    if want("e6") {
        e6();
    }
    if want("e7") {
        e7();
    }
    if want("e8") {
        e8();
    }
    if want("e9") {
        e9();
    }
    if want("e10") {
        e10();
    }
    if want("e11") {
        e11();
    }
    if want("e12") {
        e12();
    }
    if want("e13") {
        e13();
    }
    if want("e14") {
        e14();
    }
    if want("e15") {
        e15();
    }
    if want("e16") {
        e16();
    }
    if want("e17") {
        e17();
    }
}

fn header(id: &str, claim: &str) {
    println!("==================================================================");
    println!("{id} — {claim}");
    println!("==================================================================");
}

struct SweepRow {
    family: Family,
    n: usize,
    alg: RunnerHandle,
    awake_max: Summary,
    awake_avg: Summary,
    rounds: Summary,
    correct: bool,
}

/// E1/E2 sweep on `analysis::sweep` (the hand-rolled grid loops this
/// binary used to carry are gone): one `SweepSpec` per family set,
/// batched over all hardware threads with per-worker scratch reuse.
fn run_e1_e2_sweep() -> Vec<SweepRow> {
    let sweep_over = |families: Vec<Family>, sizes: Vec<usize>, seeds: Vec<u64>| {
        run_sweep(&SweepSpec {
            specs: vec!["awake".to_string(), "luby".to_string()],
            families,
            sizes,
            seeds,
            threads: 0,
            energy: EnergyModel::default(),
        })
        .expect("builtin specs sweep")
    };
    let main = sweep_over(
        vec![Family::Er, Family::Rgg, Family::Ba],
        vec![256, 1024, 4096, 16384, 65536],
        vec![11, 22, 33, 44, 55],
    );
    // The dense family where Luby's Θ(log n) bites at laptop scale.
    let dense = sweep_over(vec![Family::Dense], vec![1024, 4096, 16384], SEEDS.to_vec());
    main.cells
        .iter()
        .chain(dense.cells.iter())
        .flat_map(|c| {
            c.entries.iter().map(|e| SweepRow {
                family: c.family,
                n: c.n,
                alg: e.algorithm.clone(),
                awake_max: e.awake_max,
                awake_avg: e.awake_avg,
                rounds: e.rounds,
                correct: e.all_correct,
            })
        })
        .collect()
}

/// E1 — Theorem 13: awake complexity is O(log log n).
fn e1(sweep: &[SweepRow]) {
    header(
        "E1 (Theorem 13)",
        "Awake-MIS has O(log log n) awake complexity; Luby-style baselines grow with log n",
    );
    let mut t = Table::new(vec![
        "family", "n", "algorithm", "awake max (mean±std)", "awake avg", "log2 log2 n", "ok",
    ]);
    for p in sweep {
        t.row(vec![
            p.family.name().to_string(),
            p.n.to_string(),
            p.alg.name().to_string(),
            format!("{:.1} ± {:.1}", p.awake_max.mean, p.awake_max.std),
            format!("{:.1}", p.awake_avg.mean),
            format!("{:.2}", (p.n as f64).log2().log2()),
            if p.correct { "yes".into() } else { "NO".to_string() },
        ]);
    }
    print!("{}", t.render());

    // Growth-law classification on the ER family, on both the paper's
    // worst-case measure and the node average.
    for (metric, get) in [
        // The worst-case awake is dominated by the luckiest/unluckiest
        // shattered component: use the median over seeds for the fit.
        ("max(med)", Box::new(|p: &SweepRow| p.awake_max.median) as Box<dyn Fn(&SweepRow) -> f64>),
        ("avg", Box::new(|p: &SweepRow| p.awake_avg.mean)),
    ] {
        for alg in default_registry().resolve_list("awake,luby").expect("builtin specs") {
            let pts: Vec<(f64, f64)> = sweep
                .iter()
                .filter(|p| p.family == Family::Er && p.alg == alg)
                .map(|p| (p.n as f64, get(p)))
                .collect();
            let ns: Vec<f64> = pts.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
            let (ll, l) = compare_growth_laws(&ns, &ys);
            let verdict = if ll.a.abs() < 0.5 && l.a.abs() < 0.5 {
                "≈ flat at this scale"
            } else if ll.r2 >= l.r2 {
                "better explained by log log n"
            } else {
                "better explained by log n"
            };
            println!(
                "ER awake-{metric} growth, {:<16}: a·loglog₂n+b → a={:+.2} R²={:.3} | a·log₂n+b → a={:+.2} R²={:.3} → {verdict}",
                alg.name(),
                ll.a,
                ll.r2,
                l.a,
                l.r2,
            );
        }
    }
    println!();
}

/// E2 — Theorem 13: round complexity is polylogarithmic.
fn e2(sweep: &[SweepRow]) {
    header(
        "E2 (Theorem 13)",
        "Awake-MIS round complexity is polylog(n) — enormous vs awake, but n^o(1)",
    );
    let mut t = Table::new(vec!["family", "n", "rounds (mean)", "rounds/log2(n)^4", "awake max"]);
    for p in sweep.iter().filter(|p| p.alg.key() == "awake") {
        let l = (p.n as f64).log2();
        t.row(vec![
            p.family.name().to_string(),
            p.n.to_string(),
            format!("{:.3e}", p.rounds.mean),
            format!("{:.0}", p.rounds.mean / l.powi(4)),
            format!("{:.0}", p.awake_max.mean),
        ]);
    }
    print!("{}", t.render());
    let pts: Vec<(f64, f64)> = sweep
        .iter()
        .filter(|p| p.family == Family::Er && p.alg.key() == "awake")
        .map(|p| ((p.n as f64).log2(), p.rounds.mean))
        .collect();
    let e = growth_exponent(
        &pts.iter().map(|p| p.0).collect::<Vec<_>>(),
        &pts.iter().map(|p| p.1).collect::<Vec<_>>(),
    );
    println!("ER rounds ≈ c·(log₂ n)^e with e = {e:.2} (paper bound: e ≤ 7 — measured well inside)");
    let ns: Vec<f64> = pts.iter().map(|p| 2f64.powf(p.0)).collect();
    let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
    println!("rounds vs n exponent: {:.3} (≈ 0 ⇒ n^o(1), i.e. polylog)", growth_exponent(&ns, &ys));
    println!();
}

/// E3 — Corollary 14 variant. Rides the registry + grid harness: the
/// round-efficient variant is just the spec `awake?round_efficient=true`.
fn e3() {
    header(
        "E3 (Corollary 14)",
        "Round-efficient variant: awake complexity gains a log* factor (higher than Theorem 13's)",
    );
    let grid = run_grid(&GridSpec {
        algorithms: default_registry()
            .resolve_list("awake,awake?round_efficient=true")
            .expect("builtin specs"),
        families: vec![Family::Er],
        sizes: vec![1024, 4096, 16384],
        seeds: SEEDS.to_vec(),
        tiers: Vec::new(),
        threads: 0,
    });
    let mut t = Table::new(vec![
        "n",
        "T13 awake",
        "C14 awake",
        "T13 rounds",
        "C14 rounds",
        "ok",
    ]);
    // Cells are algorithm-major: first all Theorem-13 sizes, then all
    // Corollary-14 sizes.
    let per_alg = grid.spec.sizes.len();
    for (i, &n) in grid.spec.sizes.iter().enumerate() {
        let t13 = &grid.cells[i];
        let c14 = &grid.cells[per_alg + i];
        t.row(vec![
            n.to_string(),
            format!("{:.0}", t13.awake_max.mean),
            format!("{:.0}", c14.awake_max.mean),
            format!("{:.2e}", t13.rounds.mean),
            format!("{:.2e}", c14.rounds.mean),
            if t13.all_correct && c14.all_correct { "yes".into() } else { "NO".to_string() },
        ]);
    }
    print!("{}", t.render());
    println!("note: with our randomized LDT-Construct-Awake substitute (DESIGN.md §3.5), the Theorem 13");
    println!("pipeline is already round-cheap, so Corollary 14's round advantage does not materialize here;");
    println!("its awake cost is correctly higher (the deterministic construction pays the log* factor).\n");
}

/// E4 — Lemma 2: residual sparsity of randomized greedy. Rides the
/// harness axes: instances come from the named [`Family`] generators
/// (the `Dense` family is ER at average degree √n = 64 for n = 4096 —
/// the old hand-rolled fixture — and `Er` is the d = 8 workhorse), the
/// seed axis fans out via `sleeping_congest::batch::run_batch` exactly
/// like a grid, and cells aggregate with [`Summary`]. There is no MIS
/// *runner* here — the measured object is a structural lemma, not an
/// algorithm — so the registry axis is empty and the experiment rides
/// the family × seed plane of the harness instead of `RunnerHandle`s.
fn e4() {
    header(
        "E4 (Lemma 2)",
        "After t of t'=2t nodes, residual max degree ≤ (t'/t)·ln(n/ε) — measured vs bound, seed-aggregated",
    );
    let n = 4096;
    let ts: Vec<usize> = (5..=11).map(|e| 1 << e).collect();
    let families = [Family::Dense, Family::Er];
    // One job per {family × seed}, batched like grid points; each job
    // returns the whole residual profile of its instance.
    let jobs: Vec<(Family, u64)> =
        families.iter().flat_map(|&f| SEEDS.iter().map(move |&s| (f, s))).collect();
    let profiles = run_batch(&jobs, 0, |_| (), |(), _i, &(family, seed)| {
        let g = family.generate(n, seed);
        let mut order: Vec<NodeId> = (0..g.n() as NodeId).collect();
        order.shuffle(&mut SmallRng::seed_from_u64(seed ^ 0x5eed));
        let ratio2 = residual_profile(&g, &order, &ts, 2.0);
        let horizon: Vec<usize> = ts
            .iter()
            .map(|&tt| awake_mis_core::greedy::residual_degree(&g, &order, tt, g.n()).1)
            .collect();
        (ratio2, horizon)
    });

    let per_family = SEEDS.len();
    let mut t = Table::new(vec!["family", "t", "t'", "residual max deg (mean±std)", "Lemma 2 bound"]);
    for (f_idx, family) in families.iter().enumerate() {
        let chunk = &profiles[f_idx * per_family..(f_idx + 1) * per_family];
        for (row, _) in chunk[0].0.iter().enumerate() {
            let degs: Vec<u64> = chunk.iter().map(|(r2, _)| r2[row].max_degree as u64).collect();
            let s = Summary::of_u64(&degs);
            let p = &chunk[0].0[row];
            t.row(vec![
                family.name().to_string(),
                p.t.to_string(),
                p.t_prime.to_string(),
                format!("{:.1} ± {:.1}", s.mean, s.std),
                format!("{:.1}", p.bound),
            ]);
        }
    }
    print!("{}", t.render());
    println!("(fixed ratio t'/t = 2: both measured degree and bound stay flat, measured ≪ bound)\n");

    // Fixed horizon t' = n on the dense family: the 1/t decay becomes
    // visible.
    let mut t2 =
        Table::new(vec!["family", "t (prefix)", "t' = n", "residual max deg (mean±std)", "Lemma 2 bound"]);
    let dense = &profiles[..per_family];
    for (row, &tt) in ts.iter().enumerate() {
        let degs: Vec<u64> = dense.iter().map(|(_, h)| h[row] as u64).collect();
        let s = Summary::of_u64(&degs);
        t2.row(vec![
            Family::Dense.name().to_string(),
            tt.to_string(),
            n.to_string(),
            format!("{:.1} ± {:.1}", s.mean, s.std),
            format!("{:.1}", (n as f64 / tt as f64) * ((n * n) as f64).ln()),
        ]);
    }
    print!("{}", t2.render());
    println!("(fixed horizon t' = n: measured degree decays ~1/t, tracking the bound's shape)\n");
}

/// E5 — Lemma 3: shattering under random 1/(2Δ) partition. Like E4 it
/// rides the harness plane — `Family`-generated instances, a
/// `{factor × sample}` job grid fanned via
/// `sleeping_congest::batch::run_batch`, [`Summary`] aggregation per
/// cell — with an empty algorithm axis (the lemma partitions a graph,
/// it doesn't run a protocol).
fn e5() {
    header(
        "E5 (Lemma 3)",
        "Random partition into 2Δ classes shatters bounded-degree graphs into ≤ 6·ln(n/ε) components",
    );
    let n = 4096;
    // A Family instance with moderate degree: ER(d=8) at seed 4.
    let g = Family::Er.generate(n, 4);
    let delta = g.max_degree();
    let factors = [0.5f64, 1.0, 2.0, 4.0];
    const SAMPLES: u64 = 5;
    let jobs: Vec<(f64, u64)> =
        factors.iter().flat_map(|&f| (0..SAMPLES).map(move |s| (f, s))).collect();
    let samples = run_batch(&jobs, 0, |_| (), |(), _i, &(factor, sample)| {
        let parts = ((delta as f64 * factor) as usize).max(1);
        let mut rng = SmallRng::seed_from_u64(0xA5 ^ (sample.wrapping_mul(0x9E37_79B9)) ^ (factor.to_bits()));
        shatter_once(&g, parts, &mut rng)
    });

    let mut t = Table::new(vec![
        "parts", "parts/Δ", "max component (mean±std)", "worst sample", "Lemma 3 bound",
    ]);
    for (f_idx, factor) in factors.iter().enumerate() {
        let chunk = &samples[f_idx * SAMPLES as usize..(f_idx + 1) * SAMPLES as usize];
        let comps: Vec<u64> = chunk.iter().map(|p| p.max_component as u64).collect();
        let s = Summary::of_u64(&comps);
        t.row(vec![
            chunk[0].parts.to_string(),
            format!("{factor:.1}"),
            format!("{:.1} ± {:.1}", s.mean, s.std),
            format!("{:.0}", s.max),
            format!("{:.0}", chunk[0].bound),
        ]);
    }
    print!("{}", t.render());
    println!("(Δ = {delta}; at 2Δ parts components are tiny; below Δ the components blow up — the 2Δ threshold matters)\n");
}

/// E6 — Lemma 10: VT-MIS awake O(log I) vs naive Θ(I). Rides the
/// registry + grid harness: one `GridSpec` over the `Cycle` family axis
/// (the instances and seeds are identical to the old per-size loop).
fn e6() {
    header(
        "E6 (Lemma 10)",
        "VT-MIS: O(log I) awake / Θ(I) rounds — exponentially less awake than the naive greedy",
    );
    let mut t = Table::new(vec![
        "n = I",
        "VT-MIS awake",
        "⌈log2 I⌉+1",
        "naive awake",
        "VT-MIS rounds",
        "lfmis?",
    ]);
    let grid = run_grid(&GridSpec {
        algorithms: default_registry().resolve_list("vt,naive").expect("builtin specs"),
        families: vec![Family::Cycle],
        sizes: vec![64, 256, 1024, 4096],
        seeds: vec![7],
        tiers: Vec::new(),
        threads: 0,
    });
    // Points are algorithm-major: all VT-MIS sizes, then all naive sizes.
    let per_alg = grid.spec.sizes.len();
    for (i, &n) in grid.spec.sizes.iter().enumerate() {
        let vt = &grid.points[i];
        let nv = &grid.points[per_alg + i];
        t.row(vec![
            n.to_string(),
            vt.awake_max.to_string(),
            (vtree::depth(n as u64) + 1).to_string(),
            nv.awake_max.to_string(),
            vt.rounds.to_string(),
            (vt.correct && nv.correct).to_string(),
        ]);
    }
    print!("{}", t.render());
    println!();
}

/// E7 — Lemma 11: LDT-MIS awake complexity decomposition. Rides the
/// registry + grid harness on the `Cycle` family axis.
fn e7() {
    header(
        "E7 (Lemma 11)",
        "LDT-MIS awake = O(log n' + n'·log n'/log I): the broadcast term dominates on big components",
    );
    let mut t = Table::new(vec![
        "n' (one component)",
        "awake max",
        "c1·log n' term",
        "c2·n'·log n'/log I term",
        "ok",
    ]);
    let grid = run_grid(&GridSpec {
        algorithms: default_registry().resolve_list("ldt").expect("builtin specs"),
        families: vec![Family::Cycle],
        sizes: vec![16, 64, 256, 1024],
        seeds: vec![9],
        tiers: Vec::new(),
        threads: 0,
    });
    for (p, &n) in grid.points.iter().zip(&grid.spec.sizes) {
        let log2n = (n as f64).log2();
        let log2i = 3.0 * (n as f64).log2();
        t.row(vec![
            n.to_string(),
            p.awake_max.to_string(),
            format!("{:.0}", 11.0 * log2n),
            format!("{:.0}", 2.0 * (n as f64) * log2n / log2i),
            p.correct.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!("(inside Awake-MIS components have n' = O(log n), so both terms are O(log log n))\n");
}

/// E8 — Lemmas 6/7/15: LDT construction complexities. Rides the batch
/// harness like E4: the raw construction protocols compute a labeling,
/// not an MIS, so there is no registry runner for them — instead the
/// `{n × graph × strategy × seed}` jobs fan out via
/// `sleeping_congest::batch::run_batch` and each cell aggregates with
/// [`Summary`], replacing the old hand-rolled serial triple loop.
fn e8() {
    header(
        "E8 (Lemmas 6/7/15)",
        "LDT construction: awake strategy O(log n') awake; round strategy O(log n'·log* I) awake, deterministic",
    );
    let id_upper = |n: usize| ((n.max(4) as u64).pow(3)).max(1 << 24);
    let sizes = [64usize, 256, 1024];
    let cells: Vec<(usize, &str, &str)> = sizes
        .iter()
        .flat_map(|&n| {
            ["path", "cycle"]
                .into_iter()
                .flat_map(move |gname| [("awake"), ("round")].map(move |strat| (n, gname, strat)))
        })
        .collect();
    let jobs: Vec<(usize, &str, &str, u64)> = cells
        .iter()
        .flat_map(|&(n, gname, strat)| SEEDS.iter().map(move |&s| (n, gname, strat, s)))
        .collect();
    let results = run_batch(&jobs, 0, |_| (), |(), _i, &(n, gname, strat, seed)| {
        let g = if gname == "path" { generators::path(n) } else { generators::cycle(n) };
        // The seed drives both the id draw and the run randomness, so
        // each job is reproducible from its coordinates alone — the
        // same contract as a grid point.
        let ids = {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut seen = std::collections::HashSet::new();
            let mut ids = Vec::new();
            while ids.len() < n {
                let id = rng.gen_range(1..=id_upper(n));
                if seen.insert(id) {
                    ids.push(id);
                }
            }
            ids
        };
        let params =
            |v: usize| ConstructParams { my_id: ids[v], id_upper: id_upper(n), k: n as u32 };
        if strat == "awake" {
            let nodes = (0..n).map(|v| Standalone::new(ConstructAwake::new(params(v)))).collect();
            let rep = Simulator::new(g, nodes, SimConfig::seeded(seed ^ 1)).run().unwrap();
            let ph = rep.outputs.iter().map(|o| o.phases_used).max().unwrap() as u64;
            (rep.metrics.awake_complexity(), ph, rep.metrics.round_complexity())
        } else {
            let nodes = (0..n).map(|v| Standalone::new(ConstructRound::new(params(v)))).collect();
            let rep = Simulator::new(g, nodes, SimConfig::seeded(seed ^ 1)).run().unwrap();
            let ph = rep.outputs.iter().map(|o| o.phases_used).max().unwrap() as u64;
            (rep.metrics.awake_complexity(), ph, rep.metrics.round_complexity())
        }
    });

    let mut t = Table::new(vec![
        "graph", "n", "strategy", "awake max (mean±std)", "phases used", "rounds (mean)",
    ]);
    let runs = SEEDS.len();
    for (c_idx, &(n, gname, strat)) in cells.iter().enumerate() {
        let chunk = &results[c_idx * runs..(c_idx + 1) * runs];
        let awake = Summary::of_u64(&chunk.iter().map(|r| r.0).collect::<Vec<_>>());
        let phases = Summary::of_u64(&chunk.iter().map(|r| r.1).collect::<Vec<_>>());
        let rounds = Summary::of_u64(&chunk.iter().map(|r| r.2).collect::<Vec<_>>());
        t.row(vec![
            gname.to_string(),
            n.to_string(),
            strat.to_string(),
            format!("{:.1} ± {:.1}", awake.mean, awake.std),
            format!("{:.1}", phases.mean),
            format!("{:.0}", rounds.mean),
        ]);
    }
    print!("{}", t.render());
    println!("(round strategy: no run randomness — seed variance comes only from the drawn id sets)\n");
}

/// E9 — Observations 4/5: communication-set sizes. Rides the batch
/// harness: one job per interval length `i`, fanned across all hardware
/// threads via `run_batch` (the million-key scans dominate), with the
/// per-key set sizes aggregated by [`Summary`] instead of ad-hoc
/// max/mean arithmetic.
fn e9() {
    header(
        "E9 (Observations 4/5)",
        "Communication sets: |S_k([1,i])| ≤ ⌈log2 i⌉+1; common-round property (property-tested exhaustively)",
    );
    let is = [10u64, 100, 1000, 10_000, 100_000, 1_000_000];
    let summaries = run_batch(&is, 0, |_| (), |(), _j, &i| {
        let ks: Vec<u64> = if i <= 10_000 {
            (1..=i).collect()
        } else {
            let mut rng = SmallRng::seed_from_u64(8);
            (0..10_000).map(|_| rng.gen_range(1..=i)).collect()
        };
        let sizes: Vec<u64> = ks.iter().map(|&k| vtree::wake_rounds(k, i).len() as u64).collect();
        Summary::of_u64(&sizes)
    });
    let mut t = Table::new(vec!["i", "max_k |S_k ∩ [1,i]|", "⌈log2 i⌉+1", "avg |S_k|"]);
    for (&i, s) in is.iter().zip(&summaries) {
        t.row(vec![
            i.to_string(),
            format!("{:.0}", s.max),
            (vtree::depth(i) + 1).to_string(),
            format!("{:.2}", s.mean),
        ]);
    }
    print!("{}", t.render());
    println!();
}

/// E10 — the headline comparison table. Rides the registry + grid
/// harness: one `GridSpec` over every registered builtin (including the
/// node-averaged `na`/`gp-avg` entrants), all hardware threads, instead
/// of a hand-rolled double loop of serial runs.
fn e10() {
    header(
        "E10 (headline, §1.4)",
        "All algorithms on a fixed suite (n = 2048): Awake-MIS wins worst-case awake; NA-MIS wins the node average",
    );
    let grid = run_grid(&GridSpec {
        algorithms: default_registry()
            .resolve_list("awake,awake-round,ldt,vt,naive,luby,na,gp-avg")
            .expect("builtin specs"),
        families: vec![Family::Er, Family::Rgg, Family::Ba, Family::Grid, Family::Tree],
        sizes: vec![2048],
        seeds: vec![42],
        tiers: Vec::new(),
        threads: 0,
    });
    let mut t = Table::new(vec![
        "family", "algorithm", "awake max", "awake avg", "rounds", "messages", "MIS size", "ok",
    ]);
    // Present family-major (paper layout); points are algorithm-major.
    let n_fam = grid.spec.families.len();
    for (f_idx, family) in grid.spec.families.iter().enumerate() {
        for (a_idx, alg) in grid.spec.algorithms.iter().enumerate() {
            let p = &grid.points[a_idx * n_fam + f_idx];
            t.row(vec![
                family.name().to_string(),
                alg.name().to_string(),
                p.awake_max.to_string(),
                format!("{:.1}", p.awake_avg),
                p.rounds.to_string(),
                p.messages.to_string(),
                p.mis_size.to_string(),
                p.correct.to_string(),
            ]);
        }
    }
    print!("{}", t.render());
    println!();
}

/// E11 — ablation: virtual-tree comm schedule vs always-awake comm.
/// Rides `analysis::sweep`: the ablation is just the spec point
/// `awake?always_awake_comm=true` next to the default `awake`, one cell
/// per size.
fn e11() {
    header(
        "E11 (ablation)",
        "Without the virtual-tree schedule, nodes attend all P = O(log² n) communication rounds",
    );
    let mut t = Table::new(vec![
        "n", "awake (vtree)", "awake (always)", "factor", "P (phases)",
    ]);
    let sweep = run_sweep(&SweepSpec {
        specs: vec!["awake".to_string(), "awake?always_awake_comm=true".to_string()],
        families: vec![Family::Er],
        sizes: vec![1024, 4096, 16384],
        seeds: vec![3],
        threads: 0,
        energy: EnergyModel::default(),
    })
    .expect("builtin specs sweep");
    for cell in &sweep.cells {
        let (base, abl) = (&cell.entries[0], &cell.entries[1]);
        assert_eq!(abl.algorithm.key(), "awake?always_awake_comm=true");
        let params = awake_mis_core::derive_params(cell.n, &AwakeMisConfig::default());
        t.row(vec![
            cell.n.to_string(),
            format!("{:.0}", base.awake_max.mean),
            format!("{:.0}", abl.awake_max.mean),
            format!("{:.1}x", abl.awake_max.mean / base.awake_max.mean),
            params.phases.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!();
}

/// E12 — ablation: geometric vs uniform batch distribution. Rides
/// `sleeping_congest::batch::run_batch` like E4/E8: the
/// `{n × batching}` cells fan their seed axis across OS threads, each
/// job returning its component-size census, and the cell folds the
/// per-seed tuples back down — the same table as the old hand-rolled
/// serial triple loop, minus the serialism.
fn e12() {
    header(
        "E12 (ablation, DESIGN.md §3.4)",
        "Geometric collections keep shattered components small; uniform collections inflate early components",
    );
    let mut t = Table::new(vec![
        "n", "batching", "max component", "mean component", "failures", "awake max",
    ]);
    let cells: Vec<(usize, bool)> =
        [4096usize, 16384].iter().flat_map(|&n| [false, true].map(|u| (n, u))).collect();
    let jobs: Vec<(usize, bool, u64)> = cells
        .iter()
        .flat_map(|&(n, uniform)| SEEDS.iter().map(move |&s| (n, uniform, s)))
        .collect();
    // Per seed: (max component, Σ component sizes, component count,
    // failures, awake complexity).
    let runs = run_batch(&jobs, 0, |_| (), |(), _i, &(n, uniform, seed)| {
        let g = Family::Er.generate(n, seed);
        let cfg = AwakeMisConfig { uniform_batches: uniform, ..Default::default() };
        let nodes = (0..n).map(|_| AwakeMis::new(cfg)).collect();
        let rep = Simulator::new(g, nodes, SimConfig::seeded(seed)).run().unwrap();
        let (mut worst, mut sum, mut cnt, mut fails) = (0u64, 0f64, 0usize, 0usize);
        for o in &rep.outputs {
            if o.comp_size > 0 {
                worst = worst.max(o.comp_size);
                sum += o.comp_size as f64;
                cnt += 1;
            }
            fails += o.failed as usize;
        }
        (worst, sum, cnt, fails, rep.metrics.awake_complexity())
    });
    for (ci, &(n, uniform)) in cells.iter().enumerate() {
        let chunk = &runs[ci * SEEDS.len()..(ci + 1) * SEEDS.len()];
        let worst = chunk.iter().map(|r| r.0).max().unwrap_or(0);
        let sum: f64 = chunk.iter().map(|r| r.1).sum();
        let cnt: usize = chunk.iter().map(|r| r.2).sum();
        let fails: usize = chunk.iter().map(|r| r.3).sum();
        let awake = chunk.iter().map(|r| r.4).max().unwrap_or(0);
        t.row(vec![
            n.to_string(),
            if uniform { "uniform".into() } else { "geometric".to_string() },
            worst.to_string(),
            format!("{:.2}", sum / cnt.max(1) as f64),
            fails.to_string(),
            awake.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!();
}

/// E13 — CONGEST compliance: message sizes. Rides the registry + grid
/// harness (one cell per builtin at a single `{family, n, seed}`).
fn e13() {
    header(
        "E13 (CONGEST, §1.3)",
        "Every message fits in O(log n) bits (IDs live in [1, N³])",
    );
    let n = 4096;
    let grid = run_grid(&GridSpec {
        algorithms: default_registry()
            .resolve_list("awake,awake-round,ldt,vt,naive,luby,na,gp-avg")
            .expect("builtin specs"),
        families: vec![Family::Er],
        sizes: vec![n],
        seeds: vec![5],
        tiers: Vec::new(),
        threads: 0,
    });
    let mut t = Table::new(vec!["algorithm", "max message bits", "2-id budget"]);
    // Messages carry at most two IDs from [1, max(N^3, 2^24)] plus tags.
    let id_bits = (3 * ((n as f64).log2().ceil() as usize)).max(24);
    let budget = 2 * id_bits + 16;
    for cell in &grid.cells {
        t.row(vec![
            cell.algorithm.name().to_string(),
            cell.max_message_bits.to_string(),
            budget.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!();
}

/// E14 — energy motivation (§1.2). Harness-driven like E4/E8/E12: the
/// seed axis fans across OS threads via
/// `sleeping_congest::batch::run_batch` (each seed draws its own sensor
/// deployment) and per-algorithm cells aggregate with [`Summary`]
/// instead of quoting a single-seed run.
fn e14() {
    header(
        "E14 (motivation, §1.2)",
        "Sensor-network energy: awake rounds cost 60 mW, deep sleep 5 µW — awake complexity is the energy bill",
    );
    let n = 4096usize;
    let algs = default_registry().resolve_list("awake,luby").expect("builtin specs");
    let model = EnergyModel::default();
    let jobs: Vec<(usize, u64)> = (0..algs.len())
        .flat_map(|a| SEEDS.iter().map(move |&s| (a, s)))
        .collect();
    // Per run: (awake max, radio-on mJ for the worst node, mJ including
    // the deep-sleep draw, latency in rounds).
    let runs = run_batch(&jobs, 0, |_| (), |(), _i, &(a, seed)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let r_geo = (10.0 / (std::f64::consts::PI * n as f64)).sqrt();
        let g = generators::random_geometric(n, r_geo, &mut rng);
        let r = algs[a].run(&g, seed).unwrap();
        (
            r.awake_max,
            model.awake_energy_mj(r.awake_max),
            model.max_node_energy_mj(&r.metrics.awake_rounds, &r.metrics.terminated_at),
            r.rounds,
        )
    });
    let mut t = Table::new(vec![
        "algorithm",
        "awake max (mean±std)",
        "radio-on energy, worst node (mJ)",
        "incl. 5 µW sleep draw (mJ)",
        "latency (rounds, mean)",
    ]);
    for (a, alg) in algs.iter().enumerate() {
        let chunk = &runs[a * SEEDS.len()..(a + 1) * SEEDS.len()];
        let awake = Summary::of_u64(&chunk.iter().map(|r| r.0).collect::<Vec<_>>());
        let radio = Summary::of(&chunk.iter().map(|r| r.1).collect::<Vec<_>>());
        let sleep = Summary::of(&chunk.iter().map(|r| r.2).collect::<Vec<_>>());
        let rounds = Summary::of_u64(&chunk.iter().map(|r| r.3).collect::<Vec<_>>());
        t.row(vec![
            alg.name().to_string(),
            format!("{:.1} ± {:.1}", awake.mean, awake.std),
            format!("{:.3} ± {:.3}", radio.mean, radio.std),
            format!("{:.3} ± {:.3}", sleep.mean, sleep.std),
            format!("{:.0}", rounds.mean),
        ]);
    }
    print!("{}", t.render());
    println!("(the paper's metric is the radio-on column — awake rounds ≈ energy; the sleep-draw");
    println!("column shows why round complexity still matters when deep sleep isn't free)\n");
}

/// E15 — Lemma 9/16: LDT broadcast & ranking in O(1) awake. Each
/// `{n' × op}` cell fans its seed axis (fresh IDs + fresh LDT build per
/// seed) across OS threads via `sleeping_congest::batch::run_batch`
/// and aggregates with [`Summary`] — the O(1) claim should hold with
/// zero variance.
fn e15() {
    header(
        "E15 (Lemma 9/16)",
        "Over a built LDT, broadcast and ranking cost O(1) awake rounds and O(n') rounds",
    );
    let cells: Vec<(usize, &'static str)> = [64usize, 512, 4096]
        .iter()
        .flat_map(|&n| ["broadcast", "ranking"].map(|op| (n, op)))
        .collect();
    let jobs: Vec<(usize, &'static str, u64)> = cells
        .iter()
        .flat_map(|&(n, op)| SEEDS.iter().map(move |&s| (n, op, s)))
        .collect();
    // Per seed: (awake complexity, round complexity) of the op over an
    // LDT freshly constructed from that seed's ID assignment.
    let runs = run_batch(&jobs, 0, |_| (), |(), _i, &(n, op, seed)| {
        let g = generators::cycle(n);
        let id_upper = ((n as u64).pow(3)).max(1 << 24);
        let ids: Vec<u64> = {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut seen = std::collections::HashSet::new();
            let mut ids = Vec::new();
            while ids.len() < n {
                let id = rng.gen_range(1..=id_upper);
                if seen.insert(id) {
                    ids.push(id);
                }
            }
            ids
        };
        let nodes = (0..n)
            .map(|v| {
                Standalone::new(ConstructAwake::new(ConstructParams {
                    my_id: ids[v],
                    id_upper,
                    k: n as u32,
                }))
            })
            .collect();
        let built = Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run().unwrap();
        if op == "broadcast" {
            let nodes = (0..n)
                .map(|v| {
                    let tr = built.outputs[v].tree.clone();
                    let payload = tr.is_root().then_some(7u64);
                    Standalone::new(LdtBroadcast::new(tr, payload))
                })
                .collect();
            let rep = Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run().unwrap();
            (rep.metrics.awake_complexity(), rep.metrics.round_complexity())
        } else {
            let nodes = (0..n)
                .map(|v| {
                    Standalone::new(LdtRanking::new(n as u32, built.outputs[v].tree.clone()))
                })
                .collect();
            let rep = Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run().unwrap();
            (rep.metrics.awake_complexity(), rep.metrics.round_complexity())
        }
    });
    let mut t = Table::new(vec!["n'", "op", "awake max (mean±std)", "rounds (mean±std)"]);
    for (ci, &(n, op)) in cells.iter().enumerate() {
        let chunk = &runs[ci * SEEDS.len()..(ci + 1) * SEEDS.len()];
        let awake = Summary::of_u64(&chunk.iter().map(|r| r.0).collect::<Vec<_>>());
        let rounds = Summary::of_u64(&chunk.iter().map(|r| r.1).collect::<Vec<_>>());
        t.row(vec![
            n.to_string(),
            op.to_string(),
            format!("{:.1} ± {:.1}", awake.mean, awake.std),
            format!("{:.1} ± {:.1}", rounds.mean, rounds.std),
        ]);
    }
    print!("{}", t.render());
    println!();
}

/// E16 — extension (paper conclusion): maximal matching in the sleeping
/// model via Awake-MIS on the line graph. Seeds fan across OS threads
/// via `sleeping_congest::batch::run_batch` (each seed draws its own ER
/// instance) and the per-`n` cells aggregate with [`Summary`]; a cell
/// is maximal only if every seed's matching verified.
fn e16() {
    header(
        "E16 (extension, §7)",
        "Maximal matching = MIS(L(G)): O(log log m) awake per edge process",
    );
    let sizes = [256usize, 1024, 4096];
    let jobs: Vec<(usize, u64)> =
        sizes.iter().flat_map(|&n| SEEDS.iter().map(move |&s| (n, s))).collect();
    // Per seed: (|L(G)| processes, awake max, awake avg, matched edges,
    // verified maximal).
    let runs = run_batch(&jobs, 0, |_| (), |(), _i, &(n, seed)| {
        let g = Family::Er.generate(n, seed);
        let r = awake_mis_core::maximal_matching(&g, AwakeMisConfig::default(), seed).unwrap();
        (
            g.m() as u64,
            r.metrics.awake_complexity(),
            r.metrics.awake_average(),
            r.matching.len() as u64,
            r.failures == 0 && awake_mis_core::is_maximal_matching(&g, &r.matching),
        )
    });
    let mut t = Table::new(vec![
        "n", "m = |L(G)| processes", "awake max (mean±std)", "awake avg", "matched edges",
        "maximal?",
    ]);
    for (ci, &n) in sizes.iter().enumerate() {
        let chunk = &runs[ci * SEEDS.len()..(ci + 1) * SEEDS.len()];
        let m = Summary::of_u64(&chunk.iter().map(|r| r.0).collect::<Vec<_>>());
        let awake = Summary::of_u64(&chunk.iter().map(|r| r.1).collect::<Vec<_>>());
        let avg = Summary::of(&chunk.iter().map(|r| r.2).collect::<Vec<_>>());
        let matched = Summary::of_u64(&chunk.iter().map(|r| r.3).collect::<Vec<_>>());
        t.row(vec![
            n.to_string(),
            format!("{:.0}", m.mean),
            format!("{:.1} ± {:.1}", awake.mean, awake.std),
            format!("{:.1}", avg.mean),
            format!("{:.0}", matched.mean),
            chunk.iter().all(|r| r.4).to_string(),
        ]);
    }
    print!("{}", t.render());
    println!();
}

/// E17 — extension (paper conclusion): (Δ+1)-coloring via Linial's
/// product. Seeds fan across OS threads via
/// `sleeping_congest::batch::run_batch` and the per-`n` cells aggregate
/// with [`Summary`]; a cell is proper only if every seed's coloring
/// verified against its own palette.
fn e17() {
    header(
        "E17 (extension, §7)",
        "(Δ+1)-coloring = MIS(G □ K_{Δ+1}): O(log log nΔ) awake per palette process",
    );
    let sizes = [128usize, 512, 2048];
    let jobs: Vec<(usize, u64)> =
        sizes.iter().flat_map(|&n| SEEDS.iter().map(move |&s| (n, s))).collect();
    // Per seed: (Δ+1, product size, awake max, colors used, verified
    // proper). The palette is seed-dependent — Δ is a property of the
    // drawn instance.
    let runs = run_batch(&jobs, 0, |_| (), |(), _i, &(n, seed)| {
        let g = Family::Er.generate(n, seed);
        let palette = g.max_degree() + 1;
        let r = awake_mis_core::coloring(&g, palette, AwakeMisConfig::default(), seed).unwrap();
        (
            palette as u64,
            (n * palette) as u64,
            r.metrics.awake_complexity(),
            awake_mis_core::colors_used(&r.colors) as u64,
            r.failures == 0 && awake_mis_core::is_proper_coloring(&g, &r.colors, palette),
        )
    });
    let mut t = Table::new(vec![
        "n", "Δ+1 (mean)", "product size (mean)", "awake max (mean±std)", "colors used",
        "proper?",
    ]);
    for (ci, &n) in sizes.iter().enumerate() {
        let chunk = &runs[ci * SEEDS.len()..(ci + 1) * SEEDS.len()];
        let palette = Summary::of_u64(&chunk.iter().map(|r| r.0).collect::<Vec<_>>());
        let product = Summary::of_u64(&chunk.iter().map(|r| r.1).collect::<Vec<_>>());
        let awake = Summary::of_u64(&chunk.iter().map(|r| r.2).collect::<Vec<_>>());
        let used = Summary::of_u64(&chunk.iter().map(|r| r.3).collect::<Vec<_>>());
        t.row(vec![
            n.to_string(),
            format!("{:.0}", palette.mean),
            format!("{:.0}", product.mean),
            format!("{:.1} ± {:.1}", awake.mean, awake.std),
            format!("{:.0}", used.mean),
            chunk.iter().all(|r| r.4).to_string(),
        ]);
    }
    print!("{}", t.render());
    println!();
}

// Silence unused warnings for items only used in some experiment subsets.
#[allow(dead_code)]
fn _unused(_: &Graph, _: &LdtMis, _: LdtMisParams, _: LdtStrategy, _: MisState) {}
