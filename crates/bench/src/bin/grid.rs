//! Batched seed-grid experiment runner: fans a cartesian grid of
//! `{algorithm × graph family × n × seed}` across OS threads and writes
//! the machine-readable `BENCH_grid.json` (schema
//! `awake-mis/bench-grid/v3`) plus a human-readable summary table.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin grid -- \
//!     [--algos awake,luby,na,gp-avg] [--families er,rgg,ba,grid,tree] \
//!     [--sizes 1000,10000,100000] [--seeds 8] [--threads 0] \
//!     [--shards 0] [--large | --no-large] [--profile] \
//!     [--out BENCH_grid.json] [--list-algos]
//! ```
//!
//! The `--algos` list takes registry specs, so parameterized variants
//! run without any code change: `--algos 'awake?round_efficient=true'`,
//! `--algos 'ldt?strategy=round,vt?id_upper=1000000'` (quote the `?` for
//! your shell). `--list-algos` prints every registered key with its
//! accepted parameters. `--seeds K` runs seeds `1..=K`; `--threads 0`
//! (default) uses every hardware thread. The JSON payload (everything
//! except the `meta` object and the `timing` section) is byte-identical
//! for any thread count.
//!
//! The default invocation (no axis flags) additionally appends the
//! `large` tier: `luby` and `awake` on million-node ER graphs, run with
//! intra-run sharding (`--shards`, 0 = one shard per hardware thread).
//! Shards are an execution knob — the runner key and the payload are
//! byte-identical for any shard count. Pass `--no-large` to skip the
//! tier, or `--large` to force it alongside explicit axis flags. Tier
//! points also print their throughput (rounds/sec and node·rounds/sec).
//!
//! `--profile` attaches the engine's phase profiler to every runner
//! (equivalent to appending the execution-only `trace=profile` spec
//! param) and prints a per-algorithm phase breakdown — send/merge/
//! receive/bookkeeping wall-clock with p50/p95/max round times — after
//! the run. Tracing is observational: the JSON payload is byte-
//! identical with or without `--profile`.

use analysis::grid::{run_grid, GridMeta, GridSpec, GridTier};
use analysis::spec::default_registry;
use analysis::Table;
use bench::Family;
use sleeping_congest::batch::resolve_threads;
use std::time::Instant;

fn parse_list<T>(arg: &str, parse: impl Fn(&str) -> Option<T>, what: &str) -> Vec<T> {
    arg.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| parse(s).unwrap_or_else(|| panic!("unknown {what} {s:?}")))
        .collect()
}

/// Appends the execution-only `trace=profile` param to every spec in a
/// comma-separated list (no-op when `--profile` is off).
fn with_profile(specs: &str, profile: bool) -> String {
    if !profile {
        return specs.to_string();
    }
    specs
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| if s.contains('?') { format!("{s}&trace=profile") } else { format!("{s}?trace=profile") })
        .collect::<Vec<_>>()
        .join(",")
}

fn main() {
    let registry = default_registry();
    // The default grid spans both awake measures: worst-case (awake,
    // luby) and node-averaged (na, gp-avg). Specs stay as strings until
    // after the arg loop so --profile can append its trace param.
    let mut algos_spec = String::from("awake,luby,na,gp-avg");
    let mut families = vec![Family::Er, Family::Rgg, Family::Ba, Family::Grid, Family::Tree];
    let mut sizes = vec![1_000usize, 10_000, 100_000];
    let mut seed_count = 8u64;
    let mut threads = 0usize;
    let mut shards = 0usize;
    let mut out_path = String::from("BENCH_grid.json");
    let mut explicit_axes = false;
    let mut large: Option<bool> = None;
    let mut profile = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> &str {
            *i += 1;
            args.get(*i).unwrap_or_else(|| panic!("{} needs a value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--algos" => {
                algos_spec = value(&mut i).to_string();
                explicit_axes = true;
            }
            "--families" => {
                families = parse_list(value(&mut i), Family::parse, "family");
                explicit_axes = true;
            }
            "--sizes" => {
                sizes = parse_list(value(&mut i), |s| s.parse().ok(), "size");
                explicit_axes = true;
            }
            "--seeds" => {
                seed_count = value(&mut i).parse().expect("--seeds takes a count");
                explicit_axes = true;
            }
            "--threads" => threads = value(&mut i).parse().expect("--threads takes a count"),
            "--shards" => shards = value(&mut i).parse().expect("--shards takes a count"),
            "--large" => large = Some(true),
            "--no-large" => large = Some(false),
            "--profile" => profile = true,
            "--out" => out_path = value(&mut i).to_string(),
            "--list-algos" => {
                println!("registered algorithm specs (grammar: key?param=value&…):\n");
                for (key, about) in registry.entries() {
                    println!("  {key:<12} {about}");
                }
                return;
            }
            other => panic!("unknown argument {other:?} (see the doc comment for usage)"),
        }
        i += 1;
    }

    let algorithms = registry
        .resolve_list(&with_profile(&algos_spec, profile))
        .unwrap_or_else(|e| panic!("--algos: {e}"));

    // The `large` tier rides along whenever the base axes are the
    // defaults (so the checked-in BENCH_grid.json carries it), and on
    // demand via --large. The `shards=` parameter never enters the
    // runner key, so the tier payload is byte-identical for any shard
    // count — sharding only decides how fast the points arrive.
    let tiers = if large.unwrap_or(!explicit_axes) {
        vec![GridTier {
            name: "large".to_string(),
            algorithms: registry
                .resolve_list(&with_profile(
                    &format!("luby?shards={shards},awake?shards={shards}"),
                    profile,
                ))
                .expect("large-tier specs"),
            families: vec![Family::Er],
            sizes: vec![1_000_000],
            seeds: vec![1, 2],
        }]
    } else {
        Vec::new()
    };
    let spec = GridSpec {
        algorithms,
        families,
        sizes,
        seeds: (1..=seed_count).collect(),
        tiers,
        threads,
    };
    let jobs = spec.jobs().len();
    let threads_used = resolve_threads(spec.threads);
    println!("running {jobs} grid jobs over {threads_used} threads…");

    let start = Instant::now();
    let result = run_grid(&spec);
    let wall = start.elapsed();

    let mut t = Table::new(vec![
        "algorithm", "family", "n", "awake max (mean±std)", "awake avg", "awake p95", "gini",
        "rounds (mean)", "max bits", "ok",
    ]);
    for c in &result.cells {
        t.row(vec![
            c.algorithm.name().to_string(),
            c.family.name().to_string(),
            c.n.to_string(),
            format!("{:.1} ± {:.1}", c.awake_max.mean, c.awake_max.std),
            format!("{:.2}", c.awake_avg.mean),
            format!("{:.1}", c.awake_p95.mean),
            format!("{:.2}", c.awake_gini.mean),
            format!("{:.3e}", c.rounds.mean),
            c.max_message_bits.to_string(),
            if c.all_correct { "yes".into() } else { "NO".to_string() },
        ]);
    }
    print!("{}", t.render());

    // Tier points carry the engine-throughput story: how fast the
    // sharded round loop turns million-node rounds over.
    let base_points = spec.algorithms.len()
        * spec.families.len()
        * spec.sizes.len()
        * spec.seeds.len();
    let mut rest = &result.points[base_points.min(result.points.len())..];
    for tier in &spec.tiers {
        let count = tier.algorithms.len() * tier.families.len() * tier.sizes.len()
            * tier.seeds.len();
        let (segment, r) = rest.split_at(count.min(rest.len()));
        rest = r;
        for p in segment {
            let secs = p.elapsed_ns as f64 / 1e9;
            let rps = p.active_rounds as f64 / secs;
            println!(
                "[{}] {} {} n={} seed={}: {} active rounds in {:.2}s → {:.0} rounds/s, {:.3e} node·rounds/s",
                tier.name,
                p.job.algorithm.name(),
                p.job.family.name(),
                p.nodes,
                p.job.seed,
                p.active_rounds,
                secs,
                rps,
                p.nodes as f64 * rps,
            );
        }
    }

    // One aggregated phase breakdown per runner: the handle observed
    // every run of that runner across the grid.
    if profile {
        for runner in spec.algorithms.iter().chain(spec.tiers.iter().flat_map(|t| t.algorithms.iter())) {
            if let Some(report) = runner.trace().and_then(|h| h.report()) {
                println!("\n[profile] {}\n{}", runner.key(), report.trim_end());
            }
        }
    }

    let meta = GridMeta { threads: threads_used, wall_ms: wall.as_millis() };
    std::fs::write(&out_path, result.to_json(&meta)).expect("write grid JSON");
    let bad = result.points.iter().filter(|p| !p.correct).count();
    println!(
        "\nwrote {out_path}: {} points, {} cells, {} incorrect, {:.1}s wall",
        result.points.len(),
        result.cells.len(),
        bad,
        wall.as_secs_f64()
    );
    if bad > 0 {
        std::process::exit(1);
    }
}
