//! Batched seed-grid experiment runner: fans a cartesian grid of
//! `{algorithm × graph family × n × seed}` across OS threads and writes
//! the machine-readable `BENCH_grid.json` (schema
//! `awake-mis/bench-grid/v3`) plus a human-readable summary table.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin grid -- \
//!     [--algos awake,luby,na,gp-avg] [--families er,rgg,ba,grid,tree] \
//!     [--sizes 1000,10000,100000] [--seeds 8] [--threads 0] \
//!     [--out BENCH_grid.json] [--list-algos]
//! ```
//!
//! The `--algos` list takes registry specs, so parameterized variants
//! run without any code change: `--algos 'awake?round_efficient=true'`,
//! `--algos 'ldt?strategy=round,vt?id_upper=1000000'` (quote the `?` for
//! your shell). `--list-algos` prints every registered key with its
//! accepted parameters. `--seeds K` runs seeds `1..=K`; `--threads 0`
//! (default) uses every hardware thread. The JSON payload (everything
//! except the `meta` object and the `timing` section) is byte-identical
//! for any thread count.

use analysis::grid::{run_grid, GridMeta, GridSpec};
use analysis::spec::default_registry;
use analysis::Table;
use bench::Family;
use sleeping_congest::batch::resolve_threads;
use std::time::Instant;

fn parse_list<T>(arg: &str, parse: impl Fn(&str) -> Option<T>, what: &str) -> Vec<T> {
    arg.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| parse(s).unwrap_or_else(|| panic!("unknown {what} {s:?}")))
        .collect()
}

fn main() {
    let registry = default_registry();
    // The default grid spans both awake measures: worst-case (awake,
    // luby) and node-averaged (na, gp-avg).
    let mut algorithms = registry.resolve_list("awake,luby,na,gp-avg").expect("default algos");
    let mut families = vec![Family::Er, Family::Rgg, Family::Ba, Family::Grid, Family::Tree];
    let mut sizes = vec![1_000usize, 10_000, 100_000];
    let mut seed_count = 8u64;
    let mut threads = 0usize;
    let mut out_path = String::from("BENCH_grid.json");

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> &str {
            *i += 1;
            args.get(*i).unwrap_or_else(|| panic!("{} needs a value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--algos" => {
                algorithms = registry
                    .resolve_list(value(&mut i))
                    .unwrap_or_else(|e| panic!("--algos: {e}"));
            }
            "--families" => families = parse_list(value(&mut i), Family::parse, "family"),
            "--sizes" => {
                sizes = parse_list(value(&mut i), |s| s.parse().ok(), "size");
            }
            "--seeds" => seed_count = value(&mut i).parse().expect("--seeds takes a count"),
            "--threads" => threads = value(&mut i).parse().expect("--threads takes a count"),
            "--out" => out_path = value(&mut i).to_string(),
            "--list-algos" => {
                println!("registered algorithm specs (grammar: key?param=value&…):\n");
                for (key, about) in registry.entries() {
                    println!("  {key:<12} {about}");
                }
                return;
            }
            other => panic!("unknown argument {other:?} (see the doc comment for usage)"),
        }
        i += 1;
    }

    let spec = GridSpec {
        algorithms,
        families,
        sizes,
        seeds: (1..=seed_count).collect(),
        threads,
    };
    let jobs = spec.jobs().len();
    let threads_used = resolve_threads(spec.threads);
    println!("running {jobs} grid jobs over {threads_used} threads…");

    let start = Instant::now();
    let result = run_grid(&spec);
    let wall = start.elapsed();

    let mut t = Table::new(vec![
        "algorithm", "family", "n", "awake max (mean±std)", "awake avg", "awake p95", "gini",
        "rounds (mean)", "max bits", "ok",
    ]);
    for c in &result.cells {
        t.row(vec![
            c.algorithm.name().to_string(),
            c.family.name().to_string(),
            c.n.to_string(),
            format!("{:.1} ± {:.1}", c.awake_max.mean, c.awake_max.std),
            format!("{:.2}", c.awake_avg.mean),
            format!("{:.1}", c.awake_p95.mean),
            format!("{:.2}", c.awake_gini.mean),
            format!("{:.3e}", c.rounds.mean),
            c.max_message_bits.to_string(),
            if c.all_correct { "yes".into() } else { "NO".to_string() },
        ]);
    }
    print!("{}", t.render());

    let meta = GridMeta { threads: threads_used, wall_ms: wall.as_millis() };
    std::fs::write(&out_path, result.to_json(&meta)).expect("write grid JSON");
    let bad = result.points.iter().filter(|p| !p.correct).count();
    println!(
        "\nwrote {out_path}: {} points, {} cells, {} incorrect, {:.1}s wall",
        result.points.len(),
        result.cells.len(),
        bad,
        wall.as_secs_f64()
    );
    if bad > 0 {
        std::process::exit(1);
    }
}
