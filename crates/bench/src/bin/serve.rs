//! `serve` — a long-running MIS service over a stream of topology
//! deltas: reads delta batches (generated workload by default, or a
//! line protocol on stdin), repairs the MIS incrementally after each
//! batch, emits the **MIS delta** (which nodes joined/left the MIS),
//! and reports sustained deltas/sec on exit.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin serve -- \
//!     [--algo luby] [--family er] [--n 1000000] [--seed 1] \
//!     [--batches 6] [--ops 2000] [--insert-frac 0.5] [--node-churn 0] \
//!     [--stdin] [--quiet]
//! ```
//!
//! Default mode generates `--batches` random delta batches of `--ops`
//! operations each against the bootstrapped instance (this is the
//! n=10⁶ throughput configuration; the same loop runs in-process under
//! `churn --serve` to stamp the figure into `BENCH_churn.json`).
//!
//! With `--stdin`, batches come from a line protocol instead:
//!
//! ```text
//! +e U V      queue an edge insert
//! -e U V      queue an edge delete
//! +n K        queue K node additions (ids are assigned n, n+1, …)
//! -n V        queue a node removal
//! .           apply the queued batch (aliases: "flush", empty line)
//! quit        apply nothing further and exit
//! ```
//!
//! After each applied batch the service prints the MIS delta as `+m V`
//! / `-m V` lines on stdout (suppressed by `--quiet`), then a `# batch`
//! summary line: effective deltas, woken nodes, frontier size, repair
//! rounds, and the verification verdict. Diagnostics are prefixed `#`
//! so a consumer can stream the `+m`/`-m` lines alone. Exit status is
//! nonzero if any batch failed to verify.

use analysis::churn::{random_batch, MisService};
use analysis::spec::default_registry;
use bench::Family;
use graphgen::DeltaBatch;
use sleeping_congest::ScratchArena;
use std::io::BufRead;
use std::time::Instant;

fn main() {
    let registry = default_registry();
    let mut algo = String::from("luby");
    let mut family = Family::Er;
    let mut n = 1_000_000usize;
    let mut seed = 1u64;
    let mut batches = 6u64;
    let mut ops = 2000usize;
    let mut insert_frac = 0.5f64;
    let mut node_churn = 0.0f64;
    let mut stdin_mode = false;
    let mut quiet = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> &str {
            *i += 1;
            args.get(*i).unwrap_or_else(|| panic!("{} needs a value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--algo" => algo = value(&mut i).to_string(),
            "--family" => {
                let v = value(&mut i);
                family = Family::parse(v).unwrap_or_else(|| panic!("unknown family {v:?}"));
            }
            "--n" => n = value(&mut i).parse().expect("--n takes a node count"),
            "--seed" => seed = value(&mut i).parse().expect("--seed takes a number"),
            "--batches" => batches = value(&mut i).parse().expect("--batches takes a count"),
            "--ops" => ops = value(&mut i).parse().expect("--ops takes a count"),
            "--insert-frac" => {
                insert_frac = value(&mut i).parse().expect("--insert-frac takes a fraction");
            }
            "--node-churn" => {
                node_churn = value(&mut i).parse().expect("--node-churn takes a fraction");
            }
            "--stdin" => stdin_mode = true,
            "--quiet" => quiet = true,
            other => panic!("unknown argument {other:?} (see the doc comment for usage)"),
        }
        i += 1;
    }

    let runner = registry.resolve(&algo).unwrap_or_else(|e| panic!("--algo: {e}"));
    let g = family.generate(n, seed);
    let mut scratch = ScratchArena::new();
    println!("# bootstrapping {} on {} n={}…", runner.key(), family.key(), g.n());
    let t0 = Instant::now();
    let (mut service, r) =
        MisService::bootstrap(runner, g, seed, &mut scratch).expect("bootstrap");
    if !r.correct {
        eprintln!("serve: bootstrap did not produce a valid MIS");
        std::process::exit(1);
    }
    println!(
        "# ready: mis={} awake_max={} in {:.2}s; serving…",
        r.mis_size,
        r.awake_max,
        t0.elapsed().as_secs_f64()
    );

    let mut total_deltas = 0u64;
    let mut total_batches = 0u64;
    let mut failed = false;
    let start = Instant::now();
    let mut apply = |batch: &DeltaBatch, service: &mut MisService, scratch: &mut ScratchArena| {
        if batch.is_empty() {
            return;
        }
        match service.apply(batch, scratch) {
            Ok(rep) => {
                if !quiet {
                    for v in &rep.joined {
                        println!("+m {v}");
                    }
                    for v in &rep.left {
                        println!("-m {v}");
                    }
                }
                println!(
                    "# batch {}: {} deltas, {} woken, frontier {}, {} repair rounds, mis {} → {}",
                    rep.epoch,
                    rep.deltas,
                    rep.woken,
                    rep.frontier,
                    rep.repair_rounds,
                    if rep.correct { "ok" } else { "FAILED" },
                    service.mis_size(),
                );
                if !rep.correct {
                    if let Some(e) = &rep.error {
                        println!("# error: {e}");
                    }
                    failed = true;
                }
                total_deltas += rep.deltas;
                total_batches += 1;
            }
            Err(e) => {
                println!("# rejected batch: {e}");
                failed = true;
            }
        }
    };

    if stdin_mode {
        let stdin = std::io::stdin();
        let mut batch = DeltaBatch::new();
        for line in stdin.lock().lines() {
            let line = line.expect("stdin");
            let mut parts = line.split_whitespace();
            let op = parts.next().unwrap_or("");
            let arg = |p: &mut std::str::SplitWhitespace| -> u32 {
                p.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("serve: malformed line {line:?}");
                    std::process::exit(2);
                })
            };
            match op {
                "+e" => {
                    let (u, v) = (arg(&mut parts), arg(&mut parts));
                    batch.insert_edge(u, v);
                }
                "-e" => {
                    let (u, v) = (arg(&mut parts), arg(&mut parts));
                    batch.delete_edge(u, v);
                }
                "+n" => {
                    batch.add_nodes(arg(&mut parts) as usize);
                }
                "-n" => {
                    batch.remove_node(arg(&mut parts));
                }
                "" | "." | "flush" => {
                    apply(&batch, &mut service, &mut scratch);
                    batch = DeltaBatch::new();
                }
                "quit" => break,
                other => {
                    eprintln!("serve: unknown op {other:?} in line {line:?}");
                    std::process::exit(2);
                }
            }
        }
        // An unflushed trailing batch still counts.
        apply(&batch, &mut service, &mut scratch);
    } else {
        for b in 0..batches {
            let batch = random_batch(
                service.graph(),
                ops,
                insert_frac,
                node_churn,
                seed.wrapping_add(b + 1),
            );
            apply(&batch, &mut service, &mut scratch);
        }
    }

    let wall = start.elapsed();
    let dps = total_deltas as f64 / wall.as_secs_f64().max(1e-9);
    println!(
        "# sustained: {total_deltas} deltas in {total_batches} batches over {:.2}s → {:.0} deltas/sec \
         (n={}, active={}, mis={})",
        wall.as_secs_f64(),
        dps,
        service.graph().n(),
        service.graph().active_count(),
        service.mis_size(),
    );
    if failed {
        std::process::exit(1);
    }
}
