//! `serve` — a long-running MIS service over a stream of topology
//! deltas: reads delta batches (generated workload by default, or a
//! line protocol on stdin), repairs the MIS incrementally after each
//! batch, emits the **MIS delta** (which nodes joined/left the MIS),
//! and reports sustained deltas/sec on exit.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin serve -- \
//!     [--algo luby] [--family er] [--n 1000000] [--seed 1] \
//!     [--batches 6] [--ops 2000] [--insert-frac 0.5] [--node-churn 0] \
//!     [--stdin] [--quiet] [--stats-every 5]
//! ```
//!
//! Default mode generates `--batches` random delta batches of `--ops`
//! operations each against the bootstrapped instance (this is the
//! n=10⁶ throughput configuration; the same loop runs in-process under
//! `churn --serve` to stamp the figure into `BENCH_churn.json`).
//!
//! With `--stdin`, batches come from a line protocol instead:
//!
//! ```text
//! +e U V      queue an edge insert
//! -e U V      queue an edge delete
//! +n K        queue K node additions (ids are assigned n, n+1, …)
//! -n V        queue a node removal
//! .           apply the queued batch (aliases: "flush", empty line)
//! stats       print a `# stats` service-statistics line immediately
//! quit        apply nothing further and exit
//! ```
//!
//! After each applied batch the service prints the MIS delta as `+m V`
//! / `-m V` lines on stdout (suppressed by `--quiet`), then a `# batch`
//! summary line: effective deltas, woken nodes, frontier size, repair
//! rounds, and the verification verdict. Diagnostics are prefixed `#`
//! so a consumer can stream the `+m`/`-m` lines alone. Exit status is
//! nonzero if any batch failed to verify.
//!
//! Every `--stats-every` applied batches (default 5, `0` disables) —
//! and on the `stats` stdin command — the service prints one
//! statistics line:
//!
//! ```text
//! # stats: batches=B deltas=D deltas/s=R repair_ms p50=… p95=… max=… \
//! #        frontier mean=… max=… woken_ratio=… verify_ms/epoch=…
//! ```
//!
//! `deltas/s` is the sustained rate since serving started, the
//! `repair_ms` percentiles are exact over per-batch repair wall-clock,
//! `frontier` summarizes damage-frontier sizes, `woken_ratio` is woken
//! nodes over the active nodes a full recompute would have woken, and
//! `verify_ms/epoch` is the mean wall-clock the repair spent verifying.

use analysis::churn::{random_batch, EpochReport, MisService};
use analysis::spec::default_registry;
use bench::Family;
use graphgen::DeltaBatch;
use sleeping_congest::ScratchArena;
use std::io::BufRead;
use std::time::Instant;

/// Exact nearest-rank percentile over a sorted sample.
fn pct(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Running service statistics, updated per applied batch and rendered
/// as the `# stats` line.
struct ServeStats {
    started: Instant,
    batches: u64,
    deltas: u64,
    woken: u64,
    /// Sum over epochs of the active node count — the denominator of
    /// the woken ratio (what a full recompute would have woken).
    active_sum: u64,
    repair_ns: Vec<u64>,
    frontier: Vec<u64>,
    verify_ns: u64,
}

impl ServeStats {
    fn new() -> ServeStats {
        ServeStats {
            started: Instant::now(),
            batches: 0,
            deltas: 0,
            woken: 0,
            active_sum: 0,
            repair_ns: Vec::new(),
            frontier: Vec::new(),
            verify_ns: 0,
        }
    }

    fn record(&mut self, rep: &EpochReport, active: u64) {
        self.batches += 1;
        self.deltas += rep.deltas;
        self.woken += rep.woken;
        self.active_sum += active;
        self.repair_ns.push(rep.repair_ns);
        self.frontier.push(rep.frontier);
        self.verify_ns += rep.verify_ns;
    }

    fn line(&self) -> String {
        let secs = self.started.elapsed().as_secs_f64().max(1e-9);
        let mut sorted = self.repair_ns.clone();
        sorted.sort_unstable();
        let frontier_mean =
            self.frontier.iter().sum::<u64>() as f64 / self.frontier.len().max(1) as f64;
        let frontier_max = self.frontier.iter().copied().max().unwrap_or(0);
        format!(
            "# stats: batches={} deltas={} deltas/s={:.0} repair_ms p50={:.3} p95={:.3} \
             max={:.3} frontier mean={:.1} max={} woken_ratio={:.4} verify_ms/epoch={:.3}",
            self.batches,
            self.deltas,
            self.deltas as f64 / secs,
            pct(&sorted, 0.50) as f64 / 1e6,
            pct(&sorted, 0.95) as f64 / 1e6,
            sorted.last().copied().unwrap_or(0) as f64 / 1e6,
            frontier_mean,
            frontier_max,
            self.woken as f64 / self.active_sum.max(1) as f64,
            self.verify_ns as f64 / self.batches.max(1) as f64 / 1e6,
        )
    }
}

/// Applies one batch, prints the MIS delta and `# batch` summary, and
/// folds the epoch into `stats`. Returns `false` when the batch was
/// rejected or the repaired MIS failed verification.
fn apply_batch(
    batch: &DeltaBatch,
    service: &mut MisService,
    scratch: &mut ScratchArena,
    stats: &mut ServeStats,
    quiet: bool,
    stats_every: u64,
) -> bool {
    if batch.is_empty() {
        return true;
    }
    match service.apply(batch, scratch) {
        Ok(rep) => {
            if !quiet {
                for v in &rep.joined {
                    println!("+m {v}");
                }
                for v in &rep.left {
                    println!("-m {v}");
                }
            }
            println!(
                "# batch {}: {} deltas, {} woken, frontier {}, {} repair rounds, mis {} → {}",
                rep.epoch,
                rep.deltas,
                rep.woken,
                rep.frontier,
                rep.repair_rounds,
                if rep.correct { "ok" } else { "FAILED" },
                service.mis_size(),
            );
            let ok = rep.correct;
            if !ok {
                if let Some(e) = &rep.error {
                    println!("# error: {e}");
                }
            }
            stats.record(&rep, service.graph().active_count() as u64);
            if stats_every > 0 && stats.batches.is_multiple_of(stats_every) {
                println!("{}", stats.line());
            }
            ok
        }
        Err(e) => {
            println!("# rejected batch: {e}");
            false
        }
    }
}

fn main() {
    let registry = default_registry();
    let mut algo = String::from("luby");
    let mut family = Family::Er;
    let mut n = 1_000_000usize;
    let mut seed = 1u64;
    let mut batches = 6u64;
    let mut ops = 2000usize;
    let mut insert_frac = 0.5f64;
    let mut node_churn = 0.0f64;
    let mut stdin_mode = false;
    let mut quiet = false;
    let mut stats_every = 5u64;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> &str {
            *i += 1;
            args.get(*i).unwrap_or_else(|| panic!("{} needs a value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--algo" => algo = value(&mut i).to_string(),
            "--family" => {
                let v = value(&mut i);
                family = Family::parse(v).unwrap_or_else(|| panic!("unknown family {v:?}"));
            }
            "--n" => n = value(&mut i).parse().expect("--n takes a node count"),
            "--seed" => seed = value(&mut i).parse().expect("--seed takes a number"),
            "--batches" => batches = value(&mut i).parse().expect("--batches takes a count"),
            "--ops" => ops = value(&mut i).parse().expect("--ops takes a count"),
            "--insert-frac" => {
                insert_frac = value(&mut i).parse().expect("--insert-frac takes a fraction");
            }
            "--node-churn" => {
                node_churn = value(&mut i).parse().expect("--node-churn takes a fraction");
            }
            "--stdin" => stdin_mode = true,
            "--quiet" => quiet = true,
            "--stats-every" => {
                stats_every = value(&mut i).parse().expect("--stats-every takes a count");
            }
            other => panic!("unknown argument {other:?} (see the doc comment for usage)"),
        }
        i += 1;
    }

    let runner = registry.resolve(&algo).unwrap_or_else(|e| panic!("--algo: {e}"));
    let g = family.generate(n, seed);
    let mut scratch = ScratchArena::new();
    println!("# bootstrapping {} on {} n={}…", runner.key(), family.key(), g.n());
    let t0 = Instant::now();
    let (mut service, r) =
        MisService::bootstrap(runner, g, seed, &mut scratch).expect("bootstrap");
    if !r.correct {
        eprintln!("serve: bootstrap did not produce a valid MIS");
        std::process::exit(1);
    }
    println!(
        "# ready: mis={} awake_max={} in {:.2}s; serving…",
        r.mis_size,
        r.awake_max,
        t0.elapsed().as_secs_f64()
    );

    let mut stats = ServeStats::new();
    let mut failed = false;

    if stdin_mode {
        let stdin = std::io::stdin();
        let mut batch = DeltaBatch::new();
        for line in stdin.lock().lines() {
            let line = line.expect("stdin");
            let mut parts = line.split_whitespace();
            let op = parts.next().unwrap_or("");
            let arg = |p: &mut std::str::SplitWhitespace| -> u32 {
                p.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("serve: malformed line {line:?}");
                    std::process::exit(2);
                })
            };
            match op {
                "+e" => {
                    let (u, v) = (arg(&mut parts), arg(&mut parts));
                    batch.insert_edge(u, v);
                }
                "-e" => {
                    let (u, v) = (arg(&mut parts), arg(&mut parts));
                    batch.delete_edge(u, v);
                }
                "+n" => {
                    batch.add_nodes(arg(&mut parts) as usize);
                }
                "-n" => {
                    batch.remove_node(arg(&mut parts));
                }
                "" | "." | "flush" => {
                    failed |= !apply_batch(
                        &batch,
                        &mut service,
                        &mut scratch,
                        &mut stats,
                        quiet,
                        stats_every,
                    );
                    batch = DeltaBatch::new();
                }
                "stats" => println!("{}", stats.line()),
                "quit" => break,
                other => {
                    eprintln!("serve: unknown op {other:?} in line {line:?}");
                    std::process::exit(2);
                }
            }
        }
        // An unflushed trailing batch still counts.
        failed |=
            !apply_batch(&batch, &mut service, &mut scratch, &mut stats, quiet, stats_every);
    } else {
        for b in 0..batches {
            let batch = random_batch(
                service.graph(),
                ops,
                insert_frac,
                node_churn,
                seed.wrapping_add(b + 1),
            );
            failed |= !apply_batch(
                &batch,
                &mut service,
                &mut scratch,
                &mut stats,
                quiet,
                stats_every,
            );
        }
    }

    let wall = stats.started.elapsed();
    let dps = stats.deltas as f64 / wall.as_secs_f64().max(1e-9);
    println!(
        "# sustained: {} deltas in {} batches over {:.2}s → {:.0} deltas/sec \
         (n={}, active={}, mis={})",
        stats.deltas,
        stats.batches,
        wall.as_secs_f64(),
        dps,
        service.graph().n(),
        service.graph().active_count(),
        service.mis_size(),
    );
    if failed {
        std::process::exit(1);
    }
}
