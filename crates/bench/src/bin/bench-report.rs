//! `bench-report` — the bench-trajectory reporter and multi-PR drift gate.
//!
//! Walks the full git history of the committed `BENCH_*.json` artifacts
//! (every schema: grid, sweep, faults, churn), builds one trend series
//! per `(artifact, cell, measure)`, and renders ASCII sparkline tables,
//! long-format CSV, and a gnuplot script. With `--gate` it exits
//! nonzero when any gated measure's *cumulative* drift from its first
//! committed baseline exceeds the threshold — the slow creep that
//! passes every adjacent `bench-diff` but compounds across PRs.
//!
//! ```text
//! bench-report [--artifact PATH]... [--repo DIR] [--cell FILTER]
//!              [--csv FILE] [--gnuplot DIR]
//!              [--gate] [--drift-threshold PCT] [--bits-slack BITS]
//! ```
//!
//! * `--artifact PATH` — artifact file to trend (repeatable). Default:
//!   the four committed artifacts at the repository root.
//! * `--repo DIR` — repository to read history from (default: the repo
//!   containing the current directory).
//! * `--cell FILTER` — only series whose `cell/key` contains FILTER.
//! * `--csv FILE` — write the long-format trend CSV.
//! * `--gnuplot DIR` — write `trend.gp` + `trend_<artifact>.dat` files.
//! * `--gate` — exit 1 when cumulative drift exceeds the threshold.
//! * `--drift-threshold PCT` — relative/pp gate threshold (default 5).
//! * `--bits-slack BITS` — absolute slack for message width (default 0).
//!
//! Degrades gracefully: a shallow clone yields one-sample series
//! ("no trend", never gated); an unparseable historical revision is
//! skipped with a warning and counted, not fatal.

use bench::artifact::ArtifactKind;
use bench::history::{load_history, rel_to_repo, repo_root};
use bench::report::{ascii_report, gnuplot_report, trend_csv};
use bench::trend::{gate_drift, series_from_history, TrendSeries};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: bench-report [--artifact PATH]... [--repo DIR] [--cell FILTER] \
                     [--csv FILE] [--gnuplot DIR] [--gate] [--drift-threshold PCT] \
                     [--bits-slack BITS]";

fn fail_usage(msg: &str) -> ExitCode {
    eprintln!("bench-report: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut artifacts: Vec<String> = Vec::new();
    let mut repo_arg: Option<String> = None;
    let mut cell_filter: Option<String> = None;
    let mut csv_path: Option<String> = None;
    let mut gnuplot_dir: Option<String> = None;
    let mut gate = false;
    let mut threshold = 5.0f64;
    let mut bits_slack = 0.0f64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut grab = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--artifact" => match grab("--artifact") {
                Ok(v) => artifacts.push(v),
                Err(e) => return fail_usage(&e),
            },
            "--repo" => match grab("--repo") {
                Ok(v) => repo_arg = Some(v),
                Err(e) => return fail_usage(&e),
            },
            "--cell" => match grab("--cell") {
                Ok(v) => cell_filter = Some(v),
                Err(e) => return fail_usage(&e),
            },
            "--csv" => match grab("--csv") {
                Ok(v) => csv_path = Some(v),
                Err(e) => return fail_usage(&e),
            },
            "--gnuplot" => match grab("--gnuplot") {
                Ok(v) => gnuplot_dir = Some(v),
                Err(e) => return fail_usage(&e),
            },
            "--gate" => gate = true,
            "--drift-threshold" => match grab("--drift-threshold").map(|v| v.parse::<f64>()) {
                Ok(Ok(v)) => threshold = v,
                _ => return fail_usage("--drift-threshold needs a number"),
            },
            "--bits-slack" => match grab("--bits-slack").map(|v| v.parse::<f64>()) {
                Ok(Ok(v)) => bits_slack = v,
                _ => return fail_usage("--bits-slack needs a number"),
            },
            other => return fail_usage(&format!("unknown argument {other}")),
        }
    }

    let start = repo_arg.as_deref().map_or_else(|| PathBuf::from("."), PathBuf::from);
    let repo = match repo_root(&start) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench-report: {e}");
            return ExitCode::from(2);
        }
    };

    // Default to the four committed artifacts at the repository root,
    // trending whichever of them exist.
    let defaulted = artifacts.is_empty();
    if defaulted {
        artifacts = ArtifactKind::all()
            .iter()
            .map(|k| k.default_path().to_string())
            .collect();
    }

    let mut series: Vec<TrendSeries> = Vec::new();
    let mut artifact_names: Vec<String> = Vec::new();
    let mut skipped_total = 0usize;
    for raw in &artifacts {
        let rel = match rel_to_repo(&repo, Path::new(raw)) {
            Ok(rel) => rel,
            Err(e) => {
                eprintln!("bench-report: {e}");
                return ExitCode::from(2);
            }
        };
        if defaulted && !repo.join(&rel).exists() {
            eprintln!("warning: {rel}: not present, skipping");
            continue;
        }
        let history = match load_history(&repo, &rel) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("bench-report: {e}");
                return ExitCode::from(2);
            }
        };
        for (rev, err) in &history.skipped {
            eprintln!("warning: skipping revision {rev} of {rel}: {err}");
        }
        skipped_total += history.skipped.len();
        if history.samples.is_empty() {
            eprintln!("warning: {rel}: no committed parseable revisions, skipping");
            continue;
        }
        for s in series_from_history(&history) {
            if !artifact_names.contains(&s.artifact) {
                artifact_names.push(s.artifact.clone());
            }
            series.push(s);
        }
    }

    if let Some(filter) = &cell_filter {
        series.retain(|s| s.cell.join("/").contains(filter.as_str()));
    }
    if series.is_empty() {
        eprintln!("bench-report: no trend series (no artifacts, or the filter matched nothing)");
        return ExitCode::from(2);
    }

    for artifact in &artifact_names {
        let table = ascii_report(artifact, &series);
        if !table.is_empty() {
            println!("{table}");
        }
    }
    if skipped_total > 0 {
        println!("({skipped_total} unparseable historical revision(s) skipped, see warnings)");
    }

    if let Some(path) = &csv_path {
        if let Err(e) = std::fs::write(path, trend_csv(&series)) {
            eprintln!("bench-report: writing {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote {path}");
    }

    if let Some(dir) = &gnuplot_dir {
        let dir = Path::new(dir);
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("bench-report: creating {}: {e}", dir.display());
            return ExitCode::from(2);
        }
        let (script, dats) = gnuplot_report(&series);
        let mut files = vec![("trend.gp".to_string(), script)];
        files.extend(dats);
        for (name, body) in files {
            let path = dir.join(&name);
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("bench-report: writing {}: {e}", path.display());
                return ExitCode::from(2);
            }
            println!("wrote {}", path.display());
        }
    }

    if gate {
        let violations = gate_drift(&series, threshold, bits_slack);
        if violations.is_empty() {
            println!(
                "drift gate: ok ({} series within {threshold}% of baseline)",
                series.len()
            );
        } else {
            println!("drift gate: {} violation(s)", violations.len());
            for v in &violations {
                println!("  DRIFT {}: {}", v.label, v.detail);
            }
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}
