//! Monte Carlo failure-rate estimation on an adversarial instance
//! (both endpoints of the only edge must land in the same batch for the
//! failure machinery to even be exercised).
//!
//! The 50k independent runs fan out over all hardware threads with
//! per-worker scratch reuse; the failure count is deterministic (each
//! run depends only on its seed).
use awake_mis_core::awake_mis::AwakeMisMsg;
use awake_mis_core::{AwakeMis, AwakeMisConfig};
use sleeping_congest::batch::{available_threads, run_batch};
use sleeping_congest::{SimConfig, SimScratch, Simulator};

fn main() {
    let g = graphgen::Graph::from_edges(5, &[(0, 1)]).unwrap();
    const RUNS: u64 = 50_000;
    let seeds: Vec<u64> = (0..RUNS).collect();
    let failed = run_batch(
        &seeds,
        available_threads(),
        |_| SimScratch::<AwakeMisMsg>::new(),
        |scratch, _, &seed| {
            let nodes = (0..5).map(|_| AwakeMis::new(AwakeMisConfig::default())).collect();
            let rep = Simulator::new(g.clone(), nodes, SimConfig::seeded(seed))
                .run_with_scratch(scratch)
                .unwrap();
            rep.outputs.iter().any(|o| o.failed)
        },
    );
    let fails = failed.iter().filter(|&&f| f).count();
    println!("failure rate on the adversarial pair graph: {fails}/{RUNS}");
}
