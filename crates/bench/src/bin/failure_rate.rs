//! Monte Carlo failure-rate estimation on an adversarial instance
//! (both endpoints of the only edge must land in the same batch for the
//! failure machinery to even be exercised).
use awake_mis_core::{AwakeMis, AwakeMisConfig};
use sleeping_congest::{SimConfig, Simulator};
fn main() {
    let g = graphgen::Graph::from_edges(5, &[(0, 1)]).unwrap();
    let mut fails = 0u64;
    const RUNS: u64 = 50_000;
    for seed in 0..RUNS {
        let nodes = (0..5).map(|_| AwakeMis::new(AwakeMisConfig::default())).collect();
        let rep = Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run().unwrap();
        fails += rep.outputs.iter().filter(|o| o.failed).count().min(1) as u64;
    }
    println!("failure rate on the adversarial pair graph: {fails}/{RUNS}");
}
