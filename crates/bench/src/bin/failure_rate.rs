//! Monte Carlo failure-rate estimation on an adversarial instance
//! (both endpoints of the only edge must land in the same batch for the
//! failure machinery to even be exercised).
//!
//! The 50k independent runs go through the registry-resolved `awake`
//! runner and fan out over all hardware threads with per-worker scratch
//! reuse; the failure count is deterministic (each run depends only on
//! its seed).
use analysis::spec::default_registry;
use sleeping_congest::batch::{available_threads, run_batch};
use sleeping_congest::ScratchArena;

fn main() {
    let g = graphgen::Graph::from_edges(5, &[(0, 1)]).unwrap();
    let runner = default_registry().resolve("awake").expect("builtin");
    const RUNS: u64 = 50_000;
    let seeds: Vec<u64> = (0..RUNS).collect();
    let failed = run_batch(
        &seeds,
        available_threads(),
        |_| ScratchArena::new(),
        |scratch, _, &seed| runner.run_with_scratch(&g, seed, scratch).unwrap().failures > 0,
    );
    let fails = failed.iter().filter(|&&f| f).count();
    println!("failure rate on the adversarial pair graph: {fails}/{RUNS}");
}
