//! Robustness-surface runner: sweeps fault-model knobs (`loss`,
//! `crash`, `jitter` — parameters every builtin accepts) over
//! `{fault level × family × n × seed}`, aggregates per-cell failure
//! rates and awake inflation against the clean baseline, and writes the
//! machine-readable `BENCH_faults.json` (schema
//! `awake-mis/bench-faults/v1`) plus a human-readable robustness table.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin faults -- \
//!     [--spec SPEC]... [--specs 'SPEC;SPEC;…'] \
//!     [--families er,tree] [--sizes 256,1024] [--seeds 8] \
//!     [--threads 0] [--out BENCH_faults.json]
//! ```
//!
//! Each `--spec` takes ONE sweep spec (repeat the flag to add more);
//! `--specs` takes a `;`-separated list — `,` belongs to the level
//! grammar (`loss=0,0.02,0.08`). Quote `?`/`&` for your shell. Run with
//! no arguments to reproduce the committed `BENCH_faults.json`. The
//! JSON payload (everything except `meta` and `timing`) is
//! byte-identical for any thread count, and the `loss=0` levels are
//! byte-identical to the fault-free grid's points.
//!
//! Unlike `grid` and `sweep`, incorrect runs do NOT exit nonzero here:
//! lossy levels are *supposed* to fail sometimes — that failure rate is
//! the measurement. Regressions are gated by `bench-diff` against the
//! committed surface instead.

use analysis::faults::{run_faults, FaultSweepSpec};
use analysis::sweep::expand;
use analysis::{default_registry, GridMeta, Table};
use bench::Family;
use sleeping_congest::batch::resolve_threads;
use std::time::Instant;

/// The default surface the committed `BENCH_faults.json` pins: three
/// loss levels (including the clean anchor) for the two headline
/// algorithms, plus a crash level, an adversarial-ID level, and a
/// delivery-jitter level, on a sparse and a dense family.
const DEFAULT_SPECS: [&str; 5] = [
    "awake?loss=0,0.02,0.08",
    "luby?loss=0,0.02,0.08",
    "luby?crash=0.002&crash_until=8",
    "vt?adv_ids=worst",
    "awake?jitter=16",
];

fn parse_list<T>(arg: &str, parse: impl Fn(&str) -> Option<T>, what: &str) -> Vec<T> {
    arg.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| parse(s).unwrap_or_else(|| panic!("unknown {what} {s:?}")))
        .collect()
}

fn main() {
    let mut specs: Vec<String> = Vec::new();
    let mut families = vec![Family::Er, Family::Dense];
    let mut sizes = vec![256usize, 1024];
    let mut seed_count = 8u64;
    let mut threads = 0usize;
    let mut out_path = String::from("BENCH_faults.json");

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> &str {
            *i += 1;
            args.get(*i).unwrap_or_else(|| panic!("{} needs a value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--spec" => specs.push(value(&mut i).to_string()),
            "--specs" => specs.extend(
                value(&mut i).split(';').filter(|s| !s.trim().is_empty()).map(str::to_string),
            ),
            "--families" => families = parse_list(value(&mut i), Family::parse, "family"),
            "--sizes" => sizes = parse_list(value(&mut i), |s| s.parse().ok(), "size"),
            "--seeds" => seed_count = value(&mut i).parse().expect("--seeds takes a count"),
            "--threads" => threads = value(&mut i).parse().expect("--threads takes a count"),
            "--out" => out_path = value(&mut i).to_string(),
            other => panic!("unknown argument {other:?} (see the doc comment for usage)"),
        }
        i += 1;
    }
    if specs.is_empty() {
        specs = DEFAULT_SPECS.iter().map(|s| s.to_string()).collect();
    }

    // Expand up front so a bad spec fails before any work runs.
    let registry = default_registry();
    let mut expanded_total = 0;
    for raw in &specs {
        let group = expand(registry, raw).unwrap_or_else(|e| panic!("--spec {raw:?}: {e}"));
        expanded_total += group.runners.len();
    }

    let spec = FaultSweepSpec {
        specs,
        families,
        sizes,
        seeds: (1..=seed_count).collect(),
        threads,
    };
    let jobs = expanded_total * spec.families.len() * spec.sizes.len() * spec.seeds.len();
    let threads_used = resolve_threads(spec.threads);
    println!(
        "running {jobs} fault jobs ({expanded_total} fault levels) over {threads_used} threads…"
    );

    let start = Instant::now();
    let result = run_faults(&spec).unwrap_or_else(|e| panic!("faults: {e}"));
    let wall = start.elapsed();

    let mut t = Table::new(vec![
        "fault level", "family", "n", "fail rate", "crashed", "dropped", "awake max",
        "awake infl", "rounds (mean)",
    ]);
    for c in &result.cells {
        t.row(vec![
            c.algorithm.key().to_string(),
            c.family.name().to_string(),
            c.n.to_string(),
            format!("{:.3}", c.failure_rate),
            c.crashed.to_string(),
            c.faulted.to_string(),
            format!("{:.1}", c.awake_max.mean),
            c.awake_inflation.map_or_else(|| "-".to_string(), |i| format!("{i:.2}×")),
            format!("{:.3e}", c.rounds.mean),
        ]);
    }
    print!("{}", t.render());

    let meta = GridMeta { threads: threads_used, wall_ms: wall.as_millis() };
    std::fs::write(&out_path, result.to_json(&meta)).expect("write faults JSON");
    let bad = result.points.iter().filter(|p| !p.correct).count();
    println!(
        "\nwrote {out_path}: {} points, {} cells, {} incorrect runs (expected under loss), {:.1}s wall",
        result.points.len(),
        result.cells.len(),
        bad,
        wall.as_secs_f64()
    );
}
