//! Renderers for the trend model: CSV, ASCII sparklines, gnuplot.
//!
//! All three consume the same [`TrendSeries`] rows, so the shapes
//! agree by construction:
//!
//! * [`trend_csv`] — long-format CSV, one row per `(series, sample)`,
//!   header `artifact,cell,measure,seq,rev,date,value`. Cell
//!   components are joined with `/`; none of them can contain a comma
//!   (family keys use `?`/`&`/`=`, algorithm keys likewise).
//! * [`ascii_report`] — a terminal table per artifact with a unicode
//!   sparkline (`▁▂▃▄▅▆▇█`, scaled to the series' own min..max) plus
//!   baseline, latest, delta-vs-previous, cumulative drift, and
//!   per-revision slope.
//! * [`gnuplot_report`] — per artifact, a `trend_<short>.dat` with one
//!   `index` block per headline series and a `trend.gp` that plots
//!   them with `linespoints`, x-tics labelled by short commit hash.

use crate::trend::TrendSeries;
use analysis::Table;

/// Sparkline glyph ramp, lowest to highest.
const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders a series' values as a unicode sparkline scaled to its own
/// min..max. A flat series renders as a run of the mid glyph; a single
/// sample as `·` (no trend to draw).
pub fn sparkline(values: &[f64]) -> String {
    if values.len() < 2 {
        return "·".to_string();
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    values
        .iter()
        .map(|&v| {
            if span <= 0.0 {
                SPARK[3]
            } else {
                let idx = ((v - min) / span * (SPARK.len() - 1) as f64).round() as usize;
                SPARK[idx.min(SPARK.len() - 1)]
            }
        })
        .collect()
}

/// Long-format CSV over every series:
/// `artifact,cell,measure,seq,rev,date,value`.
pub fn trend_csv(series: &[TrendSeries]) -> String {
    let mut out = String::from("artifact,cell,measure,seq,rev,date,value\n");
    for s in series {
        let cell = s.cell.join("/");
        for smp in &s.samples {
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                s.artifact, cell, s.measure, smp.seq, smp.rev, smp.date, smp.value
            ));
        }
    }
    out
}

fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e9 {
        format!("{v}")
    } else {
        format!("{v:.4}")
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or("-".to_string(), |d| format!("{d:+.3}"))
}

/// The terminal trend table for one artifact's series: identity,
/// sparkline, baseline → latest, last step, cumulative drift in the
/// gate's unit, and the least-squares slope per revision.
pub fn ascii_report(artifact: &str, series: &[TrendSeries]) -> String {
    let rows: Vec<&TrendSeries> = series.iter().filter(|s| s.artifact == artifact).collect();
    if rows.is_empty() {
        return String::new();
    }
    let revs = rows.iter().map(|s| s.samples.len()).max().unwrap_or(0);
    let mut table = Table::new(vec![
        "cell", "measure", "trend", "baseline", "latest", "Δprev", "drift", "slope/rev",
    ]);
    for s in &rows {
        let values: Vec<f64> = s.samples.iter().map(|p| p.value).collect();
        let drift = s
            .drift()
            .map_or("no trend".to_string(), |(d, unit)| format!("{d:+.2}{unit}"));
        table.row(vec![
            s.cell.join("/"),
            s.measure.to_string(),
            sparkline(&values),
            fmt_value(s.baseline()),
            fmt_value(s.latest()),
            fmt_opt(s.delta_prev()),
            drift,
            fmt_opt(s.slope()),
        ]);
    }
    format!(
        "== {artifact}: {} series over {} revision{} ==\n{}",
        rows.len(),
        revs,
        if revs == 1 { "" } else { "s" },
        table.render()
    )
}

/// The headline measure plotted per artifact — the one axis each
/// surface exists to pin down.
pub fn headline_measure(artifact: &str) -> &'static str {
    match artifact {
        "grid" => "awake_max",
        "sweep" => "energy_max_mj",
        "faults" => "failure_rate",
        "churn" => "woken_ratio",
        _ => "awake_max",
    }
}

/// One artifact's gnuplot data file plus its plotting stanza. The
/// `.dat` carries one double-blank-separated `index` block per series
/// (headline measure only); the stanza plots every block with
/// `linespoints`, titled by cell key, x labelled by short commit hash.
pub struct GnuplotArtifact {
    /// Suggested filename, `trend_<short>.dat`.
    pub dat_name: String,
    /// The data file body.
    pub dat: String,
    /// The `plot …` stanza to include in the script.
    pub stanza: String,
}

/// Builds the per-artifact gnuplot data + stanza; `None` when the
/// artifact has no series for its headline measure.
pub fn gnuplot_artifact(artifact: &str, series: &[TrendSeries]) -> Option<GnuplotArtifact> {
    let measure = headline_measure(artifact);
    let picked: Vec<&TrendSeries> = series
        .iter()
        .filter(|s| s.artifact == artifact && s.measure == measure)
        .collect();
    if picked.is_empty() {
        return None;
    }
    let dat_name = format!("trend_{artifact}.dat");
    let mut dat = String::new();
    let mut plots = Vec::new();
    let mut xtics = Vec::new();
    for (i, s) in picked.iter().enumerate() {
        dat.push_str(&format!("# {} {}\n", s.cell.join("/"), s.measure));
        for smp in &s.samples {
            dat.push_str(&format!("{} {}\n", smp.seq, smp.value));
            let tic = format!("'{}' {}", smp.rev, smp.seq);
            if !xtics.contains(&tic) {
                xtics.push(tic);
            }
        }
        dat.push_str("\n\n");
        plots.push(format!(
            "  '{dat_name}' index {i} using 1:2 with linespoints title '{}'",
            s.cell.join("/").replace('\'', "")
        ));
    }
    let stanza = format!(
        "set title '{artifact}: {measure} by revision'\n\
         set xtics ({})\n\
         plot \\\n{}\n",
        xtics.join(", "),
        plots.join(", \\\n")
    );
    Some(GnuplotArtifact { dat_name, dat, stanza })
}

/// The full gnuplot report: `(script, [(dat filename, dat body)])`.
/// The script is self-contained next to its data files:
/// `gnuplot trend.gp` renders one PNG page per artifact.
pub fn gnuplot_report(series: &[TrendSeries]) -> (String, Vec<(String, String)>) {
    let mut script = String::from(
        "# Generated by bench-report. Run with: gnuplot trend.gp\n\
         set terminal pngcairo size 1100,640\n\
         set xlabel 'revision'\n\
         set key outside right\n\
         set grid\n\n",
    );
    let mut dats = Vec::new();
    let mut artifacts: Vec<&str> = Vec::new();
    for s in series {
        if !artifacts.contains(&s.artifact.as_str()) {
            artifacts.push(&s.artifact);
        }
    }
    for artifact in artifacts {
        if let Some(g) = gnuplot_artifact(artifact, series) {
            script.push_str(&format!("set output 'trend_{artifact}.png'\n"));
            script.push_str(&g.stanza);
            script.push('\n');
            dats.push((g.dat_name, g.dat));
        }
    }
    (script, dats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::Gate;
    use crate::trend::{TrendSample, TrendSeries};

    fn series(artifact: &str, measure: &'static str, values: &[f64]) -> TrendSeries {
        TrendSeries {
            artifact: artifact.to_string(),
            cell: vec!["luby".into(), "er".into(), "1024".into()],
            measure,
            gate: Gate::Relative,
            samples: values
                .iter()
                .enumerate()
                .map(|(i, &v)| TrendSample {
                    seq: i,
                    rev: format!("abc{i:04}"),
                    date: "2026-08-08".to_string(),
                    value: v,
                })
                .collect(),
        }
    }

    #[test]
    fn sparklines_scale_to_the_series_range() {
        assert_eq!(sparkline(&[1.0, 8.0]), "▁█");
        assert_eq!(sparkline(&[5.0, 5.0, 5.0]), "▄▄▄", "flat series uses the mid glyph");
        assert_eq!(sparkline(&[3.0]), "·", "single sample has no trend to draw");
        let ramp = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(ramp, "▁▂▃▄▅▆▇█");
    }

    #[test]
    fn csv_is_long_format_with_one_row_per_sample() {
        let csv = trend_csv(&[series("grid", "awake_max", &[8.0, 9.0])]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "artifact,cell,measure,seq,rev,date,value");
        assert_eq!(lines[1], "grid,luby/er/1024,awake_max,0,abc0000,2026-08-08,8");
        assert_eq!(lines[2], "grid,luby/er/1024,awake_max,1,abc0001,2026-08-08,9");
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn ascii_report_renders_one_table_per_artifact() {
        let all = [
            series("grid", "awake_max", &[8.0, 9.0, 10.0]),
            series("churn", "woken_ratio", &[0.5]),
        ];
        let grid = ascii_report("grid", &all);
        assert!(grid.contains("== grid: 1 series over 3 revisions =="), "{grid}");
        assert!(grid.contains("luby/er/1024"));
        assert!(grid.contains("▁▅█"), "sparkline present: {grid}");
        assert!(grid.contains("+25.00%"), "cumulative drift 8→10: {grid}");
        let churn = ascii_report("churn", &all);
        assert!(churn.contains("over 1 revision ==") && churn.contains("no trend"), "{churn}");
        assert!(!churn.contains("awake_max"), "filtered by artifact");
        assert_eq!(ascii_report("faults", &all), "", "no series, no table");
    }

    #[test]
    fn gnuplot_report_emits_indexed_blocks_and_hash_xtics() {
        let all = [
            series("grid", "awake_max", &[8.0, 9.0]),
            series("grid", "rounds", &[10.0, 10.0]),
        ];
        let (script, dats) = gnuplot_report(&all);
        assert_eq!(dats.len(), 1);
        assert_eq!(dats[0].0, "trend_grid.dat");
        assert!(dats[0].1.contains("0 8\n1 9\n"), "{}", dats[0].1);
        assert!(script.contains("set output 'trend_grid.png'"));
        assert!(script.contains("index 0 using 1:2 with linespoints"));
        assert!(script.contains("'abc0000' 0"), "xtics by short hash: {script}");
        assert!(!script.contains("rounds"), "only the headline measure is plotted");
    }
}
