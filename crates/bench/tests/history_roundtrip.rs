//! The real repository's committed artifacts, round-tripped through
//! the history layer: every `BENCH_*.json` must load from git at HEAD
//! exactly as it reads from disk, parse at every committed revision,
//! and yield non-empty trend series.

use bench::artifact::{Artifact, ArtifactKind};
use bench::history::{load_history, repo_root, show};
use bench::trend::series_from_history;
use std::path::Path;
use std::process::Command;

fn this_repo() -> std::path::PathBuf {
    repo_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("tests run inside the repository")
}

/// True when the working-tree copy of `path` has no uncommitted edits,
/// so `git show HEAD:path` and the filesystem must agree byte-for-byte.
fn clean_in_git(repo: &Path, path: &str) -> bool {
    let out = Command::new("git")
        .arg("-C")
        .arg(repo)
        .args(["status", "--porcelain", "--", path])
        .output()
        .expect("git runs");
    out.status.success() && out.stdout.is_empty()
}

#[test]
fn every_committed_artifact_round_trips_through_history() {
    let repo = this_repo();
    for kind in ArtifactKind::all() {
        let path = kind.default_path();
        if !repo.join(path).exists() {
            panic!("{path} missing from the repository root");
        }
        let history = load_history(&repo, path).unwrap();
        assert!(
            !history.samples.is_empty(),
            "{path}: committed artifact must have parseable history"
        );
        assert!(
            history.skipped.is_empty(),
            "{path}: no committed revision should be unparseable: {:?}",
            history.skipped
        );
        for sample in &history.samples {
            assert_eq!(sample.artifact.kind, kind, "{path} at {}", sample.rev.hash);
        }
        let series = series_from_history(&history);
        assert!(!series.is_empty(), "{path}: trend series must be non-empty");
        let revs = history.samples.len();
        for s in &series {
            assert!(s.samples.len() <= revs);
            assert!(!s.cell.is_empty() && !s.cell.contains(&"?".to_string()), "{:?}", s.cell);
        }

        // The newest committed blob is byte-identical to the working
        // tree (only checkable when the file carries no local edits).
        if clean_in_git(&repo, path) {
            let from_git = show(&repo, "HEAD", path).unwrap();
            let from_disk = std::fs::read_to_string(repo.join(path)).unwrap();
            assert_eq!(from_git, from_disk, "{path}: HEAD blob vs working tree");
            let direct = Artifact::load(repo.join(path).to_str().unwrap()).unwrap();
            let newest = &history.samples.last().unwrap().artifact;
            assert_eq!(direct.doc, newest.doc, "{path}: parsed docs agree");
        }
    }
}

#[test]
fn the_trajectory_acceptance_bar_holds_at_head() {
    // The drift gate is only meaningful with real multi-revision
    // history: each committed artifact must have at least two committed
    // revisions to trend across. A shallow clone (CI's default
    // fetch-depth) legitimately sees fewer — that is exactly the
    // graceful-degradation path, not a failure.
    let repo = this_repo();
    let shallow = Command::new("git")
        .arg("-C")
        .arg(&repo)
        .args(["rev-parse", "--is-shallow-repository"])
        .output()
        .expect("git runs");
    if String::from_utf8_lossy(&shallow.stdout).trim() == "true" {
        eprintln!("shallow clone: skipping the multi-revision acceptance bar");
        return;
    }
    for kind in ArtifactKind::all() {
        let history = load_history(&repo, kind.default_path()).unwrap();
        assert!(
            history.samples.len() >= 2,
            "{}: needs >= 2 committed revisions for a trend, found {}",
            kind.default_path(),
            history.samples.len()
        );
    }
}
