//! End-to-end drift-gate semantics of the `bench-report` binary against
//! synthetic git histories — including the defining scenario: a slow
//! creep where every adjacent `bench-diff` passes but the cumulative
//! drift gate fires.

use std::path::PathBuf;
use std::process::Command;

/// Builds a throwaway git repo committing `versions` of
/// `BENCH_test.json`, returning the repo path.
fn temp_repo(name: &str, versions: &[String]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bench-report-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let git = |args: &[&str]| {
        let out = Command::new("git")
            .arg("-C")
            .arg(&dir)
            .args(args)
            .env("GIT_CONFIG_GLOBAL", "/dev/null")
            .env("GIT_CONFIG_SYSTEM", "/dev/null")
            .env("GIT_AUTHOR_NAME", "t")
            .env("GIT_AUTHOR_EMAIL", "t@t")
            .env("GIT_COMMITTER_NAME", "t")
            .env("GIT_COMMITTER_EMAIL", "t@t")
            .output()
            .unwrap();
        assert!(out.status.success(), "git {args:?}: {out:?}");
    };
    git(&["init", "-q", "-b", "main"]);
    for (i, body) in versions.iter().enumerate() {
        std::fs::write(dir.join("BENCH_test.json"), body).unwrap();
        git(&["add", "BENCH_test.json"]);
        git(&["commit", "-q", "-m", &format!("rev {i}")]);
    }
    dir
}

/// A minimal single-cell grid document with the given worst-case awake.
fn grid_doc(awake: f64) -> String {
    format!(
        "{{\"schema\":\"awake-mis/bench-grid/v3\",\"spec\":{{}},\"cells\":[],\
         \"points\":[{{\"algorithm\":\"luby\",\"family\":\"er\",\"n\":64,\"seed\":1,\
         \"rounds\":10,\"awake_max\":{awake},\"awake_avg\":3.5,\"max_message_bits\":21,\
         \"correct\":true,\"failures\":0,\
         \"awake_dist\":{{\"p95\":{awake},\"gini\":0.1}}}}]}}"
    )
}

fn bench_report(repo: &PathBuf, extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_bench-report"))
        .arg("--repo")
        .arg(repo)
        .arg("--artifact")
        .arg("BENCH_test.json")
        .args(extra)
        .output()
        .unwrap()
}

#[test]
fn slow_creep_fails_the_drift_gate_while_every_adjacent_diff_passes() {
    // Five commits, each +2% on awake_max: under bench-diff's default 5%
    // per-pair threshold, over it cumulatively ((1.02)^4 - 1 ≈ +8.2%).
    let mut awakes = vec![20.0f64];
    for _ in 0..4 {
        awakes.push(awakes.last().unwrap() * 1.02);
    }
    let versions: Vec<String> = awakes.iter().map(|&a| grid_doc(a)).collect();
    let repo = temp_repo("creep", &versions);

    // Every adjacent pair passes bench-diff at the default threshold.
    let scratch = std::env::temp_dir().join(format!("bench-report-pairs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap();
    for (i, pair) in versions.windows(2).enumerate() {
        let old = scratch.join(format!("old{i}.json"));
        let new = scratch.join(format!("new{i}.json"));
        std::fs::write(&old, &pair[0]).unwrap();
        std::fs::write(&new, &pair[1]).unwrap();
        let out = Command::new(env!("CARGO_BIN_EXE_bench-diff"))
            .args([old.to_str().unwrap(), new.to_str().unwrap()])
            .output()
            .unwrap();
        assert_eq!(
            out.status.code(),
            Some(0),
            "adjacent pair {i} must pass bench-diff: {}",
            String::from_utf8_lossy(&out.stdout)
        );
    }

    // The trajectory gate sees the compounded drift and fails.
    let out = bench_report(&repo, &["--gate"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "cumulative drift must gate: {stdout}");
    assert!(stdout.contains("DRIFT grid luby/er/64 awake_max"), "{stdout}");
    // The synthetic doc moves p95 in lockstep with awake_max, so both
    // series fire.
    assert!(stdout.contains("DRIFT grid luby/er/64 awake_p95"), "{stdout}");
    assert!(stdout.contains("drift gate: 2 violation(s)"), "{stdout}");

    // A looser threshold lets the same history pass.
    let out = bench_report(&repo, &["--gate", "--drift-threshold", "10"]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stdout));

    let _ = std::fs::remove_dir_all(&repo);
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn a_single_revision_reports_no_trend_and_never_gates() {
    let repo = temp_repo("single", &[grid_doc(20.0)]);
    let out = bench_report(&repo, &["--gate", "--drift-threshold", "0"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "one sample cannot drift: {stdout}");
    assert!(stdout.contains("over 1 revision =="), "{stdout}");
    assert!(stdout.contains("no trend"), "{stdout}");
    assert!(stdout.contains("drift gate: ok"), "{stdout}");
    let _ = std::fs::remove_dir_all(&repo);
}

#[test]
fn unparseable_revisions_are_skipped_with_a_warning_counter() {
    let versions =
        vec![grid_doc(20.0), "{ half a document".to_string(), grid_doc(20.0)];
    let repo = temp_repo("skip", &versions);
    let out = bench_report(&repo, &[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "{stdout}\n{stderr}");
    assert!(stdout.contains("over 2 revisions =="), "garbage revision dropped: {stdout}");
    assert!(stdout.contains("1 unparseable historical revision(s) skipped"), "{stdout}");
    assert!(stderr.contains("warning: skipping revision"), "{stderr}");
    let _ = std::fs::remove_dir_all(&repo);
}

#[test]
fn csv_and_gnuplot_outputs_land_on_disk() {
    let repo = temp_repo("outputs", &[grid_doc(20.0), grid_doc(21.0)]);
    let outdir = repo.join("out");
    let csv = outdir.join("trend.csv");
    std::fs::create_dir_all(&outdir).unwrap();
    let out = bench_report(
        &repo,
        &["--csv", csv.to_str().unwrap(), "--gnuplot", outdir.to_str().unwrap()],
    );
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let csv_body = std::fs::read_to_string(&csv).unwrap();
    assert!(csv_body.starts_with("artifact,cell,measure,seq,rev,date,value\n"), "{csv_body}");
    assert!(csv_body.contains("grid,luby/er/64,awake_max,1,"), "{csv_body}");
    let gp = std::fs::read_to_string(outdir.join("trend.gp")).unwrap();
    assert!(gp.contains("linespoints"), "{gp}");
    assert!(outdir.join("trend_grid.dat").exists());
    let _ = std::fs::remove_dir_all(&repo);
}

#[test]
fn usage_errors_exit_2() {
    let out = Command::new(env!("CARGO_BIN_EXE_bench-report"))
        .arg("--no-such-flag")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}
