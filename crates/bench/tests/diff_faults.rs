//! End-to-end gate check for `bench-diff` on fault documents: a
//! synthetic robustness regression (failure rate growing past the
//! threshold at one swept loss level) must exit nonzero, while an
//! unchanged surface — and one whose failure rate *improves* — must
//! pass. Exercises the real binary, not the library, because the exit
//! code IS the CI contract.

use std::path::PathBuf;
use std::process::Command;

/// A minimal `awake-mis/bench-faults/v1` document with one
/// `luby?loss=0.05 / er / 64` cell whose four seeds have the given
/// correctness outcomes.
fn faults_doc(correct: &[bool]) -> String {
    let points: Vec<String> = correct
        .iter()
        .enumerate()
        .map(|(i, &ok)| {
            format!(
                "{{\"algorithm\":\"luby?loss=0.05\",\"family\":\"er\",\"n\":64,\
                 \"seed\":{},\"rounds\":12,\"awake_max\":9,\"awake_avg\":4.5,\
                 \"correct\":{ok},\"failures\":{},\"crashed\":0,\"faulted\":3}}",
                i + 1,
                if ok { 0 } else { 1 },
            )
        })
        .collect();
    format!(
        "{{\"schema\": \"awake-mis/bench-faults/v1\",\n\
         \"spec\": {{\"specs\": [\"luby?loss=0.05\"]}},\n\
         \"cells\": [],\n\"points\": [{}]}}\n",
        points.join(",")
    )
}

fn write_doc(name: &str, body: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("bench-diff-{}-{name}", std::process::id()));
    std::fs::write(&path, body).expect("write temp doc");
    path
}

fn run_diff(old: &PathBuf, new: &PathBuf, extra: &[&str]) -> (Option<i32>, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_bench-diff"))
        .arg(old)
        .arg(new)
        .args(extra)
        .output()
        .expect("run bench-diff");
    let text = String::from_utf8_lossy(&out.stdout).into_owned()
        + &String::from_utf8_lossy(&out.stderr);
    (out.status.code(), text)
}

#[test]
fn a_failure_rate_regression_exits_nonzero() {
    // Baseline: 1/4 seeds fail under loss. Candidate: 3/4 fail — a
    // +50pp jump, far past the default 5pp threshold.
    let old = write_doc("reg-old.json", &faults_doc(&[true, true, true, false]));
    let new = write_doc("reg-new.json", &faults_doc(&[true, false, false, false]));
    let (code, text) = run_diff(&old, &new, &[]);
    assert_eq!(code, Some(1), "robustness regression must exit 1:\n{text}");
    assert!(text.contains("REGRESSED"), "verdict column must say so:\n{text}");
}

#[test]
fn an_unchanged_surface_passes() {
    let old = write_doc("same-old.json", &faults_doc(&[true, true, true, false]));
    let new = write_doc("same-new.json", &faults_doc(&[true, true, true, false]));
    let (code, text) = run_diff(&old, &new, &[]);
    assert_eq!(code, Some(0), "identical surfaces must pass:\n{text}");

    // --exact agrees: same payload sections.
    let (code, text) = run_diff(&old, &new, &["--exact"]);
    assert_eq!(code, Some(0), "--exact on identical docs must pass:\n{text}");
    assert!(text.contains("payloads identical"));
}

#[test]
fn an_improved_surface_passes_and_a_raised_threshold_forgives() {
    // Failure rate falls 25pp: an improvement, never a regression.
    let old = write_doc("imp-old.json", &faults_doc(&[true, true, false, false]));
    let new = write_doc("imp-new.json", &faults_doc(&[true, true, true, false]));
    let (code, text) = run_diff(&old, &new, &[]);
    assert_eq!(code, Some(0), "an improvement must pass:\n{text}");

    // The same +25pp jump in reverse passes once the threshold allows it.
    let (code, text) = run_diff(&new, &old, &["--threshold", "30"]);
    assert_eq!(code, Some(0), "+25pp under a 30pp threshold must pass:\n{text}");
    let (code, _) = run_diff(&new, &old, &[]);
    assert_eq!(code, Some(1), "+25pp under the default 5pp threshold must fail");
}

#[test]
fn lost_cell_coverage_fails_the_diff() {
    let two_cells = faults_doc(&[true, true, true, true]).replace(
        "\"points\": [",
        "\"points\": [{\"algorithm\":\"luby\",\"family\":\"er\",\"n\":64,\"seed\":1,\
         \"rounds\":12,\"awake_max\":9,\"awake_avg\":4.5,\"correct\":true,\"failures\":0,\
         \"crashed\":0,\"faulted\":0},",
    );
    let old = write_doc("cov-old.json", &two_cells);
    let new = write_doc("cov-new.json", &faults_doc(&[true, true, true, true]));
    let (code, text) = run_diff(&old, &new, &[]);
    assert_eq!(code, Some(1), "a vanished baseline cell must fail:\n{text}");
    assert!(text.contains("MISSING"), "missing cells are called out:\n{text}");
    // The reverse direction is new coverage, which passes.
    let (code, text) = run_diff(&new, &old, &[]);
    assert_eq!(code, Some(0), "new coverage must pass:\n{text}");
    assert!(text.contains("new coverage"));
}
