//! The **virtual binary tree** technique of
//! *"Distributed MIS in O(log log n) Awake Complexity"* (PODC 2023), §5.1.
//!
//! Given a parameter `i`, the virtual full binary tree `B([1,i])` has
//! depth `d = ⌈log₂ i⌉` and `2^(d+1) − 1` nodes labeled by an in-order
//! traversal. Applying `g(x) = ⌊x/2⌋ + 1` to every label yields the tree
//! `B*([1,i])`, whose leaves are labeled `1..=2^d` left to right.
//!
//! For `i = 6` (paper Figure 1):
//!
//! ```text
//!        B([1,6])                      B*([1,6])
//!            8                             5
//!        /       \                     /       \
//!       4         12                  3         7
//!     /   \      /   \              /   \     /   \
//!    2     6   10     14           2     4   6     8
//!   / \   / \  / \    / \         / \   / \ / \   / \
//!  1   3 5   7 9  11 13 15       1   2 3  4 5  6 7   8
//! ```
//!
//! The **communication set** `S_k([1,i])` is the set of `B*` labels of the
//! leaf labeled `k` and all of its ancestors. The two key properties
//! (paper Observations 4 and 5) are:
//!
//! * `|S_k([1,i])| ≤ ⌈log₂ i⌉ + 1` — a node that wakes exactly in the
//!   rounds of its communication set is awake `O(log i)` times;
//! * for any `k < k′` there is a common label `r ∈ S_k ∩ S_k′` with
//!   `k < r ≤ k′` — so if node `k` decides something in round `k`, node
//!   `k′` is guaranteed to hear about it (both awake in round `r`) before
//!   its own decision round `k′`.
//!
//! (The paper states the bound of Observation 4 as `⌈log i⌉`; the exact
//! count including the leaf itself is `⌈log₂ i⌉ + 1` distinct labels in
//! the worst case — e.g. `S_1([1,6]) = {1,2,3,5}` — which is what this
//! crate guarantees and what the awake-complexity accounting uses.)
//!
//! # Example
//!
//! ```
//! use vtree::{communication_set, common_round};
//!
//! // Paper Figure 2: S_3([1,6]) = {3,4,5}, S_5([1,6]) = {5,6,7}.
//! assert_eq!(communication_set(3, 6), vec![3, 4, 5]);
//! assert_eq!(communication_set(5, 6), vec![5, 6, 7]);
//! // They meet in round 5, with 3 < 5 <= 5.
//! assert_eq!(common_round(3, 5, 6), 5);
//! ```

/// Depth `d = ⌈log₂ i⌉` of the virtual binary tree `B([1,i])`.
///
/// # Panics
///
/// Panics if `i == 0`.
pub fn depth(i: u64) -> u32 {
    assert!(i >= 1, "virtual tree parameter i must be >= 1");
    if i == 1 {
        0
    } else {
        64 - (i - 1).leading_zeros()
    }
}

/// In-order label in `B([1,i])` of the height-`h` ancestor of the leaf
/// with in-order label `x` (which must be odd).
fn ancestor_label(x: u64, h: u32) -> u64 {
    debug_assert!(x % 2 == 1);
    ((x - 1) >> (h + 1) << (h + 1)) + (1 << h)
}

/// The map `g(x) = ⌊x/2⌋ + 1` from `B` labels to `B*` labels.
fn g(x: u64) -> u64 {
    x / 2 + 1
}

/// The communication set `S_k([1,i])`: sorted, deduplicated `B*` labels of
/// the leaf `k` and its ancestors.
///
/// Labels can exceed `i` (they range up to `2^(d-1) + 1`); callers using
/// them as round numbers in `[1, i]` should use [`wake_rounds`] instead.
///
/// # Panics
///
/// Panics if `k` is not in `[1, i]`.
pub fn communication_set(k: u64, i: u64) -> Vec<u64> {
    assert!(k >= 1 && k <= i, "k = {k} out of range [1, {i}]");
    let d = depth(i);
    let x = 2 * k - 1; // in-order label of leaf k in B([1,i])
    let mut set: Vec<u64> = (0..=d).map(|h| g(ancestor_label(x, h))).collect();
    set.sort_unstable();
    set.dedup();
    set
}

/// `S_k([1,i]) ∩ [1, i]`: the actual rounds in which the node with ID `k`
/// is awake when running a virtual-tree-coordinated algorithm over `i`
/// rounds. Sorted ascending; always contains `k` itself.
pub fn wake_rounds(k: u64, i: u64) -> Vec<u64> {
    let mut s = communication_set(k, i);
    s.retain(|&r| r <= i);
    s
}

/// `|wake_rounds(k, i)|` without allocating: the number of rounds in
/// `[1, i]` in which the node with ID `k` is awake. Useful for ranking
/// IDs by schedule length (e.g. adversarial worst-case ID assignment)
/// where materializing every schedule would be wasteful.
///
/// # Panics
///
/// Panics if `k` is not in `[1, i]`.
pub fn wake_count(k: u64, i: u64) -> usize {
    assert!(k >= 1 && k <= i, "k = {k} out of range [1, {i}]");
    let d = depth(i);
    let x = 2 * k - 1;
    // At most 65 ancestor labels (d <= 64); dedup in a fixed buffer.
    let mut seen = [0u64; 65];
    let mut count = 0usize;
    for h in 0..=d {
        let lab = g(ancestor_label(x, h));
        if lab <= i && !seen[..count].contains(&lab) {
            seen[count] = lab;
            count += 1;
        }
    }
    count
}

/// A common label `r ∈ S_k ∩ S_k′` with `k < r ≤ k′` as guaranteed by
/// Observation 5 — the `B*` label of the lowest common ancestor of leaves
/// `k` and `k′`.
///
/// # Panics
///
/// Panics unless `1 ≤ k < k′ ≤ i`.
pub fn common_round(k: u64, kp: u64, i: u64) -> u64 {
    assert!(k >= 1 && k < kp && kp <= i, "need 1 <= k < k' <= i, got k={k} k'={kp} i={i}");
    let d = depth(i);
    let x = 2 * k - 1;
    let y = 2 * kp - 1;
    for h in 0..=d {
        let a = ancestor_label(x, h);
        if a == ancestor_label(y, h) {
            return g(a);
        }
    }
    unreachable!("the root is a common ancestor of all leaves")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_values() {
        assert_eq!(depth(1), 0);
        assert_eq!(depth(2), 1);
        assert_eq!(depth(3), 2);
        assert_eq!(depth(4), 2);
        assert_eq!(depth(5), 3);
        assert_eq!(depth(6), 3);
        assert_eq!(depth(8), 3);
        assert_eq!(depth(9), 4);
        assert_eq!(depth(1 << 20), 20);
    }

    #[test]
    fn paper_figure_examples() {
        // Figure 1/2 of the paper, i = 6.
        assert_eq!(communication_set(3, 6), vec![3, 4, 5]);
        assert_eq!(communication_set(5, 6), vec![5, 6, 7]);
        // S_1([1,6]) includes the whole left spine.
        assert_eq!(communication_set(1, 6), vec![1, 2, 3, 5]);
        // Node with ID 5 must ignore round 7 (only 6 rounds exist).
        assert_eq!(wake_rounds(5, 6), vec![5, 6]);
        assert_eq!(common_round(3, 5, 6), 5);
    }

    #[test]
    fn singleton_tree() {
        assert_eq!(communication_set(1, 1), vec![1]);
        assert_eq!(wake_rounds(1, 1), vec![1]);
    }

    #[test]
    fn observation4_exhaustive() {
        // |S_k| <= ceil(log2 i) + 1 for all k <= i <= 512.
        for i in 1..=512u64 {
            let bound = depth(i) as usize + 1;
            for k in 1..=i {
                let s = communication_set(k, i);
                assert!(s.len() <= bound, "|S_{k}([1,{i}])| = {} > {bound}", s.len());
                assert!(s.contains(&k), "S_k must contain k itself");
            }
        }
    }

    #[test]
    fn observation5_exhaustive() {
        // For all k < k' <= i <= 96: some r in both sets with k < r <= k'.
        for i in 1..=96u64 {
            for k in 1..i {
                let sk = communication_set(k, i);
                for kp in (k + 1)..=i {
                    let skp = communication_set(kp, i);
                    let r = common_round(k, kp, i);
                    assert!(sk.contains(&r), "r={r} not in S_{k}([1,{i}])");
                    assert!(skp.contains(&r), "r={r} not in S_{kp}([1,{i}])");
                    assert!(k < r && r <= kp, "need {k} < {r} <= {kp}");
                    // And r is usable as a round: r <= i because r <= k' <= i.
                    assert!(r <= i);
                }
            }
        }
    }

    #[test]
    fn wake_count_matches_wake_rounds() {
        for i in [1u64, 2, 3, 6, 7, 8, 9, 64, 100, 127, 128, 129, 1000, 6144] {
            for k in (1..=i).step_by((i as usize / 97).max(1)) {
                assert_eq!(
                    wake_count(k, i),
                    wake_rounds(k, i).len(),
                    "mismatch at k={k} i={i}"
                );
            }
        }
    }

    #[test]
    fn wake_rounds_always_contains_own_id() {
        for i in [1u64, 2, 3, 7, 8, 9, 100, 1000] {
            for k in 1..=i.min(64) {
                assert!(wake_rounds(k, i).contains(&k));
            }
        }
    }
}
