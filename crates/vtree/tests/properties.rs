//! Property tests for the virtual binary tree communication sets
//! (paper Observations 4 and 5) on large random instances.

use proptest::prelude::*;
use vtree::{common_round, communication_set, depth, wake_rounds};

proptest! {
    /// Observation 4 (`+1` form): |S_k([1,i])| <= ceil(log2 i) + 1.
    #[test]
    fn observation4(i in 1u64..1_000_000, k_frac in 0.0f64..1.0) {
        let k = 1 + ((i - 1) as f64 * k_frac) as u64;
        let s = communication_set(k, i);
        prop_assert!(s.len() <= depth(i) as usize + 1);
        prop_assert!(s.contains(&k));
        // Sorted and deduplicated.
        prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    /// Observation 5: for k < k' there is a common label r with k < r <= k'.
    #[test]
    fn observation5(i in 2u64..1_000_000, a_frac in 0.0f64..1.0, b_frac in 0.0f64..1.0) {
        let a = 1 + ((i - 1) as f64 * a_frac) as u64;
        let b = 1 + ((i - 1) as f64 * b_frac) as u64;
        prop_assume!(a != b);
        let (k, kp) = (a.min(b), a.max(b));
        let r = common_round(k, kp, i);
        prop_assert!(k < r && r <= kp);
        prop_assert!(communication_set(k, i).contains(&r));
        prop_assert!(communication_set(kp, i).contains(&r));
    }

    /// Wake rounds are exactly the communication set clipped to [1, i],
    /// and every element beyond i that gets clipped is > i.
    #[test]
    fn wake_rounds_clip(i in 1u64..100_000, k_frac in 0.0f64..1.0) {
        let k = 1 + ((i - 1) as f64 * k_frac) as u64;
        let s = communication_set(k, i);
        let w = wake_rounds(k, i);
        prop_assert!(w.iter().all(|&r| r >= 1 && r <= i));
        prop_assert_eq!(
            w.clone(),
            s.iter().copied().filter(|&r| r <= i).collect::<Vec<_>>()
        );
    }

    /// The awake-round count of VT-coordinated algorithms: summing over
    /// all k, the total size of all wake sets is O(i log i) — each round
    /// r is in at most O(2^h) sets at height h... concretely we check the
    /// global bound sum_k |S_k| <= i * (log2(i) + 2).
    #[test]
    fn total_wake_budget(i in 1u64..2_000) {
        let total: usize = (1..=i).map(|k| wake_rounds(k, i).len()).sum();
        prop_assert!(total as u64 <= i * (depth(i) as u64 + 2));
    }
}
