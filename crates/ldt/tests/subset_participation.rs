//! Construction over a *subset* of nodes — the exact situation inside
//! `Awake-MIS`, where only a batch's undecided nodes participate and
//! everyone else sleeps. Non-participants here terminate instantly, so
//! their silence (and the loss of any message sent to them) is part of
//! the test.

use graphgen::{generators, Graph, Port};
use ldt::construct::{ConstructAwake, ConstructParams};
use ldt::verify::verify_fldt;
use ldt::{ConstructMsg, LdtOutput, PortInfo, TreeState};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sleeping_congest::{
    Action, NodeCtx, Outbox, Protocol, SimConfig, Simulator, SubAction, SubProtocol,
};

/// Runs `ConstructAwake` when participating, terminates at round 0
/// otherwise.
#[allow(clippy::large_enum_variant)]
enum MaybeBuild {
    Out(ConstructAwake, bool),
    Sleep,
}

impl Protocol for MaybeBuild {
    type Msg = ConstructMsg;
    type Output = Option<LdtOutput>;

    fn send(&mut self, ctx: &mut NodeCtx) -> Outbox<ConstructMsg> {
        match self {
            MaybeBuild::Out(c, _) => {
                let r = ctx.round;
                c.send(r, ctx)
            }
            MaybeBuild::Sleep => Outbox::Silent,
        }
    }

    fn receive(&mut self, ctx: &mut NodeCtx, inbox: &[(Port, ConstructMsg)]) -> Action {
        match self {
            MaybeBuild::Out(c, done) => {
                let r = ctx.round;
                match c.receive(r, ctx, inbox) {
                    SubAction::Continue => Action::Continue,
                    SubAction::SleepUntil(t) => Action::SleepUntil(t),
                    SubAction::Done => {
                        *done = true;
                        Action::Terminate
                    }
                }
            }
            MaybeBuild::Sleep => Action::Terminate,
        }
    }

    fn output(&self) -> Option<LdtOutput> {
        match self {
            MaybeBuild::Out(c, true) => Some(c.output()),
            MaybeBuild::Out(_, false) => panic!("participant did not finish"),
            MaybeBuild::Sleep => None,
        }
    }
}

fn run_subset(g: &Graph, participants: &[bool], seed: u64) -> Vec<Option<LdtOutput>> {
    let n = g.n();
    let id_upper = ((n.max(4) as u64).pow(3)).max(1 << 24);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::new();
    let mut ids = Vec::with_capacity(n);
    while ids.len() < n {
        let id = rng.gen_range(1..=id_upper);
        if seen.insert(id) {
            ids.push(id);
        }
    }
    let nodes = (0..n)
        .map(|v| {
            if participants[v] {
                MaybeBuild::Out(
                    ConstructAwake::new(ConstructParams {
                        my_id: ids[v],
                        id_upper,
                        k: n as u32,
                    }),
                    false,
                )
            } else {
                MaybeBuild::Sleep
            }
        })
        .collect();
    Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run().expect("run").outputs
}

/// Fills non-participant slots with harmless placeholders so
/// `verify_fldt` (which indexes all nodes) can run.
fn unwrap_outputs(outs: Vec<Option<LdtOutput>>) -> Vec<LdtOutput> {
    outs.into_iter()
        .map(|o| {
            o.unwrap_or(LdtOutput {
                ok: true,
                tree: TreeState::singleton(1),
                ports: Vec::new(),
                phases_used: 0,
            })
        })
        .collect()
}

#[test]
fn half_the_cycle_participates() {
    // Alternating participants on a cycle: all participating components
    // are singletons (their neighbors sleep).
    let n = 16;
    let g = generators::cycle(n);
    let participants: Vec<bool> = (0..n).map(|v| v % 2 == 0).collect();
    let outs = unwrap_outputs(run_subset(&g, &participants, 1));
    verify_fldt(&g, &outs, &participants).unwrap();
    for v in (0..n).filter(|v| v % 2 == 0) {
        assert!(outs[v].tree.is_root() && outs[v].tree.is_leaf(), "node {v} should be isolated");
    }
}

#[test]
fn contiguous_arcs_participate() {
    // Participants form arcs of different lengths on a cycle: each arc
    // becomes one LDT.
    let n = 24;
    let g = generators::cycle(n);
    let mut participants = vec![false; n];
    participants[0..5].fill(true); // arc of 5
    participants[10..12].fill(true); // arc of 2
    participants[18] = true; // singleton
    let outs = unwrap_outputs(run_subset(&g, &participants, 2));
    verify_fldt(&g, &outs, &participants).unwrap();
    // The 5-arc shares one root id across its nodes.
    let arc_ids: std::collections::HashSet<u64> =
        (0..5).map(|v| outs[v].tree.root_id).collect();
    assert_eq!(arc_ids.len(), 1);
    // The 2-arc has its own.
    assert_eq!(outs[10].tree.root_id, outs[11].tree.root_id);
    assert_ne!(outs[10].tree.root_id, outs[0].tree.root_id);
}

#[test]
fn random_subsets_on_random_graphs() {
    let mut rng = SmallRng::seed_from_u64(3);
    for trial in 0..5 {
        let g = generators::gnp(40, 0.12, &mut rng);
        let participants: Vec<bool> = (0..40).map(|_| rng.gen_bool(0.5)).collect();
        if participants.iter().filter(|&&b| b).count() == 0 {
            continue;
        }
        let outs = unwrap_outputs(run_subset(&g, &participants, trial));
        verify_fldt(&g, &outs, &participants)
            .unwrap_or_else(|e| panic!("trial {trial}: {e}"));
    }
}

#[test]
fn participants_know_their_live_ports() {
    let n = 12;
    let g = generators::complete(n);
    let participants: Vec<bool> = (0..n).map(|v| v < 6).collect();
    let outs = run_subset(&g, &participants, 4);
    for (v, slot) in outs.iter().enumerate().take(6) {
        let out = slot.as_ref().unwrap();
        // Exactly the 5 other participants are marked live.
        let live: Vec<PortInfo> =
            out.ports.iter().copied().filter(|pi| pi.participant).collect();
        assert_eq!(live.len(), 5, "node {v} sees {} live ports", live.len());
    }
}
