//! End-to-end tests: run both LDT construction strategies through the
//! SLEEPING-CONGEST simulator on a zoo of graphs and validate the
//! resulting forests, awake complexities, and determinism.

use graphgen::{generators, Graph};
use ldt::construct::{awake_round_budget, ConstructAwake, ConstructParams, LdtOutput};
use ldt::construct_round::{round_round_budget, ConstructRound};
use ldt::ops::{LdtBroadcast, LdtRanking};
use ldt::verify::verify_fldt;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sleeping_congest::{Metrics, SimConfig, Simulator, Standalone};

/// Distinct random IDs in `[1, upper]`.
fn draw_ids(n: usize, upper: u64, seed: u64) -> Vec<u64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::new();
    let mut ids = Vec::with_capacity(n);
    while ids.len() < n {
        let id = rng.gen_range(1..=upper);
        if seen.insert(id) {
            ids.push(id);
        }
    }
    ids
}

fn id_upper(n: usize) -> u64 {
    let n = n.max(2) as u64;
    (n * n * n).max(1 << 24)
}

fn run_awake(g: &Graph, seed: u64) -> (Vec<LdtOutput>, Metrics) {
    let n = g.n();
    let ids = draw_ids(n, id_upper(n), seed ^ 0xABCD);
    let nodes = (0..n)
        .map(|v| {
            Standalone::new(ConstructAwake::new(ConstructParams {
                my_id: ids[v],
                id_upper: id_upper(n),
                k: n.max(1) as u32,
            }))
        })
        .collect();
    let report = Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run().expect("run");
    (report.outputs, report.metrics)
}

fn run_round(g: &Graph, seed: u64) -> (Vec<LdtOutput>, Metrics) {
    let n = g.n();
    let ids = draw_ids(n, id_upper(n), seed ^ 0xABCD);
    let nodes = (0..n)
        .map(|v| {
            Standalone::new(ConstructRound::new(ConstructParams {
                my_id: ids[v],
                id_upper: id_upper(n),
                k: n.max(1) as u32,
            }))
        })
        .collect();
    let report = Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run().expect("run");
    (report.outputs, report.metrics)
}

fn zoo(seed: u64) -> Vec<(String, Graph)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut graphs: Vec<(String, Graph)> = vec![
        ("single".into(), Graph::empty(1)),
        ("pair".into(), generators::path(2)),
        ("path16".into(), generators::path(16)),
        ("cycle9".into(), generators::cycle(9)),
        ("star12".into(), generators::star(12)),
        ("clique8".into(), generators::complete(8)),
        ("grid4x5".into(), generators::grid(4, 5)),
        ("btree15".into(), generators::binary_tree(15)),
        (
            "forest".into(),
            generators::disjoint_union(&[
                generators::path(5),
                generators::cycle(4),
                Graph::empty(3),
                generators::complete(4),
            ]),
        ),
    ];
    graphs.push(("tree30".into(), generators::random_tree(30, &mut rng)));
    graphs.push(("gnp40".into(), generators::gnp(40, 0.12, &mut rng)));
    graphs.push(("gnp25-dense".into(), generators::gnp(25, 0.4, &mut rng)));
    graphs
}

#[test]
fn awake_strategy_builds_valid_forests() {
    for (name, g) in zoo(11) {
        for seed in [1u64, 2, 3] {
            let (outs, _) = run_awake(&g, seed);
            let all = vec![true; g.n()];
            verify_fldt(&g, &outs, &all)
                .unwrap_or_else(|e| panic!("awake strategy on {name} (seed {seed}): {e}"));
        }
    }
}

#[test]
fn round_strategy_builds_valid_forests() {
    for (name, g) in zoo(17) {
        for seed in [4u64, 5] {
            let (outs, _) = run_round(&g, seed);
            let all = vec![true; g.n()];
            verify_fldt(&g, &outs, &all)
                .unwrap_or_else(|e| panic!("round strategy on {name} (seed {seed}): {e}"));
        }
    }
}

#[test]
fn awake_complexity_is_logarithmic() {
    // The awake strategy must stay within O(log n) awake rounds; test a
    // generous explicit constant across sizes (shape check: the measured
    // kind of growth is what matters, and it must hold on every topology).
    for n in [8usize, 32, 128] {
        let g = generators::cycle(n);
        let (_, m) = run_awake(&g, 7);
        let log2n = (n as f64).log2();
        let bound = 16.0 * (log2n + 2.0);
        assert!(
            (m.awake_complexity() as f64) < bound,
            "n = {n}: awake {} exceeds {bound}",
            m.awake_complexity()
        );
    }
}

#[test]
fn round_budget_honored() {
    for (name, g) in zoo(23) {
        let n = g.n().max(1) as u32;
        let (_, m_awake) = run_awake(&g, 9);
        assert!(
            m_awake.round_complexity() <= awake_round_budget(n),
            "{name}: awake strategy used {} rounds, budget {}",
            m_awake.round_complexity(),
            awake_round_budget(n)
        );
        let (_, m_round) = run_round(&g, 9);
        assert!(
            m_round.round_complexity() <= round_round_budget(n, id_upper(g.n())),
            "{name}: round strategy used {} rounds, budget {}",
            m_round.round_complexity(),
            round_round_budget(n, id_upper(g.n()))
        );
    }
}

#[test]
fn construction_is_deterministic() {
    let g = generators::gnp(30, 0.15, &mut SmallRng::seed_from_u64(5));
    let (a, ma) = run_awake(&g, 42);
    let (b, mb) = run_awake(&g, 42);
    assert_eq!(a, b);
    assert_eq!(ma.awake_rounds, mb.awake_rounds);
    let (c, _) = run_awake(&g, 43);
    // Different seed: overwhelmingly likely to differ somewhere (coins).
    assert!(a != c || a.iter().all(|o| o.tree.children_ports.is_empty()));
}

#[test]
fn ranking_after_construction_is_a_permutation() {
    for (name, g) in zoo(31) {
        let (outs, _) = run_awake(&g, 13);
        let n = g.n();
        let k = n.max(1) as u32;
        let nodes = (0..n)
            .map(|v| Standalone::new(LdtRanking::new(k, outs[v].tree.clone())))
            .collect();
        let report =
            Simulator::new(g.clone(), nodes, SimConfig::seeded(99)).run().expect("ranking run");
        // Group ranks by tree (root id); each tree's ranks must be a
        // permutation of 1..=size and totals must equal the tree size.
        let mut by_tree: std::collections::HashMap<u64, Vec<u64>> = Default::default();
        for v in 0..n {
            let r = &report.outputs[v];
            by_tree.entry(outs[v].tree.root_id).or_default().push(r.rank);
            assert_eq!(
                r.total,
                outs.iter().filter(|o| o.tree.root_id == outs[v].tree.root_id).count() as u64,
                "{name}: node {v} learned wrong tree size"
            );
        }
        for (root, mut ranks) in by_tree {
            ranks.sort_unstable();
            let want: Vec<u64> = (1..=ranks.len() as u64).collect();
            assert_eq!(ranks, want, "{name}: tree {root} ranks not a permutation");
        }
        // Ranking costs O(1) awake rounds: at most the start round plus
        // up-receive, up-send, down-receive, down-send.
        assert!(
            report.metrics.awake_complexity() <= 5,
            "{name}: ranking awake complexity {}",
            report.metrics.awake_complexity()
        );
    }
}

#[test]
fn broadcast_reaches_every_node_in_constant_awake() {
    let g = generators::path(40);
    let (outs, _) = run_awake(&g, 21);
    let n = g.n();
    let payload = 0xDEAD_BEEFu64;
    let nodes = (0..n)
        .map(|v| {
            let t = outs[v].tree.clone();
            let p = t.is_root().then_some(payload);
            Standalone::new(LdtBroadcast::new(t, p))
        })
        .collect();
    let report = Simulator::new(g, nodes, SimConfig::seeded(1)).run().expect("broadcast run");
    assert!(report.outputs.iter().all(|&v| v == payload));
    assert!(report.metrics.awake_complexity() <= 3);
}

#[test]
fn round_strategy_is_deterministic_across_seeds() {
    // The round strategy uses no randomness: different simulator seeds
    // must yield identical trees (for identical IDs).
    let g = generators::gnp(24, 0.2, &mut SmallRng::seed_from_u64(77));
    let ids = draw_ids(24, id_upper(24), 123);
    let run = |seed: u64| {
        let nodes = (0..24)
            .map(|v| {
                Standalone::new(ConstructRound::new(ConstructParams {
                    my_id: ids[v],
                    id_upper: id_upper(24),
                    k: 24,
                }))
            })
            .collect();
        Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run().unwrap().outputs
    };
    assert_eq!(run(1), run(999));
}

#[test]
fn phases_used_grows_slowly() {
    // Doubling n adds O(1) phases for the round strategy (deterministic
    // halving) — check monotone-ish small values.
    for (n, max_phases) in [(4usize, 4u64), (16, 6), (64, 8)] {
        let g = generators::path(n);
        let (outs, _) = run_round(&g, 3);
        let used = outs.iter().map(|o| o.phases_used).max().unwrap();
        assert!(used <= max_phases, "n = {n}: {used} phases > {max_phases}");
    }
}
