//! Property tests for the LDT substrate: schedule alignment laws,
//! construction validity over random graphs, and ranking correctness
//! over randomly built trees.

use graphgen::{generators, Graph};
use ldt::construct::{ConstructAwake, ConstructParams};
use ldt::construct_round::ConstructRound;
use ldt::ops::LdtRanking;
use ldt::schedule::Schedule;
use ldt::verify::verify_fldt;
use ldt::wave::WaveSchedule;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sleeping_congest::{SimConfig, Simulator, Standalone};

proptest! {
    /// Standard-schedule alignment laws hold for every bound and depth.
    #[test]
    fn schedule_alignment(k in 1u32..200, depth in 1u32..200) {
        prop_assume!(depth < k);
        let s = Schedule::new(k);
        prop_assert_eq!(s.down_receive(depth), s.down_send(depth - 1));
        prop_assert_eq!(s.up_receive(depth - 1), s.up_send(depth));
        // All offsets inside the block.
        for off in [s.down_receive(depth), s.down_send(depth), s.up_receive(depth), s.up_send(depth)].into_iter().flatten() {
            prop_assert!(off < s.block_len());
        }
    }

    /// Wave-schedule alignment laws.
    #[test]
    fn wave_alignment(k in 1u32..200, depth in 1u32..200) {
        prop_assume!(depth < k);
        let w = WaveSchedule::new(k);
        prop_assert_eq!(w.up_send(depth), w.up_receive(depth - 1));
        prop_assert_eq!(w.down_send(depth - 1), w.down_receive(depth));
        // The up wave fully precedes the down wave at every depth pair.
        if let (Some(us), Some(ds)) = (w.up_send(depth), w.down_send(depth)) {
            prop_assert!(us < ds);
        }
    }
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..36, any::<u64>(), 0.05f64..0.4).prop_map(|(n, seed, p)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        generators::gnp(n, p, &mut rng)
    })
}

fn distinct_ids(n: usize, upper: u64, seed: u64) -> Vec<u64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::new();
    let mut ids = Vec::with_capacity(n);
    while ids.len() < n {
        let id = rng.gen_range(1..=upper);
        if seen.insert(id) {
            ids.push(id);
        }
    }
    ids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The awake strategy builds a valid FLDT on arbitrary graphs.
    #[test]
    fn awake_construction_valid(g in arb_graph(), seed in any::<u64>()) {
        let n = g.n();
        let upper = ((n.max(4) as u64).pow(3)).max(1 << 24);
        let ids = distinct_ids(n, upper, seed);
        let nodes = (0..n)
            .map(|v| Standalone::new(ConstructAwake::new(ConstructParams {
                my_id: ids[v], id_upper: upper, k: n as u32,
            })))
            .collect();
        let rep = Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run().unwrap();
        let all = vec![true; n];
        prop_assert!(verify_fldt(&g, &rep.outputs, &all).is_ok());
    }

    /// The round strategy builds a valid FLDT on arbitrary graphs, and
    /// within the deterministic phase bound.
    #[test]
    fn round_construction_valid(g in arb_graph(), seed in any::<u64>()) {
        let n = g.n();
        let upper = ((n.max(4) as u64).pow(3)).max(1 << 24);
        let ids = distinct_ids(n, upper, seed);
        let nodes = (0..n)
            .map(|v| Standalone::new(ConstructRound::new(ConstructParams {
                my_id: ids[v], id_upper: upper, k: n as u32,
            })))
            .collect();
        let rep = Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run().unwrap();
        let all = vec![true; n];
        prop_assert!(verify_fldt(&g, &rep.outputs, &all).is_ok());
        let phases = rep.outputs.iter().map(|o| o.phases_used).max().unwrap();
        prop_assert!(phases <= ldt::construct_round::round_phase_budget(n as u32));
    }

    /// Ranking over any constructed forest yields a rank permutation per
    /// tree with the correct totals.
    #[test]
    fn ranking_is_permutation(g in arb_graph(), seed in any::<u64>()) {
        let n = g.n();
        let upper = ((n.max(4) as u64).pow(3)).max(1 << 24);
        let ids = distinct_ids(n, upper, seed);
        let nodes = (0..n)
            .map(|v| Standalone::new(ConstructAwake::new(ConstructParams {
                my_id: ids[v], id_upper: upper, k: n as u32,
            })))
            .collect();
        let built = Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run().unwrap();
        let rank_nodes = (0..n)
            .map(|v| Standalone::new(LdtRanking::new(n as u32, built.outputs[v].tree.clone())))
            .collect();
        let ranked = Simulator::new(g.clone(), rank_nodes, SimConfig::seeded(seed ^ 1)).run().unwrap();
        let mut by_tree: std::collections::HashMap<u64, Vec<u64>> = Default::default();
        for v in 0..n {
            by_tree.entry(built.outputs[v].tree.root_id).or_default().push(ranked.outputs[v].rank);
            prop_assert_eq!(
                ranked.outputs[v].total as usize,
                built.outputs.iter().filter(|o| o.tree.root_id == built.outputs[v].tree.root_id).count()
            );
        }
        for (_, mut ranks) in by_tree {
            ranks.sort_unstable();
            prop_assert_eq!(ranks.clone(), (1..=ranks.len() as u64).collect::<Vec<_>>());
        }
    }
}
