//! Up-then-down **wave blocks**: a round layout that performs a
//! convergecast (leaves → root) followed immediately by a broadcast
//! (root → leaves) inside a single block of `2k + 1` rounds.
//!
//! The paper's transmission schedule ([`crate::schedule::Schedule`]) puts
//! the `Down` rounds *before* the `Up` rounds, which is the right order
//! for broadcast-then-aggregate. Construction phases, however, repeatedly
//! need the opposite composite — *gather a minimum at the root, then
//! scatter the root's decision* — which would cost two standard blocks.
//! A wave block reorders the offsets so the composite fits in one block,
//! halving both the awake cost and the round cost of each construction
//! phase while preserving every property of the schedule (parent/child
//! rounds coincide; every node is awake `O(1)` rounds per block):
//!
//! | name         | offset      | who                        |
//! |--------------|-------------|----------------------------|
//! | `Up-Receive`   | `k − i − 1` | depth `i`, has children    |
//! | `Up-Send`      | `k − i`     | non-root at depth `i`      |
//! | `Down-Send`    | `k + i`     | depth `i`, has children    |
//! | `Down-Receive` | `k + i − 1` | non-root at depth `i`      |

use sleeping_congest::Round;

/// Offsets of a wave block for trees of at most `k` nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaveSchedule {
    k: u32,
}

impl WaveSchedule {
    /// Wave schedule for trees with at most `k >= 1` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: u32) -> WaveSchedule {
        assert!(k >= 1, "wave schedule bound must be at least 1");
        WaveSchedule { k }
    }

    /// The tree-size bound `k`.
    pub fn bound(&self) -> u32 {
        self.k
    }

    /// Length of one wave block.
    pub fn block_len(&self) -> Round {
        2 * self.k as Round + 1
    }

    /// Up-wave receive offset for a node at `depth` (requires children).
    pub fn up_receive(&self, depth: u32) -> Option<Round> {
        (depth < self.k).then(|| (self.k - depth - 1) as Round)
    }

    /// Up-wave send offset for a non-root node at `depth`.
    pub fn up_send(&self, depth: u32) -> Option<Round> {
        (depth >= 1 && depth < self.k).then(|| (self.k - depth) as Round)
    }

    /// Down-wave send offset for a node at `depth` (requires children).
    pub fn down_send(&self, depth: u32) -> Option<Round> {
        (depth < self.k).then(|| (self.k + depth) as Round)
    }

    /// Down-wave receive offset for a non-root node at `depth`.
    pub fn down_receive(&self, depth: u32) -> Option<Round> {
        (depth >= 1 && depth < self.k).then(|| (self.k + depth - 1) as Round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waves_align_parent_child() {
        let w = WaveSchedule::new(12);
        for depth in 1..12 {
            // Child's Up-Send lands in parent's Up-Receive round.
            assert_eq!(w.up_send(depth), w.up_receive(depth - 1));
            // Parent's Down-Send lands in child's Down-Receive round.
            assert_eq!(w.down_send(depth - 1), w.down_receive(depth));
        }
    }

    #[test]
    fn root_turnaround() {
        let w = WaveSchedule::new(5);
        // Root hears the up wave at k-1 and starts the down wave at k.
        assert_eq!(w.up_receive(0), Some(4));
        assert_eq!(w.down_send(0), Some(5));
        assert_eq!(w.up_send(0), None);
        assert_eq!(w.down_receive(0), None);
    }

    #[test]
    fn offsets_fit_in_block() {
        for k in 1..40u32 {
            let w = WaveSchedule::new(k);
            for depth in 0..k {
                for off in
                    [w.up_receive(depth), w.up_send(depth), w.down_send(depth), w.down_receive(depth)]
                        .into_iter()
                        .flatten()
                {
                    assert!(off < w.block_len());
                }
            }
        }
    }

    #[test]
    fn up_and_down_ranges_disjoint() {
        let w = WaveSchedule::new(9);
        for depth in 0..9 {
            if let (Some(us), Some(ds)) = (w.up_send(depth), w.down_send(depth)) {
                assert!(us < ds);
                assert!(us <= 9 as Round);
                assert!(ds >= 9 as Round);
            }
        }
    }
}
