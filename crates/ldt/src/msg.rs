//! Wire messages for LDT construction and post-construction operations.
//!
//! Sizes are accounted value-wise: a field holding a node ID drawn from
//! `[1, I]` costs `bits_for_value(value) <= ceil(log2 I)` bits, so with
//! IDs drawn from a polynomial range every message is `O(log n)` bits —
//! the CONGEST budget. Enum tags cost [`TAG_BITS`] bits.

use crate::state::EdgeKey;
use sleeping_congest::{bits_for_value, MessageSize};

/// Bits charged for a message's variant tag.
pub const TAG_BITS: usize = 5;

/// Messages exchanged during LDT construction (both strategies).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstructMsg {
    /// Hello round: announce participation and the drawn ID.
    Hello { id: u64 },
    /// Up wave: the minimum outgoing-edge candidate in the subtree.
    UpEdge(Option<EdgeKey>),
    /// Up wave: an optional value (color, SDT minimum, …) combined by min.
    UpValue(Option<u64>),
    /// Up wave: a flag combined by OR.
    UpFlag(bool),
    /// Down wave (awake strategy): the root's phase decision.
    Decision {
        /// The fragment's minimum outgoing edge, if any.
        chosen: Option<EdgeKey>,
        /// Randomized merge role for this phase.
        head: bool,
        /// No outgoing edge: the fragment spans its whole component.
        done: bool,
    },
    /// Down wave: an edge choice (match/attach decisions).
    DownEdge(Option<EdgeKey>),
    /// Down wave: a value (new color, SDT minimum, …).
    DownValue(u64),
    /// Down wave: a flag (root status, matched status, …).
    DownFlag(bool),
    /// Side: head fragment proposes to merge along its chosen edge.
    Propose {
        /// Proposing fragment's ID.
        fragment: u64,
    },
    /// Side: tail fragment accepts a proposal.
    Accept {
        /// The accepting fragment's ID (the merged fragment's new ID).
        root_id: u64,
        /// Depth of the accepting endpoint (the proposer attaches below
        /// it).
        attach_depth: u32,
    },
    /// Side: "my fragment chose the edge on this port" (round strategy).
    Chosen {
        /// Choosing fragment's ID.
        fragment: u64,
    },
    /// Side: fragment color announcement to child fragments.
    Color {
        /// Current Cole–Vishkin color.
        color: u64,
    },
    /// Side: per-phase fragment status used by the matching subphases.
    Status {
        /// Whether the sender's fragment is already matched.
        matched: bool,
        /// The sender's fragment color.
        color: u64,
    },
    /// Side: "my fragment matched with yours via this edge".
    MatchInform,
    /// Side: "my fragment attaches to yours via this edge" (F-edge mark).
    Attach,
    /// Side: "my fragment merged under you through this edge" — the
    /// acknowledgment that lets the receiving endpoint adopt the sender
    /// as a child (round strategy stage 3).
    MergeAck,
    /// Side: SDT minimum exchange between fragments.
    SdtMin {
        /// Smallest fragment ID known in the sender's SDT neighborhood.
        min_id: u64,
    },
    /// Side: merge wavefront status (round strategy stage 3).
    Merged {
        /// Depth of the sending endpoint in the merged tree.
        depth: u32,
        /// The core (new root) ID.
        core: u64,
    },
    /// Wave up: re-rooting wavefront from the attach point to the old
    /// root; `sender_new_depth` is the sender's depth in the merged tree.
    RerootUp {
        /// New tree root (the fragment being merged into).
        new_root: u64,
        /// Sender's depth in the merged tree.
        sender_new_depth: u32,
    },
    /// Wave down: new root/depth dissemination to off-path nodes.
    Update {
        /// New tree root.
        new_root: u64,
        /// Sender's depth in the merged tree.
        sender_new_depth: u32,
    },
    /// Side: post-merge fragment-ID refresh.
    FragId {
        /// The sender's (possibly new) fragment ID.
        root_id: u64,
    },
}

fn edge_bits(e: &Option<EdgeKey>) -> usize {
    1 + e.map_or(0, |e| bits_for_value(e.lo) + bits_for_value(e.hi))
}

impl MessageSize for ConstructMsg {
    fn bits(&self) -> usize {
        TAG_BITS
            + match self {
                ConstructMsg::Hello { id } => bits_for_value(*id),
                ConstructMsg::UpEdge(e) => edge_bits(e),
                ConstructMsg::UpValue(v) => 1 + v.map_or(0, bits_for_value),
                ConstructMsg::UpFlag(_) => 1,
                ConstructMsg::Decision { chosen, .. } => edge_bits(chosen) + 2,
                ConstructMsg::DownEdge(e) => edge_bits(e),
                ConstructMsg::DownValue(v) => bits_for_value(*v),
                ConstructMsg::DownFlag(_) => 1,
                ConstructMsg::Propose { fragment } => bits_for_value(*fragment),
                ConstructMsg::Accept { root_id, attach_depth } => {
                    bits_for_value(*root_id) + bits_for_value(*attach_depth as u64)
                }
                ConstructMsg::Chosen { fragment } => bits_for_value(*fragment),
                ConstructMsg::Color { color } => bits_for_value(*color),
                ConstructMsg::Status { color, .. } => 1 + bits_for_value(*color),
                ConstructMsg::MatchInform | ConstructMsg::Attach | ConstructMsg::MergeAck => 0,
                ConstructMsg::SdtMin { min_id } => bits_for_value(*min_id),
                ConstructMsg::Merged { depth, core } => {
                    bits_for_value(*depth as u64) + bits_for_value(*core)
                }
                ConstructMsg::RerootUp { new_root, sender_new_depth }
                | ConstructMsg::Update { new_root, sender_new_depth } => {
                    bits_for_value(*new_root) + bits_for_value(*sender_new_depth as u64)
                }
                ConstructMsg::FragId { root_id } => bits_for_value(*root_id),
            }
    }
}

/// Messages for post-construction tree operations (broadcast, ranking).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpsMsg<T> {
    /// Broadcast payload relayed down the tree.
    Payload(T),
    /// Ranking, up wave: size of the sender's subtree.
    SubtreeSize(u64),
    /// Ranking, down wave: offset for the receiving child plus the total
    /// tree size.
    RankDown {
        /// Rank offset `x` for the receiving subtree.
        offset: u64,
        /// Total number of nodes in the tree (`n''`).
        total: u64,
    },
}

impl<T: MessageSize> MessageSize for OpsMsg<T> {
    fn bits(&self) -> usize {
        2 + match self {
            OpsMsg::Payload(t) => t.bits(),
            OpsMsg::SubtreeSize(s) => bits_for_value(*s),
            OpsMsg::RankDown { offset, total } => bits_for_value(*offset) + bits_for_value(*total),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_scale_with_values() {
        let small = ConstructMsg::Hello { id: 3 };
        let big = ConstructMsg::Hello { id: 1 << 40 };
        assert!(small.bits() < big.bits());
        assert_eq!(small.bits(), TAG_BITS + 2);
        assert_eq!(big.bits(), TAG_BITS + 41);
    }

    #[test]
    fn edge_messages() {
        let none = ConstructMsg::UpEdge(None);
        let some = ConstructMsg::UpEdge(Some(EdgeKey::new(5, 9)));
        assert_eq!(none.bits(), TAG_BITS + 1);
        assert_eq!(some.bits(), TAG_BITS + 1 + 3 + 4);
    }

    #[test]
    fn ops_messages() {
        assert_eq!(OpsMsg::<u32>::SubtreeSize(15).bits(), 2 + 4);
        assert_eq!(OpsMsg::<u32>::RankDown { offset: 7, total: 16 }.bits(), 2 + 3 + 5);
        assert_eq!(OpsMsg::Payload(1u32).bits(), 2 + 32);
    }

    #[test]
    fn congest_bound_for_polynomial_ids() {
        // With IDs in [1, N^3], N = 2^20, every construct message fits in
        // O(log N) bits.
        let i = (1u64 << 60) - 1;
        let worst = ConstructMsg::Decision {
            chosen: Some(EdgeKey::new(i - 1, i)),
            head: true,
            done: false,
        };
        assert!(worst.bits() <= TAG_BITS + 2 + 1 + 60 + 60);
    }
}
