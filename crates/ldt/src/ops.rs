//! Post-construction LDT operations: broadcast and ranking
//! (paper Definition 8, Lemma 9, Appendix A.3).
//!
//! Both operations cost **O(1) awake rounds** per node and **O(n′)**
//! rounds total, which is what lets `LDT-MIS` assign fresh random IDs to
//! a whole component for the price of a constant number of awake rounds
//! per node.

use crate::msg::OpsMsg;
use crate::state::TreeState;
use crate::wave::WaveSchedule;
use graphgen::Port;
use sleeping_congest::{MessageSize, NodeCtx, Outbox, Round, SubAction, SubProtocol};

/// Round budget of [`LdtBroadcast`] for trees of at most `k` nodes (only
/// the down half of a transmission-schedule block is needed).
pub fn broadcast_len(k: u32) -> Round {
    k as Round
}

/// Round budget of [`LdtRanking`] for trees of at most `k` nodes (an up
/// wave followed by a down wave).
pub fn ranking_len(k: u32) -> Round {
    2 * k as Round
}

/// One-shot broadcast of the root's payload to every node of an LDT.
///
/// Start all tree nodes at local round 0; each node's `Output` is the
/// payload. The root must be constructed with `Some(payload)`, every
/// other node with `None`.
#[derive(Debug, Clone)]
pub struct LdtBroadcast<T> {
    tree: TreeState,
    value: Option<T>,
    finished: bool,
}

impl<T: Clone + MessageSize> LdtBroadcast<T> {
    /// Creates the broadcast participant for one node.
    ///
    /// # Panics
    ///
    /// Panics if a non-root is given a payload or the root is not.
    pub fn new(tree: TreeState, payload: Option<T>) -> LdtBroadcast<T> {
        assert_eq!(
            tree.is_root(),
            payload.is_some(),
            "exactly the root must carry the broadcast payload"
        );
        LdtBroadcast { tree, value: payload, finished: false }
    }

    /// My `Down-Send` local round (depth, since the root sends at 0).
    fn send_round(&self) -> Round {
        self.tree.depth as Round
    }

    /// My `Down-Receive` local round.
    fn recv_round(&self) -> Option<Round> {
        (!self.tree.is_root()).then(|| self.tree.depth as Round - 1)
    }
}

impl<T: Clone + MessageSize> SubProtocol for LdtBroadcast<T> {
    type Msg = OpsMsg<T>;
    type Output = T;

    fn send(&mut self, lr: Round, _ctx: &mut NodeCtx) -> Outbox<Self::Msg> {
        if lr == self.send_round() && !self.tree.children_ports.is_empty() {
            if let Some(v) = &self.value {
                return Outbox::Unicast(
                    self.tree
                        .children_ports
                        .iter()
                        .map(|&p| (p, OpsMsg::Payload(v.clone())))
                        .collect(),
                );
            }
        }
        Outbox::Silent
    }

    fn receive(&mut self, lr: Round, _ctx: &mut NodeCtx, inbox: &[(Port, Self::Msg)]) -> SubAction {
        if Some(lr) == self.recv_round() {
            for (_, m) in inbox {
                if let OpsMsg::Payload(v) = m {
                    self.value = Some(v.clone());
                }
            }
        }
        if lr >= self.send_round() || (self.tree.children_ports.is_empty() && self.value.is_some())
        {
            self.finished = true;
            return SubAction::Done;
        }
        let next = if self.value.is_none() {
            self.recv_round().expect("non-root without payload")
        } else {
            self.send_round()
        };
        if next > lr {
            SubAction::SleepUntil(next)
        } else {
            SubAction::Done
        }
    }

    fn output(&self) -> T {
        assert!(self.finished, "broadcast output read before completion");
        self.value.clone().expect("broadcast did not reach this node")
    }
}

impl<T: Clone + MessageSize> LdtBroadcast<T> {
    /// The received value, or `None` when the schedule completed
    /// without it (possible only under message loss — [`Self::output`]
    /// panics in that case, so fault-tolerant callers use this).
    pub fn try_output(&self) -> Option<T> {
        self.finished.then(|| self.value.clone()).flatten()
    }
}

/// A node's result from [`LdtRanking`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankResult {
    /// This node's 1-based rank in the tree's total order.
    pub rank: u64,
    /// The exact number of nodes in the tree (`n″`).
    pub total: u64,
}

/// Computes a total order of the LDT's nodes and the exact tree size
/// (paper Appendix A.3): an up wave aggregates subtree sizes, a down wave
/// distributes rank offsets. The order visits, recursively, the
/// lowest-port subtree, then the node, then its remaining subtrees.
#[derive(Debug, Clone)]
pub struct LdtRanking {
    wave: WaveSchedule,
    tree: TreeState,
    child_sizes: Vec<(Port, u64)>,
    result: Option<RankResult>,
    finished: bool,
}

impl LdtRanking {
    /// Creates the ranking participant for one node of a tree with at
    /// most `k` nodes.
    pub fn new(k: u32, tree: TreeState) -> LdtRanking {
        LdtRanking {
            wave: WaveSchedule::new(k),
            tree,
            child_sizes: Vec::new(),
            result: None,
            finished: false,
        }
    }

    fn subtree_size(&self) -> u64 {
        1 + self.child_sizes.iter().map(|&(_, s)| s).sum::<u64>()
    }

    /// Rank from the received offset `x`: skip the first child's subtree.
    fn my_rank(&self, x: u64) -> u64 {
        let n1 = self.child_sizes.first().map_or(0, |&(_, s)| s);
        x + n1 + 1
    }

    /// Offsets sent to children: the first child inherits `x`; child `i`
    /// gets `x + 1 + Σ_{j<i} n_j`.
    fn child_offsets(&self, x: u64) -> Vec<(Port, u64)> {
        let mut out = Vec::with_capacity(self.child_sizes.len());
        let mut acc = 0u64;
        for (i, &(p, s)) in self.child_sizes.iter().enumerate() {
            if i == 0 {
                out.push((p, x));
            } else {
                out.push((p, x + 1 + acc));
            }
            acc += s;
        }
        out
    }

    fn wakes(&self) -> Vec<Round> {
        let d = self.tree.depth;
        let mut wakes: Vec<Round> = Vec::new();
        if !self.tree.children_ports.is_empty() || self.tree.is_root() {
            wakes.extend(self.wave.up_receive(d));
        }
        if !self.tree.is_root() {
            wakes.extend(self.wave.up_send(d));
            wakes.extend(self.wave.down_receive(d));
        }
        if !self.tree.children_ports.is_empty() {
            wakes.extend(self.wave.down_send(d));
        }
        wakes
    }

    /// First local round this node must be awake in (0 for a singleton
    /// tree, which resolves immediately).
    pub fn first_wake(&self) -> Round {
        if self.tree.is_root() && self.tree.is_leaf() {
            0
        } else {
            self.wakes().into_iter().min().expect("non-singleton trees have wake rounds")
        }
    }

    fn plan(&self, lr: Round) -> SubAction {
        match self.wakes().into_iter().filter(|&w| w > lr).min() {
            Some(w) => SubAction::SleepUntil(w),
            None => SubAction::Done,
        }
    }
}

impl SubProtocol for LdtRanking {
    type Msg = OpsMsg<()>;
    type Output = RankResult;

    fn send(&mut self, lr: Round, _ctx: &mut NodeCtx) -> Outbox<Self::Msg> {
        let d = self.tree.depth;
        if Some(lr) == self.wave.up_send(d) && !self.tree.is_root() {
            Outbox::Unicast(vec![(
                self.tree.parent_port.expect("non-root has a parent"),
                OpsMsg::SubtreeSize(self.subtree_size()),
            )])
        } else if Some(lr) == self.wave.down_send(d) && !self.tree.children_ports.is_empty() {
            let (x, total) = match self.result {
                Some(r) => (r.rank - 1 - self.child_sizes.first().map_or(0, |&(_, s)| s), r.total),
                // Our own rank never arrived (possible only under
                // message loss): stay silent and let the subtree fail
                // observably too.
                None => return Outbox::Silent,
            };
            Outbox::Unicast(
                self.child_offsets(x)
                    .into_iter()
                    .map(|(p, off)| (p, OpsMsg::RankDown { offset: off, total }))
                    .collect(),
            )
        } else {
            Outbox::Silent
        }
    }

    fn receive(&mut self, lr: Round, _ctx: &mut NodeCtx, inbox: &[(Port, Self::Msg)]) -> SubAction {
        let d = self.tree.depth;
        if lr == 0 && self.tree.is_root() && self.tree.is_leaf() {
            // Singleton tree: rank 1 of 1.
            self.result = Some(RankResult { rank: 1, total: 1 });
            self.finished = true;
            return SubAction::Done;
        }
        if Some(lr) == self.wave.up_receive(d) {
            for &(p, ref m) in inbox {
                if let OpsMsg::SubtreeSize(s) = m {
                    self.child_sizes.push((p, *s));
                }
            }
            self.child_sizes.sort_unstable_by_key(|&(p, _)| p);
            if self.tree.is_root() {
                let total = self.subtree_size();
                self.result = Some(RankResult { rank: self.my_rank(0), total });
            }
        } else if Some(lr) == self.wave.down_receive(d) {
            for (_, m) in inbox {
                if let OpsMsg::RankDown { offset, total } = m {
                    self.result = Some(RankResult { rank: self.my_rank(*offset), total: *total });
                }
            }
        }
        let action = self.plan(lr);
        if action == SubAction::Done {
            self.finished = true;
        }
        action
    }

    fn output(&self) -> RankResult {
        assert!(self.finished, "ranking output read before completion");
        self.result.expect("ranking did not reach this node")
    }
}

impl LdtRanking {
    /// The computed rank, or `None` when the schedule completed without
    /// one (possible only under message loss — [`SubProtocol::output`]
    /// panics in that case, so fault-tolerant callers use this).
    pub fn try_output(&self) -> Option<RankResult> {
        self.finished.then_some(self.result).flatten()
    }
}
