//! Round-efficient deterministic LDT construction
//! (`LDT-Construct-Round`, paper Appendix A.2).
//!
//! Like [`crate::construct::ConstructAwake`], fragments merge in phases;
//! unlike it, merging is **deterministic**: every phase *every* fragment
//! merges with at least one other (so `⌈log₂ n′⌉ + 1` phases always
//! suffice), at the price of an `O(log* I)` factor in awake complexity
//! from simulating a Cole–Vishkin coloring of the fragment supergraph.
//!
//! Each phase follows the paper's three stages:
//!
//! 1. **Stage 1** — every fragment finds its minimum outgoing edge
//!    (gather/scatter wave), marks it across the cut (side round), and
//!    detects *core edges* (edges chosen from both sides). The smaller-ID
//!    fragment of each core edge is the root of its supergraph tree
//!    `T_i`.
//! 2. **Stage 2** — the fragments of each `T_i` 6-color themselves with
//!    Cole–Vishkin steps (each step: a side round moving parent colors
//!    across edges plus a wave updating the fragment color), compute a
//!    maximal matching in 6 color-indexed subphases, and unmatched
//!    fragments attach to their parent (the root attaches to a child).
//!    The matched/attach edges form a forest of small-depth trees (SDTs,
//!    diameter ≤ 4).
//! 3. **Stage 3** — each SDT elects its minimum fragment ID as the core
//!    (5 side+wave iterations cover diameter 4), then merges onto the
//!    core in 4 re-rooting waves, exactly as in the awake strategy.
//!
//! Every node is awake `O(log* I)` rounds per phase, giving
//! `O(log n′ · log* I)` awake complexity and `O(n′ log n′ log* I)` round
//! complexity — the shape of paper Lemma 7 / Lemma 15.

use crate::construct::{ceil_log2, ConstructParams, LdtOutput};
use crate::msg::ConstructMsg;
use crate::state::{EdgeKey, PortInfo, TreeState};
use crate::wave::WaveSchedule;
use graphgen::Port;
use sleeping_congest::{NodeCtx, Outbox, Round, SubAction, SubProtocol};

/// Number of Cole–Vishkin iterations needed to reach 6 colors starting
/// from colors below `2^initial_bits`.
pub fn cv_iterations(initial_bits: u32) -> u32 {
    let mut max_color: u64 = if initial_bits >= 64 { u64::MAX } else { (1u64 << initial_bits) - 1 };
    let mut iters = 0;
    while max_color > 5 {
        let bits = 64 - max_color.leading_zeros() as u64;
        max_color = 2 * (bits - 1) + 1;
        iters += 1;
    }
    iters
}

/// One Cole–Vishkin color-reduction step: the index of the lowest bit
/// where `own` and `parent` differ, shifted up, plus that bit of `own`.
pub fn cv_step(own: u64, parent: u64) -> u64 {
    let idx = (own ^ parent).trailing_zeros().min(63) as u64;
    2 * idx + ((own >> idx) & 1)
}

/// Phases provisioned for components of at most `k` nodes (fragment
/// count at least halves every phase).
pub fn round_phase_budget(k: u32) -> u64 {
    ceil_log2(k.max(2) as u64) + 2
}

/// The op sequence of one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ROp {
    /// Wave: min outgoing edge → decision.
    GsDecide,
    /// Side: mark chosen edges across cuts; detect core edges.
    SideChosen,
    /// Wave: determine whether this fragment roots its `T_i`.
    GsRootFlag,
    /// Side: move parent colors down `T_i` edges.
    SideColor,
    /// Wave: apply one Cole–Vishkin step.
    GsColor,
    /// Side: children report (matched, color) to parents.
    SideStatus,
    /// Wave: fragments of this color pick an unmatched child.
    GsMatch(u8),
    /// Side: tell the picked child it is matched.
    SideMatchInform,
    /// Wave: disseminate "we got matched" inside the child fragment.
    GsGotMatched,
    /// Wave: unmatched `T_i` roots pick a child to attach to.
    GsRootAttach,
    /// Side: mark attach edges (F-edges) across cuts.
    SideAttach,
    /// Side: exchange SDT minima across F-edges.
    SideSdtMin,
    /// Wave: fold SDT minima into the fragment register.
    GsSdtMin,
    /// Side: merged fragments announce (depth, core) over F-edges.
    SideMerged,
    /// Side: attaching endpoints acknowledge, so the merged side adopts
    /// them as children.
    SideMergeAck,
    /// Wave: re-root fragments that heard the merge wavefront.
    Reroot,
    /// Side: refresh neighbor fragment IDs.
    SideRefresh,
}

impl ROp {
    fn is_wave(self) -> bool {
        matches!(
            self,
            ROp::GsDecide
                | ROp::GsRootFlag
                | ROp::GsColor
                | ROp::GsMatch(_)
                | ROp::GsGotMatched
                | ROp::GsRootAttach
                | ROp::GsSdtMin
                | ROp::Reroot
        )
    }
}

fn build_ops(cv_iters: u32) -> Vec<ROp> {
    let mut ops = vec![ROp::GsDecide, ROp::SideChosen, ROp::GsRootFlag];
    for _ in 0..cv_iters {
        ops.push(ROp::SideColor);
        ops.push(ROp::GsColor);
    }
    for c in 0..6u8 {
        ops.push(ROp::SideStatus);
        ops.push(ROp::GsMatch(c));
        ops.push(ROp::SideMatchInform);
        ops.push(ROp::GsGotMatched);
    }
    ops.push(ROp::GsRootAttach);
    ops.push(ROp::SideAttach);
    for _ in 0..5 {
        ops.push(ROp::SideSdtMin);
        ops.push(ROp::GsSdtMin);
    }
    for _ in 0..4 {
        ops.push(ROp::SideMerged);
        ops.push(ROp::SideMergeAck);
        ops.push(ROp::Reroot);
    }
    ops.push(ROp::SideRefresh);
    ops
}

/// Rounds in one phase of the round strategy.
pub fn round_phase_len(k: u32, id_upper: u64) -> u64 {
    let w = 2 * k as u64 + 1;
    let cv = cv_iterations(64 - id_upper.leading_zeros());
    build_ops(cv).iter().map(|op| if op.is_wave() { w } else { 1 }).sum()
}

/// Total local-round budget of [`ConstructRound`].
pub fn round_round_budget(k: u32, id_upper: u64) -> u64 {
    1 + round_phase_budget(k) * round_phase_len(k, id_upper)
}

/// Per-phase scratch registers.
#[derive(Debug, Clone, Default)]
struct Regs {
    up_edge: Option<EdgeKey>,
    up_val: Option<u64>,
    up_flag: bool,
    chosen: Option<EdgeKey>,
    complete: bool,
    owner_port: Option<Port>,
    core_root_candidate: bool,
    is_ti_root: bool,
    color: u64,
    parent_color: Option<u64>,
    matched: bool,
    child_status: Vec<(Port, bool)>, // unmatched child ports this subphase
    hold_match_edge: Option<Port>,   // child port my fragment matched/attached through
    got_matched: bool,
    sdt_min: u64,
    side_min_heard: Option<u64>,
    reroot_val: Option<(u64, u32)>,
    id_changed: bool,
    child_edge: Vec<bool>,
    f_edge: Vec<bool>,
}

/// The `LDT-Construct-Round` subprotocol (one instance per node).
#[derive(Debug, Clone)]
pub struct ConstructRound {
    params: ConstructParams,
    wave: WaveSchedule,
    ops: Vec<ROp>,
    starts: Vec<Round>,
    phase_len: Round,
    n_phases: u64,
    tree: TreeState,
    pending: Option<TreeState>,
    ports: Vec<PortInfo>,
    regs: Regs,
    agenda: Vec<Round>,
    cur_phase: u64,
    cur_op: usize,
    finished: bool,
    ok: bool,
    phases_used: u64,
}

impl ConstructRound {
    /// Creates the subprotocol for one node.
    ///
    /// # Panics
    ///
    /// Panics if `params.k == 0` or `params.my_id` is outside
    /// `[1, id_upper]`.
    pub fn new(params: ConstructParams) -> ConstructRound {
        assert!(params.k >= 1, "component bound k must be >= 1");
        assert!(
            params.my_id >= 1 && params.my_id <= params.id_upper,
            "id {} outside [1, {}]",
            params.my_id,
            params.id_upper
        );
        let wave = WaveSchedule::new(params.k);
        let cv = cv_iterations(64 - params.id_upper.leading_zeros());
        let ops = build_ops(cv);
        let w = wave.block_len();
        let mut starts = Vec::with_capacity(ops.len());
        let mut acc = 0;
        for op in &ops {
            starts.push(acc);
            acc += if op.is_wave() { w } else { 1 };
        }
        ConstructRound {
            params,
            wave,
            phase_len: acc,
            n_phases: round_phase_budget(params.k),
            ops,
            starts,
            tree: TreeState::singleton(params.my_id),
            pending: None,
            ports: Vec::new(),
            regs: Regs::default(),
            agenda: Vec::new(),
            cur_phase: 0,
            cur_op: 0,
            finished: false,
            ok: false,
            phases_used: 0,
        }
    }

    fn my_id(&self) -> u64 {
        self.params.my_id
    }

    fn op_start(&self, phase: u64, op: usize) -> Round {
        1 + phase * self.phase_len + self.starts[op]
    }

    fn locate(&self, lr: Round) -> (u64, usize, Round) {
        debug_assert!(lr >= 1);
        let rel = lr - 1;
        let phase = rel / self.phase_len;
        let within = rel % self.phase_len;
        let op = match self.starts.binary_search(&within) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (phase, op, within - self.starts[op])
    }

    fn cross_ports(&self) -> impl Iterator<Item = Port> + '_ {
        self.ports
            .iter()
            .enumerate()
            .filter(|(_, pi)| pi.participant && pi.fragment_id != self.tree.root_id)
            .map(|(p, _)| p as Port)
    }

    fn local_candidate(&self) -> Option<EdgeKey> {
        self.cross_ports()
            .map(|p| EdgeKey::new(self.my_id(), self.ports[p as usize].neighbor_id))
            .min()
    }

    fn child_edge_ports(&self) -> impl Iterator<Item = Port> + '_ {
        self.regs.child_edge.iter().enumerate().filter(|(_, &b)| b).map(|(p, _)| p as Port)
    }

    fn f_edge_ports(&self) -> impl Iterator<Item = Port> + '_ {
        self.regs.f_edge.iter().enumerate().filter(|(_, &b)| b).map(|(p, _)| p as Port)
    }

    fn merged(&self) -> bool {
        self.tree.root_id == self.regs.sdt_min
    }

    /// Wake offsets of a full-fragment gather/scatter wave.
    fn wave_agenda(&self, base: Round) -> Vec<Round> {
        let d = self.tree.depth;
        let mut v = Vec::new();
        if !self.tree.children_ports.is_empty() {
            v.extend(self.wave.up_receive(d));
        }
        if self.tree.parent_port.is_some() {
            v.extend(self.wave.up_send(d));
            v.extend(self.wave.down_receive(d));
        }
        if self.tree.is_root() || !self.tree.children_ports.is_empty() {
            v.extend(self.wave.down_send(d));
        }
        v.into_iter().map(|o| base + o).collect()
    }

    fn initial_agenda(&self, phase: u64, op: usize) -> Vec<Round> {
        let base = self.op_start(phase, op);
        let d = self.tree.depth;
        let mut v: Vec<Round> = Vec::new();
        match self.ops[op] {
            ROp::GsDecide | ROp::GsRootFlag | ROp::GsColor | ROp::GsSdtMin => {
                v = self.wave_agenda(base);
            }
            ROp::SideChosen => {
                if self.regs.owner_port.is_some() || self.cross_ports().next().is_some() {
                    v.push(base);
                }
            }
            ROp::SideColor => {
                let sends = self.child_edge_ports().next().is_some();
                let listens = self.regs.owner_port.is_some() && !self.regs.is_ti_root;
                if sends || listens {
                    v.push(base);
                }
            }
            ROp::SideStatus => {
                let sends = self.regs.owner_port.is_some() && !self.regs.is_ti_root;
                let listens = self.child_edge_ports().next().is_some();
                if sends || listens {
                    v.push(base);
                }
            }
            ROp::GsMatch(c) => {
                if self.regs.color == c as u64 && !self.regs.matched && !self.regs.complete {
                    v = self.wave_agenda(base);
                }
            }
            ROp::SideMatchInform => {
                let sends = self.regs.hold_match_edge.is_some();
                let listens = self.regs.owner_port.is_some() && !self.regs.matched;
                if sends || listens {
                    v.push(base);
                }
            }
            ROp::GsGotMatched => {
                if !self.regs.matched {
                    v = self.wave_agenda(base);
                }
            }
            ROp::GsRootAttach => {
                if self.regs.is_ti_root && !self.regs.matched {
                    v = self.wave_agenda(base);
                }
            }
            ROp::SideAttach => {
                let attach_up = !self.regs.matched && !self.regs.is_ti_root;
                let sends = (attach_up && self.regs.owner_port.is_some())
                    || self.regs.hold_match_edge.is_some();
                let listens = self.cross_ports().next().is_some();
                if sends || listens {
                    v.push(base);
                }
            }
            ROp::SideSdtMin => {
                if self.f_edge_ports().next().is_some() {
                    v.push(base);
                }
            }
            ROp::SideMerged => {
                if self.f_edge_ports().next().is_some() {
                    v.push(base);
                }
            }
            ROp::SideMergeAck => {
                let sends = self.regs.reroot_val.is_some();
                let listens = self.merged() && self.f_edge_ports().next().is_some();
                if sends || listens {
                    v.push(base);
                }
            }
            ROp::Reroot => {
                if !self.merged() {
                    if self.regs.reroot_val.is_some() {
                        if self.tree.parent_port.is_some() {
                            v.extend(self.wave.up_send(d));
                        }
                        if !self.tree.children_ports.is_empty() {
                            v.extend(self.wave.down_send(d));
                        }
                    } else {
                        if !self.tree.children_ports.is_empty() {
                            v.extend(self.wave.up_receive(d));
                        }
                        if self.tree.parent_port.is_some() {
                            v.extend(self.wave.down_receive(d));
                        }
                    }
                    v = v.into_iter().map(|o| base + o).collect();
                    v.sort_unstable();
                    v.dedup();
                    return v;
                }
            }
            ROp::SideRefresh => {
                if self.regs.id_changed || self.cross_ports().next().is_some() {
                    v.push(base);
                }
            }
        }
        v.sort_unstable();
        v.dedup();
        v
    }

    fn push_agenda(&mut self, lr: Round) {
        if let Err(pos) = self.agenda.binary_search(&lr) {
            self.agenda.insert(pos, lr);
        }
    }

    fn advance(&mut self, lr: Round) -> SubAction {
        loop {
            if self.finished {
                return SubAction::Done;
            }
            if self.ops[self.cur_op] == ROp::Reroot {
                if let Some(next) = self.pending.take() {
                    self.regs.id_changed = next.root_id != self.tree.root_id;
                    if let Some(p) = next.parent_port {
                        self.ports[p as usize].fragment_id = next.root_id;
                    }
                    self.tree = next;
                    self.regs.reroot_val = None;
                }
            }
            self.cur_op += 1;
            if self.cur_op == self.ops.len() {
                self.cur_op = 0;
                self.cur_phase += 1;
                if self.cur_phase >= self.n_phases {
                    self.finished = true;
                    self.ok = false;
                    self.phases_used = self.cur_phase;
                    return SubAction::Done;
                }
                self.reset_phase_regs();
            }
            if self.ops[self.cur_op] == ROp::SideStatus {
                // New matching subphase: one-shot registers start clean.
                self.regs.up_edge = None;
                self.regs.up_val = None;
                self.regs.up_flag = false;
                self.regs.got_matched = false;
                self.regs.hold_match_edge = None;
                self.regs.child_status.clear();
            }
            self.agenda = self.initial_agenda(self.cur_phase, self.cur_op);
            if let Some(&first) = self.agenda.first() {
                debug_assert!(first > lr, "agenda round {first} not after {lr}");
                return SubAction::SleepUntil(first);
            }
        }
    }

    fn reset_phase_regs(&mut self) {
        let deg = self.ports.len();
        self.regs = Regs {
            color: self.tree.root_id,
            sdt_min: self.tree.root_id,
            child_edge: vec![false; deg],
            f_edge: vec![false; deg],
            ..Regs::default()
        };
    }

    fn next_action(&mut self, lr: Round) -> SubAction {
        if self.finished {
            return SubAction::Done;
        }
        if let Some(&next) = self.agenda.iter().find(|&&r| r > lr) {
            return SubAction::SleepUntil(next);
        }
        self.advance(lr)
    }

    fn fail(&mut self) -> SubAction {
        self.finished = true;
        self.ok = false;
        self.phases_used = self.cur_phase;
        SubAction::Done
    }

    fn complete(&mut self) -> SubAction {
        self.finished = true;
        self.ok = true;
        self.phases_used = self.cur_phase + 1;
        SubAction::Done
    }

    fn note_owner_port(&mut self) {
        self.regs.owner_port = None;
        if let Some(e) = self.regs.chosen {
            if e.touches(self.my_id()) {
                let other = if e.lo == self.my_id() { e.hi } else { e.lo };
                self.regs.owner_port = self
                    .ports
                    .iter()
                    .enumerate()
                    .find(|(_, pi)| pi.participant && pi.neighbor_id == other)
                    .map(|(p, _)| p as Port);
            }
        }
    }

    /// Handles the up/down rounds of a full-fragment wave, with
    /// op-specific combine/decide/apply steps.
    fn wave_send(&mut self, op: ROp, off: Round) -> Outbox<ConstructMsg> {
        let d = self.tree.depth;
        if Some(off) == self.wave.up_send(d) {
            let p = self.tree.parent_port.expect("up_send implies parent");
            let msg = match op {
                ROp::GsDecide => {
                    ConstructMsg::UpEdge(min_edge(self.regs.up_edge, self.local_candidate()))
                }
                ROp::GsRootFlag => {
                    ConstructMsg::UpFlag(self.regs.up_flag || self.regs.core_root_candidate)
                }
                ROp::GsColor => {
                    ConstructMsg::UpValue(min_val(self.regs.up_val, self.regs.parent_color))
                }
                ROp::GsMatch(_) => ConstructMsg::UpEdge(min_edge(
                    self.regs.up_edge,
                    self.local_match_candidate(),
                )),
                ROp::GsGotMatched => {
                    ConstructMsg::UpFlag(self.regs.up_flag || self.regs.got_matched)
                }
                ROp::GsRootAttach => ConstructMsg::UpEdge(min_edge(
                    self.regs.up_edge,
                    self.local_attach_candidate(),
                )),
                ROp::GsSdtMin => {
                    ConstructMsg::UpValue(min_val(self.regs.up_val, self.regs.side_min_heard))
                }
                _ => unreachable!("not a wave op"),
            };
            Outbox::Unicast(vec![(p, msg)])
        } else if Some(off) == self.wave.down_send(d) {
            if self.tree.is_root() {
                self.decide(op);
            }
            if self.tree.children_ports.is_empty() {
                return Outbox::Silent;
            }
            let msg = match op {
                ROp::GsDecide => ConstructMsg::Decision {
                    chosen: self.regs.chosen,
                    head: false,
                    done: self.regs.complete,
                },
                ROp::GsRootFlag => ConstructMsg::DownFlag(self.regs.is_ti_root),
                ROp::GsColor => ConstructMsg::DownValue(self.regs.color),
                ROp::GsMatch(_) | ROp::GsRootAttach => {
                    ConstructMsg::DownEdge(self.regs.up_edge)
                }
                ROp::GsGotMatched => ConstructMsg::DownFlag(self.regs.matched),
                ROp::GsSdtMin => ConstructMsg::DownValue(self.regs.sdt_min),
                _ => unreachable!("not a wave op"),
            };
            Outbox::Unicast(self.tree.children_ports.iter().map(|&p| (p, msg.clone())).collect())
        } else {
            Outbox::Silent
        }
    }

    /// Root-side decision once the up wave has arrived.
    fn decide(&mut self, op: ROp) {
        match op {
            ROp::GsDecide => {
                self.regs.chosen = min_edge(self.regs.up_edge, self.local_candidate());
                self.regs.complete = self.regs.chosen.is_none();
            }
            ROp::GsRootFlag => {
                self.regs.is_ti_root = self.regs.up_flag || self.regs.core_root_candidate;
            }
            ROp::GsColor => {
                let parent = min_val(self.regs.up_val, self.regs.parent_color);
                let pc = match parent {
                    Some(c) if !self.regs.is_ti_root => c,
                    _ => self.regs.color ^ 1,
                };
                self.regs.color = cv_step(self.regs.color, pc);
            }
            ROp::GsMatch(_) => {
                self.regs.up_edge = min_edge(self.regs.up_edge, self.local_match_candidate());
                if self.regs.up_edge.is_some() {
                    self.regs.matched = true;
                }
            }
            ROp::GsGotMatched
                if (self.regs.up_flag || self.regs.got_matched) => {
                    self.regs.matched = true;
                }
            ROp::GsRootAttach => {
                self.regs.up_edge = min_edge(self.regs.up_edge, self.local_attach_candidate());
            }
            ROp::GsSdtMin => {
                self.regs.sdt_min =
                    min_val(Some(self.regs.sdt_min), min_val(self.regs.up_val, self.regs.side_min_heard))
                        .expect("sdt_min always set");
            }
            _ => {}
        }
    }

    /// Candidate edge for the matching wave: my smallest child edge
    /// leading to an unmatched child fragment.
    fn local_match_candidate(&self) -> Option<EdgeKey> {
        self.regs
            .child_status
            .iter()
            .filter(|&&(_, unmatched)| unmatched)
            .map(|&(p, _)| EdgeKey::new(self.my_id(), self.ports[p as usize].neighbor_id))
            .min()
    }

    /// Candidate edge for the root-attach wave: my smallest child edge.
    fn local_attach_candidate(&self) -> Option<EdgeKey> {
        self.child_edge_ports()
            .map(|p| EdgeKey::new(self.my_id(), self.ports[p as usize].neighbor_id))
            .min()
    }

    /// Marks the port of an edge this node owns, if any.
    fn port_of_edge(&self, e: EdgeKey) -> Option<Port> {
        if !e.touches(self.my_id()) {
            return None;
        }
        let other = if e.lo == self.my_id() { e.hi } else { e.lo };
        self.ports
            .iter()
            .enumerate()
            .find(|(_, pi)| pi.participant && pi.neighbor_id == other)
            .map(|(p, _)| p as Port)
    }

    fn wave_receive(&mut self, op: ROp, off: Round, inbox: &[(Port, ConstructMsg)]) -> Option<SubAction> {
        let d = self.tree.depth;
        if Some(off) == self.wave.up_receive(d) {
            for (_, m) in inbox {
                match m {
                    ConstructMsg::UpEdge(e) => self.regs.up_edge = min_edge(self.regs.up_edge, *e),
                    ConstructMsg::UpValue(v) => self.regs.up_val = min_val(self.regs.up_val, *v),
                    ConstructMsg::UpFlag(f) => self.regs.up_flag |= f,
                    _ => {}
                }
            }
        } else if Some(off) == self.wave.down_send(d) && self.tree.is_root() {
            // Root already decided in the send step of this round.
            return self.apply_down(op);
        } else if Some(off) == self.wave.down_receive(d) {
            for (_, m) in inbox {
                match m {
                    ConstructMsg::Decision { chosen, done, .. } => {
                        self.regs.chosen = *chosen;
                        self.regs.complete = *done;
                    }
                    ConstructMsg::DownFlag(f) => match op {
                        ROp::GsRootFlag => self.regs.is_ti_root = *f,
                        ROp::GsGotMatched => self.regs.matched |= f,
                        _ => {}
                    },
                    ConstructMsg::DownValue(v) => match op {
                        ROp::GsColor => self.regs.color = *v,
                        ROp::GsSdtMin => self.regs.sdt_min = *v,
                        _ => {}
                    },
                    ConstructMsg::DownEdge(e) => {
                        self.regs.up_edge = *e; // reuse register for the choice
                        if e.is_some() && matches!(op, ROp::GsMatch(_)) {
                            self.regs.matched = true;
                        }
                    }
                    _ => {}
                }
            }
            if self.tree.children_ports.is_empty() {
                return self.apply_down(op);
            }
        } else if Some(off) == self.wave.down_send(d) && !self.tree.is_root() {
            return self.apply_down(op);
        }
        None
    }

    /// Op-specific bookkeeping once this node has both learned and
    /// forwarded the down-wave value.
    fn apply_down(&mut self, op: ROp) -> Option<SubAction> {
        match op {
            ROp::GsDecide => {
                if self.regs.complete {
                    return Some(self.complete());
                }
                self.note_owner_port();
            }
            ROp::GsMatch(_) | ROp::GsRootAttach => {
                if let Some(e) = self.regs.up_edge {
                    if let Some(p) = self.port_of_edge(e) {
                        if self.regs.child_edge[p as usize] {
                            self.regs.hold_match_edge = Some(p);
                            self.regs.f_edge[p as usize] = true;
                        }
                    }
                }
            }
            ROp::GsSdtMin => {
                self.regs.side_min_heard = None;
            }
            ROp::GsColor => {
                self.regs.parent_color = None;
            }
            _ => {}
        }
        // Clear one-shot up registers for the next wave of the phase.
        self.regs.up_edge = None;
        self.regs.up_val = None;
        self.regs.up_flag = false;
        None
    }
}

impl SubProtocol for ConstructRound {
    type Msg = ConstructMsg;
    type Output = LdtOutput;

    fn send(&mut self, lr: Round, _ctx: &mut NodeCtx) -> Outbox<ConstructMsg> {
        if lr == 0 {
            return Outbox::Broadcast(ConstructMsg::Hello { id: self.my_id() });
        }
        if self.finished {
            return Outbox::Silent;
        }
        let (_, op, off) = self.locate(lr);
        let op = self.ops[op];
        match op {
            ROp::GsDecide
            | ROp::GsRootFlag
            | ROp::GsColor
            | ROp::GsMatch(_)
            | ROp::GsGotMatched
            | ROp::GsRootAttach
            | ROp::GsSdtMin => self.wave_send(op, off),
            ROp::SideChosen => match self.regs.owner_port {
                Some(p) => Outbox::Unicast(vec![(
                    p,
                    ConstructMsg::Chosen { fragment: self.tree.root_id },
                )]),
                None => Outbox::Silent,
            },
            ROp::SideColor => {
                let msgs: Vec<(Port, ConstructMsg)> = self
                    .child_edge_ports()
                    .map(|p| (p, ConstructMsg::Color { color: self.regs.color }))
                    .collect();
                if msgs.is_empty() {
                    Outbox::Silent
                } else {
                    Outbox::Unicast(msgs)
                }
            }
            ROp::SideStatus => {
                if !self.regs.is_ti_root {
                    match self.regs.owner_port {
                        Some(p) => Outbox::Unicast(vec![(
                            p,
                            ConstructMsg::Status {
                                matched: self.regs.matched,
                                color: self.regs.color,
                            },
                        )]),
                        None => Outbox::Silent,
                    }
                } else {
                    Outbox::Silent
                }
            }
            ROp::SideMatchInform => match self.regs.hold_match_edge {
                Some(p) if self.regs.matched => {
                    Outbox::Unicast(vec![(p, ConstructMsg::MatchInform)])
                }
                _ => Outbox::Silent,
            },
            ROp::SideAttach => {
                let mut msgs: Vec<(Port, ConstructMsg)> = Vec::new();
                if !self.regs.matched && !self.regs.is_ti_root {
                    if let Some(p) = self.regs.owner_port {
                        msgs.push((p, ConstructMsg::Attach));
                    }
                } else if self.regs.is_ti_root && self.regs.hold_match_edge.is_some() && !self.regs.matched {
                    msgs.push((self.regs.hold_match_edge.unwrap(), ConstructMsg::Attach));
                }
                if msgs.is_empty() {
                    Outbox::Silent
                } else {
                    Outbox::Unicast(msgs)
                }
            }
            ROp::SideSdtMin => {
                let msgs: Vec<(Port, ConstructMsg)> = self
                    .f_edge_ports()
                    .map(|p| (p, ConstructMsg::SdtMin { min_id: self.regs.sdt_min }))
                    .collect();
                if msgs.is_empty() {
                    Outbox::Silent
                } else {
                    Outbox::Unicast(msgs)
                }
            }
            ROp::SideMerged => {
                if self.merged() {
                    let msgs: Vec<(Port, ConstructMsg)> = self
                        .f_edge_ports()
                        .map(|p| {
                            (
                                p,
                                ConstructMsg::Merged {
                                    depth: self.tree.depth,
                                    core: self.regs.sdt_min,
                                },
                            )
                        })
                        .collect();
                    if msgs.is_empty() {
                        Outbox::Silent
                    } else {
                        Outbox::Unicast(msgs)
                    }
                } else {
                    Outbox::Silent
                }
            }
            ROp::SideMergeAck => match (&self.regs.reroot_val, &self.pending) {
                (Some(_), Some(t)) => Outbox::Unicast(vec![(
                    t.parent_port.expect("merge attaches below a parent"),
                    ConstructMsg::MergeAck,
                )]),
                _ => Outbox::Silent,
            },
            ROp::Reroot => {
                let d = self.tree.depth;
                if Some(off) == self.wave.up_send(d) {
                    match (self.regs.reroot_val, self.tree.parent_port) {
                        (Some((nr, nd)), Some(p)) => Outbox::Unicast(vec![(
                            p,
                            ConstructMsg::RerootUp { new_root: nr, sender_new_depth: nd },
                        )]),
                        _ => Outbox::Silent,
                    }
                } else if Some(off) == self.wave.down_send(d) {
                    match &self.pending {
                        Some(t) if !self.tree.children_ports.is_empty() => {
                            let msg = ConstructMsg::Update {
                                new_root: t.root_id,
                                sender_new_depth: t.depth,
                            };
                            Outbox::Unicast(
                                self.tree.children_ports.iter().map(|&p| (p, msg.clone())).collect(),
                            )
                        }
                        _ => Outbox::Silent,
                    }
                } else {
                    Outbox::Silent
                }
            }
            ROp::SideRefresh => {
                if self.regs.id_changed {
                    let live: Vec<(Port, ConstructMsg)> = self
                        .ports
                        .iter()
                        .enumerate()
                        .filter(|(_, pi)| pi.participant)
                        .map(|(p, _)| {
                            (p as Port, ConstructMsg::FragId { root_id: self.tree.root_id })
                        })
                        .collect();
                    if live.is_empty() {
                        Outbox::Silent
                    } else {
                        Outbox::Unicast(live)
                    }
                } else {
                    Outbox::Silent
                }
            }
        }
    }

    fn receive(&mut self, lr: Round, ctx: &mut NodeCtx, inbox: &[(Port, ConstructMsg)]) -> SubAction {
        if lr == 0 {
            self.ports = vec![PortInfo::unknown(); ctx.degree];
            let mut ids_seen = vec![self.my_id()];
            for &(p, ref m) in inbox {
                if let ConstructMsg::Hello { id } = m {
                    self.ports[p as usize] =
                        PortInfo { neighbor_id: *id, fragment_id: *id, participant: true };
                    ids_seen.push(*id);
                }
            }
            ids_seen.sort_unstable();
            if ids_seen.windows(2).any(|w| w[0] == w[1]) {
                return self.fail();
            }
            if self.ports.iter().all(|pi| !pi.participant) {
                return self.complete();
            }
            self.reset_phase_regs();
            self.cur_phase = 0;
            self.cur_op = 0;
            self.agenda = self.initial_agenda(0, 0);
            let first = self.agenda[0];
            return SubAction::SleepUntil(first);
        }
        if self.finished {
            return SubAction::Done;
        }
        let (_, op_idx, off) = self.locate(lr);
        let op = self.ops[op_idx];
        match op {
            ROp::GsDecide
            | ROp::GsRootFlag
            | ROp::GsColor
            | ROp::GsMatch(_)
            | ROp::GsGotMatched
            | ROp::GsRootAttach
            | ROp::GsSdtMin => {
                if let Some(action) = self.wave_receive(op, off, inbox) {
                    return action;
                }
            }
            ROp::SideChosen => {
                for &(p, ref m) in inbox {
                    if let ConstructMsg::Chosen { .. } = m {
                        let e = EdgeKey::new(self.my_id(), self.ports[p as usize].neighbor_id);
                        if self.regs.chosen == Some(e) {
                            // Both fragments chose this edge: core edge.
                            // The smaller-ID fragment roots the supertree
                            // and treats the other as a child.
                            if self.tree.root_id < self.ports[p as usize].fragment_id {
                                self.regs.core_root_candidate = true;
                                self.regs.child_edge[p as usize] = true;
                            }
                        } else {
                            self.regs.child_edge[p as usize] = true;
                        }
                    }
                }
            }
            ROp::SideColor => {
                for &(p, ref m) in inbox {
                    if let ConstructMsg::Color { color } = m {
                        if Some(p) == self.regs.owner_port {
                            self.regs.parent_color = Some(*color);
                        }
                    }
                }
            }
            ROp::SideStatus => {
                self.regs.child_status.clear();
                for &(p, ref m) in inbox {
                    if let ConstructMsg::Status { matched, .. } = m {
                        if self.regs.child_edge[p as usize] {
                            self.regs.child_status.push((p, !matched));
                        }
                    }
                }
            }
            ROp::SideMatchInform => {
                for (p, m) in inbox {
                    if matches!(m, ConstructMsg::MatchInform) && Some(*p) == self.regs.owner_port {
                        self.regs.got_matched = true;
                        self.regs.f_edge[*p as usize] = true;
                    }
                }
            }
            ROp::SideAttach => {
                if !self.regs.matched && !self.regs.is_ti_root {
                    if let Some(p) = self.regs.owner_port {
                        // Attaching up our parent edge makes it an F-edge.
                        self.regs.f_edge[p as usize] = true;
                    }
                }
                for (p, m) in inbox {
                    if matches!(m, ConstructMsg::Attach) {
                        self.regs.f_edge[*p as usize] = true;
                    }
                }
            }
            ROp::SideSdtMin => {
                for (_, m) in inbox {
                    if let ConstructMsg::SdtMin { min_id } = m {
                        self.regs.side_min_heard = min_val(self.regs.side_min_heard, Some(*min_id));
                    }
                }
            }
            ROp::SideMerged => {
                if !self.merged() {
                    for &(p, ref m) in inbox {
                        if let ConstructMsg::Merged { depth, core } = m {
                            if self.regs.reroot_val.is_none() {
                                let my_new = depth + 1;
                                if my_new as u64 >= self.params.k as u64 {
                                    return self.fail();
                                }
                                let mut children = self.tree.children_ports.clone();
                                if let Some(old_parent) = self.tree.parent_port {
                                    push_sorted(&mut children, old_parent);
                                }
                                self.regs.reroot_val = Some((*core, my_new));
                                self.pending = Some(TreeState {
                                    root_id: *core,
                                    depth: my_new,
                                    parent_port: Some(p),
                                    children_ports: children,
                                });
                            }
                        }
                    }
                }
            }
            ROp::SideMergeAck => {
                if self.merged() {
                    for &(p, ref m) in inbox {
                        if matches!(m, ConstructMsg::MergeAck) {
                            self.tree.add_child(p);
                            self.ports[p as usize].fragment_id = self.regs.sdt_min;
                        }
                    }
                }
            }
            ROp::Reroot => {
                let d = self.tree.depth;
                if Some(off) == self.wave.up_receive(d) {
                    let mut pushes: Vec<Round> = Vec::new();
                    for &(p, ref m) in inbox {
                        if let ConstructMsg::RerootUp { new_root, sender_new_depth } = m {
                            let my_new = sender_new_depth + 1;
                            if my_new as u64 >= self.params.k as u64 {
                                return self.fail();
                            }
                            let mut children = self.tree.children_ports.clone();
                            remove_sorted(&mut children, p);
                            if let Some(old_parent) = self.tree.parent_port {
                                push_sorted(&mut children, old_parent);
                            }
                            self.regs.reroot_val = Some((*new_root, my_new));
                            self.pending = Some(TreeState {
                                root_id: *new_root,
                                depth: my_new,
                                parent_port: Some(p),
                                children_ports: children,
                            });
                            let base = lr - off;
                            if self.tree.parent_port.is_some() {
                                if let Some(us) = self.wave.up_send(d) {
                                    pushes.push(base + us);
                                }
                            }
                            if !self.tree.children_ports.is_empty() {
                                if let Some(ds) = self.wave.down_send(d) {
                                    pushes.push(base + ds);
                                }
                            }
                        }
                    }
                    for r in pushes {
                        self.push_agenda(r);
                    }
                } else if Some(off) == self.wave.down_receive(d) {
                    let mut pushes: Vec<Round> = Vec::new();
                    for (_, m) in inbox {
                        if let ConstructMsg::Update { new_root, sender_new_depth } = m {
                            if self.pending.is_none() {
                                let my_new = sender_new_depth + 1;
                                if my_new as u64 >= self.params.k as u64 {
                                    return self.fail();
                                }
                                self.pending = Some(TreeState {
                                    root_id: *new_root,
                                    depth: my_new,
                                    parent_port: self.tree.parent_port,
                                    children_ports: self.tree.children_ports.clone(),
                                });
                                if !self.tree.children_ports.is_empty() {
                                    let base = lr - off;
                                    if let Some(ds) = self.wave.down_send(d) {
                                        pushes.push(base + ds);
                                    }
                                }
                            }
                        }
                    }
                    for r in pushes {
                        self.push_agenda(r);
                    }
                }
            }
            ROp::SideRefresh => {
                for (p, m) in inbox {
                    if let ConstructMsg::FragId { root_id } = m {
                        self.ports[*p as usize].fragment_id = *root_id;
                    }
                }
            }
        }
        self.next_action(lr)
    }

    fn output(&self) -> LdtOutput {
        assert!(self.finished, "construction output read before completion");
        LdtOutput {
            ok: self.ok,
            tree: self.tree.clone(),
            ports: self.ports.clone(),
            phases_used: self.phases_used,
        }
    }
}

fn min_edge(a: Option<EdgeKey>, b: Option<EdgeKey>) -> Option<EdgeKey> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

fn min_val(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

fn push_sorted(v: &mut Vec<Port>, x: Port) {
    if let Err(pos) = v.binary_search(&x) {
        v.insert(pos, x);
    }
}

fn remove_sorted(v: &mut Vec<Port>, x: Port) {
    if let Ok(pos) = v.binary_search(&x) {
        v.remove(pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cv_iteration_counts() {
        assert_eq!(cv_iterations(2), 0); // colors already in [0, 3] ⊆ [0, 5]
        assert_eq!(cv_iterations(3), 1); // 7 -> 5
        assert_eq!(cv_iterations(64), 4);
        assert_eq!(cv_iterations(40), 4);
        assert_eq!(cv_iterations(10), 4);
    }

    #[test]
    fn cv_step_properties() {
        // Proper coloring is preserved: distinct inputs give child != parent
        // after one step applied to both with their own parents.
        let own = 0b1011u64;
        let parent = 0b1001u64;
        let c = cv_step(own, parent); // differ at bit 1 -> 2*1 + 1 = 3
        assert_eq!(c, 3);
        // Root rule: flip bit 0.
        assert_eq!(cv_step(6, 6 ^ 1), 0); // bit 0 of 6 is 0
        assert_eq!(cv_step(7, 7 ^ 1), 1);
    }

    #[test]
    fn op_sequence_structure() {
        let ops = build_ops(2);
        assert_eq!(ops[0], ROp::GsDecide);
        assert_eq!(*ops.last().unwrap(), ROp::SideRefresh);
        assert_eq!(ops.iter().filter(|o| matches!(o, ROp::GsMatch(_))).count(), 6);
        assert_eq!(ops.iter().filter(|o| matches!(o, ROp::Reroot)).count(), 4);
        assert_eq!(ops.iter().filter(|o| matches!(o, ROp::SideColor)).count(), 2);
    }

    #[test]
    fn budgets_monotone() {
        assert!(round_round_budget(8, 1000) < round_round_budget(16, 1000));
        assert!(round_phase_budget(4) <= round_phase_budget(64));
    }
}
