//! Structural validation of constructed labeled distance trees.

use crate::construct::LdtOutput;
use graphgen::Graph;

/// Checks that per-node construction outputs form a valid **forest of
/// labeled distance trees** over the participating subgraph:
///
/// * every participant finished with `ok == true`;
/// * parent/child pointers are reciprocal along real graph edges between
///   participants;
/// * a child's depth is its parent's depth plus one;
/// * each connected component (of the participating subgraph) has exactly
///   one root and a single shared `root_id`.
///
/// # Errors
///
/// Returns a human-readable description of the first violation found.
pub fn verify_fldt(
    graph: &Graph,
    outputs: &[LdtOutput],
    participants: &[bool],
) -> Result<(), String> {
    let n = graph.n();
    if outputs.len() != n || participants.len() != n {
        return Err(format!(
            "length mismatch: graph {n}, outputs {}, participants {}",
            outputs.len(),
            participants.len()
        ));
    }
    for v in 0..n {
        if !participants[v] {
            continue;
        }
        let out = &outputs[v];
        if !out.ok {
            return Err(format!("node {v} did not finish construction (ok = false)"));
        }
        let t = &out.tree;
        if let Some(p) = t.parent_port {
            let (u, q) = graph.endpoint(v as u32, p);
            if !participants[u as usize] {
                return Err(format!("node {v}'s parent via port {p} is not a participant"));
            }
            let pt = &outputs[u as usize].tree;
            if !pt.children_ports.contains(&q) {
                return Err(format!("node {v}'s parent {u} does not list it as a child"));
            }
            if pt.depth + 1 != t.depth {
                return Err(format!(
                    "depth mismatch: node {v} depth {} but parent {u} depth {}",
                    t.depth, pt.depth
                ));
            }
            if pt.root_id != t.root_id {
                return Err(format!("root-id mismatch between node {v} and its parent {u}"));
            }
        } else if t.depth != 0 {
            return Err(format!("node {v} has no parent but depth {}", t.depth));
        }
        for &c in &t.children_ports {
            let (u, q) = graph.endpoint(v as u32, c);
            if !participants[u as usize] {
                return Err(format!("node {v}'s child via port {c} is not a participant"));
            }
            if outputs[u as usize].tree.parent_port != Some(q) {
                return Err(format!("node {v} lists {u} as child but {u} disagrees"));
            }
        }
    }
    // Exactly one root and one shared root id per participating component.
    let keep: Vec<u32> =
        (0..n as u32).filter(|&v| participants[v as usize]).collect();
    let (sub, map) = graph.induced(&keep);
    let (labels, count) = graphgen::props::connected_components(&sub);
    let mut root_of = vec![None::<u32>; count];
    let mut id_of = vec![None::<u64>; count];
    for (i, &orig) in map.iter().enumerate() {
        let comp = labels[i] as usize;
        let t = &outputs[orig as usize].tree;
        match id_of[comp] {
            None => id_of[comp] = Some(t.root_id),
            Some(id) if id != t.root_id => {
                return Err(format!(
                    "component {comp} has two root ids: {id} and {}",
                    t.root_id
                ))
            }
            _ => {}
        }
        if t.is_root() {
            if let Some(prev) = root_of[comp] {
                return Err(format!("component {comp} has two roots: {prev} and {orig}"));
            }
            root_of[comp] = Some(orig);
        }
    }
    for (comp, root) in root_of.iter().enumerate() {
        if root.is_none() {
            return Err(format!("component {comp} has no root"));
        }
    }
    Ok(())
}
