//! Transmission schedules over an LDT (paper Appendix A.1).
//!
//! A *transmission schedule* parameterized by an upper bound `k` on the
//! tree size assigns, to a node at depth `i` of the tree, a handful of
//! named wake-up offsets inside a **block** of `2k + 1` rounds:
//!
//! | name                | offset (0-based) | who                   |
//! |---------------------|------------------|-----------------------|
//! | `Down-Send` (root)  | `0`              | root                  |
//! | `Down-Receive`      | `i − 1`          | non-root at depth `i` |
//! | `Down-Send`         | `i`              | depth `i`, has children |
//! | `Side-Send-Receive` | `k`              | anyone                |
//! | `Up-Receive`        | `2k − i`         | depth `i`, has children (root: `2k`) |
//! | `Up-Send`           | `2k − i + 1`     | non-root at depth `i` |
//!
//! Information flows root→leaves in the `Down` rounds (a parent's
//! `Down-Send` coincides with its children's `Down-Receive`), leaves→root
//! in the `Up` rounds, and across tree boundaries in the single `Side`
//! round where *all* scheduled nodes are awake simultaneously. Every node
//! is awake `O(1)` rounds per block, which is what makes LDT procedures
//! (broadcast, upcast, ranking) cost `O(1)` awake rounds.

use sleeping_congest::Round;

/// A transmission schedule for trees of at most `k` nodes (depths
/// `0..k`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Schedule {
    k: u32,
}

impl Schedule {
    /// Schedule for trees with at most `k >= 1` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: u32) -> Schedule {
        assert!(k >= 1, "schedule bound must be at least 1");
        Schedule { k }
    }

    /// The tree-size bound `k`.
    pub fn bound(&self) -> u32 {
        self.k
    }

    /// Length of one block: `2k + 1` rounds.
    pub fn block_len(&self) -> Round {
        2 * self.k as Round + 1
    }

    /// `Down-Receive` offset for a node at `depth` (non-root only).
    pub fn down_receive(&self, depth: u32) -> Option<Round> {
        (depth >= 1 && depth < self.k).then(|| depth as Round - 1)
    }

    /// `Down-Send` offset for a node at `depth` (root included).
    pub fn down_send(&self, depth: u32) -> Option<Round> {
        (depth < self.k).then_some(depth as Round)
    }

    /// `Side-Send-Receive` offset (same for every node).
    pub fn side(&self) -> Round {
        self.k as Round
    }

    /// `Up-Receive` offset for a node at `depth`.
    pub fn up_receive(&self, depth: u32) -> Option<Round> {
        (depth < self.k).then(|| 2 * self.k as Round - depth as Round)
    }

    /// `Up-Send` offset for a node at `depth` (non-root only).
    pub fn up_send(&self, depth: u32) -> Option<Round> {
        (depth >= 1 && depth < self.k).then(|| 2 * self.k as Round - depth as Round + 1)
    }
}

/// Maps local rounds to (block index, offset) pairs for a sequence of
/// equal-length blocks starting at local round `first`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockClock {
    first: Round,
    len: Round,
}

impl BlockClock {
    /// Blocks of length `len` starting at local round `first`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn new(first: Round, len: Round) -> BlockClock {
        assert!(len > 0, "block length must be positive");
        BlockClock { first, len }
    }

    /// First local round of block `b`.
    pub fn start_of(&self, b: u64) -> Round {
        self.first + b * self.len
    }

    /// `(block, offset)` of a local round at or after `first`.
    ///
    /// # Panics
    ///
    /// Panics if `lr < first`.
    pub fn locate(&self, lr: Round) -> (u64, Round) {
        assert!(lr >= self.first, "round {lr} precedes the first block at {}", self.first);
        let rel = lr - self.first;
        (rel / self.len, rel % self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parent_child_rounds_align() {
        let s = Schedule::new(10);
        for depth in 1..10u32 {
            // Child's Down-Receive coincides with parent's Down-Send.
            assert_eq!(s.down_receive(depth), s.down_send(depth - 1));
            // Parent's Up-Receive coincides with child's Up-Send.
            assert_eq!(s.up_receive(depth - 1), s.up_send(depth));
        }
    }

    #[test]
    fn phases_do_not_collide() {
        let s = Schedule::new(8);
        // Down offsets live in [0, k-1], side at k, up in [k+1, 2k].
        for depth in 0..8u32 {
            if let Some(r) = s.down_send(depth) {
                assert!(r < 8);
            }
            if let Some(r) = s.down_receive(depth) {
                assert!(r < 8);
            }
            if let Some(r) = s.up_receive(depth) {
                assert!(r > 8 || depth == s.bound() - 1, "depth {depth} ur {r}");
                assert!(r > 8 || depth == s.bound() - 1);
            }
            if let Some(r) = s.up_send(depth) {
                assert!(r > 8);
                assert!(r <= 2 * 8);
            }
        }
        assert_eq!(s.side(), 8);
        assert_eq!(s.block_len(), 17);
    }

    #[test]
    fn root_offsets() {
        let s = Schedule::new(5);
        assert_eq!(s.down_send(0), Some(0));
        assert_eq!(s.down_receive(0), None);
        assert_eq!(s.up_receive(0), Some(10));
        assert_eq!(s.up_send(0), None);
    }

    #[test]
    fn deepest_node() {
        let s = Schedule::new(5);
        // Depth k-1 = 4 is the deepest possible in a tree of k nodes.
        assert_eq!(s.down_receive(4), Some(3));
        assert_eq!(s.up_send(4), Some(7));
        // Depths >= k are invalid.
        assert_eq!(s.down_receive(5), None);
        assert_eq!(s.down_send(5), None);
        assert_eq!(s.up_receive(5), None);
        assert_eq!(s.up_send(5), None);
    }

    #[test]
    fn all_offsets_within_block() {
        for k in 1..30u32 {
            let s = Schedule::new(k);
            for depth in 0..k {
                for off in [
                    s.down_receive(depth),
                    s.down_send(depth),
                    Some(s.side()),
                    s.up_receive(depth),
                    s.up_send(depth),
                ]
                .into_iter()
                .flatten()
                {
                    assert!(off < s.block_len(), "k={k} depth={depth} offset {off}");
                }
            }
        }
    }

    #[test]
    fn block_clock() {
        let c = BlockClock::new(1, 17);
        assert_eq!(c.start_of(0), 1);
        assert_eq!(c.start_of(3), 52);
        assert_eq!(c.locate(1), (0, 0));
        assert_eq!(c.locate(17), (0, 16));
        assert_eq!(c.locate(18), (1, 0));
        assert_eq!(c.locate(52 + 5), (3, 5));
    }

    #[test]
    #[should_panic(expected = "precedes")]
    fn block_clock_rejects_early_rounds() {
        BlockClock::new(5, 10).locate(4);
    }
}
