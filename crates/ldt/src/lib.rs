//! **Labeled distance trees** (LDTs) with awake-efficient construction
//! and operations — the spanning-tree substrate of
//! *"Distributed MIS in O(log log n) Awake Complexity"* (PODC 2023,
//! §5.2 and Appendix A), originally introduced by
//! Augustine–Moses–Pandurangan (PODC 2022).
//!
//! An LDT over a connected node set is a rooted spanning tree in which
//! every node knows (i) the root's ID, (ii) its own depth, and (iii) its
//! parent and children ports. Once built, an LDT supports *broadcast* and
//! *ranking* in **O(1) awake rounds** ([`ops`]), which is the engine
//! behind `LDT-MIS`'s cheap random-ID assignment.
//!
//! # Modules
//!
//! * [`schedule`] — the paper's transmission schedule (Appendix A.1):
//!   named wake-up offsets within blocks of `2k+1` rounds.
//! * [`wave`] — up-then-down wave blocks (gather → scatter in one block).
//! * [`construct`] — `LDT-Construct-Awake`: O(log n′) awake complexity
//!   w.h.p. (randomized fragment merging; see `DESIGN.md` §3.5).
//! * [`construct_round`] — `LDT-Construct-Round` (Appendix A.2):
//!   deterministic, O(log n′ · log* I) awake complexity, built on GHS
//!   merging with Cole–Vishkin coloring of the fragment supergraph.
//! * [`ops`] — broadcast and ranking over a constructed LDT.
//! * [`verify`] — structural validation of a constructed forest.
//!
//! # Example: build an LDT over a cycle
//!
//! ```
//! use graphgen::generators;
//! use ldt::construct::{ConstructAwake, ConstructParams};
//! use ldt::verify::verify_fldt;
//! use sleeping_congest::{SimConfig, Simulator, Standalone};
//!
//! let n = 8u32;
//! let g = generators::cycle(n as usize);
//! let nodes = (0..n)
//!     .map(|v| {
//!         Standalone::new(ConstructAwake::new(ConstructParams {
//!             my_id: (v + 1) as u64 * 7 + 1, // any distinct ids
//!             id_upper: 1000,
//!             k: n,
//!         }))
//!     })
//!     .collect();
//! let report = Simulator::new(g.clone(), nodes, SimConfig::seeded(3)).run()?;
//! verify_fldt(&g, &report.outputs, &vec![true; n as usize]).expect("valid LDT");
//! # Ok::<(), sleeping_congest::SimError>(())
//! ```

pub mod construct;
pub mod construct_round;
pub mod msg;
pub mod ops;
pub mod schedule;
pub mod state;
pub mod verify;
pub mod wave;

pub use construct::{ConstructAwake, ConstructParams, LdtOutput};
pub use construct_round::ConstructRound;
pub use msg::{ConstructMsg, OpsMsg};
pub use ops::{LdtBroadcast, LdtRanking, RankResult};
pub use schedule::{BlockClock, Schedule};
pub use state::{EdgeKey, PortInfo, TreeState};
pub use wave::WaveSchedule;
