//! Awake-efficient LDT construction (`LDT-Construct-Awake`).
//!
//! Builds a forest of labeled distance trees (one spanning tree per
//! connected component of the participating subgraph) with **O(log n′)
//! awake complexity** per node, matching the shape of Lemma 6 of the
//! paper (which cites Theorem 4 of Augustine–Moses–Pandurangan for a
//! deterministic construction; see `DESIGN.md` §3.5 for the documented
//! substitution — we use randomized head/tail merging, so the bound holds
//! w.h.p. instead of deterministically, which is absorbed by the Monte
//! Carlo guarantee of the surrounding MIS algorithm).
//!
//! # Algorithm
//!
//! Local round 0 is the *hello round*: all participants exchange IDs, so
//! every node learns which ports lead to participants. Then fragments
//! (initially singletons) repeatedly merge in phases. Each phase is:
//!
//! 1. **Gather/scatter wave** — convergecast the fragment's minimum
//!    outgoing edge to the root; the root flips a fair coin (*head* or
//!    *tail*) and scatters `(chosen edge, coin, done?)` back down. A
//!    fragment with no outgoing edge spans its component: its nodes
//!    finish.
//! 2. **Propose** (side round) — head fragments propose along their
//!    chosen edge.
//! 3. **Accept** (side round) — tail fragments accept *every* proposal
//!    aimed at them; an accepting endpoint adopts the proposers as
//!    children.
//! 4. **Re-root wave** — each accepted head fragment re-roots at its
//!    proposing endpoint (reversing the path to its old root, up wave)
//!    and disseminates the new root ID and depths (down wave).
//! 5. **Refresh** (side round) — nodes whose fragment ID changed announce
//!    it so neighbors keep accurate cross-edge information.
//!
//! Each phase costs every node `O(1)` awake rounds; a constant fraction
//! of fragments merge per phase in expectation, so `O(log n′)` phases
//! suffice w.h.p. The phase budget is [`awake_phase_budget`]; running out
//! of budget is reported as `ok = false` in the output (a Monte Carlo
//! failure), never as a hang.

use crate::msg::ConstructMsg;
use crate::state::{EdgeKey, PortInfo, TreeState};
use crate::wave::WaveSchedule;
use graphgen::Port;
use rand::Rng;
use sleeping_congest::{NodeCtx, Outbox, Round, SubAction, SubProtocol};

/// Parameters shared by every participant of a construction.
#[derive(Debug, Clone, Copy)]
pub struct ConstructParams {
    /// This node's unique ID (drawn from `[1, id_upper]`).
    pub my_id: u64,
    /// Common upper bound `I` on IDs.
    pub id_upper: u64,
    /// Common upper bound `k` on the size of any connected component of
    /// the participating subgraph. Trees deeper than `k - 1` abort.
    pub k: u32,
}

/// Result of a construction at one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LdtOutput {
    /// Whether this node's fragment completed within the phase budget.
    pub ok: bool,
    /// The node's position in its labeled distance tree.
    pub tree: TreeState,
    /// Post-hello knowledge about each port.
    pub ports: Vec<PortInfo>,
    /// Number of phases until the fragment completed (or the budget).
    pub phases_used: u64,
}

/// Number of merge phases provisioned for components of at most `k`
/// nodes (w.h.p. sufficient; each phase removes a constant fraction of
/// fragments in expectation).
pub fn awake_phase_budget(k: u32) -> u64 {
    6 * ceil_log2(k.max(2) as u64) + 12
}

/// Rounds in one phase of the awake strategy: two wave blocks plus three
/// side rounds.
pub fn awake_phase_len(k: u32) -> u64 {
    2 * (2 * k as u64 + 1) + 3
}

/// Total local-round budget of [`ConstructAwake`]: the hello round plus
/// all phases.
pub fn awake_round_budget(k: u32) -> u64 {
    1 + awake_phase_budget(k) * awake_phase_len(k)
}

/// `⌈log₂ x⌉` for `x ≥ 1`.
pub(crate) fn ceil_log2(x: u64) -> u64 {
    if x <= 1 {
        0
    } else {
        64 - (x - 1).leading_zeros() as u64
    }
}

/// Ops inside one phase, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AwakeOp {
    /// Wave: min-outgoing-edge convergecast + decision scatter.
    Decide,
    /// Side: head fragments propose.
    Propose,
    /// Side: tail fragments accept.
    Accept,
    /// Wave: re-root accepted head fragments.
    Reroot,
    /// Side: fragment-ID refresh.
    Refresh,
}

const AWAKE_OPS: [AwakeOp; 5] = [
    AwakeOp::Decide,
    AwakeOp::Propose,
    AwakeOp::Accept,
    AwakeOp::Reroot,
    AwakeOp::Refresh,
];

/// Per-phase scratch registers.
#[derive(Debug, Clone, Default)]
struct Regs {
    /// Best outgoing-edge candidate heard from children so far.
    up_acc: Option<EdgeKey>,
    /// The fragment's chosen edge this phase.
    chosen: Option<EdgeKey>,
    /// The fragment's coin this phase.
    head: bool,
    /// Fragment has no outgoing edges (construction complete).
    complete: bool,
    /// Port this node proposes on (head fragments, edge owner only).
    propose_port: Option<Port>,
    /// Ports that proposed to this node (tail fragments).
    proposals: Vec<Port>,
    /// Pending re-root wave heard/initiated: `(new_root, my_new_depth)`.
    reroot_val: Option<(u64, u32)>,
    /// Whether this node's fragment ID changed this phase.
    id_changed: bool,
}

/// The `LDT-Construct-Awake` subprotocol (one instance per node).
#[derive(Debug, Clone)]
pub struct ConstructAwake {
    params: ConstructParams,
    wave: WaveSchedule,
    n_phases: u64,
    phase_len: u64,
    tree: TreeState,
    /// Tree state to adopt once the current re-root wave has fully used
    /// the *old* tree for scheduling (committed when leaving the re-root
    /// block).
    pending: Option<TreeState>,
    ports: Vec<PortInfo>,
    regs: Regs,
    agenda: Vec<Round>,
    cur_phase: u64,
    cur_op: usize,
    finished: bool,
    ok: bool,
    phases_used: u64,
}

impl ConstructAwake {
    /// Creates the subprotocol for one node.
    ///
    /// # Panics
    ///
    /// Panics if `params.k == 0` or `params.my_id` is not in
    /// `[1, id_upper]`.
    pub fn new(params: ConstructParams) -> ConstructAwake {
        assert!(params.k >= 1, "component bound k must be >= 1");
        assert!(
            params.my_id >= 1 && params.my_id <= params.id_upper,
            "id {} outside [1, {}]",
            params.my_id,
            params.id_upper
        );
        ConstructAwake {
            params,
            wave: WaveSchedule::new(params.k),
            n_phases: awake_phase_budget(params.k),
            phase_len: awake_phase_len(params.k),
            tree: TreeState::singleton(params.my_id),
            pending: None,
            ports: Vec::new(),
            regs: Regs::default(),
            agenda: Vec::new(),
            cur_phase: 0,
            cur_op: 0,
            finished: false,
            ok: false,
            phases_used: 0,
        }
    }

    /// Local round where phase `p`, op `o` starts.
    fn op_start(&self, phase: u64, op: usize) -> Round {
        let w = self.wave.block_len();
        let within = match AWAKE_OPS[op] {
            AwakeOp::Decide => 0,
            AwakeOp::Propose => w,
            AwakeOp::Accept => w + 1,
            AwakeOp::Reroot => w + 2,
            AwakeOp::Refresh => 2 * w + 2,
        };
        1 + phase * self.phase_len + within
    }

    /// `(phase, op, offset)` of a local round `>= 1`.
    fn locate(&self, lr: Round) -> (u64, usize, Round) {
        debug_assert!(lr >= 1);
        let rel = lr - 1;
        let phase = rel / self.phase_len;
        let within = rel % self.phase_len;
        let w = self.wave.block_len();
        let (op, off) = if within < w {
            (0, within)
        } else if within == w {
            (1, 0)
        } else if within == w + 1 {
            (2, 0)
        } else if within < 2 * w + 2 {
            (3, within - (w + 2))
        } else {
            (4, 0)
        };
        (phase, op, off)
    }

    fn my_id(&self) -> u64 {
        self.params.my_id
    }

    /// Ports leading to participants outside this node's fragment.
    fn cross_ports(&self) -> impl Iterator<Item = Port> + '_ {
        self.ports
            .iter()
            .enumerate()
            .filter(|(_, pi)| pi.participant && pi.fragment_id != self.tree.root_id)
            .map(|(p, _)| p as Port)
    }

    /// Minimum outgoing edge incident to this node.
    fn local_candidate(&self) -> Option<EdgeKey> {
        self.cross_ports()
            .map(|p| EdgeKey::new(self.my_id(), self.ports[p as usize].neighbor_id))
            .min()
    }

    /// Initial agenda (absolute local rounds) for an op, given current
    /// state. Further rounds may be added dynamically while the op runs.
    fn initial_agenda(&self, phase: u64, op: usize) -> Vec<Round> {
        let base = self.op_start(phase, op);
        let d = self.tree.depth;
        let mut v: Vec<Round> = Vec::new();
        match AWAKE_OPS[op] {
            AwakeOp::Decide => {
                if !self.tree.children_ports.is_empty() {
                    v.extend(self.wave.up_receive(d));
                }
                if self.tree.parent_port.is_some() {
                    // Whether to actually transmit is decided at send
                    // time (a node without any candidate stays silent,
                    // but it must still wake if its children may feed it
                    // one — handled by waking at up_send only when a
                    // candidate can exist).
                    v.extend(self.wave.up_send(d));
                    v.extend(self.wave.down_receive(d));
                }
                if self.tree.is_root() {
                    v.extend(self.wave.down_send(d)); // decision point
                } else if !self.tree.children_ports.is_empty() {
                    v.extend(self.wave.down_send(d)); // forward decision
                }
            }
            AwakeOp::Propose => {
                let is_owner = self.regs.propose_port.is_some();
                let may_receive = !self.regs.head && self.cross_ports().next().is_some();
                if (self.regs.head && is_owner) || may_receive {
                    v.push(0);
                }
            }
            AwakeOp::Accept => {
                if (!self.regs.head && !self.regs.proposals.is_empty())
                    || (self.regs.head && self.regs.propose_port.is_some())
                {
                    v.push(0);
                }
            }
            AwakeOp::Reroot => {
                if self.regs.head {
                    if self.regs.reroot_val.is_some() {
                        // Accepted proposer: start the up wave (if there
                        // is a path to reverse) and serve the down wave.
                        if self.tree.parent_port.is_some() {
                            v.extend(self.wave.up_send(d));
                        }
                        if !self.tree.children_ports.is_empty() {
                            v.extend(self.wave.down_send(d));
                        }
                    } else {
                        // Potential path/off-path node: listen on both
                        // waves; sends are scheduled dynamically.
                        if !self.tree.children_ports.is_empty() {
                            v.extend(self.wave.up_receive(d));
                        }
                        if self.tree.parent_port.is_some() {
                            v.extend(self.wave.down_receive(d));
                        }
                    }
                }
            }
            AwakeOp::Refresh => {
                if self.regs.id_changed || self.cross_ports().next().is_some() {
                    v.push(0);
                }
            }
        }
        let mut v: Vec<Round> = v.into_iter().map(|off| base + off).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Schedules one more wake in the current block (used for dynamic
    /// responses like "forward the re-root wave next round").
    fn push_agenda(&mut self, lr: Round) {
        if let Err(pos) = self.agenda.binary_search(&lr) {
            self.agenda.insert(pos, lr);
        }
    }

    /// Advances past the current op until an op with a nonempty agenda is
    /// found; returns the action to take from round `lr`.
    fn advance(&mut self, lr: Round) -> SubAction {
        loop {
            if self.finished {
                return SubAction::Done;
            }
            // Commit a pending re-root when leaving the Reroot op.
            if AWAKE_OPS[self.cur_op] == AwakeOp::Reroot {
                if let Some(next) = self.pending.take() {
                    self.regs.id_changed = next.root_id != self.tree.root_id;
                    if let Some(p) = next.parent_port {
                        // The new parent lies in the merged-into
                        // fragment (or on the reversed path): keep the
                        // port table consistent eagerly.
                        self.ports[p as usize].fragment_id = next.root_id;
                    }
                    self.tree = next;
                }
            }
            self.cur_op += 1;
            if self.cur_op == AWAKE_OPS.len() {
                self.cur_op = 0;
                self.cur_phase += 1;
                if self.cur_phase >= self.n_phases {
                    if std::env::var_os("LDT_MIS_DEBUG").is_some() {
                        eprintln!(
                            "ConstructAwake BUDGET-EXHAUSTED id={} tree={:?} ports={:?}",
                            self.params.my_id, self.tree, self.ports
                        );
                    }
                    self.finished = true;
                    self.ok = false; // budget exhausted without completion
                    self.phases_used = self.cur_phase;
                    return SubAction::Done;
                }
                // Fresh registers for the new phase.
                self.regs = Regs::default();
            }
            self.agenda = self.initial_agenda(self.cur_phase, self.cur_op);
            if let Some(&first) = self.agenda.first() {
                debug_assert!(first > lr, "agenda round {first} not after {lr}");
                return SubAction::SleepUntil(first);
            }
        }
    }

    /// Next action after handling round `lr`.
    fn next_action(&mut self, lr: Round) -> SubAction {
        if self.finished {
            return SubAction::Done;
        }
        if let Some(&next) = self.agenda.iter().find(|&&r| r > lr) {
            return SubAction::SleepUntil(next);
        }
        self.advance(lr)
    }

    fn fail(&mut self) -> SubAction {
        if std::env::var_os("LDT_MIS_DEBUG").is_some() {
            eprintln!(
                "ConstructAwake FAIL id={} phase={} op={} depth={} tree={:?}",
                self.params.my_id, self.cur_phase, self.cur_op, self.tree.depth, self.tree
            );
        }
        self.finished = true;
        self.ok = false;
        self.phases_used = self.cur_phase;
        SubAction::Done
    }

    fn complete(&mut self) -> SubAction {
        self.finished = true;
        self.ok = true;
        self.phases_used = self.cur_phase + 1;
        SubAction::Done
    }
}

impl SubProtocol for ConstructAwake {
    type Msg = ConstructMsg;
    type Output = LdtOutput;

    fn send(&mut self, lr: Round, ctx: &mut NodeCtx) -> Outbox<ConstructMsg> {
        if lr == 0 {
            return Outbox::Broadcast(ConstructMsg::Hello { id: self.my_id() });
        }
        if self.finished {
            return Outbox::Silent;
        }
        let (_, op, off) = self.locate(lr);
        let d = self.tree.depth;
        match AWAKE_OPS[op] {
            AwakeOp::Decide => {
                if Some(off) == self.wave.up_send(d) {
                    let best = min_edge(self.regs.up_acc, self.local_candidate());
                    match (best, self.tree.parent_port) {
                        (Some(e), Some(p)) => {
                            Outbox::Unicast(vec![(p, ConstructMsg::UpEdge(Some(e)))])
                        }
                        _ => Outbox::Silent, // silence encodes "no candidate"
                    }
                } else if Some(off) == self.wave.down_send(d) {
                    if self.tree.is_root() {
                        // Decision point: pick the fragment's minimum
                        // outgoing edge and flip the merge coin.
                        self.regs.chosen = min_edge(self.regs.up_acc, self.local_candidate());
                        self.regs.complete = self.regs.chosen.is_none();
                        self.regs.head = !self.regs.complete && ctx.rng.gen_bool(0.5);
                    }
                    if self.tree.children_ports.is_empty() {
                        Outbox::Silent
                    } else {
                        let msg = ConstructMsg::Decision {
                            chosen: self.regs.chosen,
                            head: self.regs.head,
                            done: self.regs.complete,
                        };
                        Outbox::Unicast(
                            self.tree
                                .children_ports
                                .iter()
                                .map(|&p| (p, msg.clone()))
                                .collect(),
                        )
                    }
                } else {
                    Outbox::Silent
                }
            }
            AwakeOp::Propose => match self.regs.propose_port {
                Some(p) if self.regs.head => Outbox::Unicast(vec![(
                    p,
                    ConstructMsg::Propose { fragment: self.tree.root_id },
                )]),
                _ => Outbox::Silent,
            },
            AwakeOp::Accept => {
                if !self.regs.head && !self.regs.proposals.is_empty() {
                    let msg = ConstructMsg::Accept {
                        root_id: self.tree.root_id,
                        attach_depth: self.tree.depth,
                    };
                    Outbox::Unicast(self.regs.proposals.iter().map(|&p| (p, msg.clone())).collect())
                } else {
                    Outbox::Silent
                }
            }
            AwakeOp::Reroot => {
                if Some(off) == self.wave.up_send(d) {
                    match (self.regs.reroot_val, self.tree.parent_port) {
                        (Some((nr, nd)), Some(p)) => Outbox::Unicast(vec![(
                            p,
                            ConstructMsg::RerootUp { new_root: nr, sender_new_depth: nd },
                        )]),
                        _ => Outbox::Silent,
                    }
                } else if Some(off) == self.wave.down_send(d) {
                    match &self.pending {
                        Some(t) if !self.tree.children_ports.is_empty() => {
                            let msg = ConstructMsg::Update {
                                new_root: t.root_id,
                                sender_new_depth: t.depth,
                            };
                            Outbox::Unicast(
                                self.tree
                                    .children_ports
                                    .iter()
                                    .map(|&p| (p, msg.clone()))
                                    .collect(),
                            )
                        }
                        _ => Outbox::Silent,
                    }
                } else {
                    Outbox::Silent
                }
            }
            AwakeOp::Refresh => {
                if self.regs.id_changed {
                    let live: Vec<(Port, ConstructMsg)> = self
                        .ports
                        .iter()
                        .enumerate()
                        .filter(|(_, pi)| pi.participant)
                        .map(|(p, _)| (p as Port, ConstructMsg::FragId { root_id: self.tree.root_id }))
                        .collect();
                    if live.is_empty() {
                        Outbox::Silent
                    } else {
                        Outbox::Unicast(live)
                    }
                } else {
                    Outbox::Silent
                }
            }
        }
    }

    fn receive(
        &mut self,
        lr: Round,
        ctx: &mut NodeCtx,
        inbox: &[(Port, ConstructMsg)],
    ) -> SubAction {
        if lr == 0 {
            self.ports = vec![PortInfo::unknown(); ctx.degree];
            let mut ids_seen = vec![self.my_id()];
            for &(p, ref m) in inbox {
                if let ConstructMsg::Hello { id } = m {
                    self.ports[p as usize] =
                        PortInfo { neighbor_id: *id, fragment_id: *id, participant: true };
                    ids_seen.push(*id);
                }
            }
            ids_seen.sort_unstable();
            if ids_seen.windows(2).any(|w| w[0] == w[1]) {
                return self.fail(); // duplicate IDs break edge ordering
            }
            if self.ports.iter().all(|pi| !pi.participant) {
                // Isolated participant: its singleton tree is the LDT.
                return self.complete();
            }
            self.agenda = self.initial_agenda(0, 0);
            self.cur_phase = 0;
            self.cur_op = 0;
            let first = self.agenda[0];
            return SubAction::SleepUntil(first);
        }

        if self.finished {
            return SubAction::Done;
        }
        let (_, op, off) = self.locate(lr);
        let d = self.tree.depth;
        match AWAKE_OPS[op] {
            AwakeOp::Decide => {
                if Some(off) == self.wave.up_receive(d) {
                    for (_, m) in inbox {
                        if let ConstructMsg::UpEdge(e) = m {
                            self.regs.up_acc = min_edge(self.regs.up_acc, *e);
                        }
                    }
                } else if Some(off) == self.wave.down_send(d) && self.tree.is_root() {
                    // Root: the decision (including the coin) was made in
                    // this round's send step.
                    if self.regs.complete {
                        return self.complete();
                    }
                    self.note_propose_port();
                } else if Some(off) == self.wave.down_receive(d) {
                    for (_, m) in inbox {
                        if let ConstructMsg::Decision { chosen, head, done } = m {
                            self.regs.chosen = *chosen;
                            self.regs.head = *head;
                            self.regs.complete = *done;
                        }
                    }
                    if self.regs.complete && self.tree.children_ports.is_empty() {
                        return self.complete();
                    }
                    self.note_propose_port();
                } else if Some(off) == self.wave.down_send(d) && !self.tree.is_root() {
                    // Forwarded the decision to children in `send`.
                    if self.regs.complete {
                        return self.complete();
                    }
                }
            }
            AwakeOp::Propose => {
                if !self.regs.head {
                    for (p, m) in inbox {
                        if matches!(m, ConstructMsg::Propose { .. }) {
                            self.regs.proposals.push(*p);
                        }
                    }
                }
            }
            AwakeOp::Accept => {
                if !self.regs.head && !self.regs.proposals.is_empty() {
                    // Adopt every proposer as a child; their subtrees
                    // join this fragment.
                    let props = std::mem::take(&mut self.regs.proposals);
                    for p in props {
                        self.tree.add_child(p);
                        self.ports[p as usize].fragment_id = self.tree.root_id;
                    }
                } else if self.regs.head {
                    for (p, m) in inbox {
                        if let ConstructMsg::Accept { root_id, attach_depth } = m {
                            debug_assert_eq!(Some(*p), self.regs.propose_port);
                            let mut children = self.tree.children_ports.clone();
                            if let Some(old_parent) = self.tree.parent_port {
                                push_sorted(&mut children, old_parent);
                            }
                            self.regs.reroot_val = Some((*root_id, attach_depth + 1));
                            self.pending = Some(TreeState {
                                root_id: *root_id,
                                depth: attach_depth + 1,
                                parent_port: Some(*p),
                                children_ports: children,
                            });
                        }
                    }
                }
            }
            AwakeOp::Reroot => {
                if Some(off) == self.wave.up_receive(d) {
                    for (p, m) in inbox {
                        if let ConstructMsg::RerootUp { new_root, sender_new_depth } = m {
                            let my_new = sender_new_depth + 1;
                            if my_new as u64 >= self.params.k as u64 {
                                return self.fail(); // exceeds depth budget
                            }
                            let mut children = self.tree.children_ports.clone();
                            remove_sorted(&mut children, *p);
                            if let Some(old_parent) = self.tree.parent_port {
                                push_sorted(&mut children, old_parent);
                            }
                            self.regs.reroot_val = Some((*new_root, my_new));
                            self.pending = Some(TreeState {
                                root_id: *new_root,
                                depth: my_new,
                                parent_port: Some(*p),
                                children_ports: children,
                            });
                            // Forward the up wave and serve the down wave.
                            let base = lr - off;
                            if self.tree.parent_port.is_some() {
                                if let Some(us) = self.wave.up_send(d) {
                                    self.push_agenda(base + us);
                                }
                            }
                            if !self.tree.children_ports.is_empty() {
                                if let Some(ds) = self.wave.down_send(d) {
                                    self.push_agenda(base + ds);
                                }
                            }
                        }
                    }
                } else if Some(off) == self.wave.down_receive(d) {
                    for (_, m) in inbox {
                        if let ConstructMsg::Update { new_root, sender_new_depth } = m {
                            if self.pending.is_none() {
                                let my_new = sender_new_depth + 1;
                                if my_new as u64 >= self.params.k as u64 {
                                    return self.fail();
                                }
                                self.pending = Some(TreeState {
                                    root_id: *new_root,
                                    depth: my_new,
                                    parent_port: self.tree.parent_port,
                                    children_ports: self.tree.children_ports.clone(),
                                });
                                if !self.tree.children_ports.is_empty() {
                                    let base = lr - off;
                                    if let Some(ds) = self.wave.down_send(d) {
                                        self.push_agenda(base + ds);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            AwakeOp::Refresh => {
                for (p, m) in inbox {
                    if let ConstructMsg::FragId { root_id } = m {
                        self.ports[*p as usize].fragment_id = *root_id;
                    }
                }
            }
        }
        self.next_action(lr)
    }

    fn output(&self) -> LdtOutput {
        assert!(self.finished, "construction output read before completion");
        LdtOutput {
            ok: self.ok,
            tree: self.tree.clone(),
            ports: self.ports.clone(),
            phases_used: self.phases_used,
        }
    }
}

impl ConstructAwake {
    /// After learning the phase decision, record whether this node owns
    /// the chosen edge (and on which port it would propose).
    fn note_propose_port(&mut self) {
        self.regs.propose_port = None;
        if let Some(e) = self.regs.chosen {
            if self.regs.head && e.touches(self.my_id()) {
                let other = if e.lo == self.my_id() { e.hi } else { e.lo };
                self.regs.propose_port = self
                    .ports
                    .iter()
                    .enumerate()
                    .find(|(_, pi)| pi.participant && pi.neighbor_id == other)
                    .map(|(p, _)| p as Port);
            }
        }
    }
}

fn min_edge(a: Option<EdgeKey>, b: Option<EdgeKey>) -> Option<EdgeKey> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

fn push_sorted(v: &mut Vec<Port>, x: Port) {
    if let Err(pos) = v.binary_search(&x) {
        v.insert(pos, x);
    }
}

fn remove_sorted(v: &mut Vec<Port>, x: Port) {
    if let Ok(pos) = v.binary_search(&x) {
        v.remove(pos);
    }
}
