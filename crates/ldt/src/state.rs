//! Per-node LDT state: tree position and per-port knowledge.

use graphgen::Port;

/// A node's position in its labeled distance tree.
///
/// The LDT invariants (paper §5.2): every node knows (i) the ID of the
/// tree root (`root_id`, also serving as the *fragment ID* during
/// construction), (ii) its own depth (hop distance to the root through
/// tree edges), and (iii) which of its ports lead to its parent and
/// children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeState {
    /// ID of the tree's root — the tree/fragment identifier.
    pub root_id: u64,
    /// Hop distance to the root along tree edges.
    pub depth: u32,
    /// Port leading to the parent (`None` at the root).
    pub parent_port: Option<Port>,
    /// Ports leading to children, sorted ascending.
    pub children_ports: Vec<Port>,
}

impl TreeState {
    /// A singleton tree rooted at this node.
    pub fn singleton(my_id: u64) -> TreeState {
        TreeState { root_id: my_id, depth: 0, parent_port: None, children_ports: Vec::new() }
    }

    /// Whether this node is the root of its tree.
    pub fn is_root(&self) -> bool {
        self.parent_port.is_none()
    }

    /// Whether this node is a leaf (no children).
    pub fn is_leaf(&self) -> bool {
        self.children_ports.is_empty()
    }

    /// Registers `port` as a child port (keeps the list sorted; no-op if
    /// already present).
    pub fn add_child(&mut self, port: Port) {
        if let Err(pos) = self.children_ports.binary_search(&port) {
            self.children_ports.insert(pos, port);
        }
    }

    /// Removes `port` from the children (no-op if absent).
    pub fn remove_child(&mut self, port: Port) {
        if let Ok(pos) = self.children_ports.binary_search(&port) {
            self.children_ports.remove(pos);
        }
    }
}

/// What a node knows about one of its ports after the hello round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortInfo {
    /// The neighbor's drawn ID (valid only if `participant`).
    pub neighbor_id: u64,
    /// The neighbor's current fragment ID (kept fresh by the per-phase
    /// refresh exchanges during construction).
    pub fragment_id: u64,
    /// Whether the neighbor participates in this LDT execution.
    pub participant: bool,
}

impl PortInfo {
    /// State before the hello round: assumed absent.
    pub fn unknown() -> PortInfo {
        PortInfo { neighbor_id: 0, fragment_id: 0, participant: false }
    }
}

/// An undirected edge identifier: the pair of endpoint IDs, smaller
/// first. Edges are compared lexicographically — the total order used to
/// pick "minimum outgoing edges" during construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeKey {
    /// Smaller endpoint ID.
    pub lo: u64,
    /// Larger endpoint ID.
    pub hi: u64,
}

impl EdgeKey {
    /// Canonical key for the edge between two node IDs.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (self loops are not edges).
    pub fn new(a: u64, b: u64) -> EdgeKey {
        assert_ne!(a, b, "an edge needs two distinct endpoint ids");
        EdgeKey { lo: a.min(b), hi: a.max(b) }
    }

    /// Whether this edge is incident to the node with ID `id`.
    pub fn touches(&self, id: u64) -> bool {
        self.lo == id || self.hi == id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_is_root_leaf() {
        let t = TreeState::singleton(42);
        assert!(t.is_root());
        assert!(t.is_leaf());
        assert_eq!(t.root_id, 42);
        assert_eq!(t.depth, 0);
    }

    #[test]
    fn child_bookkeeping() {
        let mut t = TreeState::singleton(1);
        t.add_child(5);
        t.add_child(2);
        t.add_child(5); // duplicate ignored
        assert_eq!(t.children_ports, vec![2, 5]);
        t.remove_child(2);
        assert_eq!(t.children_ports, vec![5]);
        t.remove_child(99); // absent: no-op
        assert_eq!(t.children_ports, vec![5]);
    }

    #[test]
    fn edge_key_canonical_and_ordered() {
        assert_eq!(EdgeKey::new(7, 3), EdgeKey::new(3, 7));
        assert!(EdgeKey::new(1, 9) < EdgeKey::new(2, 3));
        assert!(EdgeKey::new(1, 5) < EdgeKey::new(1, 9));
        assert!(EdgeKey::new(2, 3).touches(3));
        assert!(!EdgeKey::new(2, 3).touches(4));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn edge_key_rejects_loops() {
        EdgeKey::new(4, 4);
    }
}
