//! Pinning tests for every [`SimError`] path, driven by tiny adversarial
//! protocols — so engine refactors (wake-queue changes, scratch reuse)
//! cannot silently change error semantics.

use graphgen::{generators, Port};
use sleeping_congest::{
    Action, NodeCtx, Outbox, Protocol, SimConfig, SimError, Simulator, SLEEP_FOREVER,
};

/// A programmable one-decision node: broadcasts `payload` while awake and
/// applies `decide` at each receive step.
struct Adversary<F: FnMut(u64) -> Action> {
    payload: u64,
    decide: F,
}

impl<F: FnMut(u64) -> Action> Protocol for Adversary<F> {
    type Msg = u64;
    type Output = ();
    fn send(&mut self, _: &mut NodeCtx) -> Outbox<u64> {
        Outbox::Broadcast(self.payload)
    }
    fn receive(&mut self, ctx: &mut NodeCtx, _: &[(Port, u64)]) -> Action {
        (self.decide)(ctx.round)
    }
    fn output(&self) {}
}

fn pair<F: FnMut(u64) -> Action>(mk: impl Fn() -> F) -> Vec<Adversary<F>> {
    vec![Adversary { payload: 1, decide: mk() }, Adversary { payload: 2, decide: mk() }]
}

#[test]
fn deadlock_when_all_scheduled_nodes_terminate() {
    // Node 0 terminates in round 0; node 1 parks forever. Once the wake
    // queue drains, the engine must report the parked node rather than
    // spin or fast-forward.
    struct Parker {
        parks: bool,
    }
    impl Protocol for Parker {
        type Msg = ();
        type Output = ();
        fn send(&mut self, _: &mut NodeCtx) -> Outbox<()> {
            Outbox::Silent
        }
        fn receive(&mut self, _: &mut NodeCtx, _: &[(Port, ())]) -> Action {
            if self.parks {
                Action::SleepUntil(SLEEP_FOREVER)
            } else {
                Action::Terminate
            }
        }
        fn output(&self) {}
    }
    let g = generators::path(3);
    let nodes = vec![
        Parker { parks: false },
        Parker { parks: true },
        Parker { parks: true },
    ];
    let err = Simulator::new(g, nodes, SimConfig::default()).run().unwrap_err();
    assert_eq!(err, SimError::Deadlock { sleeping_forever: 2 });
}

#[test]
fn deadlock_can_strike_after_many_active_rounds() {
    // The parked node is only detected once the rest of the schedule
    // drains, not at park time: node 0 keeps working for 50 rounds after
    // node 1 parks.
    type Decide = fn(u64) -> Action;
    let g = generators::path(2);
    let nodes: Vec<Adversary<Decide>> = vec![
        Adversary {
            payload: 1,
            decide: |round| if round < 50 { Action::Continue } else { Action::Terminate },
        },
        Adversary {
            payload: 2,
            decide: |_| Action::SleepUntil(SLEEP_FOREVER),
        },
    ];
    let err = Simulator::new(g, nodes, SimConfig::default()).run().unwrap_err();
    assert_eq!(err, SimError::Deadlock { sleeping_forever: 1 });
}

#[test]
fn bad_sleep_to_current_round_rejected() {
    let g = generators::path(2);
    let nodes = pair(|| |round| Action::SleepUntil(round));
    let err = Simulator::new(g, nodes, SimConfig::default()).run().unwrap_err();
    // Both nodes misbehave in round 0; receive steps go in node-id order.
    assert_eq!(err, SimError::BadSleep { node: 0, round: 0, until: 0 });
}

#[test]
fn bad_sleep_into_the_past_rejected() {
    // Stay awake through round 2, then ask to sleep "until" round 1.
    let g = generators::path(2);
    let nodes = pair(|| {
        |round| {
            if round < 2 {
                Action::Continue
            } else {
                Action::SleepUntil(1)
            }
        }
    });
    let err = Simulator::new(g, nodes, SimConfig::default()).run().unwrap_err();
    assert_eq!(err, SimError::BadSleep { node: 0, round: 2, until: 1 });
}

#[test]
fn round_limit_reports_the_offending_round() {
    // Leapfrog sleeps: 1 → 2 → 4 → 8 → … The first wake past the cap
    // aborts with RoundLimit of that round, not of the cap.
    let g = generators::path(2);
    let cfg = SimConfig { max_rounds: 1000, ..SimConfig::default() };
    let nodes = pair(|| |round: u64| Action::SleepUntil((round + 1).saturating_mul(2)));
    let err = Simulator::new(g, nodes, cfg).run().unwrap_err();
    assert_eq!(err, SimError::RoundLimit(1022));
}

#[test]
fn active_round_limit_stops_runaway_protocols() {
    let g = generators::path(2);
    let cfg = SimConfig { max_active_rounds: 10, ..SimConfig::default() };
    let nodes = pair(|| |_| Action::Continue);
    let err = Simulator::new(g, nodes, cfg).run().unwrap_err();
    assert_eq!(err, SimError::ActiveRoundLimit(11));
}

#[test]
fn message_too_large_reports_sender_round_and_sizes() {
    // Nodes stay silent until round 3, then node 1 broadcasts 64 bits
    // over a 48-bit budget.
    struct LateTalker {
        id: u64,
    }
    impl Protocol for LateTalker {
        type Msg = u64;
        type Output = ();
        fn send(&mut self, ctx: &mut NodeCtx) -> Outbox<u64> {
            if ctx.round == 3 && self.id == 1 {
                Outbox::Broadcast(0xFFFF_FFFF)
            } else {
                Outbox::Silent
            }
        }
        fn receive(&mut self, ctx: &mut NodeCtx, _: &[(Port, u64)]) -> Action {
            if ctx.round < 5 {
                Action::Continue
            } else {
                Action::Terminate
            }
        }
        fn output(&self) {}
    }
    let g = generators::path(2);
    let cfg = SimConfig { bit_limit: Some(48), ..SimConfig::default() };
    let nodes = vec![LateTalker { id: 0 }, LateTalker { id: 1 }];
    let err = Simulator::new(g, nodes, cfg).run().unwrap_err();
    assert_eq!(err, SimError::MessageTooLarge { node: 1, round: 3, bits: 64, limit: 48 });
}

#[test]
fn oversized_unicast_also_rejected() {
    struct UnicastTalker;
    impl Protocol for UnicastTalker {
        type Msg = u64;
        type Output = ();
        fn send(&mut self, _: &mut NodeCtx) -> Outbox<u64> {
            Outbox::Unicast(vec![(0, u64::MAX)])
        }
        fn receive(&mut self, _: &mut NodeCtx, _: &[(Port, u64)]) -> Action {
            Action::Terminate
        }
        fn output(&self) {}
    }
    let g = generators::path(2);
    let cfg = SimConfig { bit_limit: Some(32), ..SimConfig::default() };
    let err = Simulator::new(g, vec![UnicastTalker, UnicastTalker], cfg).run().unwrap_err();
    assert_eq!(err, SimError::MessageTooLarge { node: 0, round: 0, bits: 64, limit: 32 });
}

#[test]
fn node_count_mismatch_before_any_rounds() {
    let g = generators::path(4);
    let nodes = pair(|| |_| Action::Terminate);
    let err = Simulator::new(g, nodes, SimConfig::default()).run().unwrap_err();
    assert_eq!(err, SimError::NodeCountMismatch { nodes: 4, protocols: 2 });
}

#[test]
fn error_display_messages_are_stable() {
    // Downstream harnesses embed these strings in reports; pin them.
    assert_eq!(
        SimError::Deadlock { sleeping_forever: 3 }.to_string(),
        "deadlock: 3 nodes slept forever without terminating"
    );
    assert_eq!(
        SimError::BadSleep { node: 7, round: 9, until: 9 }.to_string(),
        "node 7 in round 9 asked to sleep until round 9"
    );
    assert_eq!(SimError::RoundLimit(12).to_string(), "round limit exceeded at round 12");
    assert_eq!(
        SimError::MessageTooLarge { node: 1, round: 2, bits: 64, limit: 32 }.to_string(),
        "node 1 sent a 64-bit message in round 2 (limit 32)"
    );
}
