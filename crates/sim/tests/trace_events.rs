//! Trace-layer guarantees at the engine level.
//!
//! Tracing is observational only: attaching any sink — `Profile`,
//! `JsonlSink`, or a raw `Recorder` — must leave outputs and `Metrics`
//! bit-identical to the untraced run, for every shard count and under
//! active fault models. The emitted stream itself must be well-formed:
//! monotonic round numbers and a fixed phase nesting inside each round.

use graphgen::{generators, Port};
use rand::Rng;
use sleeping_congest::trace::{Recorder, TraceEvent, TracePhase};
use sleeping_congest::{
    Action, FaultModel, JsonlSink, Metrics, NodeCtx, Outbox, Profile, Protocol, SimConfig,
    Simulator, TraceHandle,
};

/// RNG-hungry protocol (random payloads, random sleep gaps) so any
/// trace-induced perturbation of scheduling or RNG state is visible.
#[derive(Debug, Clone)]
struct RandWalk {
    wakes_left: u32,
    log: Vec<u64>,
}

impl Protocol for RandWalk {
    type Msg = u64;
    type Output = Vec<u64>;

    fn send(&mut self, ctx: &mut NodeCtx) -> Outbox<u64> {
        let payload: u64 = ctx.rng.gen();
        self.log.push(payload);
        Outbox::Broadcast(payload)
    }

    fn receive(&mut self, ctx: &mut NodeCtx, inbox: &[(Port, u64)]) -> Action {
        for &(p, m) in inbox {
            self.log.push(m ^ p as u64);
        }
        self.wakes_left -= 1;
        if self.wakes_left == 0 {
            Action::Terminate
        } else {
            let gap = ctx.rng.gen_range(1..6u64);
            Action::SleepUntil(ctx.round + gap)
        }
    }

    fn output(&self) -> Vec<u64> {
        self.log.clone()
    }
}

fn run(config: SimConfig, n: usize) -> (Vec<Vec<u64>>, Metrics) {
    let g = generators::gnp(n, 0.02, &mut {
        use rand::SeedableRng;
        rand::rngs::SmallRng::seed_from_u64(5)
    });
    let nodes = (0..g.n()).map(|_| RandWalk { wakes_left: 4, log: Vec::new() }).collect();
    let report = Simulator::new(g, nodes, config).run().expect("run");
    (report.outputs, report.metrics)
}

fn lossy() -> FaultModel {
    FaultModel { loss: 0.05, crash: 0.002, ..FaultModel::default() }
}

#[test]
fn sinks_do_not_perturb_the_run() {
    for shards in [1usize, 8] {
        for fault in [FaultModel::default(), lossy()] {
            let base = SimConfig {
                shards,
                fault: fault.clone(),
                ..SimConfig::seeded(42)
            };
            let (outs_ref, metrics_ref) = run(base.clone(), 600);
            let sinks: Vec<TraceHandle> = vec![
                TraceHandle::new(Profile::new()),
                TraceHandle::new(JsonlSink::new(Vec::new())),
                TraceHandle::new(Recorder::new()),
            ];
            for handle in sinks {
                let traced = SimConfig { trace: Some(handle), ..base.clone() };
                let (outs, metrics) = run(traced, 600);
                assert_eq!(outs, outs_ref, "shards={shards} fault={fault:?}");
                assert_eq!(metrics, metrics_ref, "shards={shards} fault={fault:?}");
            }
        }
    }
}

/// Replays a recorded stream and checks the documented structure:
/// bracketing RunBegin/RunEnd, strictly increasing round numbers, and
/// inside each round the fixed order RoundBegin → Send → ShardBatch* →
/// Merge → Receive → Bookkeeping → RoundEnd with each phase exactly
/// once.
fn check_stream(events: &[TraceEvent]) -> u64 {
    assert!(matches!(events.first(), Some(TraceEvent::RunBegin { .. })), "missing RunBegin");
    assert!(matches!(events.last(), Some(TraceEvent::RunEnd { .. })), "missing RunEnd");
    let mut last_round: Option<u64> = None;
    let mut open: Option<u64> = None;
    let mut phases_seen: Vec<TracePhase> = Vec::new();
    let mut rounds = 0u64;
    for ev in &events[1..events.len() - 1] {
        match *ev {
            TraceEvent::RoundBegin { round, .. } => {
                assert!(open.is_none(), "round {round} began inside round {open:?}");
                if let Some(prev) = last_round {
                    assert!(round > prev, "round numbers not monotonic: {prev} then {round}");
                }
                last_round = Some(round);
                open = Some(round);
                phases_seen.clear();
                rounds += 1;
            }
            TraceEvent::Phase { round, phase, .. } => {
                assert_eq!(Some(round), open, "phase outside its round");
                assert!(!phases_seen.contains(&phase), "duplicate phase {phase:?}");
                // Phases arrive in declaration order.
                let idx = TracePhase::ALL.iter().position(|&p| p == phase).unwrap();
                assert_eq!(idx, phases_seen.len(), "phase {phase:?} out of order");
                phases_seen.push(phase);
            }
            TraceEvent::ShardBatch { round, .. } => {
                assert_eq!(Some(round), open, "shard batch outside its round");
                assert_eq!(phases_seen.len(), 1, "shard batches follow the send phase");
            }
            TraceEvent::RoundEnd { round, .. } => {
                assert_eq!(Some(round), open, "round end without begin");
                assert_eq!(
                    phases_seen.len(),
                    TracePhase::ALL.len(),
                    "round {round} ended with phases missing: {phases_seen:?}"
                );
                open = None;
            }
            ref other => panic!("unexpected event between rounds: {other:?}"),
        }
    }
    assert!(open.is_none(), "stream ended mid-round");
    rounds
}

#[test]
fn event_stream_is_well_formed_serial() {
    let rec = Recorder::new();
    let view = rec.clone();
    let config = SimConfig { trace: Some(TraceHandle::new(rec)), ..SimConfig::seeded(7) };
    run(config, 300);
    let events = view.events();
    let rounds = check_stream(&events);
    assert!(rounds > 1, "expected multiple active rounds, saw {rounds}");
}

#[test]
fn event_stream_is_well_formed_sharded_with_faults() {
    let rec = Recorder::new();
    let view = rec.clone();
    let config = SimConfig {
        shards: 8,
        fault: lossy(),
        trace: Some(TraceHandle::new(rec)),
        ..SimConfig::seeded(7)
    };
    run(config, 1200);
    let events = view.events();
    check_stream(&events);
    // A 1200-node first round splits across shards: at least one round
    // must report more than one shard batch.
    let max_shards_in_a_round = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::ShardBatch { round, shard, .. } => Some((round, shard)),
            _ => None,
        })
        .fold(std::collections::HashMap::new(), |mut m, (r, s)| {
            let e: &mut usize = m.entry(*r).or_default();
            *e = (*e).max(s + 1);
            m
        })
        .values()
        .copied()
        .max()
        .unwrap_or(0);
    assert!(max_shards_in_a_round > 1, "no round was actually sharded");
    // Fault drops show up in the stream.
    let faulted: u64 = events
        .iter()
        .map(|e| match e {
            TraceEvent::RoundEnd { faulted, .. } => *faulted,
            _ => 0,
        })
        .sum();
    assert!(faulted > 0, "lossy model produced no fault-dropped copies in the trace");
}

#[test]
fn profile_aggregates_across_runs_and_renders() {
    let handle = TraceHandle::new(Profile::new());
    let config = SimConfig { trace: Some(handle.clone()), ..SimConfig::seeded(3) };
    run(config.clone(), 200);
    run(config, 200);
    let report = handle.report().expect("profile renders");
    assert!(report.contains("2 runs"), "report:\n{report}");
    for phase in TracePhase::ALL {
        assert!(report.contains(phase.name()), "missing {}:\n{report}", phase.name());
    }
}

#[test]
fn jsonl_lines_match_the_recorded_stream() {
    let rec = Recorder::new();
    let view = rec.clone();
    // Two sinks cannot attach to one run, so record and render the
    // recorded events through the JSONL formatter instead.
    let config = SimConfig { trace: Some(TraceHandle::new(rec)), ..SimConfig::seeded(11) };
    run(config, 150);
    let events = view.events();
    let mut sink = JsonlSink::new(Vec::new());
    use sleeping_congest::TraceSink;
    for ev in &events {
        sink.event(ev);
    }
    let text = String::from_utf8(sink.into_inner()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), events.len());
    for line in lines {
        assert!(line.starts_with("{\"ev\":\""), "bad line: {line}");
        assert!(line.ends_with('}'), "bad line: {line}");
    }
}
