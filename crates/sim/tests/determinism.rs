//! Deterministic-replay tests: a `Simulator` run is a pure function of
//! `(graph, protocols, SimConfig)`. These guard the seeded-RNG plumbing
//! in `sim::rng` — every node's private RNG must be derived from the
//! run seed and the node index, nothing else.

use graphgen::{generators, Port};
use rand::Rng;
use sleeping_congest::{
    Action, FaultModel, Metrics, NodeCtx, Outbox, Protocol, SimConfig, Simulator,
};

/// RNG-hungry protocol: every wake draws payloads and a sleep gap from
/// the node's private RNG, so any nondeterminism in the RNG plumbing
/// shows up in messages, schedules, and outputs.
#[derive(Debug, Clone)]
struct RandWalk {
    wakes_left: u32,
    trace: Vec<u64>,
}

impl RandWalk {
    fn new(wakes: u32) -> RandWalk {
        RandWalk { wakes_left: wakes, trace: Vec::new() }
    }
}

impl Protocol for RandWalk {
    type Msg = u64;
    type Output = Vec<u64>;

    fn send(&mut self, ctx: &mut NodeCtx) -> Outbox<u64> {
        let payload: u64 = ctx.rng.gen();
        self.trace.push(payload);
        Outbox::Broadcast(payload)
    }

    fn receive(&mut self, ctx: &mut NodeCtx, inbox: &[(Port, u64)]) -> Action {
        for &(p, m) in inbox {
            self.trace.push(m ^ p as u64);
        }
        self.wakes_left -= 1;
        if self.wakes_left == 0 {
            Action::Terminate
        } else {
            let gap = ctx.rng.gen_range(1..8u64);
            Action::SleepUntil(ctx.round + gap)
        }
    }

    fn output(&self) -> Vec<u64> {
        self.trace.clone()
    }
}

fn run(seed: u64) -> (Vec<Vec<u64>>, Metrics) {
    let g = generators::gnp(40, 0.15, &mut {
        use rand::SeedableRng;
        rand::rngs::SmallRng::seed_from_u64(99)
    });
    let nodes = (0..g.n()).map(|_| RandWalk::new(4)).collect();
    let report = Simulator::new(g, nodes, SimConfig::seeded(seed)).run().expect("run");
    (report.outputs, report.metrics)
}

#[test]
fn same_seed_identical_metrics() {
    for seed in [0u64, 1, 7, 0xDEAD_BEEF] {
        let (outs_a, a) = run(seed);
        let (outs_b, b) = run(seed);
        assert_eq!(outs_a, outs_b, "seed {seed}: outputs diverged");
        assert_eq!(a.awake_rounds, b.awake_rounds, "seed {seed}");
        assert_eq!(a.terminated_at, b.terminated_at, "seed {seed}");
        assert_eq!(a.awake_complexity(), b.awake_complexity(), "seed {seed}");
        assert_eq!(a.round_complexity(), b.round_complexity(), "seed {seed}");
        assert_eq!(a.active_rounds, b.active_rounds, "seed {seed}");
        assert_eq!(a.messages_sent, b.messages_sent, "seed {seed}");
        assert_eq!(a.messages_delivered, b.messages_delivered, "seed {seed}");
        assert_eq!(a.messages_lost, b.messages_lost, "seed {seed}");
        assert_eq!(a.total_message_bits, b.total_message_bits, "seed {seed}");
        assert_eq!(a.max_message_bits, b.max_message_bits, "seed {seed}");
    }
}

#[test]
fn different_seeds_diverge() {
    // The run seed must actually reach the node RNGs: with an RNG-heavy
    // protocol, two different seeds produce different transcripts.
    let (outs_a, _) = run(1);
    let (outs_b, _) = run(2);
    assert_ne!(outs_a, outs_b, "different seeds produced identical transcripts");
}

#[test]
fn shard_counts_are_byte_identical_under_faults() {
    // Intra-run sharding is an execution knob: outputs and the full
    // `Metrics` (wake history included) must match the serial engine for
    // every shard count. Faults are the part most easily perturbed by
    // resharding, so loss, crashes, and wake jitter are all active —
    // their draws are keyed by (site, round) and must not notice the
    // batch being split. 20k nodes keeps per-round batches large enough
    // that shards > 1 actually take the parallel staging path.
    let run = |shards: usize| {
        let g = generators::path(20_000);
        let nodes = (0..g.n()).map(|_| RandWalk::new(4)).collect();
        let cfg = SimConfig {
            record_wake_history: true,
            shards,
            fault: FaultModel {
                loss: 0.2,
                crash: 0.002,
                crash_from: 1,
                wake_jitter: 4,
                ..FaultModel::none()
            },
            ..SimConfig::seeded(11)
        };
        let report = Simulator::new(g, nodes, cfg).run().expect("run");
        (report.outputs, report.metrics)
    };
    let (outs_serial, metrics_serial) = run(1);
    assert!(metrics_serial.messages_faulted > 0, "loss 0.2 must drop something");
    assert!(metrics_serial.crashed_count() > 0, "crash 0.002 over 20k nodes must hit someone");
    for shards in [2, 8, 0] {
        let (outs, metrics) = run(shards);
        assert_eq!(outs_serial, outs, "shards={shards}: outputs diverged from serial");
        assert_eq!(metrics_serial, metrics, "shards={shards}: metrics diverged from serial");
    }
}

#[test]
fn nodes_get_independent_streams() {
    // All nodes run the identical protocol, but their private RNGs must
    // differ: on a graph with no edges nothing is heard, so traces are
    // exactly the per-node draw streams.
    let g = graphgen::Graph::empty(8);
    let nodes = (0..8).map(|_| RandWalk::new(3)).collect();
    let report = Simulator::new(g, nodes, SimConfig::seeded(5)).run().expect("run");
    for v in 1..8 {
        assert_ne!(
            report.outputs[0], report.outputs[v],
            "nodes 0 and {v} drew identical RNG streams"
        );
    }
}
