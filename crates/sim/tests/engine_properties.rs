//! Property tests on the engine's semantics: determinism, conservation
//! of messages, awake accounting, and equivalence of the event-driven
//! scheduler with dense execution.

use graphgen::{generators, Graph, Port};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sleeping_congest::{Action, NodeCtx, Outbox, Protocol, SimConfig, Simulator};

/// A randomized protocol: each node wakes on a pseudo-random schedule
/// derived from its RNG, gossips a counter, and terminates after a few
/// wakes. Exercises scheduling paths without meaning anything.
#[derive(Debug, Clone)]
struct Gossip {
    wakes_left: u32,
    heard: u64,
    dense: bool,
}

impl Gossip {
    fn new(wakes: u32, dense: bool) -> Gossip {
        Gossip { wakes_left: wakes, heard: 0, dense }
    }
}

impl Protocol for Gossip {
    type Msg = u64;
    type Output = u64;

    fn send(&mut self, _ctx: &mut NodeCtx) -> Outbox<u64> {
        Outbox::Broadcast(self.heard.wrapping_mul(31).wrapping_add(1))
    }

    fn receive(&mut self, ctx: &mut NodeCtx, inbox: &[(Port, u64)]) -> Action {
        for &(p, m) in inbox {
            self.heard = self.heard.wrapping_add(m ^ (p as u64)).rotate_left(7);
        }
        self.wakes_left -= 1;
        if self.wakes_left == 0 {
            Action::Terminate
        } else if self.dense {
            Action::Continue
        } else {
            let gap = ctx.rng.gen_range(1..5u64);
            Action::SleepUntil(ctx.round + gap)
        }
    }

    fn output(&self) -> u64 {
        self.heard
    }
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40, any::<u64>(), 0.05f64..0.5).prop_map(|(n, seed, p)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        generators::gnp(n, p, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Identical (graph, protocols, seed) gives identical transcripts.
    #[test]
    fn runs_are_deterministic(g in arb_graph(), seed in any::<u64>(), wakes in 1u32..6) {
        let run = || {
            let nodes = (0..g.n()).map(|_| Gossip::new(wakes, false)).collect();
            Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run().unwrap()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.outputs, b.outputs);
        prop_assert_eq!(a.metrics.awake_rounds, b.metrics.awake_rounds);
        prop_assert_eq!(a.metrics.messages_sent, b.metrics.messages_sent);
        prop_assert_eq!(a.metrics.total_message_bits, b.metrics.total_message_bits);
    }

    /// Message conservation: sent = delivered + lost; in a dense run
    /// (everyone awake until termination staggering begins) only
    /// messages to already-terminated nodes are lost.
    #[test]
    fn message_conservation(g in arb_graph(), seed in any::<u64>(), wakes in 1u32..6) {
        let nodes = (0..g.n()).map(|_| Gossip::new(wakes, false)).collect();
        let rep = Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run().unwrap();
        prop_assert_eq!(
            rep.metrics.messages_sent,
            rep.metrics.messages_delivered + rep.metrics.messages_lost
        );
    }

    /// Awake accounting: each node's awake count equals its recorded
    /// wake history length, and equal-wakes protocols give everyone the
    /// same count in dense mode.
    #[test]
    fn awake_accounting(g in arb_graph(), seed in any::<u64>(), wakes in 1u32..6) {
        let nodes = (0..g.n()).map(|_| Gossip::new(wakes, true)).collect();
        let cfg = SimConfig { record_wake_history: true, ..SimConfig::seeded(seed) };
        let rep = Simulator::new(g.clone(), nodes, cfg).run().unwrap();
        let hist = rep.metrics.wake_history.as_ref().unwrap();
        for (v, h) in hist.iter().enumerate() {
            prop_assert_eq!(rep.metrics.awake_rounds[v], h.len() as u64);
            prop_assert_eq!(rep.metrics.awake_rounds[v], wakes as u64);
        }
        // Dense mode: all nodes awake every round until they terminate
        // simultaneously.
        prop_assert_eq!(rep.metrics.round_complexity(), wakes as u64);
        prop_assert_eq!(rep.metrics.messages_lost, 0);
    }

    /// In dense mode the event-driven scheduler must visit exactly
    /// `wakes` rounds (no phantom rounds, no skipped rounds).
    #[test]
    fn dense_equals_round_by_round(g in arb_graph(), seed in any::<u64>(), wakes in 1u32..6) {
        let nodes = (0..g.n()).map(|_| Gossip::new(wakes, true)).collect();
        let rep = Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run().unwrap();
        prop_assert_eq!(rep.metrics.active_rounds, wakes as u64);
    }
}
