//! Fault models: lossy links, crashing nodes, and late wake-ups.
//!
//! The paper's guarantees are Monte Carlo statements about a
//! *well-behaved* network; a [`FaultModel`] measures how gracefully they
//! degrade when the network is not. Faults are injected by the engine
//! from a **dedicated RNG stream** ([`crate::rng::fault_draw`]) keyed by
//! `(seed, fault domain, site, round)` — a pure function, so fault draws
//! are byte-identical across thread counts and never perturb the
//! per-node protocol RNGs. In particular a run under
//! `FaultModel::default()` (or any model with `loss = 0`, `crash = 0`,
//! `wake_jitter = 0`) is *bit-for-bit identical* to a clean run.

use crate::Round;

/// Fault injection knobs for a run. All default to "no faults".
///
/// Semantics (see the field docs for the exact draw sites):
///
/// * **Message loss** is i.i.d. per *deliverable* message copy: a copy
///   whose receiving endpoint is asleep is already lost by the model
///   itself and draws nothing.
/// * **Crashes** strike at wake-up time: a node scheduled to be awake in
///   a round inside the crash window crash-stops with probability
///   [`crash`](FaultModel::crash) *before* executing the round. A
///   crashed node never sends, receives, or reschedules again; its
///   output is collected via
///   [`Protocol::aborted_output`](crate::Protocol::aborted_output).
/// * **Wake jitter** delays each node's *initial* wake-up by a
///   uniform draw from `0..=wake_jitter` rounds, breaking the "all
///   nodes start in round 0" assumption.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultModel {
    /// Probability in `[0, 1]` that a deliverable message copy is
    /// dropped in transit (drawn independently per copy per round).
    pub loss: f64,
    /// Probability in `[0, 1]` that a node crash-stops at the start of
    /// an awake round inside `[crash_from, crash_until]`.
    pub crash: f64,
    /// First round (inclusive) of the crash window.
    pub crash_from: Round,
    /// Last round (inclusive) of the crash window. Defaults to
    /// `Round::MAX` (no upper cutoff).
    pub crash_until: Round,
    /// Each node's initial wake-up is delayed by a uniform draw from
    /// `0..=wake_jitter` rounds (0 = everyone starts in round 0).
    pub wake_jitter: Round,
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel { loss: 0.0, crash: 0.0, crash_from: 0, crash_until: Round::MAX, wake_jitter: 0 }
    }
}

impl FaultModel {
    /// The fault-free model (same as `Default`).
    pub fn none() -> Self {
        FaultModel::default()
    }

    /// True if any knob deviates from the fault-free default — the
    /// engine's fast path skips every fault draw when this is false.
    pub fn is_active(&self) -> bool {
        self.loss > 0.0 || self.crash > 0.0 || self.wake_jitter > 0
    }

    /// Validates the knobs: probabilities must lie in `[0, 1]` and be
    /// finite, and the crash window must be ordered.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if !self.loss.is_finite() || !(0.0..=1.0).contains(&self.loss) {
            return Err(format!("loss probability {} outside [0, 1]", self.loss));
        }
        if !self.crash.is_finite() || !(0.0..=1.0).contains(&self.crash) {
            return Err(format!("crash probability {} outside [0, 1]", self.crash));
        }
        if self.crash_from > self.crash_until {
            return Err(format!(
                "empty crash window: crash_from {} > crash_until {}",
                self.crash_from, self.crash_until
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_inactive_and_valid() {
        let f = FaultModel::default();
        assert!(!f.is_active());
        assert_eq!(f, FaultModel::none());
        f.validate().unwrap();
    }

    #[test]
    fn each_knob_activates() {
        assert!(FaultModel { loss: 0.1, ..FaultModel::none() }.is_active());
        assert!(FaultModel { crash: 0.1, ..FaultModel::none() }.is_active());
        assert!(FaultModel { wake_jitter: 3, ..FaultModel::none() }.is_active());
        // A crash window alone (with crash = 0) changes nothing.
        assert!(!FaultModel { crash_from: 5, crash_until: 9, ..FaultModel::none() }.is_active());
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        assert!(FaultModel { loss: 1.5, ..FaultModel::none() }.validate().is_err());
        assert!(FaultModel { loss: -0.1, ..FaultModel::none() }.validate().is_err());
        assert!(FaultModel { loss: f64::NAN, ..FaultModel::none() }.validate().is_err());
        assert!(FaultModel { crash: 2.0, ..FaultModel::none() }.validate().is_err());
        assert!(FaultModel { crash_from: 10, crash_until: 9, ..FaultModel::none() }
            .validate()
            .is_err());
        FaultModel { loss: 1.0, crash: 1.0, crash_from: 3, crash_until: 3, wake_jitter: 7 }
            .validate()
            .unwrap();
    }
}
