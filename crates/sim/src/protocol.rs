//! The node-program interface: [`Protocol`] for top-level algorithms and
//! [`SubProtocol`] for composable building blocks.

use crate::message::MessageSize;
use crate::Round;
use graphgen::{NodeId, Port};
use rand::rngs::SmallRng;

/// Per-round context handed to a node while it is awake.
///
/// The fields expose exactly the knowledge the SLEEPING-CONGEST model
/// grants a node: its own ports (via `degree`), the global round number,
/// the common polynomial upper bound `n_upper` on the network size, and a
/// private source of randomness. A node does **not** learn its neighbors'
/// identities from the context — only through messages.
pub struct NodeCtx<'a> {
    /// The simulator's index for this node. Protocols for the *anonymous*
    /// model must not treat this as an identifier (draw random IDs
    /// instead); it is exposed for baselines and debugging.
    pub node: NodeId,
    /// Number of ports (incident edges).
    pub degree: usize,
    /// Current global round (0-based).
    pub round: Round,
    /// Common upper bound on the network size, known to all nodes.
    pub n_upper: usize,
    /// Private per-node randomness (deterministically derived from the
    /// run seed and the node index).
    pub rng: &'a mut SmallRng,
}

/// What a node sends during the send step of an awake round.
#[derive(Debug, Clone)]
pub enum Outbox<M> {
    /// Send nothing (listen only).
    Silent,
    /// Send one copy of the same message through every port.
    Broadcast(M),
    /// Send (possibly different) messages through selected ports.
    Unicast(Vec<(Port, M)>),
}

impl<M> Outbox<M> {
    /// True if nothing will be sent.
    pub fn is_silent(&self) -> bool {
        matches!(self, Outbox::Silent) || matches!(self, Outbox::Unicast(v) if v.is_empty())
    }
}

/// A node's decision at the end of an awake round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Stay awake: participate in the next round too.
    Continue,
    /// Sleep until the given round (exclusive of the current one; must be
    /// strictly greater than the current round). The sentinel value
    /// [`crate::SLEEP_FOREVER`] (`Round::MAX`) parks the node forever:
    /// it is never rescheduled, and if all other nodes terminate the run
    /// aborts with [`crate::SimError::Deadlock`].
    SleepUntil(Round),
    /// Terminate the local algorithm. The node stops participating; its
    /// output is collected at the end of the run.
    Terminate,
}

/// A complete node program.
///
/// The engine calls [`send`](Protocol::send) then
/// [`receive`](Protocol::receive) once per awake round, implementing the
/// model's compute → send → receive steps. Both are called in the *same*
/// round; `receive` sees exactly the messages sent this round by awake
/// neighbors.
pub trait Protocol {
    /// Message type exchanged on edges.
    type Msg: Clone + MessageSize;
    /// Local output collected after termination.
    type Output;

    /// Compute-and-send step of an awake round.
    fn send(&mut self, ctx: &mut NodeCtx) -> Outbox<Self::Msg>;

    /// Receive step. `inbox` holds `(port, message)` pairs from neighbors
    /// that were awake and sent through the corresponding edge this
    /// round, in increasing port order.
    fn receive(&mut self, ctx: &mut NodeCtx, inbox: &[(Port, Self::Msg)]) -> Action;

    /// The local output. Called once per node after the run completes.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before the node terminated.
    fn output(&self) -> Self::Output;

    /// Best-effort output for a node the *harness* stopped before it
    /// terminated — e.g. crash-stopped by a
    /// [`FaultModel`](crate::FaultModel). Defaults to
    /// [`output`](Protocol::output); implementations whose `output`
    /// panics before termination must override this to report their
    /// current partial state instead.
    fn aborted_output(&self) -> Self::Output {
        self.output()
    }
}

/// Outcome of a [`SubProtocol`] round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubAction {
    /// Stay awake next (local) round.
    Continue,
    /// Sleep until the given *local* round.
    SleepUntil(Round),
    /// The subprotocol has finished; its output may now be read.
    Done,
}

/// A composable building block that runs inside a window of a larger
/// protocol (e.g. `LDT-Ranking` inside `LDT-MIS` inside `Awake-MIS`).
///
/// A subprotocol sees a *local clock*: the parent starts it by waking the
/// node at local round 0 and translates between local and global rounds.
/// Message routing/wrapping is the parent's responsibility.
pub trait SubProtocol {
    /// Message type exchanged on edges while this subprotocol runs.
    type Msg: Clone + MessageSize;
    /// Result produced when the subprotocol completes.
    type Output;

    /// Compute-and-send step at local round `lr`.
    fn send(&mut self, lr: Round, ctx: &mut NodeCtx) -> Outbox<Self::Msg>;

    /// Receive step at local round `lr`.
    fn receive(&mut self, lr: Round, ctx: &mut NodeCtx, inbox: &[(Port, Self::Msg)]) -> SubAction;

    /// The subprotocol's result.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before [`SubAction::Done`] was
    /// returned.
    fn output(&self) -> Self::Output;

    /// Best-effort output for a harness-aborted node (see
    /// [`Protocol::aborted_output`]). Defaults to
    /// [`output`](SubProtocol::output); override when `output` panics
    /// before completion.
    fn aborted_output(&self) -> Self::Output {
        self.output()
    }
}

/// Adapter running a [`SubProtocol`] as a standalone [`Protocol`]
/// (local clock = global clock).
///
/// Useful for testing and benchmarking building blocks in isolation.
#[derive(Debug, Clone)]
pub struct Standalone<S> {
    inner: S,
    done: bool,
}

impl<S> Standalone<S> {
    /// Wraps a subprotocol for standalone execution.
    pub fn new(inner: S) -> Self {
        Standalone { inner, done: false }
    }

    /// The wrapped subprotocol.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: SubProtocol> Protocol for Standalone<S> {
    type Msg = S::Msg;
    type Output = S::Output;

    fn send(&mut self, ctx: &mut NodeCtx) -> Outbox<Self::Msg> {
        let round = ctx.round;
        self.inner.send(round, ctx)
    }

    fn receive(&mut self, ctx: &mut NodeCtx, inbox: &[(Port, Self::Msg)]) -> Action {
        let round = ctx.round;
        match self.inner.receive(round, ctx, inbox) {
            SubAction::Continue => Action::Continue,
            SubAction::SleepUntil(r) => Action::SleepUntil(r),
            SubAction::Done => {
                self.done = true;
                Action::Terminate
            }
        }
    }

    fn output(&self) -> Self::Output {
        assert!(self.done, "Standalone output read before completion");
        self.inner.output()
    }

    fn aborted_output(&self) -> Self::Output {
        if self.done {
            self.inner.output()
        } else {
            self.inner.aborted_output()
        }
    }
}
