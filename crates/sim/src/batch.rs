//! Deterministic batched execution across OS threads.
//!
//! The awake-complexity claims of the paper are *statistical*: they only
//! show up over grids of {algorithm × graph family × n × seed}. This
//! module provides the generic fan-out those grids run on: a fixed job
//! list is distributed over scoped worker threads
//! ([`std::thread::scope`] — no external thread-pool dependency), each
//! worker owns long-lived per-worker state (typically a
//! [`SimScratch`](crate::SimScratch) so mailboxes, RNG tables, and wake
//! buckets are reused across runs), and results come back **in job
//! order**, independent of how the OS scheduled the workers.
//!
//! Determinism contract: if `run` is a pure function of its job (as every
//! seeded [`Simulator`](crate::Simulator) run is), the returned vector is
//! byte-identical for every thread count, including 1.
//!
//! ```
//! use sleeping_congest::batch::run_batch;
//!
//! let jobs: Vec<u64> = (0..100).collect();
//! let two = run_batch(&jobs, 2, |_worker| 0u64, |acc, _i, &job| {
//!     *acc += job; // per-worker state persists across that worker's jobs
//!     job * job
//! });
//! let eight = run_batch(&jobs, 8, |_worker| 0u64, |_, _, &job| job * job);
//! assert_eq!(two, eight);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of hardware threads available to this process (at least 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

/// Resolves a user-facing thread-count knob: `0` means "auto" (all
/// available hardware threads), anything else is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_threads()
    } else {
        requested
    }
}

/// Runs every job in `jobs` and returns the results in job order.
///
/// * `threads` — worker count (clamped to `[1, jobs.len()]`); results do
///   **not** depend on it.
/// * `make_state(worker_index)` — builds one worker's private state,
///   called inside that worker's thread. Use it for scratch buffers that
///   should be reused across runs.
/// * `run(state, job_index, job)` — executes one job.
///
/// Jobs are pulled from a shared atomic counter (work stealing), so a
/// slow job never stalls the rest of the grid behind it. Each worker
/// collects `(index, result)` pairs; after all workers join, the pairs
/// are merged and sorted by index, which is what makes the output
/// independent of scheduling.
///
/// # Panics
///
/// Propagates a panic from any worker (the remaining workers finish
/// their current job first).
pub fn run_batch<T, R, S, FS, F>(jobs: &[T], threads: usize, make_state: FS, run: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    FS: Fn(usize) -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, jobs.len().max(1));
    if threads == 1 {
        let mut state = make_state(0);
        return jobs.iter().enumerate().map(|(i, job)| run(&mut state, i, job)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, R)>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let next = &next;
                let make_state = &make_state;
                let run = &run;
                scope.spawn(move || {
                    let mut state = make_state(worker);
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        out.push((i, run(&mut state, i, &jobs[i])));
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(bucket) => buckets.push(bucket),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });

    let mut indexed: Vec<(usize, R)> = buckets.into_iter().flatten().collect();
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        let jobs: Vec<usize> = (0..257).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = run_batch(&jobs, threads, |_| (), |(), i, &job| {
                assert_eq!(i, job);
                job * 3
            });
            assert_eq!(got, jobs.iter().map(|j| j * 3).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn per_worker_state_persists_within_a_worker() {
        // Every worker counts the jobs it ran; the counts must sum to the
        // job total even though the split is scheduler-dependent.
        use std::sync::atomic::AtomicUsize;
        let totals = AtomicUsize::new(0);
        let jobs = vec![(); 100];
        struct Counter<'a> {
            seen: usize,
            totals: &'a AtomicUsize,
        }
        impl Drop for Counter<'_> {
            fn drop(&mut self) {
                self.totals.fetch_add(self.seen, Ordering::Relaxed);
            }
        }
        run_batch(
            &jobs,
            4,
            |_| Counter { seen: 0, totals: &totals },
            |c, _, ()| c.seen += 1,
        );
        assert_eq!(totals.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn empty_and_tiny_job_lists() {
        let empty: Vec<u8> = Vec::new();
        assert!(run_batch(&empty, 8, |_| (), |(), _, &b| b).is_empty());
        assert_eq!(run_batch(&[9u8], 8, |_| (), |(), _, &b| b), vec![9]);
    }

    #[test]
    fn zero_threads_treated_as_one() {
        assert_eq!(run_batch(&[1, 2, 3], 0, |_| (), |(), _, &x| x * 2), vec![2, 4, 6]);
    }
}
