//! Structured run tracing: an observational event stream out of the
//! engine's round loop.
//!
//! The engine emits a [`TraceEvent`] stream describing *when* work
//! happens inside a run — round boundaries, per-phase wall-clock
//! (send/merge/receive/bookkeeping), wake-queue occupancy, per-shard
//! batch sizes, [`MsgArena`](crate::engine) high-water bytes, and
//! fault-drop counts. A sink is attached through
//! [`SimConfig::trace`](crate::SimConfig); with no sink attached the
//! engine takes no timestamps and allocates nothing — every event site
//! is a single `Option` check.
//!
//! Tracing is **observational only**: attaching any sink must not
//! change a run's outputs, metrics, or any benchmark payload byte.
//! Wall-clock readings never feed back into the simulation.
//!
//! Two sinks ship with the crate:
//!
//! * [`Profile`] — aggregates log₂-bucketed per-phase histograms and
//!   renders an ASCII report with p50/p95/max round times.
//! * [`JsonlSink`] — writes one strict-JSON object per line for
//!   external tooling.
//!
//! [`Recorder`] keeps the raw event stream for tests and ad-hoc
//! analysis.
//!
//! # Example
//!
//! ```
//! use sleeping_congest::trace::{Profile, TraceHandle};
//! use sleeping_congest::{SimConfig, Simulator, Action, NodeCtx, Outbox, Protocol};
//! use graphgen::{generators, Port};
//!
//! struct Ping;
//! impl Protocol for Ping {
//!     type Msg = ();
//!     type Output = ();
//!     fn send(&mut self, _ctx: &mut NodeCtx) -> Outbox<()> { Outbox::Broadcast(()) }
//!     fn receive(&mut self, _ctx: &mut NodeCtx, _inbox: &[(Port, ())]) -> Action {
//!         Action::Terminate
//!     }
//!     fn output(&self) {}
//! }
//!
//! let handle = TraceHandle::new(Profile::new());
//! let config = SimConfig { trace: Some(handle.clone()), ..SimConfig::default() };
//! let g = generators::cycle(8);
//! Simulator::new(g, (0..8).map(|_| Ping).collect(), config).run()?;
//! let report = handle.report().expect("Profile renders a report");
//! assert!(report.contains("send"));
//! # Ok::<(), sleeping_congest::SimError>(())
//! ```

use crate::Round;
use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex, MutexGuard};

/// The engine phases a round's wall-clock is split into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TracePhase {
    /// Protocol `send` callbacks and outbox staging (possibly sharded).
    Send,
    /// Error propagation, counter merge, and the counting-sort merge of
    /// per-shard outboxes into the delivery arena.
    Merge,
    /// Protocol `receive` callbacks over the delivered inboxes.
    Receive,
    /// Everything else the round does serially: crash-fault filtering,
    /// batch sorting and stamping before send, and the wake-queue /
    /// termination apply loop after receive.
    Bookkeeping,
}

impl TracePhase {
    /// All phases, in the order they occur within a round (bookkeeping
    /// brackets the round and is reported last).
    pub const ALL: [TracePhase; 4] =
        [TracePhase::Send, TracePhase::Merge, TracePhase::Receive, TracePhase::Bookkeeping];

    /// Lower-case phase name, as used in reports and JSONL events.
    pub fn name(self) -> &'static str {
        match self {
            TracePhase::Send => "send",
            TracePhase::Merge => "merge",
            TracePhase::Receive => "receive",
            TracePhase::Bookkeeping => "bookkeeping",
        }
    }
}

/// One structured observation out of the engine.
///
/// Per active round the engine emits, in order: [`RoundBegin`], one
/// [`Phase`] event per entry of [`TracePhase::ALL`] interleaved with
/// the round's [`ShardBatch`] events (after `Send`), then [`RoundEnd`].
/// A run is bracketed by [`RunBegin`] and [`RunEnd`].
///
/// [`RunBegin`]: TraceEvent::RunBegin
/// [`RoundBegin`]: TraceEvent::RoundBegin
/// [`Phase`]: TraceEvent::Phase
/// [`ShardBatch`]: TraceEvent::ShardBatch
/// [`RoundEnd`]: TraceEvent::RoundEnd
/// [`RunEnd`]: TraceEvent::RunEnd
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A run started.
    RunBegin {
        /// Number of nodes in the graph.
        nodes: usize,
        /// Configured shard count (`SimConfig::shards`).
        shards: usize,
    },
    /// An active round is about to execute.
    RoundBegin {
        /// The round number.
        round: Round,
        /// Nodes scheduled to wake this round (before crash faults).
        batch: usize,
        /// Wake-ups still pending in the queue for future rounds.
        queued: usize,
    },
    /// One shard's slice of the send phase (emitted after `Send`).
    ShardBatch {
        /// The round number.
        round: Round,
        /// Shard index, `0..effective_shards`.
        shard: usize,
        /// Awake nodes this shard processed.
        nodes: usize,
        /// Message copies this shard staged.
        messages: usize,
    },
    /// Wall-clock spent in one phase of a round.
    Phase {
        /// The round number.
        round: Round,
        /// Which phase.
        phase: TracePhase,
        /// Elapsed nanoseconds.
        nanos: u64,
    },
    /// An active round finished.
    RoundEnd {
        /// The round number.
        round: Round,
        /// Total wall-clock nanoseconds for the round.
        nanos: u64,
        /// Message copies delivered to awake receivers this round.
        delivered: u64,
        /// Copies addressed to sleeping neighbors (lost by the model).
        lost: u64,
        /// Copies dropped by the link-fault model this round.
        faulted: u64,
        /// Nodes crashed by the fault model this round.
        crashed: usize,
        /// Delivery-arena footprint after the merge, in bytes.
        arena_bytes: usize,
    },
    /// A run finished (successfully or not).
    RunEnd {
        /// Active rounds executed (all-asleep rounds are skipped).
        active_rounds: u64,
        /// Total awake node-rounds across the run.
        awake_total: u64,
    },
}

impl TraceEvent {
    /// Renders the event as one strict-JSON object (the format
    /// [`JsonlSink`] writes), keys in a fixed documented order.
    pub fn to_json(&self) -> String {
        match *self {
            TraceEvent::RunBegin { nodes, shards } => {
                format!("{{\"ev\":\"run_begin\",\"nodes\":{nodes},\"shards\":{shards}}}")
            }
            TraceEvent::RoundBegin { round, batch, queued } => format!(
                "{{\"ev\":\"round_begin\",\"round\":{round},\"batch\":{batch},\"queued\":{queued}}}"
            ),
            TraceEvent::ShardBatch { round, shard, nodes, messages } => format!(
                "{{\"ev\":\"shard_batch\",\"round\":{round},\"shard\":{shard},\
                 \"nodes\":{nodes},\"messages\":{messages}}}"
            ),
            TraceEvent::Phase { round, phase, nanos } => format!(
                "{{\"ev\":\"phase\",\"round\":{round},\"phase\":\"{}\",\"nanos\":{nanos}}}",
                phase.name()
            ),
            TraceEvent::RoundEnd {
                round,
                nanos,
                delivered,
                lost,
                faulted,
                crashed,
                arena_bytes,
            } => format!(
                "{{\"ev\":\"round_end\",\"round\":{round},\"nanos\":{nanos},\
                 \"delivered\":{delivered},\"lost\":{lost},\"faulted\":{faulted},\
                 \"crashed\":{crashed},\"arena_bytes\":{arena_bytes}}}"
            ),
            TraceEvent::RunEnd { active_rounds, awake_total } => format!(
                "{{\"ev\":\"run_end\",\"active_rounds\":{active_rounds},\
                 \"awake_total\":{awake_total}}}"
            ),
        }
    }
}

/// Receives the engine's event stream.
///
/// Sinks must be `Send`: sharded runs still emit events from the
/// coordinating thread only, but runners are shared across batch
/// workers, so the handle that owns a sink crosses threads.
pub trait TraceSink: Send {
    /// Called once per event, in emission order.
    fn event(&mut self, ev: &TraceEvent);

    /// A rendered human-readable summary, if this sink aggregates one
    /// (see [`Profile`]). The default has none.
    fn report(&self) -> Option<String> {
        None
    }
}

/// A cloneable, thread-safe handle to a [`TraceSink`], attachable to
/// [`SimConfig::trace`](crate::SimConfig).
///
/// The engine locks the sink once per run and holds the guard for the
/// run's duration, so per-event cost is a virtual call, not a lock.
/// Cloning the handle shares the underlying sink — attach one handle to
/// many runs to aggregate across them.
#[derive(Clone)]
pub struct TraceHandle(Arc<Mutex<dyn TraceSink>>);

impl TraceHandle {
    /// Wraps a sink in a shareable handle.
    pub fn new<S: TraceSink + 'static>(sink: S) -> TraceHandle {
        TraceHandle(Arc::new(Mutex::new(sink)))
    }

    /// Locks the sink for exclusive use (the engine does this once per
    /// run). A poisoned lock is recovered: tracing is observational, so
    /// a panicked run cannot leave the sink logically corrupt.
    pub fn lock(&self) -> MutexGuard<'_, dyn TraceSink + 'static> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The sink's rendered report, if it aggregates one.
    pub fn report(&self) -> Option<String> {
        self.lock().report()
    }
}

impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("TraceHandle(..)")
    }
}

/// A log₂-bucketed histogram over `u64` samples: exact count, total,
/// and max; quantiles resolved to the midpoint of a power-of-two
/// bucket (within ~33% of the true value, ample for a phase profile).
#[derive(Debug, Clone)]
struct Hist {
    count: u64,
    total: u64,
    max: u64,
    /// `buckets[0]` holds zeros; `buckets[i]` holds `[2^(i-1), 2^i)`.
    buckets: [u64; 65],
}

impl Default for Hist {
    fn default() -> Hist {
        Hist { count: 0, total: 0, max: 0, buckets: [0; 65] }
    }
}

impl Hist {
    fn record(&mut self, v: u64) {
        self.count += 1;
        self.total += v;
        self.max = self.max.max(v);
        let idx = if v == 0 { 0 } else { 64 - v.leading_zeros() as usize };
        self.buckets[idx] += 1;
    }

    /// Nearest-rank quantile, `q` in `[0, 1]`, resolved to bucket
    /// midpoints and clamped to the exact max.
    fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The top occupied bucket resolves to the exact max.
                if seen == self.count {
                    return self.max;
                }
                let mid = if i == 0 { 0 } else { (1u64 << (i - 1)) + (1u64 << (i - 1)) / 2 };
                return mid.min(self.max);
            }
        }
        self.max
    }
}

/// Formats nanoseconds for humans (`ns`, `µs`, `ms`, `s`).
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Formats a byte count for humans.
fn fmt_bytes(b: usize) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

/// An aggregating profiler sink: per-phase and per-round wall-clock
/// histograms, queue/arena high-water marks, shard-imbalance stats, and
/// fault-drop totals, rendered as an ASCII table by [`report`].
///
/// One `Profile` may observe many runs (e.g. every cell of a grid run
/// through one runner); the report aggregates across all of them.
///
/// [`report`]: TraceSink::report
#[derive(Debug, Clone, Default)]
pub struct Profile {
    phases: [Hist; 4],
    rounds: Hist,
    batch: Hist,
    shard_msgs: Hist,
    runs: u64,
    active_rounds: u64,
    awake_total: u64,
    queue_max: usize,
    arena_high_water: usize,
    shard_events: u64,
    /// Per-round max/min staged message counts, summed — their ratio
    /// estimates send-phase imbalance.
    round_shard_max: u64,
    round_shard_min: u64,
    /// Scratch: shard extremes of the round being observed.
    cur_shard_max: u64,
    cur_shard_min: u64,
    cur_shards: u64,
    delivered: u64,
    lost: u64,
    faulted: u64,
    crashed: u64,
}

impl Profile {
    /// A fresh, empty profile.
    pub fn new() -> Profile {
        Profile::default()
    }

    /// Renders the aggregated profile as an ASCII table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "phase profile: {} run{}, {} active rounds, {} awake node-rounds\n",
            self.runs,
            if self.runs == 1 { "" } else { "s" },
            self.active_rounds,
            self.awake_total,
        ));
        s.push_str(&format!(
            "  {:<12} {:>9} {:>10} {:>7} {:>9} {:>9} {:>9}\n",
            "phase", "rounds", "total", "share", "p50", "p95", "max"
        ));
        let grand: u64 = self.phases.iter().map(|h| h.total).sum();
        for (i, phase) in TracePhase::ALL.iter().enumerate() {
            let h = &self.phases[i];
            let share = if grand == 0 { 0.0 } else { 100.0 * h.total as f64 / grand as f64 };
            s.push_str(&format!(
                "  {:<12} {:>9} {:>10} {:>6.1}% {:>9} {:>9} {:>9}\n",
                phase.name(),
                h.count,
                fmt_ns(h.total),
                share,
                fmt_ns(h.quantile(0.50)),
                fmt_ns(h.quantile(0.95)),
                fmt_ns(h.max),
            ));
        }
        s.push_str(&format!(
            "  {:<12} {:>9} {:>10} {:>6.1}% {:>9} {:>9} {:>9}\n",
            "round",
            self.rounds.count,
            fmt_ns(self.rounds.total),
            100.0,
            fmt_ns(self.rounds.quantile(0.50)),
            fmt_ns(self.rounds.quantile(0.95)),
            fmt_ns(self.rounds.max),
        ));
        s.push_str(&format!(
            "  wake batch p50 {} max {}; queue occupancy max {}; arena high-water {}\n",
            self.batch.quantile(0.50),
            self.batch.max,
            self.queue_max,
            fmt_bytes(self.arena_high_water),
        ));
        if self.shard_events > 0 {
            let imbalance = if self.round_shard_min == 0 {
                f64::INFINITY
            } else {
                self.round_shard_max as f64 / self.round_shard_min as f64
            };
            s.push_str(&format!(
                "  shard batches: {} observed, messages p50 {} max {}, max/min imbalance {:.2}\n",
                self.shard_events,
                self.shard_msgs.quantile(0.50),
                self.shard_msgs.max,
                imbalance,
            ));
        }
        s.push_str(&format!(
            "  messages: {} delivered, {} lost to sleepers, {} fault-dropped; {} nodes crashed\n",
            self.delivered, self.lost, self.faulted, self.crashed,
        ));
        s
    }

    fn flush_round_shards(&mut self) {
        if self.cur_shards > 0 {
            self.round_shard_max += self.cur_shard_max;
            self.round_shard_min += self.cur_shard_min;
            self.cur_shard_max = 0;
            self.cur_shard_min = 0;
            self.cur_shards = 0;
        }
    }
}

impl TraceSink for Profile {
    fn event(&mut self, ev: &TraceEvent) {
        match *ev {
            TraceEvent::RunBegin { .. } => self.runs += 1,
            TraceEvent::RoundBegin { batch, queued, .. } => {
                self.batch.record(batch as u64);
                self.queue_max = self.queue_max.max(queued + batch);
            }
            TraceEvent::ShardBatch { messages, .. } => {
                self.shard_events += 1;
                let m = messages as u64;
                self.shard_msgs.record(m);
                if self.cur_shards == 0 {
                    self.cur_shard_min = m;
                    self.cur_shard_max = m;
                } else {
                    self.cur_shard_min = self.cur_shard_min.min(m);
                    self.cur_shard_max = self.cur_shard_max.max(m);
                }
                self.cur_shards += 1;
            }
            TraceEvent::Phase { phase, nanos, .. } => {
                let idx = TracePhase::ALL.iter().position(|&p| p == phase).unwrap_or(0);
                self.phases[idx].record(nanos);
            }
            TraceEvent::RoundEnd {
                nanos, delivered, lost, faulted, crashed, arena_bytes, ..
            } => {
                self.rounds.record(nanos);
                self.delivered += delivered;
                self.lost += lost;
                self.faulted += faulted;
                self.crashed += crashed as u64;
                self.arena_high_water = self.arena_high_water.max(arena_bytes);
                self.flush_round_shards();
            }
            TraceEvent::RunEnd { active_rounds, awake_total } => {
                self.active_rounds += active_rounds;
                self.awake_total += awake_total;
            }
        }
    }

    fn report(&self) -> Option<String> {
        Some(self.render())
    }
}

/// A sink writing one strict-JSON event object per line (the format
/// `bench::json`-style tooling parses). Buffer the writer yourself if
/// it is unbuffered; the sink flushes at every `run_end`.
#[derive(Debug)]
pub struct JsonlSink<W: Write + Send> {
    out: W,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> JsonlSink<W> {
        JsonlSink { out }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl JsonlSink<std::io::BufWriter<std::io::Stderr>> {
    /// A sink streaming to standard error — the `trace=jsonl` registry
    /// param uses this so benchmark payloads on stdout stay clean.
    pub fn stderr() -> Self {
        JsonlSink::new(std::io::BufWriter::new(std::io::stderr()))
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn event(&mut self, ev: &TraceEvent) {
        // Tracing must never perturb the run: I/O errors are dropped.
        let _ = writeln!(self.out, "{}", ev.to_json());
        if matches!(ev, TraceEvent::RunEnd { .. }) {
            let _ = self.out.flush();
        }
    }
}

/// A sink keeping the raw event stream, for tests and ad-hoc analysis.
/// Clones share the same store: clone the recorder *before* wrapping it
/// in a [`TraceHandle`] and read [`events`](Recorder::events) later.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl Recorder {
    /// A fresh, empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// A snapshot of all events recorded so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

impl TraceSink for Recorder {
    fn event(&mut self, ev: &TraceEvent) {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).push(ev.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_quantiles_bracket_the_samples() {
        let mut h = Hist::default();
        for v in [0u64, 1, 2, 3, 100, 1000, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count, 7);
        assert_eq!(h.max, 1_000_000);
        assert_eq!(h.quantile(1.0), 1_000_000);
        let p50 = h.quantile(0.5);
        assert!((2..=4).contains(&p50), "p50 was {p50}");
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn events_render_strict_json() {
        let evs = [
            TraceEvent::RunBegin { nodes: 10, shards: 2 },
            TraceEvent::RoundBegin { round: 0, batch: 10, queued: 0 },
            TraceEvent::ShardBatch { round: 0, shard: 1, nodes: 5, messages: 12 },
            TraceEvent::Phase { round: 0, phase: TracePhase::Merge, nanos: 42 },
            TraceEvent::RoundEnd {
                round: 0,
                nanos: 99,
                delivered: 3,
                lost: 1,
                faulted: 0,
                crashed: 0,
                arena_bytes: 256,
            },
            TraceEvent::RunEnd { active_rounds: 1, awake_total: 10 },
        ];
        for ev in &evs {
            let j = ev.to_json();
            assert!(j.starts_with("{\"ev\":\""), "{j}");
            assert!(j.ends_with('}'), "{j}");
            // Balanced, single-object line: no interior newlines or
            // unescaped quotes beyond key/value delimiters.
            assert!(!j.contains('\n'));
        }
        assert!(evs[3].to_json().contains("\"phase\":\"merge\""));
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.event(&TraceEvent::RunBegin { nodes: 4, shards: 1 });
        sink.event(&TraceEvent::RunEnd { active_rounds: 0, awake_total: 0 });
        let out = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("run_begin"));
        assert!(lines[1].contains("run_end"));
    }

    #[test]
    fn profile_report_lists_all_phases() {
        let mut p = Profile::new();
        p.event(&TraceEvent::RunBegin { nodes: 4, shards: 1 });
        for (i, &phase) in TracePhase::ALL.iter().enumerate() {
            p.event(&TraceEvent::Phase { round: 0, phase, nanos: (i as u64 + 1) * 100 });
        }
        p.event(&TraceEvent::RoundEnd {
            round: 0,
            nanos: 1000,
            delivered: 5,
            lost: 2,
            faulted: 1,
            crashed: 0,
            arena_bytes: 64,
        });
        p.event(&TraceEvent::RunEnd { active_rounds: 1, awake_total: 4 });
        let r = p.render();
        for phase in TracePhase::ALL {
            assert!(r.contains(phase.name()), "missing {} in:\n{r}", phase.name());
        }
        assert!(r.contains("p50"));
        assert!(r.contains("p95"));
        assert!(r.contains("max"));
        assert!(r.contains("5 delivered"));
    }

    #[test]
    fn recorder_clones_share_the_store() {
        let rec = Recorder::new();
        let view = rec.clone();
        let handle = TraceHandle::new(rec);
        handle.lock().event(&TraceEvent::RunBegin { nodes: 1, shards: 1 });
        assert_eq!(view.events().len(), 1);
    }
}
