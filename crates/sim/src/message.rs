//! Message-size accounting for the CONGEST bandwidth constraint.
//!
//! The CONGEST model allows `O(log n)` bits per edge per round. Every
//! protocol message type reports its encoded size through [`MessageSize`];
//! the engine records the maximum observed size and can optionally reject
//! oversized messages (see [`crate::SimConfig::bit_limit`]).

/// Types that know their wire size in bits.
///
/// Implementations should report the size of a reasonable binary encoding
/// of the *payload* (not of the Rust in-memory representation): e.g. a
/// node id in `[1, I]` costs `bits_for_value(I)` bits, an enum tag over
/// `k` variants costs `bits_for_value(k - 1)` bits.
pub trait MessageSize {
    /// Encoded size of this message in bits.
    fn bits(&self) -> usize;
}

/// Number of bits needed to represent any value in `[0, max_value]`.
///
/// ```
/// # use sleeping_congest::bits_for_value;
/// assert_eq!(bits_for_value(0), 0);
/// assert_eq!(bits_for_value(1), 1);
/// assert_eq!(bits_for_value(255), 8);
/// assert_eq!(bits_for_value(256), 9);
/// ```
pub fn bits_for_value(max_value: u64) -> usize {
    (64 - max_value.leading_zeros()) as usize
}

impl MessageSize for () {
    fn bits(&self) -> usize {
        0
    }
}

impl MessageSize for bool {
    fn bits(&self) -> usize {
        1
    }
}

impl MessageSize for u32 {
    fn bits(&self) -> usize {
        32
    }
}

impl MessageSize for u64 {
    fn bits(&self) -> usize {
        64
    }
}

impl<A: MessageSize, B: MessageSize> MessageSize for (A, B) {
    fn bits(&self) -> usize {
        self.0.bits() + self.1.bits()
    }
}

impl<T: MessageSize> MessageSize for Option<T> {
    fn bits(&self) -> usize {
        1 + self.as_ref().map_or(0, MessageSize::bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_value_boundaries() {
        assert_eq!(bits_for_value(0), 0);
        assert_eq!(bits_for_value(1), 1);
        assert_eq!(bits_for_value(2), 2);
        assert_eq!(bits_for_value(3), 2);
        assert_eq!(bits_for_value(4), 3);
        assert_eq!(bits_for_value(u64::MAX), 64);
    }

    #[test]
    fn composite_sizes() {
        assert_eq!(().bits(), 0);
        assert_eq!(true.bits(), 1);
        assert_eq!((7u32, false).bits(), 33);
        assert_eq!(Some(1u64).bits(), 65);
        assert_eq!(None::<u64>.bits(), 1);
    }
}
