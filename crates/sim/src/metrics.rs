//! Run metrics: awake complexity, round complexity, message accounting.

use crate::Round;

/// Everything measured during a run.
#[derive(Debug, Clone)]
pub struct Metrics {
    /// Per-node count of awake rounds (the paper's `A_v`).
    pub awake_rounds: Vec<u64>,
    /// Per-node round in which the node terminated.
    pub terminated_at: Vec<Round>,
    /// Number of distinct rounds in which at least one node was awake
    /// (the engine's actual work; always `<= round_complexity()`).
    pub active_rounds: u64,
    /// Messages handed to the engine for transmission.
    pub messages_sent: u64,
    /// Messages received by an awake neighbor.
    pub messages_delivered: u64,
    /// Messages lost because the receiving endpoint was asleep.
    pub messages_lost: u64,
    /// Largest single message observed, in bits.
    pub max_message_bits: usize,
    /// Sum of bits over all sent messages.
    pub total_message_bits: u64,
    /// Optional per-node list of rounds the node was awake in (recorded
    /// when [`crate::SimConfig::record_wake_history`] is set).
    pub wake_history: Option<Vec<Vec<Round>>>,
}

impl Metrics {
    pub(crate) fn new(n: usize, record_history: bool) -> Metrics {
        Metrics {
            awake_rounds: vec![0; n],
            terminated_at: vec![0; n],
            active_rounds: 0,
            messages_sent: 0,
            messages_delivered: 0,
            messages_lost: 0,
            max_message_bits: 0,
            total_message_bits: 0,
            wake_history: if record_history { Some(vec![Vec::new(); n]) } else { None },
        }
    }

    /// Worst-case awake complexity: `max_v A_v`.
    pub fn awake_complexity(&self) -> u64 {
        self.awake_rounds.iter().copied().max().unwrap_or(0)
    }

    /// Node-averaged awake complexity: `(1/n) Σ_v A_v`.
    pub fn awake_average(&self) -> f64 {
        if self.awake_rounds.is_empty() {
            0.0
        } else {
            self.awake_rounds.iter().sum::<u64>() as f64 / self.awake_rounds.len() as f64
        }
    }

    /// Total awake node-rounds across all nodes.
    pub fn awake_total(&self) -> u64 {
        self.awake_rounds.iter().sum()
    }

    /// Round complexity: number of rounds until the last node terminated
    /// (rounds are 0-based, so this is `max terminated_at + 1`).
    pub fn round_complexity(&self) -> u64 {
        self.terminated_at.iter().copied().max().map_or(0, |r| r + 1)
    }
}

/// The result of a completed run: per-node outputs plus [`Metrics`].
#[derive(Debug, Clone)]
pub struct RunReport<O> {
    /// `outputs[v]` is node `v`'s local output.
    pub outputs: Vec<O>,
    /// Measurements for the run.
    pub metrics: Metrics,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let mut m = Metrics::new(3, false);
        m.awake_rounds = vec![2, 5, 3];
        m.terminated_at = vec![9, 4, 7];
        assert_eq!(m.awake_complexity(), 5);
        assert!((m.awake_average() - 10.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.awake_total(), 10);
        assert_eq!(m.round_complexity(), 10);
    }

    #[test]
    fn empty_metrics() {
        let m = Metrics::new(0, false);
        assert_eq!(m.awake_complexity(), 0);
        assert_eq!(m.awake_average(), 0.0);
        assert_eq!(m.round_complexity(), 0);
    }
}
