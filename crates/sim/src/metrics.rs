//! Run metrics: awake complexity, round complexity, message accounting,
//! and distribution statistics over the per-node awake counts.

use crate::Round;

/// Distribution statistics over the per-node awake counts `A_v`.
///
/// The paper's *worst-case* awake complexity is the [`max`](Self::max)
/// of this distribution; the *node-averaged* awake complexity of
/// Chatterjee–Gmyr–Pandurangan (arXiv:2006.07449) and
/// Ghaffari–Portmann (arXiv:2305.06120) is its [`mean`](Self::mean).
/// The quantiles and shape measures make the gap between the two a
/// first-class measured quantity: a node-averaged algorithm shows a low
/// mean with a long tail (high [`skew`](Self::skew), high
/// [`gini`](Self::gini)), a worst-case algorithm a tight distribution.
///
/// Computed by [`Metrics::awake_distribution`]; all statistics are
/// deterministic functions of the sample (ties and medians follow the
/// same conventions as `analysis::Summary`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AwakeDistribution {
    /// Sample size (number of nodes).
    pub n: usize,
    /// Mean awake rounds — the node-averaged awake complexity.
    pub mean: f64,
    /// Median awake rounds (mean of the middle pair for even sizes).
    pub median: f64,
    /// 95th percentile (nearest-rank on the sorted sample).
    pub p95: f64,
    /// Maximum awake rounds — the worst-case awake complexity.
    pub max: u64,
    /// Gini coefficient of the awake load (0 = perfectly even, →1 =
    /// one node carries everything). 0 for an all-zero sample.
    pub gini: f64,
    /// Fisher–Pearson moment skewness (population). 0 for a constant
    /// sample. Positive = a long tail of unlucky nodes.
    pub skew: f64,
}

impl AwakeDistribution {
    /// Summarizes a sample of per-node awake counts. An empty sample
    /// yields the all-zero distribution.
    pub fn of(samples: &[u64]) -> AwakeDistribution {
        let n = samples.len();
        if n == 0 {
            return AwakeDistribution::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let nf = n as f64;
        let total: u64 = sorted.iter().sum();
        let mean = total as f64 / nf;
        let median = if n % 2 == 1 {
            sorted[n / 2] as f64
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) as f64 / 2.0
        };
        // Nearest-rank percentile: smallest value with ≥ 95% of the
        // sample at or below it.
        let rank = ((0.95 * nf).ceil() as usize).clamp(1, n);
        let p95 = sorted[rank - 1] as f64;
        let max = sorted[n - 1];
        // Gini over the sorted sample: G = 2·Σᵢ i·x₍ᵢ₎ / (n·Σx) − (n+1)/n
        // (1-based i). Zero total ⇒ perfectly even by convention.
        let gini = if total == 0 {
            0.0
        } else {
            let weighted: f64 =
                sorted.iter().enumerate().map(|(i, &x)| (i as f64 + 1.0) * x as f64).sum();
            2.0 * weighted / (nf * total as f64) - (nf + 1.0) / nf
        };
        // Population Fisher–Pearson skewness g₁ = m₃ / m₂^{3/2}.
        let m2: f64 = sorted.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / nf;
        let m3: f64 = sorted.iter().map(|&x| (x as f64 - mean).powi(3)).sum::<f64>() / nf;
        let skew = if m2 > 0.0 { m3 / m2.powf(1.5) } else { 0.0 };
        AwakeDistribution { n, mean, median, p95, max, gini, skew }
    }
}

/// Everything measured during a run.
///
/// `PartialEq` compares every field, which is how the determinism tests
/// pin "byte-identical metrics" across shard and thread counts.
#[derive(Debug, Clone, PartialEq)]
pub struct Metrics {
    /// Per-node count of awake rounds (the paper's `A_v`).
    pub awake_rounds: Vec<u64>,
    /// Per-node round in which the node terminated.
    pub terminated_at: Vec<Round>,
    /// Number of distinct rounds in which at least one node was awake
    /// (the engine's actual work; always `<= round_complexity()`).
    pub active_rounds: u64,
    /// Messages handed to the engine for transmission.
    pub messages_sent: u64,
    /// Messages received by an awake neighbor.
    pub messages_delivered: u64,
    /// Messages lost because the receiving endpoint was asleep.
    pub messages_lost: u64,
    /// Deliverable messages dropped by the fault model's lossy links
    /// (counted separately from the model-inherent `messages_lost`).
    pub messages_faulted: u64,
    /// Per-node crash round under the fault model (`None` = the node
    /// survived). Always all-`None` without an active fault model.
    pub crashed_at: Vec<Option<Round>>,
    /// Largest single message observed, in bits.
    pub max_message_bits: usize,
    /// Sum of bits over all sent messages.
    pub total_message_bits: u64,
    /// Optional per-node list of rounds the node was awake in (recorded
    /// when [`crate::SimConfig::record_wake_history`] is set).
    pub wake_history: Option<Vec<Vec<Round>>>,
}

impl Metrics {
    pub(crate) fn new(n: usize, record_history: bool) -> Metrics {
        Metrics {
            awake_rounds: vec![0; n],
            terminated_at: vec![0; n],
            active_rounds: 0,
            messages_sent: 0,
            messages_delivered: 0,
            messages_lost: 0,
            messages_faulted: 0,
            crashed_at: vec![None; n],
            max_message_bits: 0,
            total_message_bits: 0,
            wake_history: if record_history { Some(vec![Vec::new(); n]) } else { None },
        }
    }

    /// Worst-case awake complexity: `max_v A_v`.
    pub fn awake_complexity(&self) -> u64 {
        self.awake_rounds.iter().copied().max().unwrap_or(0)
    }

    /// Node-averaged awake complexity: `(1/n) Σ_v A_v`.
    pub fn awake_average(&self) -> f64 {
        if self.awake_rounds.is_empty() {
            0.0
        } else {
            self.awake_rounds.iter().sum::<u64>() as f64 / self.awake_rounds.len() as f64
        }
    }

    /// Total awake node-rounds across all nodes.
    pub fn awake_total(&self) -> u64 {
        self.awake_rounds.iter().sum()
    }

    /// Distribution statistics over the per-node awake counts — mean
    /// (node-averaged awake complexity), median, p95, max (worst-case
    /// awake complexity), Gini, and skewness. See [`AwakeDistribution`].
    pub fn awake_distribution(&self) -> AwakeDistribution {
        AwakeDistribution::of(&self.awake_rounds)
    }

    /// Round complexity: number of rounds until the last node terminated
    /// (rounds are 0-based, so this is `max terminated_at + 1`).
    pub fn round_complexity(&self) -> u64 {
        self.terminated_at.iter().copied().max().map_or(0, |r| r + 1)
    }

    /// Number of nodes crash-stopped by the fault model.
    pub fn crashed_count(&self) -> usize {
        self.crashed_at.iter().filter(|c| c.is_some()).count()
    }

    /// Survivor mask: `alive[v]` iff node `v` was not crashed by the
    /// fault model. All-true for fault-free runs — feed this to
    /// survivor-aware verifiers.
    pub fn alive(&self) -> Vec<bool> {
        self.crashed_at.iter().map(|c| c.is_none()).collect()
    }
}

/// The result of a completed run: per-node outputs plus [`Metrics`].
#[derive(Debug, Clone)]
pub struct RunReport<O> {
    /// `outputs[v]` is node `v`'s local output.
    pub outputs: Vec<O>,
    /// Measurements for the run.
    pub metrics: Metrics,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let mut m = Metrics::new(3, false);
        m.awake_rounds = vec![2, 5, 3];
        m.terminated_at = vec![9, 4, 7];
        assert_eq!(m.awake_complexity(), 5);
        assert!((m.awake_average() - 10.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.awake_total(), 10);
        assert_eq!(m.round_complexity(), 10);
        assert_eq!(m.crashed_count(), 0);
        assert_eq!(m.alive(), vec![true, true, true]);
        m.crashed_at[1] = Some(4);
        assert_eq!(m.crashed_count(), 1);
        assert_eq!(m.alive(), vec![true, false, true]);
    }

    #[test]
    fn empty_metrics() {
        let m = Metrics::new(0, false);
        assert_eq!(m.awake_complexity(), 0);
        assert_eq!(m.awake_average(), 0.0);
        assert_eq!(m.round_complexity(), 0);
        assert_eq!(m.awake_distribution(), AwakeDistribution::default());
    }

    #[test]
    fn distribution_statistics() {
        // 20 samples: nineteen 1s and one 100 — a long-tail shape.
        let mut samples = vec![1u64; 19];
        samples.push(100);
        let d = AwakeDistribution::of(&samples);
        assert_eq!(d.n, 20);
        assert!((d.mean - 119.0 / 20.0).abs() < 1e-12);
        assert_eq!(d.median, 1.0);
        // Nearest-rank p95 over 20 samples is the 19th order statistic.
        assert_eq!(d.p95, 1.0);
        assert_eq!(d.max, 100);
        assert!(d.skew > 3.0, "long tail must skew positive: {}", d.skew);
        // One node carries 100/119 of the load: Gini is high.
        assert!(d.gini > 0.7, "gini {}", d.gini);

        // A constant sample is perfectly even and symmetric.
        let flat = AwakeDistribution::of(&[7, 7, 7, 7]);
        assert_eq!(flat.mean, 7.0);
        assert_eq!(flat.median, 7.0);
        assert_eq!(flat.p95, 7.0);
        assert_eq!(flat.max, 7);
        assert_eq!(flat.gini, 0.0);
        assert_eq!(flat.skew, 0.0);
    }

    #[test]
    fn distribution_quantile_conventions() {
        let d = AwakeDistribution::of(&[4, 1, 3, 2]);
        assert_eq!(d.median, 2.5); // mean of the middle pair
        assert_eq!(d.p95, 4.0); // ceil(0.95·4) = 4th order statistic
        // Known closed form: Gini of {1,2,3,4} is 0.25.
        assert!((d.gini - 0.25).abs() < 1e-12);
        // All-zero sample: even by convention, not NaN.
        let z = AwakeDistribution::of(&[0, 0, 0]);
        assert_eq!(z.gini, 0.0);
        assert_eq!(z.skew, 0.0);
        assert_eq!(z.mean, 0.0);
    }
}
