//! Event-driven simulator for the **SLEEPING-CONGEST** model.
//!
//! This crate implements the distributed computing model of
//! *"Distributed MIS in O(log log n) Awake Complexity"*
//! (Dufoulon–Moses–Pandurangan, PODC 2023), §1.3:
//!
//! * Computation proceeds in **synchronous rounds**. In each round an
//!   *awake* node (1) performs local computation, (2) sends `O(log n)`-bit
//!   messages through its ports, and (3) receives the messages sent to it
//!   *in the same round* by awake neighbors.
//! * Each node is either **awake** or **asleep** in every round. A message
//!   sent to a sleeping node is *lost* (and a sleeping node sends nothing).
//!   Nodes know the global round number whenever they are awake and may
//!   sleep until any chosen future round, arbitrarily often.
//! * The **awake complexity** of a run is the maximum, over nodes, of the
//!   number of rounds the node was awake before terminating; the **round
//!   complexity** counts all rounds, sleeping or awake.
//!
//! # Why event-driven
//!
//! The algorithms built on this model have round complexities like
//! `Θ(log⁷ n · log log n)` while keeping every node awake only
//! `O(log log n)` rounds. The engine therefore never iterates over rounds
//! in which *every* node sleeps: it keeps a calendar/bucket queue of
//! scheduled wake-ups (a 64-round bitmask window over ring buckets, with
//! a sorted overflow map for far-future wake-ups) and jumps directly from
//! one *active* round to the next — skipping an empty all-asleep round
//! range costs O(1) inside the window and one ordered-map lookup beyond
//! it. The semantics are identical to a round-by-round execution
//! (sleeping rounds are observationally empty), but a run costs time
//! proportional to the total number of *awake node-rounds*, not to the
//! round complexity.
//!
//! For running *grids* of simulations (seed sweeps, scaling studies) see
//! [`batch`] and [`SimScratch`]: per-worker scratch memory is reused
//! across runs and jobs fan out over OS threads with results in
//! deterministic job order.
//!
//! # Example
//!
//! ```
//! use sleeping_congest::{Action, NodeCtx, Outbox, Protocol, SimConfig, Simulator};
//! use graphgen::{generators, Port};
//!
//! /// Every node broadcasts once and outputs the number of values it
//! /// heard (itself included).
//! struct CountNeighbors {
//!     heard: u32,
//! }
//!
//! impl Protocol for CountNeighbors {
//!     type Msg = ();
//!     type Output = u32;
//!     fn send(&mut self, _ctx: &mut NodeCtx) -> Outbox<()> {
//!         Outbox::Broadcast(())
//!     }
//!     fn receive(&mut self, _ctx: &mut NodeCtx, inbox: &[(Port, ())]) -> Action {
//!         self.heard = 1 + inbox.len() as u32;
//!         Action::Terminate
//!     }
//!     fn output(&self) -> u32 {
//!         self.heard
//!     }
//! }
//!
//! let g = generators::cycle(5);
//! let nodes = (0..5).map(|_| CountNeighbors { heard: 0 }).collect();
//! let report = Simulator::new(g, nodes, SimConfig::default()).run()?;
//! assert_eq!(report.outputs, vec![3, 3, 3, 3, 3]);
//! assert_eq!(report.metrics.awake_complexity(), 1);
//! # Ok::<(), sleeping_congest::SimError>(())
//! ```

pub mod arena;
pub mod batch;
pub mod engine;
pub mod fault;
pub mod message;
pub mod metrics;
pub mod protocol;
pub mod rng;
pub mod trace;

pub use arena::ScratchArena;
pub use batch::{available_threads, resolve_threads, run_batch};
pub use engine::{SimConfig, SimError, SimScratch, Simulator, SLEEP_FOREVER};
pub use fault::FaultModel;
pub use message::{bits_for_value, MessageSize};
pub use metrics::{AwakeDistribution, Metrics, RunReport};
pub use protocol::{Action, NodeCtx, Outbox, Protocol, Standalone, SubAction, SubProtocol};
pub use trace::{JsonlSink, Profile, TraceEvent, TraceHandle, TracePhase, TraceSink};

/// A round number. Round 0 is the first round; all nodes start awake in
/// round 0.
pub type Round = u64;
