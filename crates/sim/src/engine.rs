//! The round engine.

use crate::fault::FaultModel;
use crate::metrics::{Metrics, RunReport};
use crate::protocol::{Action, NodeCtx, Outbox, Protocol};
use crate::rng::{fault_draw, fault_unit, node_rng, FAULT_CRASH, FAULT_LOSS, FAULT_WAKE};
use crate::trace::{TraceEvent, TracePhase};
use crate::Round;
use graphgen::{Graph, NodeId, Port};
use rand::rngs::SmallRng;
use std::collections::BTreeMap;
use std::fmt;
use std::time::Instant;

/// Sleeping until this round means sleeping *forever*: the node is parked
/// and never rescheduled. If every scheduled node terminates while parked
/// nodes remain, the run aborts with [`SimError::Deadlock`] instead of
/// fast-forwarding to a round that will never arrive.
pub const SLEEP_FOREVER: Round = Round::MAX;

/// Configuration of a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master seed; per-node RNGs are derived deterministically from it.
    pub seed: u64,
    /// CONGEST bandwidth: if set, a message larger than this many bits
    /// aborts the run with [`SimError::MessageTooLarge`]. The maximum
    /// observed size is recorded either way in
    /// [`Metrics::max_message_bits`].
    pub bit_limit: Option<usize>,
    /// Common upper bound on the network size given to every node
    /// (`N` in the paper: a polynomial upper bound on `n`). Defaults to
    /// the actual `n` at [`Simulator::new`] time when left as `None`.
    pub n_upper: Option<usize>,
    /// Safety cap on the round counter.
    pub max_rounds: Round,
    /// Safety cap on the number of *active* rounds actually simulated.
    pub max_active_rounds: u64,
    /// Record, per node, the exact list of rounds it was awake in
    /// (costs memory; intended for tests).
    pub record_wake_history: bool,
    /// Fault injection knobs (lossy links, crashing nodes, wake jitter).
    /// The default injects nothing and is bit-for-bit identical to runs
    /// from before the fault subsystem existed; see [`FaultModel`].
    pub fault: FaultModel,
    /// Worker shards for the *intra-run* send/receive loops. `1` (the
    /// default) keeps each round on the calling thread; `k > 1` splits
    /// every sufficiently large awake batch into `k` contiguous node-id
    /// ranges executed on scoped worker threads; `0` means one shard per
    /// available hardware thread.
    ///
    /// Sharding is an execution knob, not a semantic one: outgoing
    /// messages are staged per shard and merged in sender-id order, so
    /// outputs and [`Metrics`] are byte-identical for every shard count
    /// — including under an active [`FaultModel`], whose draws are
    /// keyed by `(site, round)` and therefore independent of scheduling.
    pub shards: usize,
    /// Observational trace sink (see [`crate::trace`]). `None` (the
    /// default) keeps the hot loop trace-free: no timestamps are taken
    /// and every event site is a single `Option` check. Attaching a
    /// sink never changes outputs, metrics, or scheduling — the
    /// engine locks the sink once per run and emits events from the
    /// coordinating thread only.
    pub trace: Option<crate::trace::TraceHandle>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xC0FFEE,
            bit_limit: None,
            n_upper: None,
            max_rounds: u64::MAX / 4,
            max_active_rounds: 500_000_000,
            record_wake_history: false,
            fault: FaultModel::default(),
            shards: 1,
            trace: None,
        }
    }
}

impl SimConfig {
    /// Config with the given seed and all other fields default.
    pub fn seeded(seed: u64) -> Self {
        SimConfig { seed, ..SimConfig::default() }
    }
}

/// Errors aborting a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// `protocols.len()` differed from the number of graph nodes.
    NodeCountMismatch { nodes: usize, protocols: usize },
    /// The round counter exceeded [`SimConfig::max_rounds`].
    RoundLimit(Round),
    /// More than [`SimConfig::max_active_rounds`] active rounds were
    /// simulated (runaway protocol).
    ActiveRoundLimit(u64),
    /// Every scheduled node terminated but some nodes slept forever
    /// (via [`SLEEP_FOREVER`]) without terminating.
    Deadlock { sleeping_forever: usize },
    /// A node emitted a message above [`SimConfig::bit_limit`].
    MessageTooLarge { node: NodeId, round: Round, bits: usize, limit: usize },
    /// A node asked to sleep until a round that is not in the future.
    BadSleep { node: NodeId, round: Round, until: Round },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NodeCountMismatch { nodes, protocols } => {
                write!(f, "graph has {nodes} nodes but {protocols} protocols were supplied")
            }
            SimError::RoundLimit(r) => write!(f, "round limit exceeded at round {r}"),
            SimError::ActiveRoundLimit(a) => write!(f, "active-round limit exceeded ({a})"),
            SimError::Deadlock { sleeping_forever } => {
                write!(f, "deadlock: {sleeping_forever} nodes slept forever without terminating")
            }
            SimError::MessageTooLarge { node, round, bits, limit } => write!(
                f,
                "node {node} sent a {bits}-bit message in round {round} (limit {limit})"
            ),
            SimError::BadSleep { node, round, until } => {
                write!(f, "node {node} in round {round} asked to sleep until round {until}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Site key for a message-loss draw: one directed edge endpoint,
/// identified by the sending node and its port.
fn loss_site(v: NodeId, p: Port) -> u64 {
    ((v as u64) << 32) | p as u64
}

/// Width of the calendar's near window: wake-ups within this many rounds
/// of the current minimum live in per-round ring buckets indexed by a
/// single `u64` occupancy bitmask.
const NEAR: u64 = 64;

/// Calendar/bucket wake queue over rounds.
///
/// Each non-terminated, non-parked node has exactly one pending wake-up.
/// Wake-ups within [`NEAR`] rounds of the current base live in a ring of
/// per-round buckets whose occupancy is a `u64` bitmask, so advancing
/// past any stretch of empty (all-asleep) rounds inside the window is a
/// single `trailing_zeros` — O(1). Wake-ups beyond the window go to a
/// `BTreeMap` overflow keyed by round and are promoted into the ring as
/// the base advances; a jump across millions of silent rounds is one
/// `BTreeMap` lookup, independent of the gap length.
#[derive(Debug)]
struct WakeQueue {
    /// All pending wake-ups are at rounds `>= base`.
    base: Round,
    /// Bit `i` set ⇔ the bucket for round `base + i` is non-empty.
    mask: u64,
    /// Ring buckets; round `r`'s bucket is `near[r % NEAR]`.
    near: Vec<Vec<NodeId>>,
    /// Wake-ups at rounds `>= base + NEAR`.
    far: BTreeMap<Round, Vec<NodeId>>,
    /// Recycled bucket allocations for `far` entries.
    spare: Vec<Vec<NodeId>>,
    /// Total pending wake-ups.
    len: usize,
}

impl Default for WakeQueue {
    fn default() -> Self {
        let mut near = Vec::with_capacity(NEAR as usize);
        near.resize_with(NEAR as usize, Vec::new);
        WakeQueue { base: 0, mask: 0, near, far: BTreeMap::new(), spare: Vec::new(), len: 0 }
    }
}

impl WakeQueue {
    /// Empties the queue, keeping bucket allocations for reuse.
    fn clear(&mut self) {
        self.base = 0;
        self.mask = 0;
        for b in &mut self.near {
            b.clear();
        }
        while let Some((_, mut v)) = self.far.pop_first() {
            v.clear();
            self.spare.push(v);
        }
        self.len = 0;
    }

    /// Schedules node `v` to wake at round `t`, saturating `t` to the
    /// window base.
    ///
    /// A `t` below `base` would underflow `t - self.base`; the old
    /// `debug_assert` made that a silent release-mode wrap that filed
    /// the node in the far map under a bogus round. The engine validates
    /// sleep targets before pushing, so a below-base push can only come
    /// from internal misuse — saturating pins it to the earliest legal
    /// round instead of corrupting the calendar.
    fn push(&mut self, t: Round, v: NodeId) {
        let t = t.max(self.base);
        if t - self.base < NEAR {
            self.near[(t % NEAR) as usize].push(v);
            self.mask |= 1 << (t - self.base);
        } else {
            self.far
                .entry(t)
                .or_insert_with(|| self.spare.pop().unwrap_or_default())
                .push(v);
        }
        self.len += 1;
    }

    /// Moves the window base forward to `r`, promoting overflow entries
    /// that now fall inside the window.
    fn advance_to(&mut self, r: Round) {
        let d = r - self.base;
        self.mask = if d >= NEAR { 0 } else { self.mask >> d };
        self.base = r;
        while let Some((&t, _)) = self.far.first_key_value() {
            if t - r >= NEAR {
                break;
            }
            let (t, mut nodes) = self.far.pop_first().expect("checked non-empty");
            let bucket = &mut self.near[(t % NEAR) as usize];
            debug_assert!(bucket.is_empty(), "promoting into an occupied bucket");
            std::mem::swap(bucket, &mut nodes);
            self.spare.push(nodes);
            self.mask |= 1 << (t - r);
        }
    }

    /// Pops the earliest pending round, filling `out` with every node
    /// scheduled for it (in scheduling order; callers sort). Returns
    /// `None` when no wake-ups remain.
    fn pop_round(&mut self, out: &mut Vec<NodeId>) -> Option<Round> {
        out.clear();
        if self.len == 0 {
            return None;
        }
        if self.mask == 0 {
            let (&t, _) = self.far.first_key_value().expect("pending wake-ups must be far");
            self.advance_to(t);
        }
        let r = self.base + u64::from(self.mask.trailing_zeros());
        self.advance_to(r);
        out.append(&mut self.near[(r % NEAR) as usize]);
        self.mask &= !1;
        self.len -= out.len();
        Some(r)
    }
}

/// One shard's staging buffer for a round's send phase.
///
/// Workers append deliveries as `(receiver batch slot, port, message)`
/// while accumulating their slice of the message counters locally; the
/// merge step ([`MsgArena::fill_from`]) and a commutative counter sum
/// reproduce the serial engine's state exactly.
#[derive(Debug)]
struct SendStage<M> {
    /// Staged deliveries: receiver's dense index in the sorted batch,
    /// receiver-side port, message. Within one stage, entries appear in
    /// ascending sender-id order because each worker scans its batch
    /// slice in order.
    msgs: Vec<(u32, Port, M)>,
    sent: u64,
    delivered: u64,
    lost: u64,
    faulted: u64,
    max_bits: usize,
    total_bits: u64,
    /// First error this shard hit, in its own id order. The engine takes
    /// the error from the lowest-index shard, which is exactly the first
    /// error the serial loop would have returned.
    err: Option<SimError>,
}

impl<M> Default for SendStage<M> {
    fn default() -> Self {
        SendStage {
            msgs: Vec::new(),
            sent: 0,
            delivered: 0,
            lost: 0,
            faulted: 0,
            max_bits: 0,
            total_bits: 0,
            err: None,
        }
    }
}

impl<M> SendStage<M> {
    fn clear(&mut self) {
        self.msgs.clear();
        self.sent = 0;
        self.delivered = 0;
        self.lost = 0;
        self.faulted = 0;
        self.max_bits = 0;
        self.total_bits = 0;
        self.err = None;
    }

    /// Accounts one emission of a `bits`-bit message in `copies` copies,
    /// recording an error and returning `false` if it busts `limit`.
    fn account(
        &mut self,
        node: NodeId,
        round: Round,
        bits: usize,
        copies: usize,
        limit: Option<usize>,
    ) -> bool {
        if let Some(limit) = limit {
            if bits > limit {
                self.err = Some(SimError::MessageTooLarge { node, round, bits, limit });
                return false;
            }
        }
        self.max_bits = self.max_bits.max(bits);
        self.sent += copies as u64;
        self.total_bits += (bits * copies) as u64;
        true
    }
}

/// Flat double-buffered message arena: one round's inboxes, CSR-style.
///
/// Instead of `n` growable `Vec` mailboxes, the arena holds a single
/// `data` buffer with `offsets[i]..offsets[i + 1]` delimiting awake batch
/// slot `i`'s inbox. It is rebuilt every round by a counting-sort merge
/// of the shard staging buffers, so per-message allocation never happens
/// after the buffers reach steady-state capacity.
#[derive(Debug)]
struct MsgArena<M> {
    /// `batch.len() + 1` prefix sums over per-slot message counts.
    offsets: Vec<usize>,
    /// Scatter cursors, one per slot, used during the merge.
    cursors: Vec<usize>,
    /// Concatenated stage buffers (sender-id order), pre-permutation.
    staged: Vec<(u32, Port, M)>,
    /// Inverse permutation: `inv[dest] = src` index into `staged`.
    inv: Vec<usize>,
    /// All of the round's deliveries, grouped by receiver slot.
    data: Vec<(Port, M)>,
}

impl<M> Default for MsgArena<M> {
    fn default() -> Self {
        MsgArena {
            offsets: Vec::new(),
            cursors: Vec::new(),
            staged: Vec::new(),
            inv: Vec::new(),
            data: Vec::new(),
        }
    }
}

impl<M> MsgArena<M> {
    fn clear(&mut self) {
        self.offsets.clear();
        self.cursors.clear();
        self.staged.clear();
        self.inv.clear();
        self.data.clear();
    }

    /// Counting-sort merge: drains every stage — in shard order, i.e.
    /// ascending sender-id order — into `data`, grouped by receiver slot.
    /// Per receiver this reproduces exactly the push order of the serial
    /// engine's nested inboxes, so downstream behaviour is byte-identical
    /// for every shard count. Three linear passes, no comparison sort;
    /// the inverse-permutation table lets `data` be built by an in-order
    /// extend instead of scatter-writes into uninitialized capacity.
    fn fill_from(&mut self, stages: &mut [SendStage<M>], slots: usize)
    where
        M: Clone,
    {
        self.staged.clear();
        for stage in stages.iter_mut() {
            self.staged.append(&mut stage.msgs);
        }
        self.offsets.clear();
        self.offsets.resize(slots + 1, 0);
        for &(slot, _, _) in &self.staged {
            self.offsets[slot as usize + 1] += 1;
        }
        for i in 0..slots {
            self.offsets[i + 1] += self.offsets[i];
        }
        let total = self.offsets[slots];
        self.cursors.clear();
        self.cursors.extend_from_slice(&self.offsets[..slots]);
        self.inv.clear();
        self.inv.resize(total, 0);
        for (src, &(slot, _, _)) in self.staged.iter().enumerate() {
            let dest = self.cursors[slot as usize];
            self.inv[dest] = src;
            self.cursors[slot as usize] = dest + 1;
        }
        self.data.clear();
        let staged = &self.staged;
        self.data.extend(self.inv.iter().map(|&src| {
            let (_, port, msg) = &staged[src];
            // For `Copy` messages this clone is a plain memcpy.
            (*port, msg.clone())
        }));
        self.staged.clear();
    }
}

/// Reusable per-run working memory: the wake queue, per-node RNGs, the
/// flat message arena, shard staging buffers, and awake stamps.
///
/// A fresh [`Simulator::run`] allocates all of this from scratch; callers
/// running many simulations (seed grids, Monte Carlo sweeps) should keep
/// one `SimScratch` per worker and use
/// [`Simulator::run_with_scratch`] so buckets and message buffers keep
/// their capacity across runs. The type parameter is the protocol's
/// message type ([`Protocol::Msg`]).
///
/// Per-node engine state lives in struct-of-arrays form (`rngs`,
/// `awake_stamp`, `slot`), and the round's inboxes are one flat
/// [`MsgArena`] rather than `n` nested `Vec`s.
///
/// A scratch is reset at the start of every run, so reusing one never
/// changes results: a run remains a pure function of
/// `(graph, protocols, SimConfig)`.
#[derive(Debug)]
pub struct SimScratch<M> {
    rngs: Vec<SmallRng>,
    queue: WakeQueue,
    batch: Vec<NodeId>,
    awake_stamp: Vec<Round>,
    /// Node id → dense index in the current sorted batch. Entries for
    /// nodes outside the batch are stale and never read (the send loop
    /// only looks up nodes whose `awake_stamp` matches the round).
    slot: Vec<u32>,
    arena: MsgArena<M>,
    stages: Vec<SendStage<M>>,
    actions: Vec<Action>,
}

impl<M> Default for SimScratch<M> {
    fn default() -> Self {
        SimScratch {
            rngs: Vec::new(),
            queue: WakeQueue::default(),
            batch: Vec::new(),
            awake_stamp: Vec::new(),
            slot: Vec::new(),
            arena: MsgArena::default(),
            stages: Vec::new(),
            actions: Vec::new(),
        }
    }
}

impl<M> SimScratch<M> {
    /// A scratch with no buffers allocated yet.
    pub fn new() -> Self {
        SimScratch::default()
    }

    /// Prepares the scratch for a run over `n` nodes with the given seed,
    /// scheduling initial wake-ups (jittered when the fault model says so).
    fn reset(&mut self, n: usize, seed: u64, fault: &FaultModel) {
        self.rngs.clear();
        self.rngs.extend((0..n as u32).map(|v| node_rng(seed, v)));
        self.queue.clear();
        for v in 0..n as NodeId {
            let at = if fault.wake_jitter > 0 {
                fault_draw(seed, FAULT_WAKE, v as u64, 0) % (fault.wake_jitter + 1)
            } else {
                0
            };
            self.queue.push(at, v);
        }
        self.batch.clear();
        self.awake_stamp.clear();
        self.awake_stamp.resize(n, 0);
        self.slot.clear();
        self.slot.resize(n, 0);
        self.arena.clear();
        for stage in &mut self.stages {
            stage.clear();
        }
        self.actions.clear();
    }
}

/// Below this many awake nodes per shard a round runs on the calling
/// thread: spawning workers would cost more than the round itself.
/// Results are unaffected either way — both paths stage and merge
/// through the same buffers.
const MIN_SHARD_BATCH: usize = 256;

/// A configured simulation, ready to [`run`](Simulator::run).
pub struct Simulator<P: Protocol> {
    graph: Graph,
    nodes: Vec<P>,
    config: SimConfig,
}

impl<P: Protocol> Simulator<P> {
    /// Creates a simulation of `protocols` over `graph`.
    ///
    /// `protocols[v]` is node `v`'s program. The counts must match — this
    /// is checked at [`run`](Simulator::run) time so construction stays
    /// infallible.
    pub fn new(graph: Graph, protocols: Vec<P>, config: SimConfig) -> Self {
        Simulator { graph, nodes: protocols, config }
    }

    /// Runs the simulation to completion (all nodes terminated),
    /// allocating fresh working memory.
    ///
    /// # Errors
    ///
    /// See [`SimError`]. In particular a protocol that parks nodes with
    /// [`SLEEP_FOREVER`] while the rest terminate yields
    /// [`SimError::Deadlock`] rather than hanging.
    pub fn run(self) -> Result<RunReport<P::Output>, SimError>
    where
        P: Send,
        P::Msg: Send,
    {
        let mut scratch = SimScratch::new();
        self.run_with_scratch(&mut scratch)
    }

    /// Runs the simulation drawing working memory from a type-erased
    /// [`ScratchArena`](crate::ScratchArena).
    ///
    /// Equivalent to [`run_with_scratch`](Simulator::run_with_scratch)
    /// on `arena.of::<P::Msg>()`; exists so code that dispatches over
    /// *heterogeneous* protocols (different message types) can thread a
    /// single arena through an object-safe interface.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run_in(
        self,
        arena: &mut crate::ScratchArena,
    ) -> Result<RunReport<P::Output>, SimError>
    where
        P: Send,
        P::Msg: Send + 'static,
    {
        let scratch = arena.of::<P::Msg>();
        self.run_with_scratch(scratch)
    }

    /// Runs the simulation using caller-provided working memory.
    ///
    /// Results are identical to [`run`](Simulator::run); the scratch only
    /// recycles allocations between runs. Intended for batched execution
    /// where one scratch per worker thread is reused across a whole grid
    /// of runs.
    ///
    /// When [`SimConfig::shards`] asks for intra-run parallelism, each
    /// round's send and receive loops are split over scoped worker
    /// threads by contiguous node-id range; staging buffers plus a
    /// deterministic sender-id-ordered merge keep outputs and metrics
    /// byte-identical to the serial path.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run_with_scratch(
        self,
        scratch: &mut SimScratch<P::Msg>,
    ) -> Result<RunReport<P::Output>, SimError>
    where
        P: Send,
        P::Msg: Send,
    {
        let Simulator { graph, mut nodes, config } = self;
        let n = graph.n();
        if nodes.len() != n {
            return Err(SimError::NodeCountMismatch { nodes: n, protocols: nodes.len() });
        }
        let n_upper = config.n_upper.unwrap_or(n);
        let seed = config.seed;
        let fault = config.fault.clone();
        let bit_limit = config.bit_limit;
        let shards = crate::batch::resolve_threads(config.shards);
        let mut metrics = Metrics::new(n, config.record_wake_history);
        scratch.reset(n, seed, &fault);
        let SimScratch { rngs, queue, batch, awake_stamp, slot, arena, stages, actions } = scratch;
        let mut live = n;

        // Tracing (observational only): lock the attached sink once for
        // the whole run; with no sink every per-round site below is a
        // single `Option` check and no timestamps are taken.
        let mut trace_guard = config.trace.as_ref().map(|h| h.lock());
        let tracing = trace_guard.is_some();
        if let Some(t) = trace_guard.as_deref_mut() {
            t.event(&TraceEvent::RunBegin { nodes: n, shards });
        }

        let run_result: Result<(), SimError> = 'rounds: loop {
            if live == 0 {
                break Ok(());
            }
            let Some(round) = queue.pop_round(batch) else {
                break 'rounds Err(SimError::Deadlock { sleeping_forever: live });
            };
            if round > config.max_rounds {
                break 'rounds Err(SimError::RoundLimit(round));
            }
            metrics.active_rounds += 1;
            if metrics.active_rounds > config.max_active_rounds {
                break 'rounds Err(SimError::ActiveRoundLimit(metrics.active_rounds));
            }
            if let Some(t) = trace_guard.as_deref_mut() {
                t.event(&TraceEvent::RoundBegin { round, batch: batch.len(), queued: queue.len });
            }
            let round_t0 = tracing.then(Instant::now);
            let mut crashed_round = 0usize;

            // Crash faults strike at wake-up time: a node drawn against
            // the crash probability inside the window stops *before*
            // executing the round — it never sends, receives, or
            // reschedules again. Draws are keyed `(node, round)`, so the
            // outcome is independent of batch order.
            if fault.crash > 0.0 && round >= fault.crash_from && round <= fault.crash_until {
                batch.retain(|&v| {
                    if fault_unit(seed, FAULT_CRASH, v as u64, round) < fault.crash {
                        metrics.crashed_at[v as usize] = Some(round);
                        metrics.terminated_at[v as usize] = round;
                        live -= 1;
                        crashed_round += 1;
                        false
                    } else {
                        true
                    }
                });
            }

            batch.sort_unstable();
            let stamp = round + 1; // nonzero marker for "awake this round"
            for (i, &v) in batch.iter().enumerate() {
                awake_stamp[v as usize] = stamp;
                slot[v as usize] = i as u32;
            }
            // Bookkeeping splits around the round: crash filtering +
            // sort/stamp above, the apply loop below; the two slices are
            // summed into one `Bookkeeping` phase event.
            let book_pre_ns = round_t0.map_or(0, |t0| t0.elapsed().as_nanos() as u64);
            let send_t0 = tracing.then(Instant::now);

            // Send phase: each shard scans a contiguous slice of the
            // sorted batch — equivalently, a contiguous node-id range —
            // in id order, staging deliveries into its own buffer.
            // Rounds too small to amortize a spawn stay on this thread;
            // both paths flow through the same staging + merge, so the
            // choice never shows up in results.
            let len = batch.len();
            let s = shards.min(len / MIN_SHARD_BATCH).max(1);
            while stages.len() < s {
                stages.push(SendStage::default());
            }
            for stage in stages[..s].iter_mut() {
                stage.clear();
            }
            if s == 1 {
                send_shard(
                    &graph,
                    &mut nodes[..],
                    &mut rngs[..],
                    0,
                    batch,
                    awake_stamp,
                    slot,
                    stamp,
                    round,
                    n_upper,
                    seed,
                    &fault,
                    bit_limit,
                    &mut stages[0],
                );
            } else {
                std::thread::scope(|scope| {
                    let mut nodes_rest = &mut nodes[..];
                    let mut rngs_rest = &mut rngs[..];
                    let mut consumed = 0usize;
                    for (k, stage) in stages[..s].iter_mut().enumerate() {
                        let (lo, hi) = (k * len / s, (k + 1) * len / s);
                        // The batch is sorted, so batch positions
                        // [lo, hi) span exactly ids [consumed, id_hi).
                        let id_hi = if hi == len { n } else { batch[hi] as usize };
                        let (nodes_chunk, rest) = nodes_rest.split_at_mut(id_hi - consumed);
                        nodes_rest = rest;
                        let (rngs_chunk, rest) = rngs_rest.split_at_mut(id_hi - consumed);
                        rngs_rest = rest;
                        let base = consumed as NodeId;
                        consumed = id_hi;
                        let batch_slice = &batch[lo..hi];
                        let (graph, awake_stamp, slot, fault) =
                            (&graph, &awake_stamp[..], &slot[..], &fault);
                        scope.spawn(move || {
                            send_shard(
                                graph,
                                nodes_chunk,
                                rngs_chunk,
                                base,
                                batch_slice,
                                awake_stamp,
                                slot,
                                stamp,
                                round,
                                n_upper,
                                seed,
                                fault,
                                bit_limit,
                                stage,
                            );
                        });
                    }
                });
            }
            if let Some(t) = trace_guard.as_deref_mut() {
                let nanos = send_t0.map_or(0, |t0| t0.elapsed().as_nanos() as u64);
                t.event(&TraceEvent::Phase { round, phase: TracePhase::Send, nanos });
                // Staged counts are read before `fill_from` drains them.
                for (k, stage) in stages[..s].iter().enumerate() {
                    let (lo, hi) = (k * len / s, (k + 1) * len / s);
                    t.event(&TraceEvent::ShardBatch {
                        round,
                        shard: k,
                        nodes: hi - lo,
                        messages: stage.msgs.len(),
                    });
                }
            }
            let merge_t0 = tracing.then(Instant::now);
            // Per-round message deltas for the trace, from counter
            // snapshots (the merge below only ever adds).
            let (deliv0, lost0, fault0) =
                (metrics.messages_delivered, metrics.messages_lost, metrics.messages_faulted);
            // Shards cover ascending id ranges, so the first erroring
            // shard's first error is exactly what the serial loop would
            // have returned.
            for stage in stages[..s].iter_mut() {
                if let Some(err) = stage.err.take() {
                    break 'rounds Err(err);
                }
            }
            // Counter merge: sums and a max — commutative, so the total
            // is independent of how the batch was split.
            for stage in stages[..s].iter() {
                metrics.messages_sent += stage.sent;
                metrics.messages_delivered += stage.delivered;
                metrics.messages_lost += stage.lost;
                metrics.messages_faulted += stage.faulted;
                metrics.max_message_bits = metrics.max_message_bits.max(stage.max_bits);
                metrics.total_message_bits += stage.total_bits;
            }

            arena.fill_from(&mut stages[..s], len);

            if let Some(t) = trace_guard.as_deref_mut() {
                let nanos = merge_t0.map_or(0, |t0| t0.elapsed().as_nanos() as u64);
                t.event(&TraceEvent::Phase { round, phase: TracePhase::Merge, nanos });
            }
            let recv_t0 = tracing.then(Instant::now);

            // Receive phase: same shard layout; each worker owns its
            // contiguous region of the arena (receivers in its id range)
            // and records actions for the serial apply step below.
            actions.clear();
            actions.resize(len, Action::Continue);
            if s == 1 {
                receive_shard(
                    &graph,
                    &mut nodes[..],
                    &mut rngs[..],
                    0,
                    batch,
                    0,
                    &arena.offsets,
                    &mut arena.data[..],
                    0,
                    round,
                    n_upper,
                    &mut actions[..],
                );
            } else {
                std::thread::scope(|scope| {
                    let mut nodes_rest = &mut nodes[..];
                    let mut rngs_rest = &mut rngs[..];
                    let mut data_rest = &mut arena.data[..];
                    let mut actions_rest = &mut actions[..];
                    let mut consumed = 0usize;
                    let mut data_consumed = 0usize;
                    for k in 0..s {
                        let (lo, hi) = (k * len / s, (k + 1) * len / s);
                        let id_hi = if hi == len { n } else { batch[hi] as usize };
                        let (nodes_chunk, rest) = nodes_rest.split_at_mut(id_hi - consumed);
                        nodes_rest = rest;
                        let (rngs_chunk, rest) = rngs_rest.split_at_mut(id_hi - consumed);
                        rngs_rest = rest;
                        let data_hi = arena.offsets[hi];
                        let (data_chunk, rest) = data_rest.split_at_mut(data_hi - data_consumed);
                        data_rest = rest;
                        let (actions_chunk, rest) = actions_rest.split_at_mut(hi - lo);
                        actions_rest = rest;
                        let base = consumed as NodeId;
                        let data0 = data_consumed;
                        consumed = id_hi;
                        data_consumed = data_hi;
                        let batch_slice = &batch[lo..hi];
                        let (graph, offsets) = (&graph, &arena.offsets[..]);
                        scope.spawn(move || {
                            receive_shard(
                                graph,
                                nodes_chunk,
                                rngs_chunk,
                                base,
                                batch_slice,
                                lo,
                                offsets,
                                data_chunk,
                                data0,
                                round,
                                n_upper,
                                actions_chunk,
                            );
                        });
                    }
                });
            }

            if let Some(t) = trace_guard.as_deref_mut() {
                let nanos = recv_t0.map_or(0, |t0| t0.elapsed().as_nanos() as u64);
                t.event(&TraceEvent::Phase { round, phase: TracePhase::Receive, nanos });
            }
            let apply_t0 = tracing.then(Instant::now);

            // Apply step, serial and in id order: queue pushes, sleep
            // validation, and termination bookkeeping — so scheduling
            // and error selection match the serial engine exactly.
            for (i, &v) in batch.iter().enumerate() {
                metrics.awake_rounds[v as usize] += 1;
                if let Some(h) = metrics.wake_history.as_mut() {
                    h[v as usize].push(round);
                }
                match actions[i] {
                    Action::Continue => queue.push(round + 1, v),
                    Action::SleepUntil(t) => {
                        if t <= round {
                            break 'rounds Err(SimError::BadSleep { node: v, round, until: t });
                        }
                        if t != SLEEP_FOREVER {
                            queue.push(t, v);
                        }
                        // SLEEP_FOREVER parks the node: it stays live but
                        // is never rescheduled, so a drained queue with
                        // parked nodes left is a deadlock.
                    }
                    Action::Terminate => {
                        metrics.terminated_at[v as usize] = round;
                        live -= 1;
                    }
                }
            }

            if let Some(t) = trace_guard.as_deref_mut() {
                let apply_ns = apply_t0.map_or(0, |t0| t0.elapsed().as_nanos() as u64);
                t.event(&TraceEvent::Phase {
                    round,
                    phase: TracePhase::Bookkeeping,
                    nanos: book_pre_ns + apply_ns,
                });
                t.event(&TraceEvent::RoundEnd {
                    round,
                    nanos: round_t0.map_or(0, |t0| t0.elapsed().as_nanos() as u64),
                    delivered: metrics.messages_delivered - deliv0,
                    lost: metrics.messages_lost - lost0,
                    faulted: metrics.messages_faulted - fault0,
                    crashed: crashed_round,
                    arena_bytes: arena.data.len() * std::mem::size_of::<(Port, P::Msg)>(),
                });
            }
        };

        if let Some(t) = trace_guard.as_deref_mut() {
            t.event(&TraceEvent::RunEnd {
                active_rounds: metrics.active_rounds,
                awake_total: metrics.awake_total(),
            });
        }
        drop(trace_guard);
        run_result?;

        let outputs = nodes
            .iter()
            .enumerate()
            .map(|(v, p)| {
                if metrics.crashed_at[v].is_some() {
                    p.aborted_output()
                } else {
                    p.output()
                }
            })
            .collect();
        Ok(RunReport { outputs, metrics })
    }
}

/// One shard of a round's send phase: scans `batch` — a contiguous slice
/// of the round's sorted batch — in id order, staging every deliverable
/// message into `stage`. `nodes` and `rngs` are the chunks of the
/// per-node arrays covering ids `base..`, so node `v`'s state sits at
/// index `v - base`.
#[allow(clippy::too_many_arguments)]
fn send_shard<P: Protocol>(
    graph: &Graph,
    nodes: &mut [P],
    rngs: &mut [SmallRng],
    base: NodeId,
    batch: &[NodeId],
    awake_stamp: &[Round],
    slot: &[u32],
    stamp: Round,
    round: Round,
    n_upper: usize,
    seed: u64,
    fault: &FaultModel,
    bit_limit: Option<usize>,
    stage: &mut SendStage<P::Msg>,
) {
    for &v in batch {
        let i = (v - base) as usize;
        let degree = graph.degree(v);
        let mut ctx = NodeCtx { node: v, degree, round, n_upper, rng: &mut rngs[i] };
        match nodes[i].send(&mut ctx) {
            Outbox::Silent => {}
            Outbox::Broadcast(msg) => {
                let bits = crate::message::MessageSize::bits(&msg);
                if !stage.account(v, round, bits, degree, bit_limit) {
                    return;
                }
                for p in 0..degree as Port {
                    let (u, q) = graph.endpoint(v, p);
                    if awake_stamp[u as usize] == stamp {
                        // Lossy links drop deliverable copies i.i.d.,
                        // keyed by (sender, port, round) — independent
                        // of the shard layout.
                        if fault.loss > 0.0
                            && fault_unit(seed, FAULT_LOSS, loss_site(v, p), round) < fault.loss
                        {
                            stage.faulted += 1;
                        } else {
                            // For `Copy` messages this clone is a plain
                            // memcpy into the staging buffer.
                            stage.msgs.push((slot[u as usize], q, msg.clone()));
                            stage.delivered += 1;
                        }
                    } else {
                        stage.lost += 1;
                    }
                }
            }
            Outbox::Unicast(list) => {
                for (p, msg) in list {
                    let bits = crate::message::MessageSize::bits(&msg);
                    if !stage.account(v, round, bits, 1, bit_limit) {
                        return;
                    }
                    let (u, q) = graph.endpoint(v, p);
                    if awake_stamp[u as usize] == stamp {
                        if fault.loss > 0.0
                            && fault_unit(seed, FAULT_LOSS, loss_site(v, p), round) < fault.loss
                        {
                            stage.faulted += 1;
                        } else {
                            stage.msgs.push((slot[u as usize], q, msg));
                            stage.delivered += 1;
                        }
                    } else {
                        stage.lost += 1;
                    }
                }
            }
        }
    }
}

/// One shard of a round's receive phase: sorts each receiver's arena
/// segment by port, delivers it, and records the chosen [`Action`].
/// `data` is this shard's contiguous slice of the arena starting at
/// global index `data0`; `pos0` is the global batch position of
/// `batch[0]` (for indexing the global `offsets`).
#[allow(clippy::too_many_arguments)]
fn receive_shard<P: Protocol>(
    graph: &Graph,
    nodes: &mut [P],
    rngs: &mut [SmallRng],
    base: NodeId,
    batch: &[NodeId],
    pos0: usize,
    offsets: &[usize],
    data: &mut [(Port, P::Msg)],
    data0: usize,
    round: Round,
    n_upper: usize,
    actions: &mut [Action],
) {
    for (k, &v) in batch.iter().enumerate() {
        let i = (v - base) as usize;
        let inbox = &mut data[offsets[pos0 + k] - data0..offsets[pos0 + k + 1] - data0];
        inbox.sort_unstable_by_key(|&(p, _)| p);
        let mut ctx =
            NodeCtx { node: v, degree: graph.degree(v), round, n_upper, rng: &mut rngs[i] };
        actions[k] = nodes[i].receive(&mut ctx, inbox);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::generators;

    /// Flood protocol: node 0 starts with a token; each node forwards the
    /// token once, the round after first hearing it, then terminates.
    #[derive(Debug)]
    struct Flood {
        has_token: bool,
        sent: bool,
        got_at: Option<Round>,
    }

    impl Flood {
        fn start(seeded: bool) -> Flood {
            Flood { has_token: seeded, sent: false, got_at: if seeded { Some(0) } else { None } }
        }
    }

    impl Protocol for Flood {
        type Msg = ();
        type Output = Option<Round>;
        fn send(&mut self, _ctx: &mut NodeCtx) -> Outbox<()> {
            if self.has_token && !self.sent {
                self.sent = true;
                Outbox::Broadcast(())
            } else {
                Outbox::Silent
            }
        }
        fn receive(&mut self, ctx: &mut NodeCtx, inbox: &[(Port, ())]) -> Action {
            if !self.has_token && !inbox.is_empty() {
                self.has_token = true;
                self.got_at = Some(ctx.round);
            }
            if self.sent {
                Action::Terminate
            } else {
                Action::Continue
            }
        }
        fn output(&self) -> Option<Round> {
            self.got_at
        }
    }

    #[test]
    fn flood_reaches_everyone_in_bfs_order() {
        let g = generators::path(5);
        let nodes = (0..5).map(|v| Flood::start(v == 0)).collect();
        let report = Simulator::new(g, nodes, SimConfig::default()).run().unwrap();
        assert_eq!(report.outputs, vec![Some(0), Some(0), Some(1), Some(2), Some(3)]);
        assert_eq!(report.metrics.round_complexity(), 5);
    }

    /// Sleeper: node v sleeps to round `gap * v`, broadcasts once, and
    /// records what it heard.
    #[derive(Debug)]
    struct Sleeper {
        wake_at: Round,
        phase: u8,
        heard: usize,
    }

    impl Protocol for Sleeper {
        type Msg = u32;
        type Output = usize;
        fn send(&mut self, ctx: &mut NodeCtx) -> Outbox<u32> {
            if ctx.round == self.wake_at {
                Outbox::Broadcast(ctx.node)
            } else {
                Outbox::Silent
            }
        }
        fn receive(&mut self, ctx: &mut NodeCtx, inbox: &[(Port, u32)]) -> Action {
            if ctx.round < self.wake_at {
                self.phase = 1;
                Action::SleepUntil(self.wake_at)
            } else {
                self.heard = inbox.len();
                Action::Terminate
            }
        }
        fn output(&self) -> usize {
            self.heard
        }
    }

    #[test]
    fn messages_to_sleeping_nodes_are_lost() {
        // Path 0-1-2; all wake at distinct rounds (> 0, since every node
        // starts awake in round 0) → nobody hears anything.
        let g = generators::path(3);
        let nodes =
            (0..3).map(|v| Sleeper { wake_at: 10 * (v + 1) as Round, phase: 0, heard: 0 }).collect();
        let report = Simulator::new(g, nodes, SimConfig::default()).run().unwrap();
        assert_eq!(report.outputs, vec![0, 0, 0]);
        assert_eq!(report.metrics.messages_delivered, 0);
        assert_eq!(report.metrics.messages_lost, 4);
        // Only 4 active rounds (0, 10, 20, 30) despite round complexity 31.
        assert_eq!(report.metrics.active_rounds, 4);
        assert_eq!(report.metrics.round_complexity(), 31);
    }

    #[test]
    fn simultaneously_awake_nodes_communicate() {
        let g = generators::path(3);
        let nodes = (0..3).map(|_| Sleeper { wake_at: 5, phase: 0, heard: 0 }).collect();
        let report = Simulator::new(g, nodes, SimConfig::default()).run().unwrap();
        assert_eq!(report.outputs, vec![1, 2, 1]);
        assert_eq!(report.metrics.messages_lost, 0);
        // Awake in round 0 (initial) + round 5.
        assert_eq!(report.metrics.awake_complexity(), 2);
    }

    #[test]
    fn node_count_mismatch_detected() {
        let g = generators::path(3);
        let nodes = vec![Flood::start(true)];
        let err = Simulator::new(g, nodes, SimConfig::default()).run().unwrap_err();
        assert_eq!(err, SimError::NodeCountMismatch { nodes: 3, protocols: 1 });
    }

    /// A protocol that sleeps forever after round 0 without terminating.
    struct Insomniac;
    impl Protocol for Insomniac {
        type Msg = ();
        type Output = ();
        fn send(&mut self, _: &mut NodeCtx) -> Outbox<()> {
            Outbox::Silent
        }
        fn receive(&mut self, ctx: &mut NodeCtx, _: &[(Port, ())]) -> Action {
            // Sleep far beyond the round cap.
            Action::SleepUntil(ctx.round + u64::MAX / 2)
        }
        fn output(&self) {}
    }

    #[test]
    fn round_limit_guards_runaway_sleeps() {
        let g = generators::path(2);
        let cfg = SimConfig { max_rounds: 1000, ..SimConfig::default() };
        let err = Simulator::new(g, vec![Insomniac, Insomniac], cfg).run().unwrap_err();
        assert!(matches!(err, SimError::RoundLimit(_)));
    }

    /// Broadcasts a 64-bit message once.
    struct BigTalker;
    impl Protocol for BigTalker {
        type Msg = u64;
        type Output = ();
        fn send(&mut self, _: &mut NodeCtx) -> Outbox<u64> {
            Outbox::Broadcast(42)
        }
        fn receive(&mut self, _: &mut NodeCtx, _: &[(Port, u64)]) -> Action {
            Action::Terminate
        }
        fn output(&self) {}
    }

    #[test]
    fn bit_limit_enforced() {
        let g = generators::path(2);
        let cfg = SimConfig { bit_limit: Some(32), ..SimConfig::default() };
        let err = Simulator::new(g, vec![BigTalker, BigTalker], cfg).run().unwrap_err();
        assert!(matches!(err, SimError::MessageTooLarge { bits: 64, limit: 32, .. }));
        let cfg2 = SimConfig { bit_limit: Some(64), ..SimConfig::default() };
        let g2 = generators::path(2);
        let report = Simulator::new(g2, vec![BigTalker, BigTalker], cfg2).run().unwrap();
        assert_eq!(report.metrics.max_message_bits, 64);
    }

    /// Sleeps to the past — must be rejected.
    struct TimeTraveler;
    impl Protocol for TimeTraveler {
        type Msg = ();
        type Output = ();
        fn send(&mut self, _: &mut NodeCtx) -> Outbox<()> {
            Outbox::Silent
        }
        fn receive(&mut self, ctx: &mut NodeCtx, _: &[(Port, ())]) -> Action {
            Action::SleepUntil(ctx.round)
        }
        fn output(&self) {}
    }

    #[test]
    fn sleeping_into_the_past_rejected() {
        let g = generators::path(2);
        let err = Simulator::new(g, vec![TimeTraveler, TimeTraveler], SimConfig::default())
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::BadSleep { until: 0, .. }));
    }

    #[test]
    fn wake_history_recorded() {
        let g = generators::path(2);
        let cfg = SimConfig { record_wake_history: true, ..SimConfig::default() };
        let nodes = (0..2).map(|v| Sleeper { wake_at: 3 + v as Round, phase: 0, heard: 0 }).collect();
        let report = Simulator::new(g, nodes, cfg).run().unwrap();
        let h = report.metrics.wake_history.unwrap();
        assert_eq!(h[0], vec![0, 3]);
        assert_eq!(h[1], vec![0, 4]);
    }

    #[test]
    fn unicast_routing_and_rng_determinism() {
        /// Node sends a random u32 to port 0 only.
        struct RandomUnicast {
            drew: u32,
            heard: Vec<u32>,
        }
        impl Protocol for RandomUnicast {
            type Msg = u32;
            type Output = (u32, Vec<u32>);
            fn send(&mut self, ctx: &mut NodeCtx) -> Outbox<u32> {
                self.drew = rand::Rng::gen(ctx.rng);
                Outbox::Unicast(vec![(0, self.drew)])
            }
            fn receive(&mut self, _: &mut NodeCtx, inbox: &[(Port, u32)]) -> Action {
                self.heard = inbox.iter().map(|&(_, m)| m).collect();
                Action::Terminate
            }
            fn output(&self) -> (u32, Vec<u32>) {
                (self.drew, self.heard.clone())
            }
        }

        let run = || {
            let g = generators::path(3); // 1's port 0 → 0
            let nodes = (0..3).map(|_| RandomUnicast { drew: 0, heard: vec![] }).collect();
            Simulator::new(g, nodes, SimConfig::seeded(99)).run().unwrap().outputs
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed must reproduce identical runs");
        // Node 0's port 0 goes to node 1; node 1 sent its value to port 0 (node 0).
        assert_eq!(a[0].1, vec![a[1].0]);
        // Node 2 sent to port 0 (node 1) and node 1 heard from ports 0 and 1.
        assert_eq!(a[1].1.len(), 2);
        // Distinct nodes draw distinct randomness (overwhelmingly likely).
        assert_ne!(a[0].0, a[1].0);
    }

    #[test]
    fn scratch_reuse_is_invisible() {
        // Re-running through one scratch (dirty from a prior, *different*
        // run) must reproduce the fresh-allocation results bit for bit.
        let mut scratch = SimScratch::new();
        let big = generators::gnp(50, 0.2, &mut {
            use rand::SeedableRng;
            rand::rngs::SmallRng::seed_from_u64(3)
        });
        let nodes = (0..big.n()).map(|v| Sleeper { wake_at: 2 + v as Round, phase: 0, heard: 0 }).collect();
        Simulator::new(big, nodes, SimConfig::seeded(8)).run_with_scratch(&mut scratch).unwrap();

        let g = generators::path(3);
        let mk = || (0..3).map(|_| Sleeper { wake_at: 5, phase: 0, heard: 0 }).collect();
        let fresh = Simulator::new(g.clone(), mk(), SimConfig::default()).run().unwrap();
        let reused = Simulator::new(g, mk(), SimConfig::default())
            .run_with_scratch(&mut scratch)
            .unwrap();
        assert_eq!(fresh.outputs, reused.outputs);
        assert_eq!(fresh.metrics.awake_rounds, reused.metrics.awake_rounds);
        assert_eq!(fresh.metrics.active_rounds, reused.metrics.active_rounds);
        assert_eq!(fresh.metrics.messages_lost, reused.metrics.messages_lost);
    }

    #[test]
    fn wake_queue_skips_and_orders() {
        // Direct unit test of the calendar queue: mixed near/far pushes
        // drain in round order with same-round nodes batched together.
        let mut q = WakeQueue::default();
        q.push(0, 0);
        q.push(0, 1);
        q.push(5, 2);
        q.push(1_000_000, 3);
        q.push(70, 4);
        q.push(1_000_000, 5);
        let mut out = Vec::new();
        assert_eq!(q.pop_round(&mut out), Some(0));
        assert_eq!(out, vec![0, 1]);
        // Push into the near window relative to the new base.
        q.push(5, 6);
        assert_eq!(q.pop_round(&mut out), Some(5));
        {
            let mut sorted = out.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![2, 6]);
        }
        assert_eq!(q.pop_round(&mut out), Some(70));
        assert_eq!(out, vec![4]);
        assert_eq!(q.pop_round(&mut out), Some(1_000_000));
        {
            let mut sorted = out.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![3, 5]);
        }
        assert_eq!(q.pop_round(&mut out), None);
        assert!(out.is_empty());
    }

    #[test]
    fn wake_queue_push_below_base_saturates() {
        // A push below the window base must not wrap `t - base`; it
        // saturates to the base — the earliest legal round.
        let mut q = WakeQueue::default();
        q.push(10, 0);
        let mut out = Vec::new();
        assert_eq!(q.pop_round(&mut out), Some(10)); // base is now 10
        q.push(3, 1); // below base: saturates to round 10
        q.push(12, 2);
        assert_eq!(q.pop_round(&mut out), Some(10));
        assert_eq!(out, vec![1]);
        assert_eq!(q.pop_round(&mut out), Some(12));
        assert_eq!(out, vec![2]);
        assert_eq!(q.pop_round(&mut out), None);
    }

    #[test]
    fn wake_queue_promotes_exactly_at_the_near_boundary() {
        // `t - base == NEAR` must go to the far map (round t's ring
        // bucket is still owned by round t - NEAR) and promote cleanly
        // once the base advances; an entry exactly NEAR past the *new*
        // base must stay far through that promotion pass.
        let mut q = WakeQueue::default();
        q.push(0, 0);
        q.push(NEAR, 1);
        q.push(2 * NEAR, 2);
        let mut out = Vec::new();
        assert_eq!(q.pop_round(&mut out), Some(0));
        assert_eq!(out, vec![0]);
        assert_eq!(q.pop_round(&mut out), Some(NEAR));
        assert_eq!(out, vec![1]);
        assert_eq!(q.pop_round(&mut out), Some(2 * NEAR));
        assert_eq!(out, vec![2]);
        assert_eq!(q.pop_round(&mut out), None);
    }

    #[test]
    fn lossy_links_drop_deliverable_messages() {
        use crate::fault::FaultModel;
        // All three nodes awake together in round 5: cleanly, 4 copies
        // deliver. With loss = 1 every deliverable copy is faulted away.
        let mk = || (0..3).map(|_| Sleeper { wake_at: 5, phase: 0, heard: 0 }).collect();
        let g = generators::path(3);
        let cfg = SimConfig {
            fault: FaultModel { loss: 1.0, ..FaultModel::none() },
            ..SimConfig::seeded(9)
        };
        let report = Simulator::new(g.clone(), mk(), cfg).run().unwrap();
        assert_eq!(report.outputs, vec![0, 0, 0]);
        assert_eq!(report.metrics.messages_delivered, 0);
        assert_eq!(report.metrics.messages_faulted, 4);
        assert_eq!(report.metrics.messages_lost, 0);

        // loss = 0 leaves the run bit-for-bit clean, faulted counter and all.
        let clean = Simulator::new(g, mk(), SimConfig::seeded(9)).run().unwrap();
        assert_eq!(clean.outputs, vec![1, 2, 1]);
        assert_eq!(clean.metrics.messages_faulted, 0);
    }

    #[test]
    fn partial_loss_is_deterministic() {
        use crate::fault::FaultModel;
        let run = |seed: u64| {
            let g = generators::gnp(40, 0.3, &mut {
                use rand::SeedableRng;
                rand::rngs::SmallRng::seed_from_u64(1)
            });
            let nodes = (0..g.n()).map(|_| Sleeper { wake_at: 5, phase: 0, heard: 0 }).collect();
            let cfg = SimConfig {
                fault: FaultModel { loss: 0.5, ..FaultModel::none() },
                ..SimConfig::seeded(seed)
            };
            Simulator::new(g, nodes, cfg).run().unwrap()
        };
        let a = run(3);
        let b = run(3);
        assert_eq!(a.outputs, b.outputs, "same seed must reproduce identical fault draws");
        assert_eq!(a.metrics.messages_faulted, b.metrics.messages_faulted);
        assert!(a.metrics.messages_faulted > 0, "loss 0.5 must drop something");
        assert!(a.metrics.messages_delivered > 0, "loss 0.5 must deliver something");
        let c = run(4);
        assert_ne!(
            a.metrics.messages_faulted, c.metrics.messages_faulted,
            "different seeds draw different fault streams (overwhelmingly likely)"
        );
    }

    #[test]
    fn crashes_stop_nodes_and_collect_aborted_outputs() {
        use crate::fault::FaultModel;
        // crash = 1 in window [0, 0]: every node crashes in round 0,
        // before executing anything.
        let g = generators::path(4);
        let nodes = (0..4).map(|v| Flood::start(v == 0)).collect();
        let cfg = SimConfig {
            fault: FaultModel { crash: 1.0, crash_from: 0, crash_until: 0, ..FaultModel::none() },
            ..SimConfig::seeded(2)
        };
        let report = Simulator::new(g, nodes, cfg).run().unwrap();
        assert_eq!(report.metrics.crashed_count(), 4);
        assert_eq!(report.metrics.alive(), vec![false; 4]);
        assert_eq!(report.metrics.crashed_at, vec![Some(0); 4]);
        // Outputs are the initial states: only the seeded node has the token.
        assert_eq!(report.outputs, vec![Some(0), None, None, None]);
        assert_eq!(report.metrics.awake_rounds, vec![0; 4]);
        assert_eq!(report.metrics.messages_sent, 0);
    }

    #[test]
    fn crash_window_limits_the_exposure() {
        use crate::fault::FaultModel;
        // Window [1, ∞) with crash = 1: round 0 executes cleanly, every
        // node that wakes again afterwards crashes then.
        let g = generators::path(3);
        let nodes =
            (0..3).map(|v| Sleeper { wake_at: 10 * (v + 1) as Round, phase: 0, heard: 0 }).collect();
        let cfg = SimConfig {
            fault: FaultModel { crash: 1.0, crash_from: 1, ..FaultModel::none() },
            ..SimConfig::seeded(2)
        };
        let report = Simulator::new(g, nodes, cfg).run().unwrap();
        assert_eq!(report.metrics.crashed_at, vec![Some(10), Some(20), Some(30)]);
        // Everyone executed round 0 (awake once) and died at their wake round.
        assert_eq!(report.metrics.awake_rounds, vec![1, 1, 1]);
    }

    #[test]
    fn wake_jitter_staggers_the_start() {
        use crate::fault::FaultModel;
        let g = generators::path(6);
        let mk = || (0..6).map(|_| Sleeper { wake_at: 100, phase: 0, heard: 0 }).collect::<Vec<_>>();
        let cfg = SimConfig {
            record_wake_history: true,
            fault: FaultModel { wake_jitter: 8, ..FaultModel::none() },
            ..SimConfig::seeded(7)
        };
        let report = Simulator::new(g.clone(), mk(), cfg.clone()).run().unwrap();
        let h = report.metrics.wake_history.as_ref().unwrap();
        let starts: Vec<Round> = h.iter().map(|w| w[0]).collect();
        assert!(starts.iter().all(|&s| s <= 8), "jitter must stay in 0..=8: {starts:?}");
        assert!(
            starts.iter().any(|&s| s > 0),
            "with jitter 8 over 6 nodes some node starts late (overwhelmingly likely): {starts:?}"
        );
        // Deterministic in the seed.
        let again = Simulator::new(g, mk(), cfg).run().unwrap();
        assert_eq!(again.metrics.wake_history.as_ref().unwrap(), h);
    }

    #[test]
    fn sleep_forever_deadlocks_once_schedule_drains() {
        /// Node 0 terminates immediately; node 1 parks forever.
        struct Parker {
            parks: bool,
        }
        impl Protocol for Parker {
            type Msg = ();
            type Output = ();
            fn send(&mut self, _: &mut NodeCtx) -> Outbox<()> {
                Outbox::Silent
            }
            fn receive(&mut self, _: &mut NodeCtx, _: &[(Port, ())]) -> Action {
                if self.parks {
                    Action::SleepUntil(SLEEP_FOREVER)
                } else {
                    Action::Terminate
                }
            }
            fn output(&self) {}
        }

        let g = generators::path(2);
        let nodes = vec![Parker { parks: false }, Parker { parks: true }];
        let err = Simulator::new(g, nodes, SimConfig::default()).run().unwrap_err();
        assert_eq!(err, SimError::Deadlock { sleeping_forever: 1 });
    }
}
