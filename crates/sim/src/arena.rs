//! Type-erased scratch storage for heterogeneous protocols.
//!
//! [`SimScratch`] is parameterized by the protocol's message type, which
//! is exactly right for a worker that runs one protocol family — but a
//! worker driving *many* protocol families through a dynamic dispatch
//! layer (e.g. `analysis`'s algorithm registry) cannot name all the
//! message types up front. A [`ScratchArena`] erases them: it owns one
//! lazily-created [`SimScratch<M>`] per message type `M`, keyed by
//! [`TypeId`], so an object-safe runner trait can thread a single
//! `&mut ScratchArena` through dynamic calls and each concrete runner
//! recovers its typed scratch with [`ScratchArena::of`] (or, one level
//! higher, [`Simulator::run_in`]).
//!
//! Reuse is exactly as safe as with a typed scratch: every run resets
//! the scratch it draws, so results never depend on what ran before.

use crate::engine::SimScratch;
use std::any::{Any, TypeId};

/// A heterogeneous collection of [`SimScratch`]es, one per message type.
///
/// Keep one arena per worker thread and pass it to every run; mailbox,
/// RNG-table, and wake-bucket allocations are then shared across all
/// runs of the same protocol family, whatever order families run in.
///
/// ```
/// use sleeping_congest::ScratchArena;
///
/// let mut arena = ScratchArena::new();
/// let a: *const _ = arena.of::<u32>();
/// let b: *const _ = arena.of::<u32>(); // same slot, reused
/// assert_eq!(a, b);
/// arena.of::<(u8, u64)>(); // a second, independently-typed slot
/// assert_eq!(arena.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct ScratchArena {
    /// Linear map from message `TypeId` to a boxed `SimScratch<M>`. The
    /// number of distinct message types in a process is tiny (one per
    /// protocol family), so a `Vec` beats a `HashMap` here.
    slots: Vec<(TypeId, Box<dyn Any + Send>)>,
}

impl ScratchArena {
    /// An arena with no scratches allocated yet.
    pub fn new() -> ScratchArena {
        ScratchArena::default()
    }

    /// The typed scratch for message type `M`, created empty on first
    /// use and reused afterwards.
    pub fn of<M: Send + 'static>(&mut self) -> &mut SimScratch<M> {
        let id = TypeId::of::<M>();
        let idx = match self.slots.iter().position(|(t, _)| *t == id) {
            Some(i) => i,
            None => {
                self.slots.push((id, Box::new(SimScratch::<M>::new())));
                self.slots.len() - 1
            }
        };
        self.slots[idx]
            .1
            .downcast_mut::<SimScratch<M>>()
            .expect("arena slot keyed by TypeId must hold the matching scratch type")
    }

    /// Number of distinct message types that have drawn a scratch.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no scratch has been drawn yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimConfig, Simulator};
    use crate::protocol::{Action, NodeCtx, Outbox, Protocol};
    use graphgen::{generators, Port};

    struct Echo;
    impl Protocol for Echo {
        type Msg = u32;
        type Output = usize;
        fn send(&mut self, _: &mut NodeCtx) -> Outbox<u32> {
            Outbox::Broadcast(7)
        }
        fn receive(&mut self, _: &mut NodeCtx, inbox: &[(Port, u32)]) -> Action {
            let _ = inbox;
            Action::Terminate
        }
        fn output(&self) -> usize {
            1
        }
    }

    #[test]
    fn run_in_reuses_the_typed_slot_and_matches_fresh_runs() {
        let mut arena = ScratchArena::new();
        let run = |arena: &mut ScratchArena| {
            let g = generators::cycle(6);
            let nodes = (0..6).map(|_| Echo).collect();
            Simulator::new(g, nodes, SimConfig::seeded(3)).run_in(arena).unwrap()
        };
        let first = run(&mut arena);
        let again = run(&mut arena);
        assert_eq!(arena.len(), 1, "same message type must share one slot");
        assert_eq!(first.outputs, again.outputs);
        assert_eq!(first.metrics.messages_sent, again.metrics.messages_sent);

        let g = generators::cycle(6);
        let fresh = Simulator::new(g, (0..6).map(|_| Echo).collect(), SimConfig::seeded(3))
            .run()
            .unwrap();
        assert_eq!(fresh.outputs, again.outputs);
    }
}
