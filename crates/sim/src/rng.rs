//! Deterministic per-node randomness.
//!
//! Every node's private RNG is derived from the run seed and the node
//! index by a SplitMix64 mix, so a run is fully reproducible from
//! `(graph, protocols, SimConfig)` and statistically independent across
//! nodes.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 output function: a high-quality 64-bit mixer.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The RNG assigned to `node` in a run with the given master `seed`.
pub fn node_rng(seed: u64, node: u32) -> SmallRng {
    SmallRng::seed_from_u64(splitmix64(seed ^ splitmix64(node as u64 + 1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_distinct() {
        let a: u64 = node_rng(7, 0).gen();
        let b: u64 = node_rng(7, 0).gen();
        assert_eq!(a, b);
        let c: u64 = node_rng(7, 1).gen();
        assert_ne!(a, c);
        let d: u64 = node_rng(8, 0).gen();
        assert_ne!(a, d);
    }

    #[test]
    fn splitmix_reference_values() {
        // First outputs of SplitMix64 seeded with 0 and 1 (well-known
        // reference values for the Vigna implementation).
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
    }
}
