//! Deterministic per-node randomness.
//!
//! Every node's private RNG is derived from the run seed and the node
//! index by a SplitMix64 mix, so a run is fully reproducible from
//! `(graph, protocols, SimConfig)` and statistically independent across
//! nodes.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 output function: a high-quality 64-bit mixer.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The RNG assigned to `node` in a run with the given master `seed`.
pub fn node_rng(seed: u64, node: u32) -> SmallRng {
    SmallRng::seed_from_u64(splitmix64(seed ^ splitmix64(node as u64 + 1)))
}

/// Domain salt for message-loss draws (ASCII `"LOSS"`).
pub const FAULT_LOSS: u64 = 0x4C4F_5353;
/// Domain salt for crash draws (ASCII `"CRSH"`).
pub const FAULT_CRASH: u64 = 0x4352_5348;
/// Domain salt for wake-jitter draws (ASCII `"WAKE"`).
pub const FAULT_WAKE: u64 = 0x5741_4B45;

/// One draw from the dedicated fault RNG stream.
///
/// A *stateless* pure function of `(seed, domain, site, round)`: every
/// fault decision is keyed by where and when it happens rather than by
/// draw order, so results are independent of scheduling, thread count,
/// and whether other fault knobs are active — and the per-node protocol
/// RNGs ([`node_rng`]) are never perturbed. The `domain` salt
/// ([`FAULT_LOSS`], [`FAULT_CRASH`], [`FAULT_WAKE`]) separates the
/// streams of the different fault kinds.
pub fn fault_draw(seed: u64, domain: u64, site: u64, round: u64) -> u64 {
    let h = splitmix64(seed ^ splitmix64(domain));
    let h = splitmix64(h ^ splitmix64(site.wrapping_add(1)));
    splitmix64(h ^ splitmix64(round.wrapping_add(1)))
}

/// [`fault_draw`] mapped to a uniform `f64` in `[0, 1)` (53-bit
/// mantissa construction). An event with probability `p` fires iff
/// `fault_unit(..) < p`, so `p = 0` never fires and `p = 1` always does.
pub fn fault_unit(seed: u64, domain: u64, site: u64, round: u64) -> f64 {
    (fault_draw(seed, domain, site, round) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_distinct() {
        let a: u64 = node_rng(7, 0).gen();
        let b: u64 = node_rng(7, 0).gen();
        assert_eq!(a, b);
        let c: u64 = node_rng(7, 1).gen();
        assert_ne!(a, c);
        let d: u64 = node_rng(8, 0).gen();
        assert_ne!(a, d);
    }

    #[test]
    fn fault_stream_is_pure_and_separated() {
        // Pure function: same key, same draw.
        assert_eq!(fault_draw(7, FAULT_LOSS, 3, 9), fault_draw(7, FAULT_LOSS, 3, 9));
        // Every key component matters.
        assert_ne!(fault_draw(7, FAULT_LOSS, 3, 9), fault_draw(8, FAULT_LOSS, 3, 9));
        assert_ne!(fault_draw(7, FAULT_LOSS, 3, 9), fault_draw(7, FAULT_CRASH, 3, 9));
        assert_ne!(fault_draw(7, FAULT_LOSS, 3, 9), fault_draw(7, FAULT_LOSS, 4, 9));
        assert_ne!(fault_draw(7, FAULT_LOSS, 3, 9), fault_draw(7, FAULT_LOSS, 3, 10));
        // Unit draws land in [0, 1) and respect the threshold convention.
        for site in 0..64 {
            let u = fault_unit(42, FAULT_WAKE, site, 0);
            assert!((0.0..1.0).contains(&u), "unit draw {u} out of range");
            assert!(u < 1.0); // p = 1 always fires
        }
    }

    #[test]
    fn fault_unit_is_roughly_uniform() {
        // 10_000 draws: the mean of U[0,1) concentrates near 0.5.
        let n = 10_000;
        let mean = (0..n).map(|i| fault_unit(1, FAULT_LOSS, i, 0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn splitmix_reference_values() {
        // First outputs of SplitMix64 seeded with 0 and 1 (well-known
        // reference values for the Vigna implementation).
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
    }
}
