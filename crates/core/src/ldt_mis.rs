//! `LDT-MIS` — LFMIS of a *uniformly random* order in `O(log n′)` awake
//! rounds (paper §5.3, Lemma 11; round-efficient variant Corollary 12).
//!
//! The pipeline, run independently by every connected component of the
//! participating subgraph:
//!
//! 1. **Construct** an LDT (strategy selectable: the awake-efficient
//!    [`ldt::ConstructAwake`] for Lemma 11, or the deterministic
//!    [`ldt::ConstructRound`] for Corollary 12's `LDT-MIS-ROUND`).
//! 2. **Rank** the component: every node learns its rank and the exact
//!    component size `n″` (`O(1)` awake rounds).
//! 3. **Permutation broadcast**: the root draws a uniformly random
//!    permutation of `[1, n″]` and streams it down the tree in
//!    `O(log I)`-bit chunks (`O(n″ log n″ / log I)` awake rounds); node
//!    with rank `r` takes `π(r)` as its fresh ID.
//! 4. **`VT-MIS`** over the fresh IDs (`O(log n″)` awake rounds).
//!
//! Because the fresh IDs realize a uniformly random order, the output is
//! the LFMIS of a uniformly random permutation of the component — the
//! property Awake-MIS's composability argument needs.
//!
//! Stages 2–4 are scheduled relative to the round in which the
//! component's construction *completed* (all component nodes learn the
//! completing phase simultaneously), so faster components finish early;
//! [`round_budget`] still bounds the whole pipeline for any component.

use crate::state::{MisMsg, MisState};
use crate::vt_mis::VtMis;
use graphgen::Port;
use ldt::construct::{awake_phase_len, awake_round_budget, ConstructAwake, ConstructParams};
use ldt::construct_round::{round_phase_len, round_round_budget, ConstructRound};
use ldt::ops::{broadcast_len, ranking_len, LdtRanking, RankResult};
use ldt::{ConstructMsg, LdtOutput, OpsMsg};
use rand::seq::SliceRandom;
use sleeping_congest::{bits_for_value, MessageSize, NodeCtx, Outbox, Round, SubAction, SubProtocol};

/// Which LDT construction the pipeline uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LdtStrategy {
    /// Awake-efficient construction (`LDT-MIS`, Lemma 11 / Theorem 13).
    #[default]
    Awake,
    /// Round-efficient deterministic construction (`LDT-MIS-ROUND`,
    /// Corollary 12 / Corollary 14).
    Round,
}

/// Parameters shared by every participant.
#[derive(Debug, Clone, Copy)]
pub struct LdtMisParams {
    /// This node's unique ID in `[1, id_upper]`.
    pub my_id: u64,
    /// Common ID upper bound `I` (polynomial in the network size).
    pub id_upper: u64,
    /// Common upper bound on component sizes.
    pub k: u32,
    /// Construction strategy.
    pub strategy: LdtStrategy,
}

/// A chunk of the root's permutation (fresh IDs for a rank interval).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PermChunk {
    /// `entries[t]` is the fresh ID of rank `start_rank + t`.
    pub entries: Vec<u32>,
}

impl MessageSize for PermChunk {
    fn bits(&self) -> usize {
        8 + self.entries.iter().map(|&e| bits_for_value(e as u64)).sum::<usize>()
    }
}

/// Wire messages of the `LDT-MIS` pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LdtMisMsg {
    /// Construction stage.
    C(ConstructMsg),
    /// Ranking stage.
    R(OpsMsg<()>),
    /// Permutation broadcast stage.
    P(PermChunk),
    /// `VT-MIS` stage.
    V(MisMsg),
}

impl MessageSize for LdtMisMsg {
    fn bits(&self) -> usize {
        2 + match self {
            LdtMisMsg::C(m) => m.bits(),
            LdtMisMsg::R(m) => m.bits(),
            LdtMisMsg::P(m) => m.bits(),
            LdtMisMsg::V(m) => m.bits(),
        }
    }
}

/// Fresh IDs per permutation chunk, given the component size and the
/// `O(log I)`-bit message budget.
pub fn entries_per_chunk(total: u64, id_upper: u64) -> u64 {
    let entry_bits = bits_for_value(total).max(1) as u64;
    let budget_bits = (bits_for_value(id_upper) as u64).max(entry_bits);
    (budget_bits / entry_bits).max(1)
}

/// Number of permutation chunks for a component of `total` nodes.
pub fn chunk_count(total: u64, id_upper: u64) -> u64 {
    total.div_ceil(entries_per_chunk(total, id_upper))
}

/// Local-round budget of the construction stage.
pub fn construct_budget(k: u32, id_upper: u64, strategy: LdtStrategy) -> Round {
    match strategy {
        LdtStrategy::Awake => awake_round_budget(k),
        LdtStrategy::Round => round_round_budget(k, id_upper),
    }
}

/// Local-round budget of the whole `LDT-MIS` pipeline (worst case over
/// components of at most `k` nodes).
pub fn round_budget(k: u32, id_upper: u64, strategy: LdtStrategy) -> Round {
    construct_budget(k, id_upper, strategy)
        + ranking_len(k)
        + chunk_count(k as u64, id_upper) * broadcast_len(k)
        + k as Round
        + 2
}

/// One node's result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LdtMisOutput {
    /// Final decision (`Undecided` only when `failed`).
    pub state: MisState,
    /// Whether any stage failed (construction budget exhausted, ID
    /// collision, …) — a Monte Carlo failure event.
    pub failed: bool,
    /// Exact size of this node's component (diagnostic).
    pub comp_size: u64,
}

/// Construction stage dispatcher.
#[derive(Debug, Clone)]
enum ConstructSub {
    Awake(ConstructAwake),
    Round(ConstructRound),
}

impl ConstructSub {
    fn send(&mut self, lr: Round, ctx: &mut NodeCtx) -> Outbox<ConstructMsg> {
        match self {
            ConstructSub::Awake(c) => c.send(lr, ctx),
            ConstructSub::Round(c) => c.send(lr, ctx),
        }
    }
    fn receive(&mut self, lr: Round, ctx: &mut NodeCtx, inbox: &[(Port, ConstructMsg)]) -> SubAction {
        match self {
            ConstructSub::Awake(c) => c.receive(lr, ctx, inbox),
            ConstructSub::Round(c) => c.receive(lr, ctx, inbox),
        }
    }
    fn output(&self) -> LdtOutput {
        match self {
            ConstructSub::Awake(c) => c.output(),
            ConstructSub::Round(c) => c.output(),
        }
    }
}

#[derive(Debug, Clone)]
enum Stage {
    Construct,
    Rank { r0: Round },
    Perm { p0: Round },
    Vt { v0: Round },
    Finished,
}

/// The `LDT-MIS` subprotocol (one instance per participating node).
#[derive(Debug, Clone)]
pub struct LdtMis {
    params: LdtMisParams,
    construct: ConstructSub,
    stage: Stage,
    ldt: Option<LdtOutput>,
    rank_sub: Option<LdtRanking>,
    rank: Option<RankResult>,
    /// Root only: the permutation, chunked.
    chunks: Vec<Vec<u32>>,
    /// Chunk received this stage, pending forwarding to children.
    perm_buf: Option<Vec<u32>>,
    perm_agenda: Vec<Round>,
    my_vt_id: Option<u64>,
    vt: Option<VtMis>,
    state: MisState,
    failed: bool,
    finished: bool,
    comp_size: u64,
}

impl LdtMis {
    /// Creates the pipeline participant for one node.
    pub fn new(params: LdtMisParams) -> LdtMis {
        let cp = ConstructParams { my_id: params.my_id, id_upper: params.id_upper, k: params.k };
        let construct = match params.strategy {
            LdtStrategy::Awake => ConstructSub::Awake(ConstructAwake::new(cp)),
            LdtStrategy::Round => ConstructSub::Round(ConstructRound::new(cp)),
        };
        LdtMis {
            params,
            construct,
            stage: Stage::Construct,
            ldt: None,
            rank_sub: None,
            rank: None,
            chunks: Vec::new(),
            perm_buf: None,
            perm_agenda: Vec::new(),
            my_vt_id: None,
            vt: None,
            state: MisState::Undecided,
            failed: false,
            finished: false,
            comp_size: 0,
        }
    }

    fn phase_len(&self) -> Round {
        match self.params.strategy {
            LdtStrategy::Awake => awake_phase_len(self.params.k),
            LdtStrategy::Round => round_phase_len(self.params.k, self.params.id_upper),
        }
    }

    fn fail(&mut self) -> SubAction {
        if std::env::var_os("LDT_MIS_DEBUG").is_some() {
            eprintln!("LdtMis FAIL at stage {:?} (id {})", self.stage, self.params.my_id);
        }
        self.failed = true;
        self.finished = true;
        self.stage = Stage::Finished;
        SubAction::Done
    }

    fn finish(&mut self, state: MisState) -> SubAction {
        self.state = state;
        self.finished = true;
        self.stage = Stage::Finished;
        SubAction::Done
    }

    /// Transition after construction completes.
    fn after_construct(&mut self) -> SubAction {
        let out = self.construct.output();
        if !out.ok {
            self.ldt = Some(out);
            return self.fail();
        }
        if out.ports.iter().all(|pi| !pi.participant) {
            // Isolated participant: trivially in the MIS.
            self.comp_size = 1;
            self.ldt = Some(out);
            return self.finish(MisState::InMis);
        }
        let r0 = 1 + out.phases_used * self.phase_len();
        let rank_sub = LdtRanking::new(self.params.k, out.tree.clone());
        let first = r0 + rank_sub.first_wake();
        self.ldt = Some(out);
        self.rank_sub = Some(rank_sub);
        self.stage = Stage::Rank { r0 };
        SubAction::SleepUntil(first)
    }

    /// Transition after ranking completes.
    fn after_rank(&mut self, r0: Round, ctx: &mut NodeCtx) -> SubAction {
        let Some(rank) = self.rank_sub.as_ref().expect("rank sub exists").try_output() else {
            return self.fail(); // rank wave never reached us (lost message)
        };
        self.rank = Some(rank);
        self.comp_size = rank.total;
        let p0 = r0 + ranking_len(self.params.k);
        let tree = &self.ldt.as_ref().expect("ldt exists").tree;
        if tree.is_root() {
            // Draw the uniformly random permutation and chunk it.
            let mut perm: Vec<u32> = (1..=rank.total as u32).collect();
            perm.shuffle(ctx.rng);
            let epc = entries_per_chunk(rank.total, self.params.id_upper) as usize;
            self.chunks = perm.chunks(epc).map(|c| c.to_vec()).collect();
            self.my_vt_id = Some(perm[rank.rank as usize - 1] as u64);
        }
        // Wake plan for the permutation stage.
        let n_chunks = chunk_count(rank.total, self.params.id_upper);
        let len = broadcast_len(self.params.k);
        let d = tree.depth as Round;
        let mut agenda = Vec::new();
        for j in 0..n_chunks {
            let base = p0 + j * len;
            if tree.is_root() {
                agenda.push(base);
            } else {
                agenda.push(base + d - 1);
                if !tree.children_ports.is_empty() {
                    agenda.push(base + d);
                }
            }
        }
        agenda.sort_unstable();
        let first = agenda[0];
        self.perm_agenda = agenda;
        self.stage = Stage::Perm { p0 };
        SubAction::SleepUntil(first)
    }

    /// Transition after the permutation stage completes.
    fn after_perm(&mut self, p0: Round, lr: Round) -> SubAction {
        let rank = self.rank.expect("rank set");
        let Some(id) = self.my_vt_id else {
            return self.fail(); // permutation never reached us
        };
        let v0 = p0 + chunk_count(rank.total, self.params.id_upper) * broadcast_len(self.params.k);
        let live: Vec<Port> = self
            .ldt
            .as_ref()
            .expect("ldt exists")
            .ports
            .iter()
            .enumerate()
            .filter(|(_, pi)| pi.participant)
            .map(|(p, _)| p as Port)
            .collect();
        let vt = VtMis::new(id, rank.total, Some(live));
        let first = v0 + vt.first_wake();
        self.vt = Some(vt);
        self.stage = Stage::Vt { v0 };
        debug_assert!(first > lr, "VT stage must start after the permutation stage");
        SubAction::SleepUntil(first)
    }
}

impl SubProtocol for LdtMis {
    type Msg = LdtMisMsg;
    type Output = LdtMisOutput;

    fn send(&mut self, lr: Round, ctx: &mut NodeCtx) -> Outbox<LdtMisMsg> {
        match &mut self.stage {
            Stage::Construct => wrap(self.construct.send(lr, ctx), LdtMisMsg::C),
            Stage::Rank { r0 } => {
                let local = lr - *r0;
                let sub = self.rank_sub.as_mut().expect("rank sub exists");
                wrap(sub.send(local, ctx), LdtMisMsg::R)
            }
            Stage::Perm { p0 } => {
                let len = broadcast_len(self.params.k);
                let j = ((lr - *p0) / len) as usize;
                let off = (lr - *p0) % len;
                let tree = &self.ldt.as_ref().expect("ldt exists").tree;
                let sending = if tree.is_root() { off == 0 } else { off == tree.depth as Round };
                if sending && !tree.children_ports.is_empty() {
                    let payload = if tree.is_root() {
                        self.chunks.get(j).cloned()
                    } else {
                        self.perm_buf.take()
                    };
                    if let Some(entries) = payload {
                        let msg = LdtMisMsg::P(PermChunk { entries });
                        return Outbox::Unicast(
                            tree.children_ports.iter().map(|&p| (p, msg.clone())).collect(),
                        );
                    }
                }
                Outbox::Silent
            }
            Stage::Vt { v0 } => {
                let local = lr - *v0;
                let sub = self.vt.as_mut().expect("vt exists");
                wrap(sub.send(local, ctx), LdtMisMsg::V)
            }
            Stage::Finished => Outbox::Silent,
        }
    }

    fn receive(&mut self, lr: Round, ctx: &mut NodeCtx, inbox: &[(Port, LdtMisMsg)]) -> SubAction {
        match self.stage.clone() {
            Stage::Construct => {
                let sub_inbox: Vec<(Port, ConstructMsg)> = inbox
                    .iter()
                    .filter_map(|(p, m)| match m {
                        LdtMisMsg::C(c) => Some((*p, c.clone())),
                        _ => None,
                    })
                    .collect();
                match self.construct.receive(lr, ctx, &sub_inbox) {
                    SubAction::Done => self.after_construct(),
                    a => a,
                }
            }
            Stage::Rank { r0 } => {
                let sub_inbox: Vec<(Port, OpsMsg<()>)> = inbox
                    .iter()
                    .filter_map(|(p, m)| match m {
                        LdtMisMsg::R(r) => Some((*p, r.clone())),
                        _ => None,
                    })
                    .collect();
                let action = {
                    let sub = self.rank_sub.as_mut().expect("rank sub exists");
                    sub.receive(lr - r0, ctx, &sub_inbox)
                };
                match action {
                    SubAction::Done => self.after_rank(r0, ctx),
                    SubAction::SleepUntil(local) => SubAction::SleepUntil(r0 + local),
                    SubAction::Continue => SubAction::Continue,
                }
            }
            Stage::Perm { p0 } => {
                let len = broadcast_len(self.params.k);
                let j = (lr - p0) / len;
                let rank = self.rank.expect("rank set");
                for (_, m) in inbox {
                    if let LdtMisMsg::P(chunk) = m {
                        let epc = entries_per_chunk(rank.total, self.params.id_upper);
                        let lo = j * epc + 1; // first rank covered by chunk j
                        if rank.rank >= lo && rank.rank < lo + chunk.entries.len() as u64 {
                            self.my_vt_id = Some(chunk.entries[(rank.rank - lo) as usize] as u64);
                        }
                        self.perm_buf = Some(chunk.entries.clone());
                    }
                }
                match self.perm_agenda.iter().find(|&&w| w > lr) {
                    Some(&w) => SubAction::SleepUntil(w),
                    None => self.after_perm(p0, lr),
                }
            }
            Stage::Vt { v0 } => {
                let sub_inbox: Vec<(Port, MisMsg)> = inbox
                    .iter()
                    .filter_map(|(p, m)| match m {
                        LdtMisMsg::V(v) => Some((*p, *v)),
                        _ => None,
                    })
                    .collect();
                let action = {
                    let sub = self.vt.as_mut().expect("vt exists");
                    sub.receive(lr - v0, ctx, &sub_inbox)
                };
                match action {
                    SubAction::Done => {
                        let s = self.vt.as_ref().expect("vt exists").output();
                        self.finish(s)
                    }
                    SubAction::SleepUntil(local) => SubAction::SleepUntil(v0 + local),
                    SubAction::Continue => SubAction::Continue,
                }
            }
            Stage::Finished => SubAction::Done,
        }
    }

    fn output(&self) -> LdtMisOutput {
        assert!(self.finished, "LDT-MIS output read before completion");
        LdtMisOutput { state: self.state, failed: self.failed, comp_size: self.comp_size }
    }

    fn aborted_output(&self) -> LdtMisOutput {
        LdtMisOutput { state: self.state, failed: self.failed, comp_size: self.comp_size }
    }
}

fn wrap<M, F: Fn(M) -> LdtMisMsg>(out: Outbox<M>, f: F) -> Outbox<LdtMisMsg> {
    match out {
        Outbox::Silent => Outbox::Silent,
        Outbox::Broadcast(m) => Outbox::Broadcast(f(m)),
        Outbox::Unicast(v) => Outbox::Unicast(v.into_iter().map(|(p, m)| (p, f(m))).collect()),
    }
}
