//! Distributed MIS algorithms in the **sleeping model** — the primary
//! contribution of *"Distributed MIS in O(log log n) Awake Complexity"*
//! (Dufoulon–Moses–Pandurangan, PODC 2023), plus the baselines it is
//! measured against and the verifiers that check every output.
//!
//! # Algorithms
//!
//! | Algorithm | Paper | Awake complexity | Round complexity |
//! |-----------|-------|------------------|------------------|
//! | [`VtMis`] (`VT-MIS`) | Lemma 10 | `O(log I)` | `O(I)` |
//! | [`LdtMis`] (`LDT-MIS`) | Lemma 11 | `O(log n′ + n′ log n′/log I)` | `O(n′ · polylog)` |
//! | [`AwakeMis`] (`Awake-MIS`) | **Theorem 13** | `O(log log n)` | `O(log⁷ n · log log n)` |
//! | [`AwakeMis::corollary14`] | Corollary 14 | `O(log log n · log* n)` | `O(log³ n · log log n · log* n)` |
//! | [`NaiveGreedy`] | §5.3 baseline | `Θ(I)` | `Θ(I)` |
//! | [`Luby`] | classical baseline | `Θ(log n)` | `Θ(log n)` |
//! | [`NaMis`] (`NA-MIS`) | CGP, arXiv:2006.07449 | `O(1)` **node-averaged**, `Θ(log n)` worst case | `Θ(log n)` |
//! | [`AvgMis`] (`GP-Avg-MIS`) | GP, arXiv:2305.06120 | low average, worst case capped `2·balance + O(log N)` | `O(N³)` |
//! | [`LeMis`] (`LE-MIS`) | GP, arXiv:2305.11639 | `≈ epochs·(bits + 2)` — the **energy** dial | `≈ epochs·2^bits` — the **time** dial |
//!
//! The `NA-MIS`/`GP-Avg-MIS` rows optimize the *node-averaged* awake
//! complexity `(1/n)·Σ_v A_v` instead of (or alongside) the worst case —
//! see [`na_mis`] and [`avg_mis`] for the two measures and their
//! trade-off. `LE-MIS` ([`low_energy_mis`]) makes the *time vs energy*
//! trade-off itself the tunable quantity: sweeping its `bits` knob traces
//! the frontier between round complexity and awake complexity.
//!
//! # Example: Awake-MIS on a random graph
//!
//! ```
//! use awake_mis_core::{AwakeMis, check_mis};
//! use graphgen::generators;
//! use rand::SeedableRng;
//! use sleeping_congest::{SimConfig, Simulator};
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
//! let g = generators::gnp(128, 0.05, &mut rng);
//! let nodes = (0..g.n()).map(|_| AwakeMis::theorem13()).collect();
//! let report = Simulator::new(g.clone(), nodes, SimConfig::seeded(7)).run()?;
//! let states: Vec<_> = report.outputs.iter().map(|o| o.state).collect();
//! check_mis(&g, &states).expect("a valid MIS");
//! // The point of the paper: every node was awake only O(log log n)
//! // rounds even though the algorithm spans millions of rounds.
//! assert!(report.metrics.awake_complexity() < 100);
//! # Ok::<(), sleeping_congest::SimError>(())
//! ```

pub mod avg_mis;
pub mod awake_mis;
pub mod coloring;
pub mod greedy;
pub mod incremental;
pub mod ldt_mis;
pub mod low_energy_mis;
pub mod luby;
pub mod matching;
pub mod na_mis;
pub mod naive;
pub mod state;
pub mod verify;
pub mod vt_mis;

pub use avg_mis::{AvgMis, AvgMisConfig, AvgMisOutput, AvgMsg};
pub use awake_mis::{derive_params, AwakeMis, AwakeMisConfig, AwakeMisOutput, DerivedParams};
pub use coloring::{coloring, colors_used, is_proper_coloring, ColoringResult};
pub use incremental::{repair, RepairConfig, RepairOutcome, SubSolution};
pub use ldt_mis::{LdtMis, LdtMisOutput, LdtMisParams, LdtStrategy};
pub use low_energy_mis::{LeMis, LeMisConfig, LeMisOutput, LeMsg, LE_MAX_BITS};
pub use luby::Luby;
pub use na_mis::{NaMis, NaMisConfig, NaMsg};
pub use matching::{is_matching, is_maximal_matching, maximal_matching, na_maximal_matching, MatchingResult};
pub use naive::NaiveGreedy;
pub use state::{MisMsg, MisState};
pub use verify::{
    check_maximal, check_mis, check_mis_survivors, is_independent, is_lfmis, is_maximal, is_mis,
    states_to_set,
};
pub use vt_mis::VtMis;
