//! `VT-MIS` — lexicographically-first MIS in `O(log I)` awake rounds
//! (paper §5.3, Lemma 10).
//!
//! The naive distributed greedy runs for `I` rounds with everyone awake;
//! node `r` joins the MIS in round `r` unless a neighbor already joined.
//! `VT-MIS` keeps the `I`-round structure but wakes node `k` **only** in
//! the rounds of its virtual-binary-tree communication set
//! `S_k([1, I])` (see the [`vtree`] crate). Observation 5 guarantees
//! that for any neighbors `k < k′` there is a common awake round in
//! `(k, k′]`, so `k`'s decision always reaches `k′` before `k′` decides —
//! the output is *exactly* the LFMIS of the ID order, while every node
//! is awake only `O(log I)` rounds.

use crate::state::{MisMsg, MisState};
use graphgen::Port;
use sleeping_congest::{NodeCtx, Outbox, Round, SubAction, SubProtocol};

/// The `VT-MIS` subprotocol for one node.
///
/// Local round `lr` corresponds to paper round `r = lr + 1 ∈ [1, I]`.
#[derive(Debug, Clone)]
pub struct VtMis {
    id: u64,
    state: MisState,
    /// Local rounds this node wakes in (ascending).
    wakes: Vec<Round>,
    /// If set, send only through these ports (the participating
    /// neighbors); otherwise broadcast on all ports.
    live_ports: Option<Vec<Port>>,
    finished: bool,
}

impl VtMis {
    /// Creates the subprotocol for the node with `id ∈ [1, i_max]`.
    ///
    /// `live_ports` restricts sends to participating neighbors (used
    /// inside `LDT-MIS`); pass `None` to broadcast on every port.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in `[1, i_max]`.
    pub fn new(id: u64, i_max: u64, live_ports: Option<Vec<Port>>) -> VtMis {
        let wakes: Vec<Round> = vtree::wake_rounds(id, i_max).into_iter().map(|r| r - 1).collect();
        VtMis { id, state: MisState::Undecided, wakes, live_ports, finished: false }
    }

    /// First local round this node must be awake in.
    pub fn first_wake(&self) -> Round {
        self.wakes[0]
    }

    /// The node's wake schedule (local rounds, ascending).
    pub fn wake_schedule(&self) -> &[Round] {
        &self.wakes
    }
}

impl SubProtocol for VtMis {
    type Msg = MisMsg;
    type Output = MisState;

    fn send(&mut self, lr: Round, _ctx: &mut NodeCtx) -> Outbox<MisMsg> {
        if !self.wakes.contains(&lr) {
            return Outbox::Silent; // a start call before the first wake
        }
        match &self.live_ports {
            None => Outbox::Broadcast(MisMsg(self.state)),
            Some(ports) => {
                Outbox::Unicast(ports.iter().map(|&p| (p, MisMsg(self.state))).collect())
            }
        }
    }

    fn receive(&mut self, lr: Round, _ctx: &mut NodeCtx, inbox: &[(Port, MisMsg)]) -> SubAction {
        if self.wakes.contains(&lr) {
            if self.state == MisState::Undecided
                && inbox.iter().any(|&(_, MisMsg(s))| s == MisState::InMis)
            {
                self.state = MisState::NotInMis;
            }
            if lr + 1 == self.id && self.state == MisState::Undecided {
                self.state = MisState::InMis;
            }
        }
        match self.wakes.iter().find(|&&w| w > lr) {
            Some(&w) => SubAction::SleepUntil(w),
            None => {
                self.finished = true;
                SubAction::Done
            }
        }
    }

    fn output(&self) -> MisState {
        assert!(self.finished, "VT-MIS output read before completion");
        debug_assert!(self.state.is_decided(), "VT-MIS must decide by its last wake");
        self.state
    }

    fn aborted_output(&self) -> MisState {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_schedule_matches_vtree() {
        let v = VtMis::new(3, 6, None);
        assert_eq!(v.wake_schedule(), &[2, 3, 4]); // S_3([1,6]) = {3,4,5}, 0-based
        assert_eq!(v.first_wake(), 2);
        let w = VtMis::new(5, 6, None);
        assert_eq!(w.wake_schedule(), &[4, 5]); // S_5 clipped to [1,6]
    }
}
