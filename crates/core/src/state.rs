//! MIS decision states and the basic MIS wire message.

use sleeping_congest::MessageSize;

/// A node's MIS decision state (`state_v` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MisState {
    /// Not yet decided.
    #[default]
    Undecided,
    /// Joined the MIS.
    InMis,
    /// Excluded (a neighbor joined the MIS).
    NotInMis,
}

impl MisState {
    /// Whether the node has committed to a final answer.
    pub fn is_decided(self) -> bool {
        self != MisState::Undecided
    }
}

/// A broadcast of one's MIS state: the basic message of `VT-MIS` and of
/// Awake-MIS communication rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MisMsg(pub MisState);

impl MessageSize for MisMsg {
    fn bits(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decided() {
        assert!(!MisState::Undecided.is_decided());
        assert!(MisState::InMis.is_decided());
        assert!(MisState::NotInMis.is_decided());
        assert_eq!(MisState::default(), MisState::Undecided);
        assert_eq!(MisMsg(MisState::InMis).bits(), 2);
    }
}
