//! `LE-MIS` — an explicit **time/energy trade-off** MIS, after
//! Ghaffari–Portmann, *"Distributed MIS with Low Energy and Time
//! Complexities"* (PODC 2023, arXiv:2305.11639).
//!
//! GP's theme: energy (awake rounds) and time (total rounds) are *both*
//! dials, and an algorithm family can move along the frontier between
//! them instead of optimizing one endpoint. This protocol realizes that
//! trade-off from the repo's own building blocks. Computation proceeds
//! in **epochs**; each epoch runs a [`VtMis`](crate::vt_mis::VtMis)-style
//! ranked schedule over a *small* rank space `[1, M]`, `M = 2^bits`:
//!
//! * Every undecided node draws a fresh random rank `k ∈ [1, M]` and
//!   wakes only in the virtual-binary-tree communication set
//!   `S_k([1, M])` — at most `⌈log₂ M⌉ + 1 = bits + 1` awake rounds.
//! * The epoch computes the LFMIS of the undecided subgraph under the
//!   rank order: a node joins at its rank round unless it heard a
//!   neighbor join first (Observation 5 guarantees the announcement
//!   arrives in time), and a node that hears a neighbor join leaves as
//!   `NotInMis` **immediately** — it pays nothing more this epoch.
//! * Ranks are *not* distinct: messages carry the sender's rank, and a
//!   node that ever hears **its own rank** from a neighbor has lost
//!   symmetry breaking for this epoch. It *defers* — sleeps straight to
//!   the epoch's resolve round and redraws next epoch. (Contrast
//!   [`AvgMis`](crate::avg_mis::AvgMis), where the rank space is `[1, N³]`
//!   and a collision is a Monte Carlo *failure*; here collisions are the
//!   expected cost of a small rank space, and retrying is the design.)
//! * A final **resolve** round per epoch: epoch winners broadcast `Win`
//!   once; every still-undecided node wakes to listen, so no node enters
//!   the next epoch adjacent to an MIS node.
//!
//! # The `bits` dial
//!
//! An epoch costs every *surviving* node at most `bits + 2` awake rounds
//! and `2^bits + 1` total rounds, and the only nodes that survive an
//! epoch are those that collided (probability `≤ deg/2^bits` with fresh
//! ranks each epoch). Measured over a seed grid the dial has three
//! regimes:
//!
//! * **tiny `bits` (≈ 1–2)** — epochs are a handful of rounds, so even
//!   several collision retries finish in very few *total* rounds; but
//!   every retry adds awake rounds, so the energy bill is the highest.
//!   The time-optimal, energy-hungry end of the frontier.
//! * **moderate `bits`** — collisions die out after an epoch or two
//!   while the wake sets (`≤ bits + 1` rounds) are still small: the
//!   energy-optimal region, at a round cost that grows with `2^bits`.
//! * **large `bits`** — one epoch always suffices, but every survivor
//!   pays its full `⌈log₂ M⌉ + 1` wake set and the epoch spans `2^bits`
//!   rounds: awake *and* time grow together, converging on `VT-MIS`
//!   (plus a resolve round) at `M = N³`. The Pareto analysis marks this
//!   tail as dominated — the measured reason the GP trade-off family
//!   works over *small* rank spaces.
//!
//! Sweeping `le?bits=…` traces exactly that frontier; the sweep is the
//! flagship axis of `analysis::sweep`.
//!
//! # Monte Carlo failure mode
//!
//! Progress is randomized: with pathologically small rank spaces (say
//! `bits=1` on a dense graph) a node can collide epoch after epoch. A
//! node still undecided after `max_epochs` epochs terminates with
//! [`LeMisOutput::failed`] set, and the runner reports it like any other
//! Monte Carlo failure (`AlgoResult::failures`, `correct = false`) — the
//! same convention `Awake-MIS` and `GP-Avg-MIS` use.

use crate::state::MisState;
use graphgen::Port;
use rand::Rng;
use sleeping_congest::{bits_for_value, Action, MessageSize, NodeCtx, Outbox, Protocol, Round};

/// Knobs of [`LeMis`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeMisConfig {
    /// Rank bits per epoch: ranks are drawn from `[1, 2^bits]`, an epoch
    /// spans `2^bits + 1` rounds, and a surviving node is awake at most
    /// `bits + 2` rounds per epoch. `0` means *auto*: `⌈log₂ n_upper⌉`,
    /// clamped to `[4, 40]` — wide enough that collisions die out in an
    /// epoch or two even on dense graphs. This is the time/energy dial
    /// (see the module docs for the three regimes).
    pub bits: u32,
    /// Epoch budget: a node still undecided after this many epochs gives
    /// up and reports a Monte Carlo failure.
    pub max_epochs: u64,
}

/// Upper bound accepted for [`LeMisConfig::bits`] (an epoch must fit
/// comfortably under the engine's round counter).
pub const LE_MAX_BITS: u32 = 40;

impl Default for LeMisConfig {
    fn default() -> Self {
        LeMisConfig { bits: 0, max_epochs: 64 }
    }
}

/// Wire message of one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeMsg {
    /// Ranked-schedule broadcast: "my rank this epoch, my state". The
    /// rank makes collisions detectable (see the module docs).
    State(u64, MisState),
    /// Resolve round: "I joined the MIS this epoch".
    Win,
}

impl MessageSize for LeMsg {
    fn bits(&self) -> usize {
        1 + match self {
            LeMsg::State(rank, _) => bits_for_value(*rank) + 2,
            LeMsg::Win => 1,
        }
    }
}

/// A node's final output: its decision, the Monte Carlo flag (epoch
/// budget exhausted while undecided), and the number of epochs it
/// participated in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeMisOutput {
    /// The MIS decision (`Undecided` only when `failed`).
    pub state: MisState,
    /// True if the node exhausted [`LeMisConfig::max_epochs`].
    pub failed: bool,
    /// Epochs this node was still undecided at the start of (≥ 1).
    pub epochs: u64,
}

/// The `LE-MIS` protocol for one node.
#[derive(Debug, Clone)]
pub struct LeMis {
    cfg: LeMisConfig,
    /// Rank-space size `M = 2^bits`, resolved from `n_upper` on first
    /// activation when `cfg.bits == 0`.
    space: u64,
    state: MisState,
    rank: u64,
    /// This epoch's wake rounds (0-based local), ascending.
    wakes: Vec<Round>,
    collided: bool,
    epoch: u64,
    failed: bool,
    finished: bool,
}

impl LeMis {
    /// Creates a node with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.bits > LE_MAX_BITS` or `cfg.max_epochs == 0`.
    pub fn new(cfg: LeMisConfig) -> LeMis {
        assert!(cfg.bits <= LE_MAX_BITS, "bits {} above the {LE_MAX_BITS} cap", cfg.bits);
        assert!(cfg.max_epochs >= 1, "at least one epoch is required");
        LeMis {
            cfg,
            space: 0,
            state: MisState::Undecided,
            rank: 0,
            wakes: Vec::new(),
            collided: false,
            epoch: 0,
            failed: false,
            finished: false,
        }
    }

    /// Rank bits actually in use for a given network bound.
    pub fn resolved_bits(cfg: LeMisConfig, n_upper: usize) -> u32 {
        if cfg.bits > 0 {
            return cfg.bits;
        }
        let n = n_upper.max(2) as u64;
        let ceil_log2 = 64 - (n - 1).leading_zeros();
        ceil_log2.clamp(4, LE_MAX_BITS)
    }

    /// Epoch length in rounds: the `M`-round schedule plus the resolve
    /// round.
    fn epoch_len(&self) -> Round {
        self.space + 1
    }

    /// Draws a fresh rank and builds this epoch's wake schedule.
    fn enter_epoch(&mut self, ctx: &mut NodeCtx) {
        debug_assert_eq!(self.state, MisState::Undecided);
        self.rank = ctx.rng.gen_range(1..=self.space);
        self.wakes = vtree::wake_rounds(self.rank, self.space)
            .into_iter()
            .map(|r| r - 1)
            .collect();
        self.collided = false;
    }
}

impl Protocol for LeMis {
    type Msg = LeMsg;
    type Output = LeMisOutput;

    fn send(&mut self, ctx: &mut NodeCtx) -> Outbox<LeMsg> {
        if self.space == 0 {
            // First activation (round 0, everyone awake): size the rank
            // space and enter epoch 0.
            self.space = 1u64 << Self::resolved_bits(self.cfg, ctx.n_upper);
            self.enter_epoch(ctx);
        }
        let lr = ctx.round % self.epoch_len();
        if lr == self.space {
            // Resolve round: only epoch winners speak.
            if self.state == MisState::InMis {
                Outbox::Broadcast(LeMsg::Win)
            } else {
                Outbox::Silent
            }
        } else if !self.collided && self.wakes.binary_search(&lr).is_ok() {
            Outbox::Broadcast(LeMsg::State(self.rank, self.state))
        } else {
            // A stray awake round (round 0 before the first wake).
            Outbox::Silent
        }
    }

    fn receive(&mut self, ctx: &mut NodeCtx, inbox: &[(Port, LeMsg)]) -> Action {
        let lr = ctx.round % self.epoch_len();
        let base = ctx.round - lr;
        if lr == self.space {
            // Resolve round.
            if self.state == MisState::InMis {
                self.finished = true;
                return Action::Terminate;
            }
            if inbox.iter().any(|&(_, m)| m == LeMsg::Win) {
                self.state = MisState::NotInMis;
                self.finished = true;
                return Action::Terminate;
            }
            self.epoch += 1;
            if self.epoch >= self.cfg.max_epochs {
                self.failed = true;
                self.finished = true;
                return Action::Terminate;
            }
            self.enter_epoch(ctx);
            return Action::SleepUntil(base + self.epoch_len() + self.wakes[0]);
        }
        // Ranked-schedule round.
        let mut heard_in = false;
        for &(_, m) in inbox {
            if let LeMsg::State(rank, s) = m {
                if s == MisState::InMis {
                    heard_in = true;
                }
                if rank == self.rank {
                    // A neighbor shares my whole wake schedule: symmetry
                    // is unbreakable this epoch — defer to the next.
                    self.collided = true;
                }
            }
        }
        if self.state == MisState::Undecided && heard_in {
            // Decided against: leave immediately, like the dropout
            // algorithms — this is what keeps the energy bill low.
            self.state = MisState::NotInMis;
            self.finished = true;
            return Action::Terminate;
        }
        if self.state == MisState::Undecided && !self.collided && lr + 1 == self.rank {
            self.state = MisState::InMis;
        }
        if self.collided {
            // Nothing left to say or decide before the resolve round.
            return Action::SleepUntil(base + self.space);
        }
        match self.wakes.iter().find(|&&w| w > lr) {
            // Keep attending the schedule (an InMis node must announce
            // itself to higher-ranked neighbors at the common rounds).
            Some(&w) => Action::SleepUntil(base + w),
            // Past the last wake: attend the resolve round.
            None => Action::SleepUntil(base + self.space),
        }
    }

    fn output(&self) -> LeMisOutput {
        assert!(self.finished, "LE-MIS output read before completion");
        debug_assert!(self.failed || self.state.is_decided());
        LeMisOutput { state: self.state, failed: self.failed, epochs: self.epoch + 1 }
    }

    fn aborted_output(&self) -> LeMisOutput {
        LeMisOutput { state: self.state, failed: self.failed, epochs: self.epoch + 1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{check_maximal, check_mis};
    use graphgen::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use sleeping_congest::{SimConfig, Simulator};

    fn run(
        g: &graphgen::Graph,
        cfg: LeMisConfig,
        seed: u64,
    ) -> sleeping_congest::RunReport<LeMisOutput> {
        let nodes = (0..g.n()).map(|_| LeMis::new(cfg)).collect();
        Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run().expect("run")
    }

    fn states(report: &sleeping_congest::RunReport<LeMisOutput>) -> Vec<MisState> {
        assert_eq!(
            report.outputs.iter().filter(|o| o.failed).count(),
            0,
            "unexpected epoch-budget exhaustion"
        );
        report.outputs.iter().map(|o| o.state).collect()
    }

    #[test]
    fn computes_mis_across_the_bits_dial() {
        let mut rng = SmallRng::seed_from_u64(21);
        for trial in 0..8 {
            let g = generators::gnp(50, 0.1, &mut rng);
            for bits in [0, 4, 6, 10, 16] {
                let report = run(&g, LeMisConfig { bits, ..Default::default() }, trial);
                let s = states(&report);
                check_mis(&g, &s).unwrap_or_else(|e| panic!("trial {trial} bits {bits}: {e}"));
                check_maximal(&g, &s)
                    .unwrap_or_else(|e| panic!("trial {trial} bits {bits}: {e}"));
            }
        }
    }

    #[test]
    fn bits_trade_rounds_against_awake() {
        // The defining frontier shape, seed-averaged. Low end of the
        // dial: tiny rank spaces retry often — fewest total rounds,
        // most awake rounds. Moderate spaces: the opposite. And the
        // large-bits tail is worse than moderate on *both* measures
        // (the reason the Pareto sweep marks it dominated).
        let mut rng = SmallRng::seed_from_u64(23);
        let g = generators::gnp_avg_degree(512, 8.0, &mut rng);
        let mean = |bits: u32| -> (f64, f64) {
            let mut awake = 0.0;
            let mut rounds = 0.0;
            for seed in 0..8u64 {
                let report = run(&g, LeMisConfig { bits, ..Default::default() }, seed);
                check_mis(&g, &states(&report)).unwrap();
                awake += report.metrics.awake_complexity() as f64 / 8.0;
                rounds += report.metrics.round_complexity() as f64 / 8.0;
            }
            (awake, rounds)
        };
        let (awake_tiny, rounds_tiny) = mean(2);
        let (awake_mid, rounds_mid) = mean(6);
        let (awake_large, rounds_large) = mean(14);
        assert!(
            rounds_tiny * 2.0 < rounds_mid,
            "tiny rank spaces must be much faster: {rounds_tiny} vs {rounds_mid}"
        );
        assert!(
            awake_mid < awake_tiny,
            "moderate rank spaces must be awake-cheaper: {awake_mid} vs {awake_tiny}"
        );
        assert!(
            awake_large > awake_mid && rounds_large > rounds_mid,
            "the large-bits tail must be dominated: awake {awake_large} vs {awake_mid}, \
             rounds {rounds_large} vs {rounds_mid}"
        );
    }

    #[test]
    fn awake_is_bounded_by_epochs_times_bits() {
        // Per epoch a node is awake ≤ bits + 2 rounds (schedule + resolve),
        // plus the round-0 activation.
        let mut rng = SmallRng::seed_from_u64(29);
        let g = generators::gnp_avg_degree(256, 8.0, &mut rng);
        let cfg = LeMisConfig { bits: 10, ..Default::default() };
        for seed in 0..4u64 {
            let report = run(&g, cfg, seed);
            check_mis(&g, &states(&report)).unwrap();
            let max_epochs = report.outputs.iter().map(|o| o.epochs).max().unwrap();
            let cap = max_epochs * u64::from(cfg.bits + 2) + 1;
            assert!(
                report.metrics.awake_complexity() <= cap,
                "seed {seed}: awake {} above cap {cap} ({} epochs)",
                report.metrics.awake_complexity(),
                max_epochs
            );
        }
    }

    #[test]
    fn epoch_budget_exhaustion_is_flagged_not_wrong() {
        // bits=1 on a clique: two ranks for eight mutually-adjacent
        // nodes, one epoch allowed — collisions are near-certain, and
        // they must surface as Monte Carlo failures, never as an
        // invalid MIS.
        let g = generators::complete(8);
        let mut saw_failure = false;
        for seed in 0..8u64 {
            let report = run(&g, LeMisConfig { bits: 1, max_epochs: 1 }, seed);
            let failed: Vec<bool> = report.outputs.iter().map(|o| o.failed).collect();
            if failed.iter().any(|&f| f) {
                saw_failure = true;
                continue;
            }
            let s: Vec<MisState> = report.outputs.iter().map(|o| o.state).collect();
            check_mis(&g, &s).unwrap();
            check_maximal(&g, &s).unwrap();
        }
        assert!(saw_failure, "one-epoch bits=1 on K8 should fail sometimes");
    }

    #[test]
    fn empty_and_tiny_graphs() {
        for cfg in [LeMisConfig::default(), LeMisConfig { bits: 3, ..Default::default() }] {
            let g = graphgen::Graph::empty(3);
            let report = run(&g, cfg, 1);
            assert!(report.outputs.iter().all(|o| o.state == MisState::InMis && !o.failed));
            let g = generators::path(2);
            let report = run(&g, cfg, 1);
            check_mis(&g, &states(&report)).unwrap();
        }
    }

    #[test]
    fn auto_bits_track_the_network_bound() {
        assert_eq!(LeMis::resolved_bits(LeMisConfig::default(), 2), 4);
        assert_eq!(LeMis::resolved_bits(LeMisConfig::default(), 1024), 10);
        assert_eq!(LeMis::resolved_bits(LeMisConfig::default(), 1025), 11);
        assert_eq!(LeMis::resolved_bits(LeMisConfig::default(), usize::MAX), LE_MAX_BITS);
        // An explicit value wins.
        let cfg = LeMisConfig { bits: 7, ..Default::default() };
        assert_eq!(LeMis::resolved_bits(cfg, 1 << 20), 7);
    }
}
