//! Sequential (randomized) greedy MIS — the algorithm whose distributed
//! implementation is the heart of the paper (§4.3).
//!
//! Processing nodes in order `v₁, …, vₙ` and adding each node unless a
//! neighbor was already added yields the **lexicographically first MIS**
//! (LFMIS) with respect to that ordering. These functions are the ground
//! truth that the distributed algorithms are tested against, and the
//! direct way to measure the *residual sparsity* property (Lemma 2).

use crate::state::MisState;
use graphgen::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// The LFMIS of `g` with respect to `order` (a permutation of all
/// nodes): `result[v]` is true iff `v` is in the MIS.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..n`.
pub fn lfmis(g: &Graph, order: &[NodeId]) -> Vec<bool> {
    let n = g.n();
    assert_eq!(order.len(), n, "order must cover all {n} nodes");
    let mut seen = vec![false; n];
    for &v in order {
        assert!(!std::mem::replace(&mut seen[v as usize], true), "duplicate node {v} in order");
    }
    let mut in_mis = vec![false; n];
    let mut blocked = vec![false; n];
    for &v in order {
        if !blocked[v as usize] {
            in_mis[v as usize] = true;
            for &u in g.neighbors(v) {
                blocked[u as usize] = true;
            }
        }
    }
    in_mis
}

/// Runs randomized greedy MIS: draws a uniform order and returns
/// `(order, lfmis(g, order))`.
pub fn random_greedy(g: &Graph, rng: &mut impl Rng) -> (Vec<NodeId>, Vec<bool>) {
    let mut order: Vec<NodeId> = (0..g.n() as NodeId).collect();
    order.shuffle(rng);
    let mis = lfmis(g, &order);
    (order, mis)
}

/// The residual graph after processing a prefix: nodes beyond the prefix
/// that are neither in the prefix's LFMIS nor adjacent to it.
///
/// Returns `(residual_nodes, max_residual_degree)` where the degree is
/// measured inside `G[V_{t'} \ N(M_t)]` for `t' = upto` and `t = prefix`
/// — exactly the quantity bounded by **Lemma 2**:
/// `max degree ≤ (t'/t)·ln(n/ε)` with probability `1 − ε`.
///
/// # Panics
///
/// Panics unless `1 ≤ prefix < upto ≤ n`.
pub fn residual_degree(g: &Graph, order: &[NodeId], prefix: usize, upto: usize) -> (Vec<NodeId>, usize) {
    let n = g.n();
    assert!(prefix >= 1 && prefix < upto && upto <= n, "need 1 <= prefix < upto <= n");
    let mut blocked = vec![false; n];
    for &v in &order[..prefix] {
        if !blocked[v as usize] {
            // v joins M_t.
            blocked[v as usize] = true;
            for &u in g.neighbors(v) {
                blocked[u as usize] = true;
            }
        }
    }
    // Note: `blocked` marks N(M_t) (M_t itself included).
    let residual: Vec<NodeId> =
        order[..upto].iter().copied().filter(|&v| !blocked[v as usize]).collect();
    let in_residual = {
        let mut f = vec![false; n];
        for &v in &residual {
            f[v as usize] = true;
        }
        f
    };
    let maxdeg = residual
        .iter()
        .map(|&v| g.neighbors(v).iter().filter(|&&u| in_residual[u as usize]).count())
        .max()
        .unwrap_or(0);
    (residual, maxdeg)
}

/// Converts a membership vector into per-node [`MisState`]s.
pub fn to_states(in_mis: &[bool]) -> Vec<MisState> {
    in_mis.iter().map(|&b| if b { MisState::InMis } else { MisState::NotInMis }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn lfmis_on_path_identity_order() {
        let g = generators::path(5);
        let order: Vec<NodeId> = (0..5).collect();
        assert_eq!(lfmis(&g, &order), vec![true, false, true, false, true]);
    }

    #[test]
    fn lfmis_respects_order() {
        let g = generators::path(3);
        assert_eq!(lfmis(&g, &[1, 0, 2]), vec![false, true, false]);
        assert_eq!(lfmis(&g, &[0, 2, 1]), vec![true, false, true]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_bad_order() {
        let g = generators::path(3);
        lfmis(&g, &[0, 0, 1]);
    }

    #[test]
    fn random_greedy_is_valid_mis() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..20 {
            let g = generators::gnp(40, 0.15, &mut rng);
            let (_, mis) = random_greedy(&g, &mut rng);
            assert!(crate::verify::is_mis(&g, &mis), "greedy output must be an MIS");
        }
    }

    #[test]
    fn residual_degree_shrinks() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = generators::gnp(300, 0.2, &mut rng);
        let mut order: Vec<NodeId> = (0..300).collect();
        order.shuffle(&mut rng);
        let (_, d_small_prefix) = residual_degree(&g, &order, 10, 300);
        let (_, d_large_prefix) = residual_degree(&g, &order, 150, 300);
        assert!(
            d_large_prefix <= d_small_prefix,
            "larger prefixes must not increase residual degree ({d_large_prefix} > {d_small_prefix})"
        );
    }

    #[test]
    fn residual_nodes_have_no_mis_neighbors() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = generators::gnp(60, 0.2, &mut rng);
        let mut order: Vec<NodeId> = (0..60).collect();
        order.shuffle(&mut rng);
        let (residual, _) = residual_degree(&g, &order, 20, 60);
        // Recompute the prefix MIS and confirm residual nodes avoid it.
        let mut blocked = [false; 60];
        let mut mis = Vec::new();
        for &v in &order[..20] {
            if !blocked[v as usize] {
                mis.push(v);
                blocked[v as usize] = true;
                for &u in g.neighbors(v) {
                    blocked[u as usize] = true;
                }
            }
        }
        for &r in &residual {
            assert!(!mis.contains(&r));
            for &u in g.neighbors(r) {
                assert!(!mis.contains(&u), "residual node {r} adjacent to MIS node {u}");
            }
        }
    }

    #[test]
    fn state_conversion() {
        assert_eq!(
            to_states(&[true, false]),
            vec![MisState::InMis, MisState::NotInMis]
        );
    }
}
