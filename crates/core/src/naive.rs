//! The naive distributed greedy MIS — the `O(I)`-awake baseline that
//! `VT-MIS` improves exponentially (paper §5.3).
//!
//! All nodes stay awake for `I` rounds; in round `r` everyone sends its
//! state and the node with ID `r` joins unless a neighbor is already in
//! the MIS. Output equals the LFMIS of the ID order, like `VT-MIS`, but
//! the awake complexity is `Θ(I)` instead of `O(log I)`.

use crate::state::{MisMsg, MisState};
use graphgen::Port;
use sleeping_congest::{Action, NodeCtx, Outbox, Protocol};

/// The naive greedy protocol for one node.
#[derive(Debug, Clone)]
pub struct NaiveGreedy {
    id: u64,
    i_max: u64,
    state: MisState,
    finished: bool,
}

impl NaiveGreedy {
    /// Node with `id ∈ [1, i_max]`; the algorithm runs `i_max` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in `[1, i_max]`.
    pub fn new(id: u64, i_max: u64) -> NaiveGreedy {
        assert!(id >= 1 && id <= i_max, "id {id} outside [1, {i_max}]");
        NaiveGreedy { id, i_max, state: MisState::Undecided, finished: false }
    }
}

impl Protocol for NaiveGreedy {
    type Msg = MisMsg;
    type Output = MisState;

    fn send(&mut self, _ctx: &mut NodeCtx) -> Outbox<MisMsg> {
        Outbox::Broadcast(MisMsg(self.state))
    }

    fn receive(&mut self, ctx: &mut NodeCtx, inbox: &[(Port, MisMsg)]) -> Action {
        let r = ctx.round + 1; // paper rounds are 1-based
        if self.state == MisState::Undecided
            && inbox.iter().any(|&(_, MisMsg(s))| s == MisState::InMis)
        {
            self.state = MisState::NotInMis;
        }
        if r == self.id && self.state == MisState::Undecided {
            self.state = MisState::InMis;
        }
        if r >= self.i_max {
            self.finished = true;
            Action::Terminate
        } else {
            Action::Continue
        }
    }

    fn output(&self) -> MisState {
        assert!(self.finished, "naive greedy output read before completion");
        self.state
    }

    fn aborted_output(&self) -> MisState {
        self.state
    }
}
