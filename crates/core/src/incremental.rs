//! Incremental MIS repair under topology deltas.
//!
//! One-shot MIS pays the full `O(log n)`-round (or, for the paper's
//! algorithm, `O(log log n)`-awake) bill on every change. But a single
//! delta can only invalidate the MIS *locally*: an inserted edge whose
//! endpoints are both in the MIS breaks independence at those two nodes;
//! a deleted edge or a removed MIS node can leave its former neighbors
//! undominated. [`repair`] computes that **damage frontier** — the set
//! of nodes whose MIS validity a delta batch can actually break — wakes
//! only that neighborhood, re-runs a caller-supplied MIS solver on the
//! induced repair subgraph, and splices the result back. Every other
//! node stays asleep, which is the sleeping model's whole value
//! proposition applied to churn: awake cost proportional to the damage,
//! not to `n`.
//!
//! # Frontier construction
//!
//! Starting from a valid MIS of the pre-delta (active) graph:
//!
//! 1. **Evict** conflicts: for each effectively inserted edge with both
//!    endpoints `InMis` (scanned in sorted order), demote the
//!    larger-id endpoint to undecided. The kept endpoint still
//!    dominates it, so eviction never strands a node unwitnessed.
//! 2. **Candidates**: endpoints of inserted and deleted edges (deleted
//!    includes the edges implicitly lost to node removals), newly
//!    added nodes, evicted nodes, and the neighbors of evicted nodes
//!    (they may have lost their only dominator).
//! 3. **Classify** each active candidate not in the MIS: if it has an
//!    active `InMis` neighbor it is dominated — pin it `NotInMis`;
//!    otherwise it joins the frontier as `Undecided`.
//!
//! MIS nodes never leave the MIS except by step 1, so the surviving MIS
//! is still independent, and no frontier node neighbors a surviving MIS
//! node — hence *any* MIS of the induced frontier subgraph splices back
//! into a globally valid MIS. The result is verified with
//! [`check_mis_survivors`](crate::check_mis_survivors) (inactive nodes
//! exempt), and on failure the frontier is re-solved with a reseeded
//! attempt up to [`RepairConfig::max_retries`] times.

use crate::state::MisState;
use crate::verify::check_mis_survivors;
use graphgen::delta::AppliedDelta;
use graphgen::{Graph, NodeId};

/// A solution for a repair subgraph, as returned by the solver callback
/// given to [`repair`]: the per-node states plus the cost the solver
/// paid, which [`repair`] accumulates into the [`RepairOutcome`].
#[derive(Debug, Clone, Default)]
pub struct SubSolution {
    /// MIS states for the subgraph's nodes (subgraph ids).
    pub states: Vec<MisState>,
    /// Rounds the solver ran.
    pub rounds: u64,
    /// Maximum per-node awake rounds.
    pub awake_max: u64,
    /// Total awake node-rounds.
    pub awake_total: u64,
    /// Messages sent.
    pub messages: u64,
}

/// Knobs for [`repair`].
#[derive(Debug, Clone, Copy)]
pub struct RepairConfig {
    /// How many reseeded solver attempts to make before giving up when
    /// the spliced result fails verification.
    pub max_retries: u64,
}

impl Default for RepairConfig {
    fn default() -> RepairConfig {
        RepairConfig { max_retries: 3 }
    }
}

/// What [`repair`] did: the repaired states plus the metrics that make
/// the "wake only the neighborhood" claim measurable.
#[derive(Debug, Clone, Default)]
pub struct RepairOutcome {
    /// Repaired per-node MIS states (inactive nodes are `NotInMis`).
    pub states: Vec<MisState>,
    /// The frontier actually re-solved (sorted original ids).
    pub frontier: Vec<NodeId>,
    /// Nodes woken by the repair: frontier plus the dominated
    /// candidates that had to check a neighbor's state.
    pub woken: u64,
    /// MIS nodes evicted by inserted-edge conflicts.
    pub evicted: u64,
    /// Candidates that lost their dominator (went back to undecided).
    pub uncovered: u64,
    /// Rounds the frontier solver ran (summed over retries).
    pub repair_rounds: u64,
    /// Maximum per-node awake rounds across solver attempts.
    pub awake_max: u64,
    /// Total awake node-rounds across solver attempts.
    pub awake_total: u64,
    /// Messages sent by solver attempts.
    pub messages: u64,
    /// Reseeded attempts beyond the first.
    pub retries: u64,
    /// Whether the final states verify as an MIS of the active graph.
    pub correct: bool,
    /// Verification or solver error, when `correct` is false.
    pub error: Option<String>,
    /// Wall-clock nanoseconds spent verifying candidate states
    /// (observational only — never fed back into the repair and never
    /// part of any benchmark payload).
    pub verify_ns: u64,
}

/// Deterministically mixes a repair seed with an attempt counter
/// (splitmix64 finalizer).
fn mix(seed: u64, attempt: u64) -> u64 {
    let mut z = seed ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Repairs a MIS after a delta batch.
///
/// * `g` — the **post-delta** graph.
/// * `active` — the post-delta active mask (`g.n()` entries); inactive
///   nodes are exempt from independence and domination.
/// * `old_states` — a valid MIS of the **pre-delta** active graph
///   (length = pre-delta `n`; entries for since-removed nodes are
///   ignored). This precondition is the caller's responsibility — feed
///   repair its own previous output, or a verified one-shot run.
/// * `solve` — MIS solver for the induced frontier subgraph, usually a
///   registry runner; called with `(subgraph, seed)` and reseeded on
///   retry.
///
/// Never panics on bad input: a solver error or verification failure
/// after all retries comes back with `correct = false` and `error`
/// set, states left in the best attempt.
pub fn repair<F>(
    g: &Graph,
    active: &[bool],
    old_states: &[MisState],
    applied: &AppliedDelta,
    seed: u64,
    cfg: &RepairConfig,
    mut solve: F,
) -> RepairOutcome
where
    F: FnMut(&Graph, u64) -> Result<SubSolution, String>,
{
    let n = g.n();
    debug_assert_eq!(active.len(), n);

    // Carry the old states into the post-delta id space: added nodes
    // are undecided, inactive nodes are pinned out.
    let mut states = vec![MisState::Undecided; n];
    for (v, s) in old_states.iter().enumerate().take(n) {
        states[v] = *s;
    }
    for &v in &applied.added {
        states[v as usize] = MisState::Undecided;
    }
    for (v, s) in states.iter_mut().enumerate() {
        if !active[v] {
            *s = MisState::NotInMis;
        }
    }

    let mut out = RepairOutcome::default();

    // Step 1: evict one endpoint of every InMis–InMis inserted edge.
    // `applied.inserted` is sorted, so eviction order is deterministic;
    // evicting the larger id keeps it dominated by the kept endpoint
    // at the moment of eviction.
    let mut evicted: Vec<NodeId> = Vec::new();
    for &(a, b) in &applied.inserted {
        if states[a as usize] == MisState::InMis && states[b as usize] == MisState::InMis {
            let loser = a.max(b);
            states[loser as usize] = MisState::Undecided;
            evicted.push(loser);
        }
    }
    out.evicted = evicted.len() as u64;

    // Step 2: damage candidates.
    let mut candidates: Vec<NodeId> = Vec::new();
    for &(a, b) in applied.inserted.iter().chain(applied.deleted.iter()) {
        candidates.push(a);
        candidates.push(b);
    }
    candidates.extend_from_slice(&applied.added);
    for &v in &evicted {
        candidates.push(v);
        candidates.extend_from_slice(g.neighbors(v));
    }
    candidates.sort_unstable();
    candidates.dedup();

    // Step 3: classify. Dominated candidates are woken just long enough
    // to observe a neighbor in the MIS; undominated ones form the
    // frontier.
    let mut frontier: Vec<NodeId> = Vec::new();
    let mut dominated_woken = 0u64;
    for &v in &candidates {
        if !active[v as usize] || states[v as usize] == MisState::InMis {
            continue;
        }
        let has_dominator = g
            .neighbors(v)
            .iter()
            .any(|&u| active[u as usize] && states[u as usize] == MisState::InMis);
        if has_dominator {
            states[v as usize] = MisState::NotInMis;
            dominated_woken += 1;
        } else {
            // Previously dominated, dominator gone — the case a deleted
            // edge or removed MIS node creates.
            if states[v as usize] == MisState::NotInMis {
                out.uncovered += 1;
            }
            states[v as usize] = MisState::Undecided;
            frontier.push(v);
        }
    }
    out.woken = dominated_woken + frontier.len() as u64;
    out.frontier = frontier;

    if out.frontier.is_empty() {
        let t0 = std::time::Instant::now();
        out.correct = match check_mis_survivors(g, &states, active) {
            Ok(()) => true,
            Err(e) => {
                out.error = Some(e);
                false
            }
        };
        out.verify_ns = t0.elapsed().as_nanos() as u64;
        out.states = states;
        return out;
    }

    // Re-solve the frontier subgraph, splice, verify; reseed on failure.
    let (sub, map) = g.induced(&out.frontier);
    debug_assert_eq!(map, out.frontier);
    let mut last_err = None;
    for attempt in 0..=cfg.max_retries {
        if attempt > 0 {
            out.retries += 1;
            for &v in &out.frontier {
                states[v as usize] = MisState::Undecided;
            }
        }
        match solve(&sub, mix(seed, attempt)) {
            Ok(sol) => {
                out.repair_rounds += sol.rounds;
                out.awake_max = out.awake_max.max(sol.awake_max);
                out.awake_total += sol.awake_total;
                out.messages += sol.messages;
                if sol.states.len() != map.len() {
                    last_err = Some(format!(
                        "solver returned {} states for a {}-node frontier",
                        sol.states.len(),
                        map.len()
                    ));
                    continue;
                }
                for (i, &v) in map.iter().enumerate() {
                    states[v as usize] = sol.states[i];
                }
                let t0 = std::time::Instant::now();
                let checked = check_mis_survivors(g, &states, active);
                out.verify_ns += t0.elapsed().as_nanos() as u64;
                match checked {
                    Ok(()) => {
                        out.correct = true;
                        out.states = states;
                        return out;
                    }
                    Err(e) => last_err = Some(e),
                }
            }
            Err(e) => last_err = Some(e),
        }
    }
    out.error = last_err;
    out.states = states;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy;
    use graphgen::delta::DeltaBatch;

    /// Deterministic solver for tests: lowest-id-first greedy.
    fn greedy_solve(sub: &Graph, _seed: u64) -> Result<SubSolution, String> {
        let order: Vec<NodeId> = (0..sub.n() as NodeId).collect();
        let set = greedy::lfmis(sub, &order);
        Ok(SubSolution {
            states: greedy::to_states(&set),
            rounds: 1,
            awake_max: 1,
            awake_total: sub.n() as u64,
            messages: 0,
        })
    }

    fn mis_states(g: &Graph) -> Vec<MisState> {
        let order: Vec<NodeId> = (0..g.n() as NodeId).collect();
        greedy::to_states(&greedy::lfmis(g, &order))
    }

    #[test]
    fn insert_conflict_is_repaired_locally() {
        // Path 0-1-2-3-4: greedy MIS = {0, 2, 4}. Insert (2, 4).
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let old = mis_states(&g);
        let mut b = DeltaBatch::new();
        b.insert_edge(2, 4);
        let (g2, applied) = g.apply_deltas(&b).unwrap();
        let active = vec![true; 5];
        let out =
            repair(&g2, &active, &old, &applied, 7, &RepairConfig::default(), greedy_solve);
        assert!(out.correct, "{:?}", out.error);
        assert_eq!(out.evicted, 1); // node 4 (larger id) evicted
        assert!(out.woken < 5, "repair woke everyone");
        check_mis_survivors(&g2, &out.states, &active).unwrap();
        // Untouched node 0 kept its decision.
        assert_eq!(out.states[0], old[0]);
    }

    #[test]
    fn removed_mis_node_uncovers_neighbors() {
        // Star: center 0 in MIS, leaves dominated. Remove the center.
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let old = mis_states(&g);
        assert_eq!(old[0], MisState::InMis);
        let mut b = DeltaBatch::new();
        b.remove_node(0);
        let (g2, applied) = g.apply_deltas(&b).unwrap();
        let active = vec![false, true, true, true, true];
        let out =
            repair(&g2, &active, &old, &applied, 3, &RepairConfig::default(), greedy_solve);
        assert!(out.correct, "{:?}", out.error);
        // Every leaf is now isolated and must join the MIS itself.
        for v in 1..5 {
            assert_eq!(out.states[v], MisState::InMis);
        }
        assert_eq!(out.uncovered, 4);
    }

    #[test]
    fn no_op_delta_repairs_nothing() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let old = mis_states(&g);
        let (g2, applied) = g.apply_deltas(&DeltaBatch::new()).unwrap();
        let active = vec![true; 4];
        let out =
            repair(&g2, &active, &old, &applied, 0, &RepairConfig::default(), greedy_solve);
        assert!(out.correct);
        assert_eq!(out.woken, 0);
        assert_eq!(out.repair_rounds, 0);
        assert!(out.frontier.is_empty());
        assert_eq!(out.states, old);
    }

    #[test]
    fn added_nodes_join_the_frontier() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let old = mis_states(&g);
        let mut b = DeltaBatch::new();
        b.add_nodes(2).insert_edge(1, 2).insert_edge(2, 3);
        let (g2, applied) = g.apply_deltas(&b).unwrap();
        let active = vec![true; 4];
        let out =
            repair(&g2, &active, &old, &applied, 1, &RepairConfig::default(), greedy_solve);
        assert!(out.correct, "{:?}", out.error);
        check_mis_survivors(&g2, &out.states, &active).unwrap();
    }

    #[test]
    fn solver_failure_surfaces_after_retries() {
        // Delete the only edge: node 1 loses its dominator and must be
        // re-solved — which the broken solver can't do.
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let old = mis_states(&g);
        let mut b = DeltaBatch::new();
        b.delete_edge(0, 1);
        let (g2, applied) = g.apply_deltas(&b).unwrap();
        let active = vec![true; 2];
        let mut calls = 0u64;
        let out = repair(&g2, &active, &old, &applied, 9, &RepairConfig { max_retries: 2 }, |_, _| {
            calls += 1;
            Err("solver down".into())
        });
        assert!(!out.correct);
        assert_eq!(out.error.as_deref(), Some("solver down"));
        assert_eq!(calls, 3); // first attempt + 2 retries
        assert_eq!(out.retries, 2);
    }

    #[test]
    fn mix_is_seed_sensitive() {
        assert_ne!(mix(1, 0), mix(1, 1));
        assert_ne!(mix(1, 0), mix(2, 0));
    }
}
